"""E5 -- Theorems 3 / 5: 4-cycle and 5-cycle listing in O(1) amortized rounds.

Plants k-cycles (k = 4, 5) in random edge order amid churn and measures the
amortized round complexity, plus the listing guarantee on the final graph: for
every k-cycle, at least one member answers TRUE when all members are queried.
"""

from __future__ import annotations

import pytest

from repro.core import CycleListingNode
from repro.oracle import cycles_of_length
from repro.workloads import planted_cycle_churn

from benchmarks.harness import emit_table, run_experiment

N = 18
KS = [4, 5]


def _run(k: int, seed: int = 1):
    adversary, plants = planted_cycle_churn(N, k, num_plants=4, seed=seed, teardown=False)
    result = run_experiment(CycleListingNode, adversary, N)
    return result, plants


def _listing_coverage(result, k):
    """Fraction of final-graph k-cycles listed by at least one member."""
    network = result.network
    cycles = cycles_of_length(network.edges, k)
    if not cycles:
        return 1.0, 0
    listed = 0
    for cycle in cycles:
        if any(
            result.nodes[v].is_consistent() and result.nodes[v].knows_cycle_set(cycle)
            for v in cycle
        ):
            listed += 1
    return listed / len(cycles), len(cycles)


@pytest.mark.parametrize("k", KS)
def test_cycle_listing(benchmark, k):
    result, _ = benchmark.pedantic(_run, args=(k,), rounds=1, iterations=1)
    benchmark.extra_info["amortized_round_complexity"] = result.amortized_round_complexity
    coverage, _ = _listing_coverage(result, k)
    assert coverage == 1.0
    assert result.metrics.max_running_amortized_complexity() <= 4.0 + 1e-9


def _emit_table_impl():
    rows = []
    for k in KS:
        result, plants = _run(k)
        coverage, num_cycles = _listing_coverage(result, k)
        rows.append(
            [
                k,
                N,
                num_cycles,
                round(coverage, 3),
                result.metrics.total_changes,
                round(result.amortized_round_complexity, 4),
                round(result.metrics.max_running_amortized_complexity(), 4),
            ]
        )
        assert coverage == 1.0
    emit_table(
        "E5_theorem5_cycle_listing",
        ["k", "n", "cycles in final graph", "listing coverage", "changes", "amortized rounds", "worst prefix"],
        rows,
        claim="Theorems 3/5: every 4-cycle / 5-cycle is listed by some member; O(1) amortized rounds",
    )


def test_emit_table(benchmark, results_dir):
    """Regenerate and persist this experiment's table (runs under --benchmark-only)."""
    benchmark.pedantic(_emit_table_impl, rounds=1, iterations=1)
