"""E5 -- Theorems 3 / 5: 4-cycle and 5-cycle listing in O(1) amortized rounds.

Plants k-cycles (k = 4, 5) in random edge order amid churn and measures the
amortized round complexity, plus the listing guarantee on the final graph: for
every k-cycle, at least one member answers TRUE when all members are queried.

The sweep is one campaign (the ``planted_cycle`` workload with a ``k`` axis)
executed through the experiment-campaign subsystem; the listing guarantee is
the ``cycle_cover`` check.  Metrics are byte-identical to the previous
bespoke runner.
"""

from __future__ import annotations

import pytest

from repro.experiments import CampaignRunner, CampaignSpec, ExperimentSpec, ResultStore, run_cell

from benchmarks.harness import RESULTS_DIR, emit_table

N = 18
KS = [4, 5]

CAMPAIGN = CampaignSpec(
    name="E5_theorem5_cycles",
    base={
        "algorithm": "cycles",
        "adversary": "planted_cycle",
        "n": N,
        "seed": 1,
        "adversary_params": {"num_plants": 4, "teardown": False},
        "checks": ["cycle_cover"],
    },
    grid={"adversary_params.k": KS},
    seeds=[1],
)


def _cell(k: int) -> ExperimentSpec:
    return ExperimentSpec.from_dict(
        {
            **CAMPAIGN.base,
            "adversary_params": {**CAMPAIGN.base["adversary_params"], "k": k},
        }
    )


@pytest.mark.parametrize("k", KS)
def test_cycle_listing(benchmark, k):
    metrics, _ = benchmark.pedantic(run_cell, args=(_cell(k),), rounds=1, iterations=1)
    benchmark.extra_info["amortized_round_complexity"] = metrics["amortized_round_complexity"]
    assert metrics["cycle_cover"] == 1.0
    assert metrics["max_running_amortized_complexity"] <= 4.0 + 1e-9


def _emit_table_impl():
    store = ResultStore(RESULTS_DIR / "campaign_E5_theorem5")
    report = CampaignRunner(CAMPAIGN, store).run(resume=False)
    assert not report.failed, report.failed
    by_id = {record["cell_id"]: record for record in report.records}

    rows = []
    for cell in CAMPAIGN.expand():
        metrics = by_id[cell.cell_id]["metrics"]
        coverage = metrics["cycle_cover"]
        rows.append(
            [
                cell.adversary_params["k"],
                N,
                int(metrics["cycles_in_final_graph"]),
                round(coverage, 3),
                int(metrics["total_changes"]),
                round(metrics["amortized_round_complexity"], 4),
                round(metrics["max_running_amortized_complexity"], 4),
            ]
        )
        assert coverage == 1.0
    emit_table(
        "E5_theorem5_cycle_listing",
        ["k", "n", "cycles in final graph", "listing coverage", "changes", "amortized rounds", "worst prefix"],
        rows,
        claim="Theorems 3/5: every 4-cycle / 5-cycle is listed by some member; O(1) amortized rounds",
    )


def test_emit_table(benchmark, results_dir):
    """Regenerate and persist this experiment's table (runs under --benchmark-only)."""
    benchmark.pedantic(_emit_table_impl, rounds=1, iterations=1)
