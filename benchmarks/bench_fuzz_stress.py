"""E16 -- fuzzing throughput and the fuzz campaign axis.

Two questions, answered with one campaign grid:

1. **Does the fuzz axis behave like any other experiment?**  The grid sweeps
   the registered ``fuzz`` adversary (algorithm x phase profile x seeds)
   through :class:`~repro.experiments.campaign.CampaignRunner` with oracle
   checks attached -- every cell is both a stress schedule and a correctness
   gate, and a single check failure fails the bench.
2. **How fast does the pipeline chew schedules?**  The report records
   schedules/sec for the campaign pass and for a differential fuzz pass
   (:func:`repro.fuzz.driver.run_fuzz`), which is the budget currency of CI's
   ``fuzz-smoke`` job and of ``repro-dynamic-subgraphs fuzz --budget N``.

Run directly (also the CI fuzz-bench entry point)::

    python benchmarks/bench_fuzz_stress.py [--smoke] [--out BENCH_fuzz.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict

import pytest

if __package__ in (None, ""):  # direct `python benchmarks/bench_fuzz_stress.py`
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.experiments import CampaignRunner, CampaignSpec, ResultStore
from repro.fuzz.driver import FuzzConfig, run_fuzz

from benchmarks.harness import RESULTS_DIR, emit_table

#: Checks attached per fuzzed algorithm (the campaign leg gates on these).
_CHECKS = {
    "triangle": ["triangle_oracle", "no_ghost_triangles", "consistent"],
    "robust2hop": ["robust2hop_oracle", "consistent"],
    "robust3hop": ["robust3hop_oracle", "consistent"],
    "twohop": ["twohop_oracle", "consistent"],
}


def build_campaign(smoke: bool = False) -> CampaignSpec:
    seeds = [0, 1] if smoke else [0, 1, 2, 3]
    rounds = 25 if smoke else 40
    return CampaignSpec(
        name="E16_fuzz_stress",
        description="fuzz adversary axis: algorithm x profile x seeds, oracle-checked",
        base={"adversary": "fuzz", "n": 8, "rounds": rounds},
        grid={
            "workload": [
                {"algorithm": algorithm, "checks": checks}
                for algorithm, checks in _CHECKS.items()
            ],
            "adversary_params.profile": ["mixed", "gadgets"],
        },
        seeds=seeds,
    )


def run_stress(smoke: bool = False) -> Dict:
    campaign = build_campaign(smoke)
    store = ResultStore(RESULTS_DIR / "campaign_E16_fuzz")
    start = time.perf_counter()
    report = CampaignRunner(campaign, store).run(resume=False)
    campaign_s = time.perf_counter() - start
    failed = [r["cell_id"] for r in report.failed]
    check_failures = sum(
        r["metrics"].get("check_failures", 0.0) for r in report.records
    )

    config = FuzzConfig(
        budget=10 if smoke else 40,
        seed=0,
        algorithms=tuple(_CHECKS),
        n=8,
        schedule_rounds=25 if smoke else 40,
        modes=("dense", "sparse"),
    )
    start = time.perf_counter()
    fuzz_report = run_fuzz(config)
    fuzz_s = time.perf_counter() - start

    return {
        "campaign": {
            "cells": report.num_run,
            "failed_cells": failed,
            "check_failures": check_failures,
            "seconds": round(campaign_s, 3),
            "cells_per_sec": round(report.num_run / campaign_s, 2),
        },
        "differential_fuzz": {
            "budget": config.budget,
            "failing": fuzz_report.num_failing,
            "seconds": round(fuzz_s, 3),
            "schedules_per_sec": round(config.budget / fuzz_s, 2),
        },
    }


def emit_report(report: Dict, out: Path) -> None:
    out.write_text(json.dumps(report, indent=2) + "\n")
    rows = [
        [
            "campaign axis",
            report["campaign"]["cells"],
            report["campaign"]["seconds"],
            report["campaign"]["cells_per_sec"],
            len(report["campaign"]["failed_cells"]) + report["campaign"]["check_failures"],
        ],
        [
            "differential fuzz",
            report["differential_fuzz"]["budget"],
            report["differential_fuzz"]["seconds"],
            report["differential_fuzz"]["schedules_per_sec"],
            report["differential_fuzz"]["failing"],
        ],
    ]
    emit_table(
        "E16_fuzz_stress",
        ["leg", "schedules", "seconds", "schedules/sec", "failures"],
        rows,
        claim="fuzz cells run inside the campaign runner like any experiment, "
        "and both legs report zero failures on a correct build",
    )


def test_fuzz_axis_campaign_smoke(benchmark):
    report = benchmark.pedantic(run_stress, args=(True,), rounds=1, iterations=1)
    assert not report["campaign"]["failed_cells"]
    assert report["campaign"]["check_failures"] == 0
    assert report["differential_fuzz"]["failing"] == 0


@pytest.mark.skip(reason="full stress grid; run directly via main()")
def test_full_stress():  # pragma: no cover
    pass


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small grid for CI")
    parser.add_argument("--out", type=Path, default=Path("BENCH_fuzz.json"))
    args = parser.parse_args(argv)
    report = run_stress(smoke=args.smoke)
    emit_report(report, args.out)
    bad = (
        report["campaign"]["failed_cells"]
        or report["campaign"]["check_failures"]
        or report["differential_fuzz"]["failing"]
    )
    if bad:
        print("fuzz stress found failures", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
