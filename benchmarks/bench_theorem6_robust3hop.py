"""E4 -- Theorem 6: the robust 3-hop neighborhood in O(1) amortized rounds.

Measures the amortized round complexity of the robust 3-hop structure under
churn, across sizes, and verifies the Theorem 6 sandwich
``R^{v,3} ⊆ known ⊆ E^{v,3}`` on the drained final graph.
"""

from __future__ import annotations

import pytest

from repro.adversary import RandomChurnAdversary
from repro.analysis import growth_exponent
from repro.core import RobustThreeHopNode
from repro.oracle import khop_edges, robust_three_hop

from benchmarks.harness import emit_table, run_experiment

SIZES = [12, 16, 24]


def _run(n: int, seed: int = 0):
    return run_experiment(
        RobustThreeHopNode,
        RandomChurnAdversary(
            n, num_rounds=80, inserts_per_round=3, deletes_per_round=2, seed=seed
        ),
        n,
    )


@pytest.mark.parametrize("n", SIZES)
def test_random_churn(benchmark, n):
    result = benchmark.pedantic(_run, args=(n,), rounds=1, iterations=1)
    benchmark.extra_info["amortized_round_complexity"] = result.amortized_round_complexity
    assert result.metrics.max_running_amortized_complexity() <= 4.0 + 1e-9


def _emit_table_impl():
    rows = []
    measured = []
    for n in SIZES:
        result = _run(n)
        network = result.network
        times = network.insertion_times()
        sandwich_ok = True
        for v, node in result.nodes.items():
            known = node.known_edges()
            if not (robust_three_hop(network.edges, times, v) <= known <= khop_edges(network.edges, v, 3)):
                sandwich_ok = False
        rows.append(
            [
                n,
                result.metrics.total_changes,
                round(result.amortized_round_complexity, 4),
                round(result.metrics.max_running_amortized_complexity(), 4),
                result.bandwidth.max_observed_bits,
                result.bandwidth.budget_bits(n),
                sandwich_ok,
            ]
        )
        measured.append((n, result.amortized_round_complexity))
        assert sandwich_ok
    emit_table(
        "E4_theorem6_robust3hop",
        ["n", "changes", "amortized rounds", "worst prefix", "max msg bits", "budget bits", "sandwich holds"],
        rows,
        claim="Theorem 6: O(1) amortized rounds; R^{v,3} subseteq known subseteq E^{v,3} when consistent",
    )
    sizes = [n for n, _ in measured]
    values = [max(v, 1e-6) for _, v in measured]
    assert growth_exponent(sizes, values) < 0.3


def test_emit_table(benchmark, results_dir):
    """Regenerate and persist this experiment's table (runs under --benchmark-only)."""
    benchmark.pedantic(_emit_table_impl, rounds=1, iterations=1)
