"""E4 -- Theorem 6: the robust 3-hop neighborhood in O(1) amortized rounds.

Measures the amortized round complexity of the robust 3-hop structure under
churn, across sizes, and verifies the Theorem 6 sandwich
``R^{v,3} ⊆ known ⊆ E^{v,3}`` on the drained final graph.

The sweep is one campaign cell per network size, executed through the
experiment-campaign subsystem; the sandwich comes from the
``robust3hop_oracle`` check.  Metrics are byte-identical to the previous
bespoke runner.
"""

from __future__ import annotations

import pytest

from repro.analysis import growth_exponent
from repro.experiments import CampaignRunner, CampaignSpec, ExperimentSpec, ResultStore, run_cell

from benchmarks.harness import RESULTS_DIR, emit_table

SIZES = [12, 16, 24]

CAMPAIGN = CampaignSpec(
    name="E4_theorem6_robust3hop",
    base={
        "algorithm": "robust3hop",
        "adversary": "churn",
        "rounds": 80,
        "adversary_params": {"inserts_per_round": 3, "deletes_per_round": 2},
        "checks": ["robust3hop_oracle"],
    },
    grid={"n": SIZES},
)


def _cell(n: int, seed: int = 0) -> ExperimentSpec:
    return ExperimentSpec.from_dict({**CAMPAIGN.base, "n": n, "seed": seed})


@pytest.mark.parametrize("n", SIZES)
def test_random_churn(benchmark, n):
    metrics, _ = benchmark.pedantic(run_cell, args=(_cell(n),), rounds=1, iterations=1)
    benchmark.extra_info["amortized_round_complexity"] = metrics["amortized_round_complexity"]
    assert metrics["max_running_amortized_complexity"] <= 4.0 + 1e-9
    assert metrics["robust3hop_sandwich"] == 1.0


def _emit_table_impl():
    store = ResultStore(RESULTS_DIR / "campaign_E4_theorem6")
    report = CampaignRunner(CAMPAIGN, store).run(resume=False)
    assert not report.failed, report.failed
    by_id = {record["cell_id"]: record for record in report.records}

    rows = []
    measured = []
    for cell in CAMPAIGN.expand():
        metrics = by_id[cell.cell_id]["metrics"]
        sandwich_ok = metrics["robust3hop_sandwich"] == 1.0
        rows.append(
            [
                cell.n,
                int(metrics["total_changes"]),
                round(metrics["amortized_round_complexity"], 4),
                round(metrics["max_running_amortized_complexity"], 4),
                int(metrics["bandwidth_max_observed_bits"]),
                int(metrics["bandwidth_budget_bits"]),
                sandwich_ok,
            ]
        )
        measured.append((cell.n, metrics["amortized_round_complexity"]))
        assert sandwich_ok
    emit_table(
        "E4_theorem6_robust3hop",
        ["n", "changes", "amortized rounds", "worst prefix", "max msg bits", "budget bits", "sandwich holds"],
        rows,
        claim="Theorem 6: O(1) amortized rounds; R^{v,3} subseteq known subseteq E^{v,3} when consistent",
    )
    sizes = [n for n, _ in measured]
    values = [max(v, 1e-6) for _, v in measured]
    assert growth_exponent(sizes, values) < 0.3


def test_emit_table(benchmark, results_dir):
    """Regenerate and persist this experiment's table (runs under --benchmark-only)."""
    benchmark.pedantic(_emit_table_impl, rounds=1, iterations=1)
