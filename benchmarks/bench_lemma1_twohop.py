"""E7 -- Lemma 1: full 2-hop neighborhood listing in O(n / log n) amortized rounds.

Measures the amortized round complexity of the Lemma 1 algorithm on a
growing-star workload (each insertion forces a fresh neighborhood snapshot,
the worst case for this algorithm) across network sizes, fits the measurements
against the reference growth models, and checks that ``n / log n`` explains
them better than a constant does -- i.e. the upper bound of Lemma 1 and the
lower bound of Corollary 2 meet.

The sweep is one campaign cell per network size (the growing-star schedule is
the registered ``growing_star`` adversary), executed through the
experiment-campaign subsystem with per-cell results and traces landing under
``benchmarks/results/`` -- metrics are byte-identical to the previous bespoke
runner.
"""

from __future__ import annotations

import pytest

from repro.analysis import compare_models
from repro.experiments import CampaignRunner, CampaignSpec, ExperimentSpec, ResultStore, run_cell

from benchmarks.harness import RESULTS_DIR, emit_table

SIZES = [16, 32, 64, 128]

CAMPAIGN = CampaignSpec(
    name="E7_lemma1_twohop",
    base={"algorithm": "twohop", "adversary": "growing_star"},
    grid={"n": SIZES},
)


def _cell(n: int) -> ExperimentSpec:
    return ExperimentSpec.from_dict({**CAMPAIGN.base, "n": n})


@pytest.mark.parametrize("n", [16, 64])
def test_growing_star(benchmark, n):
    metrics, _ = benchmark.pedantic(run_cell, args=(_cell(n),), rounds=1, iterations=1)
    benchmark.extra_info["amortized_round_complexity"] = metrics["amortized_round_complexity"]


def _emit_table_impl():
    store = ResultStore(RESULTS_DIR / "campaign_E7_lemma1")
    report = CampaignRunner(CAMPAIGN, store).run(resume=False)
    assert not report.failed, report.failed
    by_id = {record["cell_id"]: record for record in report.records}

    rows = []
    sizes = []
    values = []
    for cell in CAMPAIGN.expand():
        metrics = by_id[cell.cell_id]["metrics"]
        rows.append(
            [
                cell.n,
                int(metrics["total_changes"]),
                int(metrics["inconsistent_rounds"]),
                round(metrics["amortized_round_complexity"], 4),
                int(metrics["bandwidth_max_observed_bits"]),
                int(metrics["bandwidth_budget_bits"]),
            ]
        )
        sizes.append(cell.n)
        values.append(metrics["amortized_round_complexity"])
    emit_table(
        "E7_lemma1_twohop_listing",
        ["n", "changes", "inconsistent rounds", "amortized rounds", "max msg bits", "budget bits"],
        rows,
        claim="Lemma 1: O(n / log n) amortized rounds for full 2-hop neighborhood listing",
    )
    fits = compare_models(sizes, values, models=("constant", "n_over_log_n"))
    assert fits["n_over_log_n"].relative_residual < fits["constant"].relative_residual
    # The cost at n=128 is markedly higher than at n=16 (non-constant behaviour).
    assert values[-1] > 3 * values[0]


def test_emit_table(benchmark, results_dir):
    """Regenerate and persist this experiment's table (runs under --benchmark-only)."""
    benchmark.pedantic(_emit_table_impl, rounds=1, iterations=1)
