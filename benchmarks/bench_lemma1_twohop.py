"""E7 -- Lemma 1: full 2-hop neighborhood listing in O(n / log n) amortized rounds.

Measures the amortized round complexity of the Lemma 1 algorithm on a
growing-star workload (each insertion forces a fresh neighborhood snapshot,
the worst case for this algorithm) across network sizes, fits the measurements
against the reference growth models, and checks that ``n / log n`` explains
them better than a constant does -- i.e. the upper bound of Lemma 1 and the
lower bound of Corollary 2 meet.
"""

from __future__ import annotations

import pytest

from repro.adversary import WAIT_FOR_STABILITY, ScheduleAdversary
from repro.analysis import compare_models
from repro.core import TwoHopListingNode
from repro.simulator import RoundChanges

from benchmarks.harness import emit_table, run_experiment

SIZES = [16, 32, 64, 128]


def _star_schedule(n: int):
    for i in range(1, n):
        yield RoundChanges.inserts([(0, i)])
        yield WAIT_FOR_STABILITY


def _run(n: int):
    return run_experiment(TwoHopListingNode, ScheduleAdversary(_star_schedule(n)), n)


@pytest.mark.parametrize("n", [16, 64])
def test_growing_star(benchmark, n):
    result = benchmark.pedantic(_run, args=(n,), rounds=1, iterations=1)
    benchmark.extra_info["amortized_round_complexity"] = result.amortized_round_complexity


def _emit_table_impl():
    rows = []
    sizes = []
    values = []
    for n in SIZES:
        result = _run(n)
        rows.append(
            [
                n,
                result.metrics.total_changes,
                result.metrics.inconsistent_rounds,
                round(result.amortized_round_complexity, 4),
                result.bandwidth.max_observed_bits,
                result.bandwidth.budget_bits(n),
            ]
        )
        sizes.append(n)
        values.append(result.amortized_round_complexity)
    emit_table(
        "E7_lemma1_twohop_listing",
        ["n", "changes", "inconsistent rounds", "amortized rounds", "max msg bits", "budget bits"],
        rows,
        claim="Lemma 1: O(n / log n) amortized rounds for full 2-hop neighborhood listing",
    )
    fits = compare_models(sizes, values, models=("constant", "n_over_log_n"))
    assert fits["n_over_log_n"].relative_residual < fits["constant"].relative_residual
    # The cost at n=128 is markedly higher than at n=16 (non-constant behaviour).
    assert values[-1] > 3 * values[0]


def test_emit_table(benchmark, results_dir):
    """Regenerate and persist this experiment's table (runs under --benchmark-only)."""
    benchmark.pedantic(_emit_table_impl, rounds=1, iterations=1)
