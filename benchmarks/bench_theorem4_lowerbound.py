"""E8 -- Theorem 4 / Figure 4: k-cycle listing for k >= 6 needs ~sqrt(n)/log n.

The lower bound is information-theoretic (it holds for *every* algorithm), so
this bench reproduces it in two parts:

1. **Structural validation of the Figure 4 construction** -- running the
   adversary and counting, for sampled component visits, the 6-cycles created
   through shared leaves; the proof's pigeonhole argument needs at least D/3
   of them, which is what forces the Omega(D) information transfer.
2. **The counting bound itself** -- evaluating the proof's arithmetic
   (binomial-entropy difference per visit, total bits, change count) across
   network sizes and checking that the resulting amortized lower bound grows
   like sqrt(n)/log n while staying far below the Theorem 2 bound (cycles are
   *easier* than general membership, but not constant).
"""

from __future__ import annotations

import pytest

from repro.adversary import CycleLowerBoundAdversary
from repro.analysis import growth_exponent, theorem4_lower_bound
from repro.oracle import cycles_of_length
from repro.simulator import DynamicNetwork
from repro.simulator.adversary import AdversaryView

from benchmarks.harness import emit_table

BOUND_SIZES = [256, 1024, 4096, 16384]


def _run_construction(n: int, num_components: int, seed: int = 0):
    """Drive the Figure 4 adversary and sample the cycles each visit creates."""
    adversary = CycleLowerBoundAdversary(n, k=6, num_components=num_components, seed=seed)
    network = DynamicNetwork(n)
    visit_cycle_counts = []
    bridged = False
    while not adversary.is_done:
        view = AdversaryView.from_network(network, network.round_index + 1, True)
        changes = adversary.changes_for_round(view)
        if changes is None:
            break
        network.apply_changes(network.round_index + 1, changes)
        if changes.insertions and adversary.connection_events and len(changes.insertions) <= 2:
            bridged = True
        elif bridged and changes.deletions:
            bridged = False
        if bridged and len(visit_cycle_counts) < 6:
            visit_cycle_counts.append(len(cycles_of_length(network.edges, 6)))
            bridged = False
    return adversary, visit_cycle_counts


def test_construction_structure(benchmark):
    adversary, visit_cycle_counts = benchmark.pedantic(
        _run_construction, args=(81, 3), rounds=1, iterations=1
    )
    benchmark.extra_info["cycles_per_visit"] = visit_cycle_counts
    # Every sampled visit creates at least D/3 six-cycles (the pigeonhole step).
    assert visit_cycle_counts
    assert all(count >= adversary.D // 3 for count in visit_cycle_counts)


def _emit_table_impl():
    # Part 1: construction validation at a size that runs quickly.
    adversary, visit_cycle_counts = _run_construction(81, 3)
    construction_rows = [
        [
            81,
            adversary.t,
            adversary.D,
            adversary.attached_count,
            min(visit_cycle_counts),
            adversary.D // 3,
        ]
    ]
    emit_table(
        "E8a_theorem4_construction",
        ["n", "components used", "D (leaves)", "attached (2D/3)", "min cycles per visit", "required D/3"],
        construction_rows,
        claim="Figure 4: every component visit creates >= D/3 six-cycles through shared leaves",
    )
    assert min(visit_cycle_counts) >= adversary.D // 3

    # Part 2: the counting bound across sizes.
    rows = []
    sizes = []
    values = []
    for n in BOUND_SIZES:
        bound = theorem4_lower_bound(n, k=6)
        rows.append(
            [
                n,
                bound.t,
                bound.D,
                round(bound.bits_per_visit, 2),
                round(bound.total_bits, 1),
                bound.total_changes,
                round(bound.amortized_lower_bound, 5),
            ]
        )
        sizes.append(n)
        values.append(bound.amortized_lower_bound)
    emit_table(
        "E8b_theorem4_counting_bound",
        ["n", "t", "D", "bits per visit", "total bits", "changes", "amortized lower bound"],
        rows,
        claim="Theorem 4: k-cycle listing (k >= 6) needs Omega(sqrt(n)/log n) amortized rounds",
    )
    exponent = growth_exponent(sizes, values)
    assert 0.25 < exponent < 0.6


def test_emit_table(benchmark, results_dir):
    """Regenerate and persist this experiment's table (runs under --benchmark-only)."""
    benchmark.pedantic(_emit_table_impl, rounds=1, iterations=1)
