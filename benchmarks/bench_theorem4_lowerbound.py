"""E8 -- Theorem 4 / Figure 4: k-cycle listing for k >= 6 needs ~sqrt(n)/log n.

The lower bound is information-theoretic (it holds for *every* algorithm), so
this bench reproduces it in two parts:

1. **Structural validation of the Figure 4 construction** -- a campaign cell
   realizes the adversary's schedule on the bare network (the ``null``
   workload algorithm), and the ``theorem4_visits`` check re-derives, for
   sampled component visits, the 6-cycles created through shared leaves; the
   proof's pigeonhole argument needs at least D/3 of them, which is what
   forces the Omega(D) information transfer.
2. **The counting bound itself** -- evaluating the proof's arithmetic
   (binomial-entropy difference per visit, total bits, change count) across
   network sizes and checking that the resulting amortized lower bound grows
   like sqrt(n)/log n while staying far below the Theorem 2 bound (cycles are
   *easier* than general membership, but not constant).
"""

from __future__ import annotations

import pytest

from repro.analysis import growth_exponent, theorem4_lower_bound
from repro.experiments import CampaignRunner, CampaignSpec, ExperimentSpec, ResultStore, run_cell

from benchmarks.harness import RESULTS_DIR, emit_table

BOUND_SIZES = [256, 1024, 4096, 16384]

CONSTRUCTION_N = 81

CAMPAIGN = CampaignSpec(
    name="E8_theorem4_construction",
    base={
        "algorithm": "null",
        "adversary": "theorem4",
        "n": CONSTRUCTION_N,
        "adversary_params": {"k": 6, "num_components": 3},
        "checks": ["theorem4_visits"],
    },
)

CELL = ExperimentSpec.from_dict(CAMPAIGN.base)


def test_construction_structure(benchmark):
    metrics, _ = benchmark.pedantic(run_cell, args=(CELL,), rounds=1, iterations=1)
    benchmark.extra_info["min_cycles_per_visit"] = metrics["theorem4_min_cycles_per_visit"]
    # Every sampled visit creates at least D/3 six-cycles (the pigeonhole step).
    assert metrics["theorem4_visits_sampled"] > 0
    assert metrics["theorem4_min_cycles_per_visit"] >= metrics["theorem4_required_cycles"]


def _emit_table_impl():
    # Part 1: construction validation at a size that runs quickly.
    store = ResultStore(RESULTS_DIR / "campaign_E8_theorem4")
    report = CampaignRunner(CAMPAIGN, store).run(resume=False)
    assert not report.failed, report.failed
    metrics = report.records[0]["metrics"]
    construction_rows = [
        [
            CONSTRUCTION_N,
            int(metrics["theorem4_components"]),
            int(metrics["theorem4_D"]),
            int(metrics["theorem4_attached"]),
            int(metrics["theorem4_min_cycles_per_visit"]),
            int(metrics["theorem4_required_cycles"]),
        ]
    ]
    emit_table(
        "E8a_theorem4_construction",
        ["n", "components used", "D (leaves)", "attached (2D/3)", "min cycles per visit", "required D/3"],
        construction_rows,
        claim="Figure 4: every component visit creates >= D/3 six-cycles through shared leaves",
    )
    assert metrics["theorem4_min_cycles_per_visit"] >= metrics["theorem4_required_cycles"]

    # Part 2: the counting bound across sizes.
    rows = []
    sizes = []
    values = []
    for n in BOUND_SIZES:
        bound = theorem4_lower_bound(n, k=6)
        rows.append(
            [
                n,
                bound.t,
                bound.D,
                round(bound.bits_per_visit, 2),
                round(bound.total_bits, 1),
                bound.total_changes,
                round(bound.amortized_lower_bound, 5),
            ]
        )
        sizes.append(n)
        values.append(bound.amortized_lower_bound)
    emit_table(
        "E8b_theorem4_counting_bound",
        ["n", "t", "D", "bits per visit", "total bits", "changes", "amortized lower bound"],
        rows,
        claim="Theorem 4: k-cycle listing (k >= 6) needs Omega(sqrt(n)/log n) amortized rounds",
    )
    exponent = growth_exponent(sizes, values)
    assert 0.25 < exponent < 0.6


def test_emit_table(benchmark, results_dir):
    """Regenerate and persist this experiment's table (runs under --benchmark-only)."""
    benchmark.pedantic(_emit_table_impl, rounds=1, iterations=1)
