"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one experiment of EXPERIMENTS.md (one per
theorem / figure / remark of the paper).  The helpers here keep the harness
uniform:

* :func:`run_experiment` -- run an algorithm against an adversary and return
  the :class:`~repro.simulator.runner.SimulationResult`;
* :func:`emit_table` -- print the experiment's table and store it under
  ``benchmarks/results/`` as CSV so EXPERIMENTS.md can reference it.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.analysis import format_table, write_csv
from repro.simulator import Adversary, SimulationResult, SimulationRunner

__all__ = ["RESULTS_DIR", "run_experiment", "emit_table"]

RESULTS_DIR = Path(__file__).parent / "results"


def run_experiment(
    algorithm_factory: Callable,
    adversary: Adversary,
    n: int,
    *,
    strict_bandwidth: bool = True,
    num_rounds: Optional[int] = None,
) -> SimulationResult:
    """Run one simulation to completion (including the drain phase)."""
    runner = SimulationRunner(
        n=n,
        algorithm_factory=algorithm_factory,
        adversary=adversary,
        strict_bandwidth=strict_bandwidth,
    )
    return runner.run(num_rounds=num_rounds)


def emit_table(
    name: str,
    headers: Sequence[str],
    rows: Sequence[Sequence],
    *,
    claim: str,
) -> None:
    """Print an experiment table and persist it under results/ (CSV + text)."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    rendered = format_table(headers, rows)
    print(f"\n=== {name} ===")
    print(f"paper claim: {claim}")
    print(rendered)
    write_csv(RESULTS_DIR / f"{name}.csv", headers, rows)
    (RESULTS_DIR / f"{name}.txt").write_text(
        f"{name}\npaper claim: {claim}\n{rendered}\n"
    )
