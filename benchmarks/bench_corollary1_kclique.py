"""E3 -- Corollary 1: k-clique membership listing for k = 3, 4, 5.

Plants k-cliques amid noise and measures, per k: the amortized round
complexity (claimed O(1) for every fixed k, with the same constant as the
triangle structure since no extra communication is performed) and whether the
planted cliques are correctly reported by every member at the end of the run.
"""

from __future__ import annotations

import pytest

from repro.core import CliqueMembershipNode
from repro.oracle import cliques_containing
from repro.workloads import planted_clique_churn

from benchmarks.harness import emit_table, run_experiment

KS = [3, 4, 5]
N = 24


def _run(k: int, seed: int = 0):
    adversary, plants = planted_clique_churn(N, k, num_plants=3, noise_edges_per_round=1, seed=seed)
    result = run_experiment(CliqueMembershipNode, adversary, N)
    return result, plants


@pytest.mark.parametrize("k", KS)
def test_planted_cliques(benchmark, k):
    result, _ = benchmark.pedantic(_run, args=(k,), rounds=1, iterations=1)
    benchmark.extra_info["amortized_round_complexity"] = result.amortized_round_complexity
    assert result.metrics.max_running_amortized_complexity() <= 3.0 + 1e-9


def _emit_table_impl():
    rows = []
    for k in KS:
        result, plants = _run(k)
        network = result.network
        correct = all(
            result.nodes[v].known_cliques(k) == cliques_containing(network.edges, v, k)
            for v in range(N)
        )
        rows.append(
            [
                k,
                N,
                len(plants),
                result.metrics.total_changes,
                round(result.amortized_round_complexity, 4),
                round(result.metrics.max_running_amortized_complexity(), 4),
                correct,
            ]
        )
        assert correct
    emit_table(
        "E3_corollary1_kclique_membership",
        ["k", "n", "planted cliques", "changes", "amortized rounds", "worst prefix", "matches oracle"],
        rows,
        claim="Corollary 1: O(1) amortized rounds for every k >= 3 (no extra cost over triangles)",
    )


def test_emit_table(benchmark, results_dir):
    """Regenerate and persist this experiment's table (runs under --benchmark-only)."""
    benchmark.pedantic(_emit_table_impl, rounds=1, iterations=1)
