"""E3 -- Corollary 1: k-clique membership listing for k = 3, 4, 5.

Plants k-cliques amid noise and measures, per k: the amortized round
complexity (claimed O(1) for every fixed k, with the same constant as the
triangle structure since no extra communication is performed) and whether the
planted cliques are correctly reported by every member at the end of the run.

The sweep is one campaign (the ``planted_clique`` workload with a ``k`` axis)
executed through the experiment-campaign subsystem; the oracle comparison is
the ``clique_oracle`` check, which reads ``k`` from the cell's adversary
params.  Metrics are byte-identical to the previous bespoke runner.
"""

from __future__ import annotations

import pytest

from repro.experiments import CampaignRunner, CampaignSpec, ExperimentSpec, ResultStore, run_cell
from repro.workloads import planted_clique_churn

from benchmarks.harness import RESULTS_DIR, emit_table

KS = [3, 4, 5]
N = 24

CAMPAIGN = CampaignSpec(
    name="E3_corollary1_kclique",
    base={
        "algorithm": "clique",
        "adversary": "planted_clique",
        "n": N,
        "adversary_params": {"num_plants": 3, "noise_edges_per_round": 1},
        "checks": ["clique_oracle", "membership_oracle"],
    },
    grid={"adversary_params.k": KS},
)


def _cell(k: int, seed: int = 0) -> ExperimentSpec:
    return ExperimentSpec.from_dict(
        {
            **CAMPAIGN.base,
            "adversary_params": {**CAMPAIGN.base["adversary_params"], "k": k},
            "seed": seed,
        }
    )


@pytest.mark.parametrize("k", KS)
def test_planted_cliques(benchmark, k):
    metrics, _ = benchmark.pedantic(run_cell, args=(_cell(k),), rounds=1, iterations=1)
    benchmark.extra_info["amortized_round_complexity"] = metrics["amortized_round_complexity"]
    assert metrics["max_running_amortized_complexity"] <= 3.0 + 1e-9
    assert metrics["clique_matches_oracle"] == 1.0
    assert metrics["membership_matches_oracle"] == 1.0
    assert metrics["check_failures"] == 0.0


def _emit_table_impl():
    store = ResultStore(RESULTS_DIR / "campaign_E3_corollary1")
    report = CampaignRunner(CAMPAIGN, store).run(resume=False)
    assert not report.failed, report.failed
    by_id = {record["cell_id"]: record for record in report.records}

    rows = []
    for cell in CAMPAIGN.expand():
        k = cell.adversary_params["k"]
        # The plant list is a deterministic function of the workload
        # parameters; regenerate it for the table's plant count.
        _, plants = planted_clique_churn(
            N, k, num_plants=3, noise_edges_per_round=1, seed=cell.seed
        )
        metrics = by_id[cell.cell_id]["metrics"]
        correct = metrics["clique_matches_oracle"] == 1.0
        rows.append(
            [
                k,
                N,
                len(plants),
                int(metrics["total_changes"]),
                round(metrics["amortized_round_complexity"], 4),
                round(metrics["max_running_amortized_complexity"], 4),
                correct,
            ]
        )
        assert correct
    emit_table(
        "E3_corollary1_kclique_membership",
        ["k", "n", "planted cliques", "changes", "amortized rounds", "worst prefix", "matches oracle"],
        rows,
        claim="Corollary 1: O(1) amortized rounds for every k >= 3 (no extra cost over triangles)",
    )


def test_emit_table(benchmark, results_dir):
    """Regenerate and persist this experiment's table (runs under --benchmark-only)."""
    benchmark.pedantic(_emit_table_impl, rounds=1, iterations=1)
