"""E10 -- the Section 1.3 bad case: timestamp-free forwarding is incorrect.

Runs the flickering-triangle schedule against the naive forwarding strawman and
against the paper's structures (robust 2-hop and triangle membership), and
tabulates who ends up believing what about the deleted far edge.  The expected
shape: the strawman is consistent-but-wrong, the paper's structures are
consistent-and-right, at identical amortized cost.
"""

from __future__ import annotations

import pytest

from repro.adversary import FlickerTriangleAdversary
from repro.core import (
    NaiveForwardingNode,
    RobustTwoHopNode,
    TriangleMembershipNode,
)

from benchmarks.harness import emit_table, run_experiment

ALGORITHMS = [
    ("naive forwarding (Section 1.3 strawman)", NaiveForwardingNode, True),
    ("robust 2-hop (Theorem 7)", RobustTwoHopNode, False),
    ("triangle membership (Theorem 1)", TriangleMembershipNode, False),
]


def _run(factory):
    adversary = FlickerTriangleAdversary()
    result = run_experiment(factory, adversary, 9)
    node_v = result.nodes[adversary.v]
    believes = node_v.knows_edge(*adversary.doomed_edge)
    return result, believes, node_v.is_consistent()


@pytest.mark.parametrize("label,factory,expect_wrong", ALGORITHMS)
def test_flicker(benchmark, label, factory, expect_wrong):
    result, believes_ghost, consistent = benchmark.pedantic(_run, args=(factory,), rounds=1, iterations=1)
    benchmark.extra_info["believes_deleted_edge"] = believes_ghost
    assert consistent
    assert believes_ghost is expect_wrong


def _emit_table_impl():
    rows = []
    for label, factory, expect_wrong in ALGORITHMS:
        result, believes_ghost, consistent = _run(factory)
        rows.append(
            [
                label,
                consistent,
                believes_ghost,
                "WRONG" if believes_ghost else "correct",
                round(result.amortized_round_complexity, 4),
            ]
        )
        assert believes_ghost is expect_wrong
    emit_table(
        "E10_flicker_correctness",
        ["algorithm", "claims consistency", "believes deleted far edge", "verdict", "amortized rounds"],
        rows,
        claim="Section 1.3: without insertion-time bookkeeping the forwarding strawman stays wrong forever",
    )


def test_emit_table(benchmark, results_dir):
    """Regenerate and persist this experiment's table (runs under --benchmark-only)."""
    benchmark.pedantic(_emit_table_impl, rounds=1, iterations=1)
