"""E10 -- the Section 1.3 bad case: timestamp-free forwarding is incorrect.

Runs the flickering-triangle schedule against the naive forwarding strawman and
against the paper's structures (robust 2-hop and triangle membership), and
tabulates who ends up believing what about the deleted far edge.  The expected
shape: the strawman is consistent-but-wrong, the paper's structures are
consistent-and-right, at identical amortized cost.

The three runs are one campaign (algorithm axis over the registered
``flicker`` adversary); the per-node verdict comes from the ``flicker_ghost``
end-of-run check, so the metrics are byte-identical to the previous bespoke
runner while results and traces land under ``benchmarks/results/``.
"""

from __future__ import annotations

import pytest

from repro.experiments import CampaignRunner, CampaignSpec, ExperimentSpec, ResultStore, run_cell

from benchmarks.harness import RESULTS_DIR, emit_table

ALGORITHM_LABELS = [
    ("naive", "naive forwarding (Section 1.3 strawman)", True),
    ("robust2hop", "robust 2-hop (Theorem 7)", False),
    ("triangle", "triangle membership (Theorem 1)", False),
]

CAMPAIGN = CampaignSpec(
    name="E10_flicker_correctness",
    base={"adversary": "flicker", "n": 9, "checks": ["flicker_ghost"]},
    grid={"algorithm": [name for name, _, _ in ALGORITHM_LABELS]},
)


def _cell(algorithm: str) -> ExperimentSpec:
    return ExperimentSpec.from_dict({**CAMPAIGN.base, "algorithm": algorithm})


@pytest.mark.parametrize("algorithm,label,expect_wrong", ALGORITHM_LABELS)
def test_flicker(benchmark, algorithm, label, expect_wrong):
    metrics, _ = benchmark.pedantic(run_cell, args=(_cell(algorithm),), rounds=1, iterations=1)
    benchmark.extra_info["believes_deleted_edge"] = metrics["believes_deleted_edge"]
    assert metrics["node_v_consistent"] == 1.0
    assert (metrics["believes_deleted_edge"] == 1.0) is expect_wrong


def _emit_table_impl():
    store = ResultStore(RESULTS_DIR / "campaign_E10_flicker")
    report = CampaignRunner(CAMPAIGN, store).run(resume=False)
    assert not report.failed, report.failed
    by_id = {record["cell_id"]: record for record in report.records}

    labels = {name: (label, expect_wrong) for name, label, expect_wrong in ALGORITHM_LABELS}
    rows = []
    for cell in CAMPAIGN.expand():
        label, expect_wrong = labels[cell.algorithm]
        metrics = by_id[cell.cell_id]["metrics"]
        believes_ghost = metrics["believes_deleted_edge"] == 1.0
        rows.append(
            [
                label,
                metrics["node_v_consistent"] == 1.0,
                believes_ghost,
                "WRONG" if believes_ghost else "correct",
                round(metrics["amortized_round_complexity"], 4),
            ]
        )
        assert believes_ghost is expect_wrong
    emit_table(
        "E10_flicker_correctness",
        ["algorithm", "claims consistency", "believes deleted far edge", "verdict", "amortized rounds"],
        rows,
        claim="Section 1.3: without insertion-time bookkeeping the forwarding strawman stays wrong forever",
    )


def test_emit_table(benchmark, results_dir):
    """Regenerate and persist this experiment's table (runs under --benchmark-only)."""
    benchmark.pedantic(_emit_table_impl, rounds=1, iterations=1)
