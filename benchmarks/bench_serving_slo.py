"""E15 -- serving SLO: standing-subscription throughput and answer latency.

The serving stack (:mod:`repro.serve`) re-answers standing queries after
every ingested batch, but only the ones whose r-hop dirty ball was touched
(the oracle's dirty-region versioning).  This bench measures what that buys
under load: a grid of subscriber counts (hundreds to thousands) x churn
model (the Section 1.3 flickering gadget embedded in n=2000, and
heavy-tailed p2p session churn at n=300) x serial engine mode, reporting

* **queries/sec** -- standing-query evaluations per second of serving time,
* **p50/p95/p99 answer latency** -- from the ``serve.answer_latency_s``
  telemetry histogram (per-evaluation wall time),
* **skip ratio** -- the fraction of subscription-rounds that the dirty-ball
  gate skipped outright (the incrementality win),

and asserts that the full notification stream, evaluation counters and final
state fingerprint are **bit-identical across dense, sparse and columnar** on
every cell -- the serving differential gate.

Run directly (this is also the CI serving-smoke entry point)::

    python benchmarks/bench_serving_slo.py [--smoke] [--out BENCH_serving.json]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List

import pytest

if __package__ in (None, ""):  # direct `python benchmarks/bench_serving_slo.py`
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.experiments import build_adversary
from repro.obs import TELEMETRY
from repro.serve import AdversaryEventSource, MonitorService
from repro.simulator import ENGINE_MODES

from benchmarks.harness import emit_table

#: Serial engine modes the serving monitor accepts (sharded cannot serve
#: in-process queries); kept in sync with the registry by construction.
SERVING_MODES = tuple(mode for mode in ENGINE_MODES if mode != "sharded")

#: The two churn models.  ``flicker`` is the paper's Section 1.3 gadget
#: embedded in a large quiet network (the incremental-serving sweet spot:
#: almost every subscription settles and gets skipped); ``p2p`` is
#: heavy-tailed session churn touching the whole graph.
_FULL_WORKLOADS = [
    {
        "name": "flicker",
        "n": 2000,
        "structure": "triangle",
        "adversary": "flicker",
        "adversary_params": {"settle_rounds": 40},
        "rounds": 250,
        "kind": "triangle",
        "counts": [100, 1000, 2000],
    },
    {
        "name": "p2p",
        "n": 300,
        "structure": "robust2hop",
        "adversary": "p2p",
        "adversary_params": {},
        "rounds": 150,
        "kind": "edge",
        "counts": [100, 1000],
    },
]

_SMOKE_WORKLOADS = [
    {
        "name": "flicker",
        "n": 128,
        "structure": "triangle",
        "adversary": "flicker",
        "adversary_params": {"settle_rounds": 20},
        "rounds": 60,
        "kind": "triangle",
        "counts": [10, 50],
    },
    {
        "name": "p2p",
        "n": 64,
        "structure": "robust2hop",
        "adversary": "p2p",
        "adversary_params": {},
        "rounds": 40,
        "kind": "edge",
        "counts": [10, 50],
    },
]

#: Quiet rounds appended after the source drains so in-flight changes reach
#: their subscriptions before the report is cut.
SETTLE_ROUNDS = 12


def subscription_specs(workload: Dict, count: int) -> List[Dict]:
    """``count`` deterministic standing-query specs spread over the node set.

    Triangle subscriptions watch consecutive triples (the flicker gadget's
    own triangle included), edge subscriptions watch ring edges; both stride
    the asking node across the graph so a fixed fraction of subscribers sits
    inside the churn region while the rest settle and get skipped.
    """
    n = workload["n"]
    kind = workload["kind"]
    specs: List[Dict] = []
    for i in range(count):
        if kind == "triangle":
            a = i % (n - 2)
            specs.append(
                {"id": f"tri-{i:05d}", "kind": "triangle", "members": [a, a + 1, a + 2]}
            )
        else:
            node = i % n
            specs.append(
                {
                    "id": f"edge-{i:05d}",
                    "kind": "edge",
                    "node": node,
                    "u": node,
                    "w": (node + 1) % n,
                }
            )
    return specs


def run_cell(workload: Dict, count: int, mode: str) -> Dict:
    """Serve one (workload, subscriber count, engine mode) cell."""
    service = MonitorService(workload["n"], workload["structure"], engine_mode=mode)
    service.registry.register_all(subscription_specs(workload, count))
    adversary = build_adversary(
        workload["adversary"],
        n=workload["n"],
        rounds=workload["rounds"],
        seed=0,
        params=workload["adversary_params"],
    )
    source = AdversaryEventSource(adversary, rounds=workload["rounds"])
    TELEMETRY.enable(label=f"serving:{workload['name']}:{count}:{mode}")
    try:
        report = service.run(source, settle_rounds=SETTLE_ROUNDS)
        hist = TELEMETRY.histograms.get("serve.answer_latency_s")
        latency = {
            "p50": hist.percentile(50) if hist else 0.0,
            "p95": hist.percentile(95) if hist else 0.0,
            "p99": hist.percentile(99) if hist else 0.0,
        }
    finally:
        TELEMETRY.disable()
    considered = report.evaluated + report.skipped
    return {
        "workload": workload["name"],
        "n": workload["n"],
        "structure": workload["structure"],
        "engine_mode": mode,
        "subscriptions": count,
        "batches": report.batches,
        "events": report.events,
        "evaluated": report.evaluated,
        "skipped": report.skipped,
        "skip_ratio": round(report.skipped / considered, 4) if considered else 0.0,
        "fired": report.fired,
        "wall_s": round(report.duration_s, 6),
        "queries_per_s": round(report.queries_per_s, 2),
        "latency_p50_s": latency["p50"],
        "latency_p95_s": latency["p95"],
        "latency_p99_s": latency["p99"],
        "comparable": report.comparable_dict(),
    }


def run_slo(smoke: bool = False) -> Dict:
    """Run the whole grid and return the BENCH_serving report dict."""
    workloads = _SMOKE_WORKLOADS if smoke else _FULL_WORKLOADS
    rows: List[Dict] = []
    identical = True
    divergences: List[str] = []
    for workload in workloads:
        for count in workload["counts"]:
            per_mode = {mode: run_cell(workload, count, mode) for mode in SERVING_MODES}
            reference = per_mode[SERVING_MODES[0]]
            for mode, entry in per_mode.items():
                if entry["comparable"] != reference["comparable"]:
                    identical = False
                    divergences.append(f"{workload['name']} x{count} [{mode}]")
                rows.append(entry)
    for row in rows:
        del row["comparable"]
    return {
        "campaign": "E15_serving_slo" + ("_smoke" if smoke else ""),
        "smoke": smoke,
        "settle_rounds": SETTLE_ROUNDS,
        "cells": rows,
        "engines_identical": identical,
        "divergent_cells": divergences,
    }


def emit_report(report: Dict, out: Path) -> None:
    """Persist the JSON report and the human-readable table."""
    out.write_text(json.dumps(report, indent=2) + "\n")
    table_rows = [
        [
            f"{cell['workload']} n={cell['n']}",
            cell["engine_mode"],
            cell["subscriptions"],
            cell["batches"],
            cell["fired"],
            cell["skip_ratio"],
            cell["queries_per_s"],
            round(cell["latency_p50_s"] * 1e6, 2),
            round(cell["latency_p95_s"] * 1e6, 2),
            round(cell["latency_p99_s"] * 1e6, 2),
        ]
        for cell in report["cells"]
    ]
    emit_table(
        "E15_serving_slo",
        [
            "workload",
            "engine",
            "subs",
            "batches",
            "fired",
            "skip ratio",
            "queries / s",
            "p50 us",
            "p95 us",
            "p99 us",
        ],
        table_rows,
        claim="standing-subscription serving: dirty-ball gating keeps per-round cost "
        "activity-proportional; firings bit-identical across engines",
    )
    print(f"engines identical: {report['engines_identical']}")
    print(f"report written to {out}")


def check_acceptance(report: Dict) -> List[str]:
    """The bar this bench must clear (empty list = pass)."""
    problems: List[str] = []
    if not report["engines_identical"]:
        problems.append(f"engines diverged on {report['divergent_cells']}")
    if not report["smoke"]:
        big = [
            cell
            for cell in report["cells"]
            if cell["workload"] == "flicker" and cell["subscriptions"] >= 1000
        ]
        if not big:
            problems.append("no flicker cell with >= 1000 subscriptions")
        for cell in big:
            if cell["queries_per_s"] <= 0:
                problems.append(f"zero queries/sec at {cell['subscriptions']} subs")
            if not (0 < cell["latency_p50_s"] <= cell["latency_p95_s"] <= cell["latency_p99_s"]):
                problems.append(
                    f"degenerate latency percentiles at {cell['subscriptions']} subs: "
                    f"{cell['latency_p50_s']}/{cell['latency_p95_s']}/{cell['latency_p99_s']}"
                )
    return problems


# --------------------------------------------------------------------- #
# pytest entry points (run with --benchmark-only like the other benches)
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("mode", SERVING_MODES)
def test_smoke_identity(benchmark, mode):
    workload = _SMOKE_WORKLOADS[0]
    entry = benchmark.pedantic(run_cell, args=(workload, 10, mode), rounds=1, iterations=1)
    assert entry["evaluated"] > 0
    reference = run_cell(workload, 10, SERVING_MODES[0])
    assert entry["comparable"] == reference["comparable"]


def _emit_table_impl():
    report = run_slo(smoke=False)
    problems = check_acceptance(report)
    assert not problems, problems
    emit_report(report, Path(__file__).resolve().parent.parent / "BENCH_serving.json")


def test_emit_table(benchmark, results_dir):
    """Regenerate and persist this experiment's table (runs under --benchmark-only)."""
    benchmark.pedantic(_emit_table_impl, rounds=1, iterations=1)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small CI grid")
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="report path (default: <repo>/BENCH_serving.json, smoke: BENCH_serving_smoke.json)",
    )
    args = parser.parse_args(argv)
    report = run_slo(smoke=args.smoke)
    default_name = "BENCH_serving_smoke.json" if args.smoke else "BENCH_serving.json"
    out = args.out if args.out is not None else Path(__file__).resolve().parent.parent / default_name
    emit_report(report, out)
    problems = check_acceptance(report)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
