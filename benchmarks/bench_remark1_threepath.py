"""E9 -- Remark 1: already 3-path listing hits the sqrt(n)/log n lower bound.

Validates the unified-endpoint variant of the Figure 4 construction: bridging
two hubs creates one 3-path per shared leaf index (at least D/3 of them), so
the same counting argument applies to a 4-vertex subgraph that is *not* a
clique -- complementing Theorem 2's membership result and marking where
"ultra-fast" listing stops.

The construction runs as a campaign cell (the ``null`` workload algorithm
realizes the schedule) and the structural sampling is the
``threepath_visits`` check; metrics are byte-identical to the previous
bespoke driver loop.
"""

from __future__ import annotations

from repro.experiments import CampaignRunner, CampaignSpec, ExperimentSpec, ResultStore, run_cell

from benchmarks.harness import RESULTS_DIR, emit_table

N = 100

CAMPAIGN = CampaignSpec(
    name="E9_remark1_threepath",
    base={
        "algorithm": "null",
        "adversary": "threepath",
        "n": N,
        "adversary_params": {"num_components": 4},
        "checks": ["threepath_visits"],
    },
)

CELL = ExperimentSpec.from_dict(CAMPAIGN.base)


def test_construction_structure(benchmark):
    metrics, _ = benchmark.pedantic(run_cell, args=(CELL,), rounds=1, iterations=1)
    benchmark.extra_info["min_three_paths_per_visit"] = metrics["threepath_min_per_visit"]
    assert metrics["threepath_visits_sampled"] > 0
    assert metrics["threepath_min_per_visit"] >= metrics["threepath_required"]


def _emit_table_impl():
    store = ResultStore(RESULTS_DIR / "campaign_E9_remark1")
    report = CampaignRunner(CAMPAIGN, store).run(resume=False)
    assert not report.failed, report.failed
    metrics = report.records[0]["metrics"]
    rows = [
        [
            N,
            int(metrics["threepath_components"]),
            int(metrics["threepath_D"]),
            int(metrics["threepath_attached"]),
            int(metrics["threepath_min_per_visit"]),
            int(metrics["threepath_required"]),
        ]
    ]
    emit_table(
        "E9_remark1_threepath",
        ["n", "components used", "D (leaves)", "attached (2D/3)", "min 3-paths per visit", "required D/3"],
        rows,
        claim="Remark 1: each hub visit creates >= D/3 three-paths, so 3-path listing also needs Omega(sqrt(n)/log n)",
    )
    assert metrics["threepath_min_per_visit"] >= metrics["threepath_required"]


def test_emit_table(benchmark, results_dir):
    """Regenerate and persist this experiment's table (runs under --benchmark-only)."""
    benchmark.pedantic(_emit_table_impl, rounds=1, iterations=1)
