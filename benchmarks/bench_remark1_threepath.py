"""E9 -- Remark 1: already 3-path listing hits the sqrt(n)/log n lower bound.

Validates the unified-endpoint variant of the Figure 4 construction: bridging
two hubs creates one 3-path per shared leaf index (at least D/3 of them), so
the same counting argument applies to a 4-vertex subgraph that is *not* a
clique -- complementing Theorem 2's membership result and marking where
"ultra-fast" listing stops.
"""

from __future__ import annotations

from repro.adversary import ThreePathLowerBoundAdversary
from repro.simulator import DynamicNetwork
from repro.simulator.adversary import AdversaryView

from benchmarks.harness import emit_table


def _run(n: int, num_components: int, seed: int = 0):
    adversary = ThreePathLowerBoundAdversary(n, num_components=num_components, seed=seed)
    network = DynamicNetwork(n)
    sampled_paths_per_visit = []
    while not adversary.is_done:
        view = AdversaryView.from_network(network, network.round_index + 1, True)
        changes = adversary.changes_for_round(view)
        if changes is None:
            break
        network.apply_changes(network.round_index + 1, changes)
        if changes.insertions and adversary.connection_events and len(sampled_paths_per_visit) < 6:
            # A bridge (hub_l, hub_m) was just inserted: count the 3-paths
            # v - hub_l - hub_m - v' it creates.
            ell, m = adversary.connection_events[len(sampled_paths_per_visit)]
            shared = adversary.shared_leaf_indices(ell, m)
            sampled_paths_per_visit.append(len(shared))
    return adversary, sampled_paths_per_visit


def test_construction_structure(benchmark):
    adversary, per_visit = benchmark.pedantic(_run, args=(100, 4), rounds=1, iterations=1)
    benchmark.extra_info["three_paths_per_visit"] = per_visit
    assert per_visit
    assert all(count >= adversary.D // 3 for count in per_visit)


def _emit_table_impl():
    adversary, per_visit = _run(100, 4)
    rows = [
        [
            100,
            adversary.t,
            adversary.D,
            adversary.attached_count,
            min(per_visit),
            adversary.D // 3,
        ]
    ]
    emit_table(
        "E9_remark1_threepath",
        ["n", "components used", "D (leaves)", "attached (2D/3)", "min 3-paths per visit", "required D/3"],
        rows,
        claim="Remark 1: each hub visit creates >= D/3 three-paths, so 3-path listing also needs Omega(sqrt(n)/log n)",
    )
    assert min(per_visit) >= adversary.D // 3


def test_emit_table(benchmark, results_dir):
    """Regenerate and persist this experiment's table (runs under --benchmark-only)."""
    benchmark.pedantic(_emit_table_impl, rounds=1, iterations=1)
