"""Fixtures for the benchmark harness (helpers live in benchmarks.harness)."""

from __future__ import annotations

from pathlib import Path

import pytest

from benchmarks.harness import RESULTS_DIR


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR
