"""E12 -- Figure 1 substrate: simulator throughput, serial vs. process-parallel.

Not a paper experiment, but the substrate every other experiment stands on:
this bench measures wall-clock throughput (simulated rounds per second) of the
serial round engine across network sizes, and compares the serial engine with
the sharded (multi-process) engine on the same workload so the trade-off
(pickling overhead vs. parallel node phases) is documented with numbers.

Every configuration is one campaign cell (``engine`` is a spec field), so the
serial-vs-sharded comparison is just a grid axis.
"""

from __future__ import annotations

import sys

import pytest

from repro.experiments import CampaignRunner, CampaignSpec, ExperimentSpec, ResultStore, run_cell

from benchmarks.harness import RESULTS_DIR, emit_table

ROUNDS = 60

_BASE = {
    "algorithm": "triangle",
    "adversary": "churn",
    "rounds": ROUNDS,
    "drain": False,
    "adversary_params": {"inserts_per_round": 3, "deletes_per_round": 2},
}

_CONFIGS = [{"engine": "serial", "n": n} for n in (32, 64, 128)]
if sys.platform.startswith("linux"):
    _CONFIGS += [{"engine": "sharded", "n": 96, "num_workers": w} for w in (2, 4)]

CAMPAIGN = CampaignSpec(
    name="E12_simulator_scaling",
    base=_BASE,
    grid={"config": _CONFIGS},
)


def _label(cell: ExperimentSpec) -> str:
    if cell.engine == "serial":
        return f"serial n={cell.n}"
    return f"sharded n={cell.n} workers={cell.num_workers}"


@pytest.mark.parametrize("n", [32, 64, 128])
def test_serial_engine_throughput(benchmark, n):
    spec = ExperimentSpec.from_dict({**_BASE, "engine": "serial", "n": n})
    metrics, _ = benchmark.pedantic(run_cell, args=(spec,), rounds=1, iterations=1)
    benchmark.extra_info["rounds_simulated"] = metrics["rounds_executed"]
    benchmark.extra_info["envelopes"] = metrics["total_envelopes"]
    assert metrics["rounds_executed"] == ROUNDS


@pytest.mark.skipif(not sys.platform.startswith("linux"), reason="fork start method required")
@pytest.mark.parametrize("workers", [2, 4])
def test_sharded_engine_throughput(benchmark, workers):
    spec = ExperimentSpec.from_dict({**_BASE, "engine": "sharded", "n": 96, "num_workers": workers})
    metrics, _ = benchmark.pedantic(run_cell, args=(spec,), rounds=1, iterations=1)
    benchmark.extra_info["rounds_simulated"] = metrics["rounds_executed"]
    assert metrics["rounds_executed"] == ROUNDS


def _emit_table_impl():
    store = ResultStore(RESULTS_DIR / "campaign_E12_scaling")
    report = CampaignRunner(CAMPAIGN, store).run(resume=False)
    assert not report.failed, report.failed
    by_id = {record["cell_id"]: record for record in report.records}

    rows = []
    for cell in CAMPAIGN.expand():
        record = by_id[cell.cell_id]
        metrics = record["metrics"]
        elapsed = record["duration_s"]
        rows.append(
            [
                _label(cell),
                int(metrics["rounds_executed"]),
                int(metrics["total_envelopes"]),
                round(elapsed, 3),
                round(metrics["rounds_executed"] / elapsed, 1),
            ]
        )
        assert metrics["rounds_executed"] == ROUNDS
    emit_table(
        "E12_simulator_scaling",
        ["configuration", "rounds", "envelopes", "wall-clock s", "rounds / s"],
        rows,
        claim="substrate only: throughput of the Figure 1 round engine (serial vs. sharded)",
    )


def test_emit_table(benchmark, results_dir):
    """Regenerate and persist this experiment's table (runs under --benchmark-only)."""
    benchmark.pedantic(_emit_table_impl, rounds=1, iterations=1)
