"""E12 -- Figure 1 substrate: simulator throughput, serial vs. process-parallel.

Not a paper experiment, but the substrate every other experiment stands on:
this bench measures wall-clock throughput (simulated rounds per second) of the
serial round engine across network sizes, and compares the serial engine with
the sharded (multi-process) engine on the same workload so the trade-off
(pickling overhead vs. parallel node phases) is documented with numbers.
"""

from __future__ import annotations

import sys

import pytest

from repro.adversary import RandomChurnAdversary
from repro.core import TriangleMembershipNode
from repro.simulator import DynamicNetwork, MetricsCollector, RoundEngine, ShardedRoundEngine
from repro.simulator.adversary import AdversaryView

from conftest import emit_table

ROUNDS = 60


def _run_serial(n: int, seed: int = 0) -> MetricsCollector:
    adversary = RandomChurnAdversary(
        n, num_rounds=ROUNDS, inserts_per_round=3, deletes_per_round=2, seed=seed
    )
    network = DynamicNetwork(n)
    nodes = {v: TriangleMembershipNode(v, n) for v in range(n)}
    engine = RoundEngine(network, nodes)
    while not adversary.is_done:
        view = AdversaryView.from_network(network, network.round_index + 1, engine.all_consistent)
        changes = adversary.changes_for_round(view)
        if changes is None:
            break
        engine.execute_round(changes)
    return engine.metrics


def _run_sharded(n: int, workers: int, seed: int = 0) -> MetricsCollector:
    adversary = RandomChurnAdversary(
        n, num_rounds=ROUNDS, inserts_per_round=3, deletes_per_round=2, seed=seed
    )
    with ShardedRoundEngine(n, TriangleMembershipNode, num_workers=workers) as engine:
        while not adversary.is_done:
            view = AdversaryView.from_network(
                engine.network, engine.network.round_index + 1, engine.all_consistent
            )
            changes = adversary.changes_for_round(view)
            if changes is None:
                break
            engine.execute_round(changes)
        return engine.metrics


@pytest.mark.parametrize("n", [32, 64, 128])
def test_serial_engine_throughput(benchmark, n):
    metrics = benchmark.pedantic(_run_serial, args=(n,), rounds=1, iterations=1)
    benchmark.extra_info["rounds_simulated"] = metrics.rounds_executed
    benchmark.extra_info["envelopes"] = metrics.total_envelopes
    assert metrics.rounds_executed == ROUNDS


@pytest.mark.skipif(not sys.platform.startswith("linux"), reason="fork start method required")
@pytest.mark.parametrize("workers", [2, 4])
def test_sharded_engine_throughput(benchmark, workers):
    metrics = benchmark.pedantic(_run_sharded, args=(96, workers), rounds=1, iterations=1)
    benchmark.extra_info["rounds_simulated"] = metrics.rounds_executed
    assert metrics.rounds_executed == ROUNDS


def _emit_table_impl():
    import time

    rows = []
    for n in (32, 64, 128):
        start = time.perf_counter()
        metrics = _run_serial(n)
        elapsed = time.perf_counter() - start
        rows.append(
            [
                f"serial n={n}",
                metrics.rounds_executed,
                metrics.total_envelopes,
                round(elapsed, 3),
                round(metrics.rounds_executed / elapsed, 1),
            ]
        )
    if sys.platform.startswith("linux"):
        for workers in (2, 4):
            start = time.perf_counter()
            metrics = _run_sharded(96, workers)
            elapsed = time.perf_counter() - start
            rows.append(
                [
                    f"sharded n=96 workers={workers}",
                    metrics.rounds_executed,
                    metrics.total_envelopes,
                    round(elapsed, 3),
                    round(metrics.rounds_executed / elapsed, 1),
                ]
            )
    emit_table(
        "E12_simulator_scaling",
        ["configuration", "rounds", "envelopes", "wall-clock s", "rounds / s"],
        rows,
        claim="substrate only: throughput of the Figure 1 round engine (serial vs. sharded)",
    )


def test_emit_table(benchmark, results_dir):
    """Regenerate and persist this experiment's table (runs under --benchmark-only)."""
    benchmark.pedantic(_emit_table_impl, rounds=1, iterations=1)
