"""E14 -- engine scaling: dense vs sparse vs columnar round scheduling.

The sparse engine (:class:`~repro.simulator.rounds.SparseRoundEngine`) only
visits nodes with something to do; the columnar engine
(:class:`~repro.simulator.columnar.ColumnarRoundEngine`) adds batched send
buffers, bulk bandwidth charging and a quiet-round fast path on top of the
same sparse bookkeeping.  This bench expresses the comparison as a campaign
grid -- workload configurations (network size x churn profile) times the
``engine_mode`` axis -- runs every cell with per-round latency
instrumentation, verifies that all engines produce **identical metrics** on
every cell, and records the performance trajectory in ``BENCH_engine.json``
(mean / p95 round latency and rounds per second per cell, plus the
per-workload speedups of each engine over dense).

The headline cell is the flickering-triangle gadget embedded in an n=2000
network (~1% of the nodes ever churn): the dense engine sweeps all 2000 nodes
for hundreds of rounds while sparse/columnar touch only the gadget; the
acceptance bar is a >= 10x rounds/sec speedup there.  A separate scale probe
runs the same gadget at n=100k under sparse and columnar only (dense would
take minutes) -- cheap enough for the CI smoke job.

Run directly (this is also the CI perf-smoke entry point)::

    python benchmarks/bench_engine_scaling.py [--smoke] [--out BENCH_engine.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Tuple

import pytest

if __package__ in (None, ""):  # direct `python benchmarks/bench_engine_scaling.py`
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.experiments import ALGORITHMS, CampaignSpec, ExperimentSpec, build_adversary, percentile
from repro.simulator import SimulationRunner

from benchmarks.harness import emit_table

#: The headline workload: only the 9-node flicker gadget is ever active.
FLICKER_N = 2000

_BASE = {
    "algorithm": "triangle",
    "record_trace": False,
    "checks": [],
}

#: Workload configurations (coupled n + adversary + churn rate).  Churn cells
#: rewrite ~1% of the node set per round; the flicker cell is the large-n
#: low-churn regime the sparse engine is built for.
_FULL_CONFIGS = [
    {
        "n": 200,
        "rounds": 150,
        "adversary": "churn",
        "adversary_params": {"inserts_per_round": 1, "deletes_per_round": 1},
    },
    {
        "n": 1000,
        "rounds": 150,
        "adversary": "churn",
        "adversary_params": {"inserts_per_round": 5, "deletes_per_round": 5},
    },
    {
        "n": 2000,
        "rounds": 150,
        "adversary": "churn",
        "adversary_params": {"inserts_per_round": 10, "deletes_per_round": 10},
    },
    {
        "n": FLICKER_N,
        "rounds": None,
        "adversary": "flicker",
        "adversary_params": {"settle_rounds": 300},
    },
]

#: Scaled-down grid for the CI perf-smoke job: same shape, small sizes.
_SMOKE_CONFIGS = [
    {
        "n": 64,
        "rounds": 40,
        "adversary": "churn",
        "adversary_params": {"inserts_per_round": 1, "deletes_per_round": 1},
    },
    {
        "n": 128,
        "rounds": None,
        "adversary": "flicker",
        "adversary_params": {"settle_rounds": 60},
    },
]


def build_campaign(smoke: bool = False) -> CampaignSpec:
    """The n x churn x engine-mode sweep as a declarative campaign."""
    return CampaignSpec(
        name="E14_engine_scaling" + ("_smoke" if smoke else ""),
        description="dense vs sparse round scheduling across network size and churn",
        base=dict(_BASE),
        grid={
            "workload": [dict(c) for c in (_SMOKE_CONFIGS if smoke else _FULL_CONFIGS)],
            "engine_mode": ["dense", "sparse", "columnar"],
        },
    )


def _label(cell: ExperimentSpec) -> str:
    if cell.adversary == "flicker":
        return f"flicker n={cell.n} (~1% nodes churning)"
    churn = cell.adversary_params.get("inserts_per_round", 0) + cell.adversary_params.get(
        "deletes_per_round", 0
    )
    return f"churn n={cell.n} ({churn} changes/round)"


def timed_cell(spec: ExperimentSpec) -> Tuple[Dict[str, float], List[float]]:
    """Run one cell with per-round latency instrumentation.

    Returns ``(metrics, round_latencies_seconds)``.  The metrics are exactly
    what :func:`repro.experiments.run_cell` would report for the same spec, so
    they can be compared across engine modes for the divergence gate.
    """
    adversary = build_adversary(
        spec.adversary,
        n=spec.n,
        rounds=spec.rounds,
        seed=spec.seed,
        params=spec.adversary_params,
    )
    runner = SimulationRunner(
        n=spec.n,
        algorithm_factory=ALGORITHMS[spec.algorithm],
        adversary=adversary,
        bandwidth_factor=spec.bandwidth_factor,
        strict_bandwidth=spec.strict_bandwidth,
        record_trace=False,
        engine_mode=spec.engine_mode,
    )
    stamps = [time.perf_counter()]
    runner.add_validator(lambda *_: stamps.append(time.perf_counter()))
    result = runner.run(num_rounds=spec.rounds, drain=spec.drain)
    metrics = result.summary()
    metrics["final_edges"] = float(result.network.num_edges)
    latencies = [b - a for a, b in zip(stamps, stamps[1:])]
    return metrics, latencies


#: The scale probe: the flicker gadget embedded in a 100k-node network.
#: Dense would sweep 10^5 nodes x hundreds of rounds, so only the
#: activity-proportional engines run here -- sparse as the reference,
#: columnar as the candidate (its quiet-round fast path dominates).
SCALE_PROBE_N = 100_000


def run_scale_probe(smoke: bool = False) -> Dict:
    """Run the n=100k flicker cell under sparse and columnar and compare."""
    entries = {}
    for mode in ("sparse", "columnar"):
        spec = ExperimentSpec.from_dict(
            {
                **_BASE,
                "n": SCALE_PROBE_N,
                "rounds": None,
                "adversary": "flicker",
                "adversary_params": {"settle_rounds": 60 if smoke else 300},
                "engine_mode": mode,
            }
        )
        metrics, latencies = timed_cell(spec)
        wall = sum(latencies)
        rounds = int(metrics["rounds_executed"])
        entries[mode] = {
            "n": SCALE_PROBE_N,
            "engine_mode": mode,
            "rounds_executed": rounds,
            "wall_s": round(wall, 6),
            "rounds_per_sec": round(rounds / wall, 2) if wall > 0 else float("inf"),
            "mean_round_latency_s": round(wall / rounds, 9) if rounds else 0.0,
            "metrics": metrics,
        }
    identical = entries["sparse"]["metrics"] == entries["columnar"]["metrics"]
    speedup = (
        round(
            entries["columnar"]["rounds_per_sec"]
            / entries["sparse"]["rounds_per_sec"],
            2,
        )
        if entries["sparse"]["rounds_per_sec"]
        else float("inf")
    )
    return {
        "label": f"flicker n={SCALE_PROBE_N} (~0.01% nodes churning)",
        "cells": list(entries.values()),
        "sparse_columnar_identical": identical,
        "speedup_columnar_over_sparse": speedup,
    }


def run_scaling(smoke: bool = False) -> Dict:
    """Run the whole grid and return the BENCH_engine report dict."""
    campaign = build_campaign(smoke)
    cells = campaign.expand()
    rows = []
    per_workload: Dict[str, Dict[str, Dict]] = {}
    for cell in cells:
        metrics, latencies = timed_cell(cell)
        wall = sum(latencies)
        rounds = int(metrics["rounds_executed"])
        entry = {
            "label": _label(cell),
            "cell_id": cell.cell_id,
            "n": cell.n,
            "adversary": cell.adversary,
            "engine_mode": cell.engine_mode,
            "rounds_executed": rounds,
            "total_changes": int(metrics["total_changes"]),
            "wall_s": round(wall, 6),
            "rounds_per_sec": round(rounds / wall, 2) if wall > 0 else float("inf"),
            "mean_round_latency_s": round(wall / rounds, 9) if rounds else 0.0,
            "p95_round_latency_s": round(percentile(latencies, 95), 9) if latencies else 0.0,
            "metrics": metrics,
        }
        rows.append(entry)
        per_workload.setdefault(entry["label"], {})[cell.engine_mode] = entry

    sparse_speedups: Dict[str, float] = {}
    columnar_speedups: Dict[str, float] = {}
    identical = True
    divergences: List[str] = []
    for label, modes in per_workload.items():
        dense = modes["dense"]
        for mode, speedups in (
            ("sparse", sparse_speedups),
            ("columnar", columnar_speedups),
        ):
            entry = modes[mode]
            if dense["metrics"] != entry["metrics"]:
                identical = False
                divergences.append(f"{label} [{mode}]")
            speedups[label] = round(
                entry["rounds_per_sec"] / dense["rounds_per_sec"], 2
            )

    return {
        "campaign": campaign.name,
        "smoke": smoke,
        "cells": rows,
        "speedup_sparse_over_dense": sparse_speedups,
        "speedup_columnar_over_dense": columnar_speedups,
        "engines_identical": identical,
        "dense_sparse_identical": identical,
        "divergent_workloads": divergences,
        "scale_probe": run_scale_probe(smoke),
    }


def emit_report(report: Dict, out: Path) -> None:
    """Persist the JSON report and the human-readable table."""
    stripped = dict(report)
    stripped["cells"] = [
        {k: v for k, v in cell.items() if k != "metrics"} for cell in report["cells"]
    ]
    stripped["scale_probe"] = {
        **report["scale_probe"],
        "cells": [
            {k: v for k, v in cell.items() if k != "metrics"}
            for cell in report["scale_probe"]["cells"]
        ],
    }
    out.write_text(json.dumps(stripped, indent=2) + "\n")
    table_rows = [
        [
            cell["label"],
            cell["engine_mode"],
            cell["rounds_executed"],
            round(cell["wall_s"], 3),
            cell["rounds_per_sec"],
            round(cell["mean_round_latency_s"] * 1e3, 4),
            round(cell["p95_round_latency_s"] * 1e3, 4),
        ]
        for cell in report["cells"]
    ]
    emit_table(
        "E14_engine_scaling",
        ["workload", "engine", "rounds", "wall s", "rounds / s", "mean ms/round", "p95 ms/round"],
        table_rows,
        claim="substrate only: dense vs activity-proportional (sparse) vs vectorized (columnar)",
    )
    print(f"speedups (sparse / dense rounds per sec): {report['speedup_sparse_over_dense']}")
    print(f"speedups (columnar / dense rounds per sec): {report['speedup_columnar_over_dense']}")
    probe = report["scale_probe"]
    print(
        f"scale probe {probe['label']}: columnar/sparse = "
        f"{probe['speedup_columnar_over_sparse']}x, identical = "
        f"{probe['sparse_columnar_identical']}"
    )
    print(f"report written to {out}")


# --------------------------------------------------------------------- #
# pytest entry points (run with --benchmark-only like the other benches)
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("mode", ["dense", "sparse", "columnar"])
def test_smoke_identity(benchmark, mode):
    spec = ExperimentSpec.from_dict(
        {**_BASE, **_SMOKE_CONFIGS[0], "engine_mode": mode}
    )
    metrics, latencies = benchmark.pedantic(timed_cell, args=(spec,), rounds=1, iterations=1)
    benchmark.extra_info["rounds_per_sec"] = metrics["rounds_executed"] / max(sum(latencies), 1e-9)
    assert metrics["rounds_executed"] > 0
    # The actual identity gate: this mode's metrics must equal the dense
    # reference run cell-for-cell (timings aside, which are not metrics).
    reference, _ = timed_cell(
        ExperimentSpec.from_dict({**_BASE, **_SMOKE_CONFIGS[0], "engine_mode": "dense"})
    )
    assert metrics == reference


def _emit_table_impl():
    report = run_scaling(smoke=False)
    assert report["engines_identical"], report["divergent_workloads"]
    assert report["scale_probe"]["sparse_columnar_identical"]
    flicker_label = f"flicker n={FLICKER_N} (~1% nodes churning)"
    for speedups in ("speedup_sparse_over_dense", "speedup_columnar_over_dense"):
        assert report[speedups][flicker_label] >= 10.0, report[speedups]
    emit_report(report, Path(__file__).resolve().parent.parent / "BENCH_engine.json")


def test_emit_table(benchmark, results_dir):
    """Regenerate and persist this experiment's table (runs under --benchmark-only)."""
    benchmark.pedantic(_emit_table_impl, rounds=1, iterations=1)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small CI grid")
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="report path (default: <repo>/BENCH_engine.json, smoke: BENCH_engine_smoke.json)",
    )
    args = parser.parse_args(argv)
    report = run_scaling(smoke=args.smoke)
    default_name = "BENCH_engine_smoke.json" if args.smoke else "BENCH_engine.json"
    out = args.out if args.out is not None else Path(__file__).resolve().parent.parent / default_name
    emit_report(report, out)
    if not report["engines_identical"]:
        print(
            f"FAIL: engines diverged on {report['divergent_workloads']}",
            file=sys.stderr,
        )
        return 1
    if not report["scale_probe"]["sparse_columnar_identical"]:
        print("FAIL: scale probe: sparse and columnar diverged", file=sys.stderr)
        return 1
    if not args.smoke:
        flicker_label = f"flicker n={FLICKER_N} (~1% nodes churning)"
        for speedups in ("speedup_sparse_over_dense", "speedup_columnar_over_dense"):
            if report[speedups][flicker_label] < 10.0:
                print(
                    f"FAIL: flicker speedup below 10x: {report[speedups]}",
                    file=sys.stderr,
                )
                return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
