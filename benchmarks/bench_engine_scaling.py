"""E14 -- engine scaling: dense vs sparse round scheduling across n x churn.

The sparse engine (:class:`~repro.simulator.rounds.SparseRoundEngine`) only
visits nodes with something to do, so its wall-clock should scale with actual
activity instead of ``n x rounds``.  This bench expresses the comparison as a
campaign grid -- workload configurations (network size x churn profile) times
the ``engine_mode`` axis -- runs every cell with per-round latency
instrumentation, verifies that dense and sparse produce **identical metrics**
on every cell, and records the performance trajectory in ``BENCH_engine.json``
(mean / p95 round latency and rounds per second per cell, plus the
sparse-over-dense speedup per workload).

The headline cell is the flickering-triangle gadget embedded in an n=2000
network (~1% of the nodes ever churn): the dense engine sweeps all 2000 nodes
for hundreds of rounds while the sparse engine touches only the gadget, and
the acceptance bar is a >= 10x rounds/sec speedup there.

Run directly (this is also the CI perf-smoke entry point)::

    python benchmarks/bench_engine_scaling.py [--smoke] [--out BENCH_engine.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Tuple

import pytest

if __package__ in (None, ""):  # direct `python benchmarks/bench_engine_scaling.py`
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.experiments import ALGORITHMS, CampaignSpec, ExperimentSpec, build_adversary, percentile
from repro.simulator import SimulationRunner

from benchmarks.harness import emit_table

#: The headline workload: only the 9-node flicker gadget is ever active.
FLICKER_N = 2000

_BASE = {
    "algorithm": "triangle",
    "record_trace": False,
    "checks": [],
}

#: Workload configurations (coupled n + adversary + churn rate).  Churn cells
#: rewrite ~1% of the node set per round; the flicker cell is the large-n
#: low-churn regime the sparse engine is built for.
_FULL_CONFIGS = [
    {
        "n": 200,
        "rounds": 150,
        "adversary": "churn",
        "adversary_params": {"inserts_per_round": 1, "deletes_per_round": 1},
    },
    {
        "n": 1000,
        "rounds": 150,
        "adversary": "churn",
        "adversary_params": {"inserts_per_round": 5, "deletes_per_round": 5},
    },
    {
        "n": 2000,
        "rounds": 150,
        "adversary": "churn",
        "adversary_params": {"inserts_per_round": 10, "deletes_per_round": 10},
    },
    {
        "n": FLICKER_N,
        "rounds": None,
        "adversary": "flicker",
        "adversary_params": {"settle_rounds": 300},
    },
]

#: Scaled-down grid for the CI perf-smoke job: same shape, small sizes.
_SMOKE_CONFIGS = [
    {
        "n": 64,
        "rounds": 40,
        "adversary": "churn",
        "adversary_params": {"inserts_per_round": 1, "deletes_per_round": 1},
    },
    {
        "n": 128,
        "rounds": None,
        "adversary": "flicker",
        "adversary_params": {"settle_rounds": 60},
    },
]


def build_campaign(smoke: bool = False) -> CampaignSpec:
    """The n x churn x engine-mode sweep as a declarative campaign."""
    return CampaignSpec(
        name="E14_engine_scaling" + ("_smoke" if smoke else ""),
        description="dense vs sparse round scheduling across network size and churn",
        base=dict(_BASE),
        grid={
            "workload": [dict(c) for c in (_SMOKE_CONFIGS if smoke else _FULL_CONFIGS)],
            "engine_mode": ["dense", "sparse"],
        },
    )


def _label(cell: ExperimentSpec) -> str:
    if cell.adversary == "flicker":
        return f"flicker n={cell.n} (~1% nodes churning)"
    churn = cell.adversary_params.get("inserts_per_round", 0) + cell.adversary_params.get(
        "deletes_per_round", 0
    )
    return f"churn n={cell.n} ({churn} changes/round)"


def timed_cell(spec: ExperimentSpec) -> Tuple[Dict[str, float], List[float]]:
    """Run one cell with per-round latency instrumentation.

    Returns ``(metrics, round_latencies_seconds)``.  The metrics are exactly
    what :func:`repro.experiments.run_cell` would report for the same spec, so
    they can be compared across engine modes for the divergence gate.
    """
    adversary = build_adversary(
        spec.adversary,
        n=spec.n,
        rounds=spec.rounds,
        seed=spec.seed,
        params=spec.adversary_params,
    )
    runner = SimulationRunner(
        n=spec.n,
        algorithm_factory=ALGORITHMS[spec.algorithm],
        adversary=adversary,
        bandwidth_factor=spec.bandwidth_factor,
        strict_bandwidth=spec.strict_bandwidth,
        record_trace=False,
        engine_mode=spec.engine_mode,
    )
    stamps = [time.perf_counter()]
    runner.add_validator(lambda *_: stamps.append(time.perf_counter()))
    result = runner.run(num_rounds=spec.rounds, drain=spec.drain)
    metrics = result.summary()
    metrics["final_edges"] = float(result.network.num_edges)
    latencies = [b - a for a, b in zip(stamps, stamps[1:])]
    return metrics, latencies


def run_scaling(smoke: bool = False) -> Dict:
    """Run the whole grid and return the BENCH_engine report dict."""
    campaign = build_campaign(smoke)
    cells = campaign.expand()
    rows = []
    per_workload: Dict[str, Dict[str, Dict]] = {}
    for cell in cells:
        metrics, latencies = timed_cell(cell)
        wall = sum(latencies)
        rounds = int(metrics["rounds_executed"])
        entry = {
            "label": _label(cell),
            "cell_id": cell.cell_id,
            "n": cell.n,
            "adversary": cell.adversary,
            "engine_mode": cell.engine_mode,
            "rounds_executed": rounds,
            "total_changes": int(metrics["total_changes"]),
            "wall_s": round(wall, 6),
            "rounds_per_sec": round(rounds / wall, 2) if wall > 0 else float("inf"),
            "mean_round_latency_s": round(wall / rounds, 9) if rounds else 0.0,
            "p95_round_latency_s": round(percentile(latencies, 95), 9) if latencies else 0.0,
            "metrics": metrics,
        }
        rows.append(entry)
        per_workload.setdefault(entry["label"], {})[cell.engine_mode] = entry

    speedups: Dict[str, float] = {}
    identical = True
    divergences: List[str] = []
    for label, modes in per_workload.items():
        dense, sparse = modes["dense"], modes["sparse"]
        if dense["metrics"] != sparse["metrics"]:
            identical = False
            divergences.append(label)
        speedups[label] = round(
            sparse["rounds_per_sec"] / dense["rounds_per_sec"], 2
        )

    return {
        "campaign": campaign.name,
        "smoke": smoke,
        "cells": rows,
        "speedup_sparse_over_dense": speedups,
        "dense_sparse_identical": identical,
        "divergent_workloads": divergences,
    }


def emit_report(report: Dict, out: Path) -> None:
    """Persist the JSON report and the human-readable table."""
    stripped = dict(report)
    stripped["cells"] = [
        {k: v for k, v in cell.items() if k != "metrics"} for cell in report["cells"]
    ]
    out.write_text(json.dumps(stripped, indent=2) + "\n")
    table_rows = [
        [
            cell["label"],
            cell["engine_mode"],
            cell["rounds_executed"],
            round(cell["wall_s"], 3),
            cell["rounds_per_sec"],
            round(cell["mean_round_latency_s"] * 1e3, 4),
            round(cell["p95_round_latency_s"] * 1e3, 4),
        ]
        for cell in report["cells"]
    ]
    emit_table(
        "E14_engine_scaling",
        ["workload", "engine", "rounds", "wall s", "rounds / s", "mean ms/round", "p95 ms/round"],
        table_rows,
        claim="substrate only: activity-proportional (sparse) vs dense round scheduling",
    )
    print(f"speedups (sparse / dense rounds per sec): {report['speedup_sparse_over_dense']}")
    print(f"report written to {out}")


# --------------------------------------------------------------------- #
# pytest entry points (run with --benchmark-only like the other benches)
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("mode", ["dense", "sparse"])
def test_smoke_identity(benchmark, mode):
    spec = ExperimentSpec.from_dict(
        {**_BASE, **_SMOKE_CONFIGS[0], "engine_mode": mode}
    )
    metrics, latencies = benchmark.pedantic(timed_cell, args=(spec,), rounds=1, iterations=1)
    benchmark.extra_info["rounds_per_sec"] = metrics["rounds_executed"] / max(sum(latencies), 1e-9)
    assert metrics["rounds_executed"] > 0
    # The actual identity gate: this mode's metrics must equal the dense
    # reference run cell-for-cell (timings aside, which are not metrics).
    reference, _ = timed_cell(
        ExperimentSpec.from_dict({**_BASE, **_SMOKE_CONFIGS[0], "engine_mode": "dense"})
    )
    assert metrics == reference


def _emit_table_impl():
    report = run_scaling(smoke=False)
    assert report["dense_sparse_identical"], report["divergent_workloads"]
    flicker_label = f"flicker n={FLICKER_N} (~1% nodes churning)"
    assert report["speedup_sparse_over_dense"][flicker_label] >= 10.0, report[
        "speedup_sparse_over_dense"
    ]
    emit_report(report, Path(__file__).resolve().parent.parent / "BENCH_engine.json")


def test_emit_table(benchmark, results_dir):
    """Regenerate and persist this experiment's table (runs under --benchmark-only)."""
    benchmark.pedantic(_emit_table_impl, rounds=1, iterations=1)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small CI grid")
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="report path (default: <repo>/BENCH_engine.json, smoke: BENCH_engine_smoke.json)",
    )
    args = parser.parse_args(argv)
    report = run_scaling(smoke=args.smoke)
    default_name = "BENCH_engine_smoke.json" if args.smoke else "BENCH_engine.json"
    out = args.out if args.out is not None else Path(__file__).resolve().parent.parent / default_name
    emit_report(report, out)
    if not report["dense_sparse_identical"]:
        print(
            f"FAIL: dense and sparse engines diverged on {report['divergent_workloads']}",
            file=sys.stderr,
        )
        return 1
    if not args.smoke:
        flicker_label = f"flicker n={FLICKER_N} (~1% nodes churning)"
        if report["speedup_sparse_over_dense"][flicker_label] < 10.0:
            print(
                f"FAIL: flicker speedup below 10x: {report['speedup_sparse_over_dense']}",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
