"""E15 -- oracle scaling: naive vs incremental ground truth under per-round checks.

PR 3 made every campaign run a correctness gate, but its oracle was the
"deliberately centralized and slow" one: a full edge-set copy per observed
round and a from-scratch recomputation per query, so per-round-checked runs
pay O(|E|) memory per round and O(n x |E|) query time regardless of how
little actually changed.  The incremental
:class:`~repro.oracle.GroundTruthOracle` pays per *change* instead: a delta
log with periodic keyframes, a live adjacency, and a dirty-region query
cache.

This bench drives both oracles over the same realized schedules with an
identical per-round query battery (robust 2-hop set + triangle list for a
rotating node sample -- the shape of the per-round checks), asserts that
**every query answer and every historical reconstruction is identical**
(the naive-vs-incremental differential; any mismatch fails the run), and
records wall-clock and memory in ``BENCH_oracle.json``.

The headline cell is the flickering-triangle gadget embedded in an n=2000
network carrying static background edges: only ~9 nodes ever churn, so the
incremental oracle's per-round cost collapses to the gadget while the naive
oracle keeps paying for the whole graph; the acceptance bar is a >= 10x
oracle speedup there with delta-log memory bounded by the keyframe interval.

Run directly (this is also the CI ``oracle-scaling-smoke`` entry point)::

    python benchmarks/bench_oracle_scaling.py [--smoke] [--out BENCH_oracle.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Tuple

import pytest

if __package__ in (None, ""):  # direct `python benchmarks/bench_oracle_scaling.py`
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.experiments import ALGORITHMS, CampaignSpec, ExperimentSpec, build_adversary
from repro.oracle import GroundTruthOracle, NaiveGroundTruthOracle
from repro.simulator import SimulationRunner

from benchmarks.harness import emit_table

#: The headline workload: a 9-node gadget churning inside a 2000-node graph.
FLICKER_N = 2000

#: Nodes queried per round (same battery for both oracles).
SAMPLE_SIZE = 32

#: Keyframe interval of the incremental oracle under test.
KEYFRAME_INTERVAL = 64

ORACLE_KINDS = ("naive", "incremental")

_BASE = {
    # The null workload realizes the adversary's schedule on the bare
    # network, so wall-clock isolates the oracle instead of an algorithm.
    "algorithm": "null",
    "record_trace": False,
    "checks": [],
}

#: Workload configurations: uniform churn at two sizes plus the low-activity
#: large-|E| flicker regime the incremental oracle is built for.
_FULL_CONFIGS = [
    {
        "n": 200,
        "rounds": 120,
        "adversary": "churn",
        "adversary_params": {"inserts_per_round": 3, "deletes_per_round": 2},
    },
    {
        "n": 1000,
        "rounds": 120,
        "adversary": "churn",
        "adversary_params": {"inserts_per_round": 5, "deletes_per_round": 4},
    },
    {
        "n": FLICKER_N,
        "rounds": None,
        "adversary": "flicker",
        "adversary_params": {"settle_rounds": 250, "background_edges": 600},
    },
]

#: Scaled-down grid for the CI smoke job: same shape, small sizes.
_SMOKE_CONFIGS = [
    {
        "n": 48,
        "rounds": 30,
        "adversary": "churn",
        "adversary_params": {"inserts_per_round": 2, "deletes_per_round": 1},
    },
    {
        "n": 96,
        "rounds": None,
        "adversary": "flicker",
        "adversary_params": {"settle_rounds": 40, "background_edges": 60},
    },
]


def build_campaign(smoke: bool = False) -> CampaignSpec:
    """The workload grid as a declarative campaign (oracle kind is swept below)."""
    return CampaignSpec(
        name="E15_oracle_scaling" + ("_smoke" if smoke else ""),
        description="naive vs incremental ground-truth oracle under per-round checks",
        base=dict(_BASE),
        grid={"workload": [dict(c) for c in (_SMOKE_CONFIGS if smoke else _FULL_CONFIGS)]},
    )


def _label(cell: ExperimentSpec) -> str:
    if cell.adversary == "flicker":
        bg = cell.adversary_params.get("background_edges", 0)
        return f"flicker n={cell.n} ({bg} static background edges)"
    churn = cell.adversary_params.get("inserts_per_round", 0) + cell.adversary_params.get(
        "deletes_per_round", 0
    )
    return f"churn n={cell.n} ({churn} changes/round)"


def _build_oracle(kind: str, n: int):
    if kind == "naive":
        return NaiveGroundTruthOracle(n)
    return GroundTruthOracle(n, keyframe_interval=KEYFRAME_INTERVAL)


def run_oracle_cell(spec: ExperimentSpec, kind: str) -> Dict:
    """Run one workload with a per-round-checking oracle of the given kind.

    The per-round validator observes the oracle and issues the query battery,
    folding every answer into a per-round digest; two runs of the same
    workload are query-identical iff their digest streams (and historical
    probes) are equal.  Only time spent inside the validator is charged to
    the oracle.
    """
    adversary = build_adversary(
        spec.adversary,
        n=spec.n,
        rounds=spec.rounds,
        seed=spec.seed,
        params=spec.adversary_params,
    )
    oracle = _build_oracle(kind, spec.n)
    oracle_seconds = 0.0
    digests: List[int] = []
    queries = 0

    def check(round_index, network, nodes) -> None:
        nonlocal oracle_seconds, queries
        start = time.perf_counter()
        oracle.observe(network)
        digest = 0
        for j in range(SAMPLE_SIZE):
            v = (round_index * 31 + j * 97) % spec.n
            r2 = oracle.robust_two_hop(v)
            triangles = oracle.triangles_containing(v)
            digest = hash((digest, v, r2, frozenset(triangles)))
            queries += 2
        digests.append(digest)
        oracle_seconds += time.perf_counter() - start

    runner = SimulationRunner(
        n=spec.n,
        algorithm_factory=ALGORITHMS[spec.algorithm],
        adversary=adversary,
        record_trace=False,
        validators=[check],
        engine_mode=spec.engine_mode,
    )
    wall_start = time.perf_counter()
    runner.run(num_rounds=spec.rounds, drain=spec.drain)
    wall = time.perf_counter() - wall_start

    # Historical probes: reconstructed past states, including keyframe
    # boundaries, must agree across oracle kinds as well.
    latest = oracle.latest_round
    probe_rounds = sorted(
        {
            r
            for r in (
                0,
                1,
                KEYFRAME_INTERVAL - 1,
                KEYFRAME_INTERVAL,
                KEYFRAME_INTERVAL + 1,
                latest // 2,
                latest - 1,
                latest,
            )
            if 0 <= r <= latest
        }
    )
    history = [
        (r, hash((oracle.edges_at(r), tuple(sorted(oracle.times_at(r).items())))))
        for r in probe_rounds
    ]
    return {
        "kind": kind,
        "rounds_observed": len(digests),
        "queries": queries,
        "oracle_s": round(oracle_seconds, 6),
        "wall_s": round(wall, 6),
        "digests": digests,
        "history": history,
        "memory": oracle.memory_profile(),
    }


def run_scaling(smoke: bool = False) -> Dict:
    """Run the whole grid under both oracle kinds; returns the report dict."""
    campaign = build_campaign(smoke)
    rows: List[Dict] = []
    per_workload: Dict[str, Dict[str, Dict]] = {}
    for cell in campaign.expand():
        label = _label(cell)
        for kind in ORACLE_KINDS:
            entry = run_oracle_cell(cell, kind)
            entry["label"] = label
            entry["n"] = cell.n
            entry["adversary"] = cell.adversary
            rows.append(entry)
            per_workload.setdefault(label, {})[kind] = entry

    speedups: Dict[str, float] = {}
    memory_ratio: Dict[str, float] = {}
    mismatches: List[str] = []
    for label, kinds in per_workload.items():
        naive, incremental = kinds["naive"], kinds["incremental"]
        if naive["digests"] != incremental["digests"]:
            first = next(
                (
                    i + 1
                    for i, (a, b) in enumerate(
                        zip(naive["digests"], incremental["digests"])
                    )
                    if a != b
                ),
                min(len(naive["digests"]), len(incremental["digests"])) + 1,
            )
            mismatches.append(f"{label}: live queries diverge at observed round {first}")
        if naive["history"] != incremental["history"]:
            mismatches.append(f"{label}: historical reconstruction diverges")
        speedups[label] = round(
            naive["oracle_s"] / incremental["oracle_s"], 2
        ) if incremental["oracle_s"] > 0 else float("inf")
        memory_ratio[label] = round(
            naive["memory"]["snapshot_edge_entries"]
            / max(1, incremental["memory"]["snapshot_edge_entries"]),
            2,
        )

    report = {
        "campaign": campaign.name,
        "smoke": smoke,
        "sample_size": SAMPLE_SIZE,
        "keyframe_interval": KEYFRAME_INTERVAL,
        "cells": [
            {key: value for key, value in row.items() if key not in ("digests", "history")}
            for row in rows
        ],
        "speedup_naive_over_incremental": speedups,
        "memory_ratio_naive_over_incremental": memory_ratio,
        "query_identical": not mismatches,
        "mismatches": mismatches,
    }
    return report


def emit_report(report: Dict, out: Path) -> None:
    """Persist the JSON report and the human-readable table."""
    out.write_text(json.dumps(report, indent=2) + "\n")
    table_rows = [
        [
            cell["label"],
            cell["kind"],
            cell["rounds_observed"],
            cell["queries"],
            round(cell["oracle_s"], 3),
            cell["memory"]["snapshot_edge_entries"],
        ]
        for cell in report["cells"]
    ]
    emit_table(
        "E15_oracle_scaling",
        ["workload", "oracle", "rounds", "queries", "oracle s", "stored edge entries"],
        table_rows,
        claim="substrate only: per-round checks should pay per change, not per graph",
    )
    print(f"speedups (naive / incremental oracle seconds): {report['speedup_naive_over_incremental']}")
    print(f"memory ratios (naive / incremental stored entries): {report['memory_ratio_naive_over_incremental']}")
    print(f"report written to {out}")


def _flicker_label(smoke: bool) -> str:
    config = (_SMOKE_CONFIGS if smoke else _FULL_CONFIGS)[-1]
    return (
        f"flicker n={config['n']} "
        f"({config['adversary_params']['background_edges']} static background edges)"
    )


# --------------------------------------------------------------------- #
# pytest entry points (run with --benchmark-only like the other benches)
# --------------------------------------------------------------------- #
def test_smoke_query_identity(benchmark):
    spec = ExperimentSpec.from_dict({**_BASE, **_SMOKE_CONFIGS[0]})
    entry = benchmark.pedantic(
        run_oracle_cell, args=(spec, "incremental"), rounds=1, iterations=1
    )
    assert entry["rounds_observed"] > 0
    # The actual gate: the incremental oracle's every answer (and historical
    # reconstruction) must match the from-scratch naive reference.
    reference = run_oracle_cell(spec, "naive")
    assert entry["digests"] == reference["digests"]
    assert entry["history"] == reference["history"]


def _emit_table_impl():
    report = run_scaling(smoke=False)
    assert report["query_identical"], report["mismatches"]
    assert report["speedup_naive_over_incremental"][_flicker_label(False)] >= 10.0, report[
        "speedup_naive_over_incremental"
    ]
    emit_report(report, Path(__file__).resolve().parent.parent / "BENCH_oracle.json")


def test_emit_table(benchmark, results_dir):
    """Regenerate and persist this experiment's table (runs under --benchmark-only)."""
    benchmark.pedantic(_emit_table_impl, rounds=1, iterations=1)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small CI grid")
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="report path (default: <repo>/BENCH_oracle.json, smoke: BENCH_oracle_smoke.json)",
    )
    args = parser.parse_args(argv)
    report = run_scaling(smoke=args.smoke)
    default_name = "BENCH_oracle_smoke.json" if args.smoke else "BENCH_oracle.json"
    out = args.out if args.out is not None else Path(__file__).resolve().parent.parent / default_name
    emit_report(report, out)
    if not report["query_identical"]:
        print(
            f"FAIL: naive and incremental oracles diverged: {report['mismatches']}",
            file=sys.stderr,
        )
        return 1
    if not args.smoke:
        flicker = _flicker_label(False)
        if report["speedup_naive_over_incremental"][flicker] < 10.0:
            print(
                f"FAIL: flicker oracle speedup below 10x: "
                f"{report['speedup_naive_over_incremental']}",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
