"""E11 -- Figures 2 / 3: how much of the true neighborhood the robust sets keep.

The robust neighborhoods are *subsets* of the full 2-hop / 3-hop
neighborhoods -- that is the price of maintaining them in O(1) amortized
rounds.  This experiment quantifies the trade-off on realistic workloads: the
fraction of ``E^{v,2}`` covered by ``R^{v,2}`` and ``T^{v,2}``, and of
``E^{v,3}`` covered by ``R^{v,3}``, averaged over nodes, under uniform churn
and under heavy-tailed P2P churn.  (No paper table corresponds to this; it is
the quantitative companion of Figures 2 and 3 and of the Section 2 discussion
of why the full 2-hop neighborhood is unaffordable.)
"""

from __future__ import annotations

import pytest

from repro.adversary import HeavyTailedChurnAdversary, RandomChurnAdversary
from repro.oracle import GroundTruthOracle, khop_edges, robust_three_hop, robust_two_hop, triangle_pattern_set
from repro.simulator import DynamicNetwork
from repro.simulator.adversary import AdversaryView

from conftest import emit_table

N = 24


def _realize(adversary, n):
    """Drive an adversary on a bare network (no algorithm) and return the final state."""
    network = DynamicNetwork(n)
    while not adversary.is_done:
        view = AdversaryView.from_network(network, network.round_index + 1, True)
        changes = adversary.changes_for_round(view)
        if changes is None:
            break
        network.apply_changes(network.round_index + 1, changes)
    return network


def _coverage(network):
    times = network.insertion_times()
    edges = network.edges
    ratios = {"R2/E2": [], "T2/E2": [], "R3/E3": []}
    for v in range(network.n):
        e2 = khop_edges(edges, v, 2)
        e3 = khop_edges(edges, v, 3)
        if e2:
            ratios["R2/E2"].append(len(robust_two_hop(edges, times, v)) / len(e2))
            ratios["T2/E2"].append(len(triangle_pattern_set(edges, times, v)) / len(e2))
        if e3:
            ratios["R3/E3"].append(len(robust_three_hop(edges, times, v)) / len(e3))
    return {key: sum(vals) / len(vals) for key, vals in ratios.items() if vals}


WORKLOADS = [
    ("uniform churn", lambda: RandomChurnAdversary(N, num_rounds=200, inserts_per_round=3, deletes_per_round=2, seed=0)),
    ("insertion-heavy churn", lambda: RandomChurnAdversary(N, num_rounds=200, inserts_per_round=3, deletes_per_round=1, seed=1)),
    ("p2p heavy-tailed churn", lambda: HeavyTailedChurnAdversary(N, num_rounds=200, seed=2)),
]


@pytest.mark.parametrize("label,make", WORKLOADS)
def test_coverage(benchmark, label, make):
    network = benchmark.pedantic(_realize, args=(make(), N), rounds=1, iterations=1)
    coverage = _coverage(network)
    benchmark.extra_info.update({k: round(v, 3) for k, v in coverage.items()})
    # The robust sets always cover a meaningful fraction and never exceed 1.
    assert all(0 < ratio <= 1.0 + 1e-9 for ratio in coverage.values())


def _emit_table_impl():
    rows = []
    for label, make in WORKLOADS:
        network = _realize(make(), N)
        coverage = _coverage(network)
        rows.append(
            [
                label,
                network.num_edges,
                round(coverage.get("R2/E2", float("nan")), 3),
                round(coverage.get("T2/E2", float("nan")), 3),
                round(coverage.get("R3/E3", float("nan")), 3),
            ]
        )
        # T^{v,2} is a superset of R^{v,2} by definition.
        assert coverage["T2/E2"] >= coverage["R2/E2"] - 1e-9
    emit_table(
        "E11_robust_set_coverage",
        ["workload", "final edges", "R2 / E2", "T2 / E2", "R3 / E3"],
        rows,
        claim="Figures 2/3: the robust subsets cover a large fraction of the true neighborhoods at O(1) cost",
    )


def test_emit_table(benchmark, results_dir):
    """Regenerate and persist this experiment's table (runs under --benchmark-only)."""
    benchmark.pedantic(_emit_table_impl, rounds=1, iterations=1)
