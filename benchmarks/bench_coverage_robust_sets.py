"""E11 -- Figures 2 / 3: how much of the true neighborhood the robust sets keep.

The robust neighborhoods are *subsets* of the full 2-hop / 3-hop
neighborhoods -- that is the price of maintaining them in O(1) amortized
rounds.  This experiment quantifies the trade-off on realistic workloads: the
fraction of ``E^{v,2}`` covered by ``R^{v,2}`` and ``T^{v,2}``, and of
``E^{v,3}`` covered by ``R^{v,3}``, averaged over nodes, under uniform churn
and under heavy-tailed P2P churn.  (No paper table corresponds to this; it is
the quantitative companion of Figures 2 and 3 and of the Section 2 discussion
of why the full 2-hop neighborhood is unaffordable.)

Each workload is one cell of a campaign running the ``null`` algorithm (which
just realizes the schedule on the ground-truth network) with the ``coverage``
end-of-run check computing the ratios centrally.
"""

from __future__ import annotations

import pytest

from repro.experiments import CampaignRunner, CampaignSpec, ExperimentSpec, ResultStore, run_cell

from benchmarks.harness import RESULTS_DIR, emit_table

N = 24

WORKLOADS = [
    (
        "uniform churn",
        {"adversary": "churn", "adversary_params": {"inserts_per_round": 3, "deletes_per_round": 2}, "seed": 0},
    ),
    (
        "insertion-heavy churn",
        {"adversary": "churn", "adversary_params": {"inserts_per_round": 3, "deletes_per_round": 1}, "seed": 1},
    ),
    (
        "p2p heavy-tailed churn",
        {"adversary": "p2p", "adversary_params": {}, "seed": 2},
    ),
]

CAMPAIGN = CampaignSpec(
    name="E11_robust_set_coverage",
    base={"algorithm": "null", "n": N, "rounds": 200, "checks": ["coverage"]},
    grid={"workload": [patch for _, patch in WORKLOADS]},
)


@pytest.mark.parametrize("label,patch", WORKLOADS)
def test_coverage(benchmark, label, patch):
    spec = ExperimentSpec.from_dict({**CAMPAIGN.base, **patch})
    metrics, _ = benchmark.pedantic(run_cell, args=(spec,), rounds=1, iterations=1)
    coverage = {k: v for k, v in metrics.items() if k.startswith("coverage_")}
    benchmark.extra_info.update({k: round(v, 3) for k, v in coverage.items()})
    # The robust sets always cover a meaningful fraction and never exceed 1.
    assert coverage
    assert all(0 < ratio <= 1.0 + 1e-9 for ratio in coverage.values())


def _emit_table_impl():
    store = ResultStore(RESULTS_DIR / "campaign_E11_coverage")
    report = CampaignRunner(CAMPAIGN, store).run(resume=False)
    assert not report.failed, report.failed
    by_id = {record["cell_id"]: record for record in report.records}

    rows = []
    for (label, _), cell in zip(WORKLOADS, CAMPAIGN.expand()):
        metrics = by_id[cell.cell_id]["metrics"]
        rows.append(
            [
                label,
                int(metrics["final_edges"]),
                round(metrics.get("coverage_r2_e2", float("nan")), 3),
                round(metrics.get("coverage_t2_e2", float("nan")), 3),
                round(metrics.get("coverage_r3_e3", float("nan")), 3),
            ]
        )
        # T^{v,2} is a superset of R^{v,2} by definition.
        assert metrics["coverage_t2_e2"] >= metrics["coverage_r2_e2"] - 1e-9
    emit_table(
        "E11_robust_set_coverage",
        ["workload", "final edges", "R2 / E2", "T2 / E2", "R3 / E3"],
        rows,
        claim="Figures 2/3: the robust subsets cover a large fraction of the true neighborhoods at O(1) cost",
    )


def test_emit_table(benchmark, results_dir):
    """Regenerate and persist this experiment's table (runs under --benchmark-only)."""
    benchmark.pedantic(_emit_table_impl, rounds=1, iterations=1)
