"""E1 -- Theorem 7: the robust 2-hop neighborhood in O(1) amortized rounds.

Regenerates the quantity Theorem 7 bounds: the amortized round complexity of
maintaining the robust 2-hop neighborhood under sustained churn, as a function
of the network size and of the churn intensity.  The paper claims the ratio is
bounded by a constant (at most one inconsistent round per topology change for
this structure); the table printed by this bench shows the measured ratio and
the bench asserts that it never exceeds that bound and does not grow with n.

The sweep is one campaign (sizes x churn rates) executed through the
experiment-campaign subsystem with the ``robust2hop_oracle`` check verifying
the final state against ``R^{v,2}`` per cell; metrics are byte-identical to
the previous bespoke runner.
"""

from __future__ import annotations

import pytest

from repro.analysis import growth_exponent, latest_ok_records, load_results_jsonl
from repro.experiments import CampaignRunner, CampaignSpec, ExperimentSpec, ResultStore, run_cell

from benchmarks.harness import RESULTS_DIR, emit_table

SIZES = [16, 32, 64]
CHURN_RATES = [(2, 1), (4, 2)]

CAMPAIGN = CampaignSpec(
    name="E1_theorem7_robust2hop",
    base={"algorithm": "robust2hop", "adversary": "churn", "rounds": 150,
          "checks": ["robust2hop_oracle"]},
    grid={
        "n": SIZES,
        "churn": [
            {"adversary_params": {"inserts_per_round": inserts, "deletes_per_round": deletes}}
            for inserts, deletes in CHURN_RATES
        ],
    },
)


def _cell(n: int, inserts: int, deletes: int, seed: int = 0) -> ExperimentSpec:
    return ExperimentSpec.from_dict(
        {
            **CAMPAIGN.base,
            "n": n,
            "seed": seed,
            "adversary_params": {
                "inserts_per_round": inserts,
                "deletes_per_round": deletes,
            },
        }
    )


@pytest.mark.parametrize("n", SIZES)
def test_amortized_complexity_constant_in_n(benchmark, n, results_dir):
    metrics, _ = benchmark.pedantic(run_cell, args=(_cell(n, 3, 2),), rounds=1, iterations=1)
    benchmark.extra_info["amortized_round_complexity"] = metrics["amortized_round_complexity"]
    benchmark.extra_info["total_changes"] = metrics["total_changes"]
    assert metrics["max_running_amortized_complexity"] <= 1.0 + 1e-9
    assert metrics["robust2hop_matches_oracle"] == 1.0


def _emit_table_impl():
    """Print the E1 table: amortized complexity across sizes and churn rates."""
    store = ResultStore(RESULTS_DIR / "campaign_E1_theorem7")
    report = CampaignRunner(CAMPAIGN, store).run(resume=False)
    assert not report.failed, report.failed
    # Read the table inputs back from the persisted JSONL store (not the
    # in-memory report), exercising the same path any post-hoc analysis uses.
    by_id = {
        record["cell_id"]: record
        for record in latest_ok_records(load_results_jsonl(store.root))
    }

    rows = []
    measurements = []
    for cell in CAMPAIGN.expand():
        metrics = by_id[cell.cell_id]["metrics"]
        inserts = cell.adversary_params["inserts_per_round"]
        deletes = cell.adversary_params["deletes_per_round"]
        rows.append(
            [
                cell.n,
                f"{inserts}+{deletes}",
                int(metrics["total_changes"]),
                round(metrics["amortized_round_complexity"], 4),
                round(metrics["max_running_amortized_complexity"], 4),
                int(metrics["bandwidth_max_observed_bits"]),
                int(metrics["bandwidth_budget_bits"]),
            ]
        )
        measurements.append((cell.n, metrics["amortized_round_complexity"]))
        assert metrics["robust2hop_matches_oracle"] == 1.0
    emit_table(
        "E1_theorem7_robust2hop",
        [
            "n",
            "churn (ins+del / round)",
            "changes",
            "amortized rounds",
            "worst prefix",
            "max msg bits",
            "budget bits",
        ],
        rows,
        claim="Theorem 7: O(1) amortized rounds (<= 1 inconsistent round per change)",
    )
    sizes = [n for n, _ in measurements]
    values = [max(v, 1e-6) for _, v in measurements]
    assert growth_exponent(sizes, values) < 0.25
    assert all(v <= 1.0 + 1e-9 for v in values)


def test_emit_table(benchmark, results_dir):
    """Regenerate and persist this experiment's table (runs under --benchmark-only)."""
    benchmark.pedantic(_emit_table_impl, rounds=1, iterations=1)
