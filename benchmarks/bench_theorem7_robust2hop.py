"""E1 -- Theorem 7: the robust 2-hop neighborhood in O(1) amortized rounds.

Regenerates the quantity Theorem 7 bounds: the amortized round complexity of
maintaining the robust 2-hop neighborhood under sustained churn, as a function
of the network size and of the churn intensity.  The paper claims the ratio is
bounded by a constant (at most one inconsistent round per topology change for
this structure); the table printed by this bench shows the measured ratio and
the bench asserts that it never exceeds that bound and does not grow with n.
"""

from __future__ import annotations

import pytest

from repro.adversary import RandomChurnAdversary
from repro.analysis import growth_exponent
from repro.core import RobustTwoHopNode

from benchmarks.harness import emit_table, run_experiment

SIZES = [16, 32, 64]
CHURN_RATES = [(2, 1), (4, 2)]


def _run(n: int, inserts: int, deletes: int, seed: int = 0):
    return run_experiment(
        RobustTwoHopNode,
        RandomChurnAdversary(
            n, num_rounds=150, inserts_per_round=inserts, deletes_per_round=deletes, seed=seed
        ),
        n,
    )


@pytest.mark.parametrize("n", SIZES)
def test_amortized_complexity_constant_in_n(benchmark, n, results_dir):
    result = benchmark.pedantic(_run, args=(n, 3, 2), rounds=1, iterations=1)
    benchmark.extra_info["amortized_round_complexity"] = result.amortized_round_complexity
    benchmark.extra_info["total_changes"] = result.metrics.total_changes
    assert result.metrics.max_running_amortized_complexity() <= 1.0 + 1e-9


def _emit_table_impl():
    """Print the E1 table: amortized complexity across sizes and churn rates."""
    rows = []
    measurements = []
    for n in SIZES:
        for inserts, deletes in CHURN_RATES:
            result = _run(n, inserts, deletes)
            rows.append(
                [
                    n,
                    f"{inserts}+{deletes}",
                    result.metrics.total_changes,
                    round(result.amortized_round_complexity, 4),
                    round(result.metrics.max_running_amortized_complexity(), 4),
                    result.bandwidth.max_observed_bits,
                    result.bandwidth.budget_bits(n),
                ]
            )
            measurements.append((n, result.amortized_round_complexity))
    emit_table(
        "E1_theorem7_robust2hop",
        [
            "n",
            "churn (ins+del / round)",
            "changes",
            "amortized rounds",
            "worst prefix",
            "max msg bits",
            "budget bits",
        ],
        rows,
        claim="Theorem 7: O(1) amortized rounds (<= 1 inconsistent round per change)",
    )
    sizes = [n for n, _ in measurements]
    values = [max(v, 1e-6) for _, v in measurements]
    assert growth_exponent(sizes, values) < 0.25
    assert all(v <= 1.0 + 1e-9 for v in values)


def test_emit_table(benchmark, results_dir):
    """Regenerate and persist this experiment's table (runs under --benchmark-only)."""
    benchmark.pedantic(_emit_table_impl, rounds=1, iterations=1)
