"""E13 -- ablation: what the mark-(b) hint mechanism buys (design-choice study).

DESIGN.md calls out the mark-(b) hints as the piece that turns the robust
2-hop neighborhood (Theorem 7) into triangle *membership* listing
(Theorem 1).  This bench quantifies that: for every insertion order of a
triangle's three edges, it checks which of the three nodes end up knowing the
triangle, with and without the hint mechanism, and aggregates the membership
recall over a churn workload.
"""

from __future__ import annotations

import itertools

import pytest

from repro.adversary import RandomChurnAdversary, ScriptedAdversary
from repro.core import HintFreeTriangleNode, TriangleMembershipNode
from repro.oracle import triangles_containing

from benchmarks.harness import emit_table, run_experiment


def _membership_recall_over_orders(factory):
    """Fraction of (insertion order, member) pairs that know the triangle."""
    hits = 0
    total = 0
    for order in itertools.permutations([(0, 1), (0, 2), (1, 2)]):
        schedule = [([edge], []) for edge in order]
        result = run_experiment(factory, ScriptedAdversary(schedule), 4)
        for v in (0, 1, 2):
            total += 1
            if frozenset({0, 1, 2}) in result.nodes[v].known_triangles():
                hits += 1
    return hits / total


def _membership_recall_under_churn(factory, n=16, seed=3):
    result = run_experiment(
        factory,
        RandomChurnAdversary(n, num_rounds=150, inserts_per_round=3, deletes_per_round=2, seed=seed),
        n,
    )
    expected = 0
    found = 0
    for v, node in result.nodes.items():
        truth = triangles_containing(result.network.edges, v)
        expected += len(truth)
        found += len(truth & node.known_triangles())
    return (found / expected if expected else 1.0), result.amortized_round_complexity


VARIANTS = [
    ("full Theorem 1 structure (with hints)", TriangleMembershipNode),
    ("ablation: hints disabled (Theorem 7 knowledge only)", HintFreeTriangleNode),
]


@pytest.mark.parametrize("label,factory", VARIANTS)
def test_ablation(benchmark, label, factory):
    recall = benchmark.pedantic(_membership_recall_over_orders, args=(factory,), rounds=1, iterations=1)
    benchmark.extra_info["membership_recall_over_orders"] = recall
    if factory is TriangleMembershipNode:
        assert recall == 1.0
    else:
        assert recall < 1.0


def _emit_table_impl():
    rows = []
    for label, factory in VARIANTS:
        order_recall = _membership_recall_over_orders(factory)
        churn_recall, amortized = _membership_recall_under_churn(factory)
        rows.append(
            [
                label,
                round(order_recall, 3),
                round(churn_recall, 3),
                round(amortized, 3),
            ]
        )
    emit_table(
        "E13_ablation_hints",
        [
            "variant",
            "membership recall over all insertion orders",
            "membership recall under churn",
            "amortized rounds (churn)",
        ],
        rows,
        claim="design choice: the mark-(b) hints are what close the gap from robust 2-hop to full triangle membership",
    )
    # The full structure is perfect; the ablation misses a sizable fraction.
    assert rows[0][1] == 1.0 and rows[0][2] == 1.0
    assert rows[1][1] < 1.0


def test_emit_table(benchmark, results_dir):
    """Regenerate and persist this experiment's table (runs under --benchmark-only)."""
    benchmark.pedantic(_emit_table_impl, rounds=1, iterations=1)
