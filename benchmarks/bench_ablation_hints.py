"""E13 -- ablation: what the mark-(b) hint mechanism buys (design-choice study).

DESIGN.md calls out the mark-(b) hints as the piece that turns the robust
2-hop neighborhood (Theorem 7) into triangle *membership* listing
(Theorem 1).  This bench quantifies that: for every insertion order of a
triangle's three edges, it checks which of the three nodes end up knowing the
triangle, with and without the hint mechanism, and aggregates the membership
recall over a churn workload.

The study is one campaign: a variant axis (full structure vs the registered
``triangle_nohints`` ablation) crossed with seven workloads -- the six
scripted insertion orders (inline traces) plus the churn workload -- with the
``triangle_recall`` check producing the recall numerators/denominators.
Metrics are byte-identical to the previous bespoke runner.
"""

from __future__ import annotations

import itertools

import pytest

from repro.experiments import CampaignRunner, CampaignSpec, ExperimentSpec, ResultStore, run_cell

from benchmarks.harness import RESULTS_DIR, emit_table

TRIANGLE_EDGES = [(0, 1), (0, 2), (1, 2)]

ORDERS = list(itertools.permutations(TRIANGLE_EDGES))


def _order_trace(order) -> dict:
    """The insertion order as an inline scripted trace (one edge per round)."""
    return {
        "n": 4,
        "rounds": [{"insert": [list(edge)], "delete": []} for edge in order],
    }


ORDER_WORKLOADS = [
    {"adversary": "scripted", "n": 4, "adversary_params": {"trace": _order_trace(order)}}
    for order in ORDERS
]

CHURN_WORKLOAD = {
    "adversary": "churn",
    "n": 16,
    "seed": 3,
    "rounds": 150,
    "adversary_params": {"inserts_per_round": 3, "deletes_per_round": 2},
}

VARIANTS = [
    ("full Theorem 1 structure (with hints)", "triangle"),
    ("ablation: hints disabled (Theorem 7 knowledge only)", "triangle_nohints"),
]

CAMPAIGN = CampaignSpec(
    name="E13_ablation_hints",
    base={"checks": ["triangle_recall"]},
    grid={
        "algorithm": [name for _, name in VARIANTS],
        "workload": ORDER_WORKLOADS + [CHURN_WORKLOAD],
    },
)


def _order_cell(algorithm: str, order) -> ExperimentSpec:
    return ExperimentSpec.from_dict(
        {
            **CAMPAIGN.base,
            "algorithm": algorithm,
            "adversary": "scripted",
            "n": 4,
            "adversary_params": {"trace": _order_trace(order)},
        }
    )


def _churn_cell(algorithm: str) -> ExperimentSpec:
    return ExperimentSpec.from_dict(
        {**CAMPAIGN.base, "algorithm": algorithm, **CHURN_WORKLOAD}
    )


def _recall_over_orders(by_id, algorithm: str) -> float:
    """Fraction of (insertion order, member) pairs that know the triangle."""
    found = 0
    expected = 0
    for order in ORDERS:
        metrics = by_id[_order_cell(algorithm, order).cell_id]["metrics"]
        found += int(metrics["triangle_recall_found"])
        expected += int(metrics["triangle_recall_expected"])
    return found / expected


@pytest.mark.parametrize("label,algorithm", VARIANTS)
def test_ablation(benchmark, label, algorithm):
    def run_orders():
        found = 0
        expected = 0
        for order in ORDERS:
            metrics, _ = run_cell(_order_cell(algorithm, order))
            found += int(metrics["triangle_recall_found"])
            expected += int(metrics["triangle_recall_expected"])
        return found / expected

    recall = benchmark.pedantic(run_orders, rounds=1, iterations=1)
    benchmark.extra_info["membership_recall_over_orders"] = recall
    if algorithm == "triangle":
        assert recall == 1.0
    else:
        assert recall < 1.0


def _emit_table_impl():
    store = ResultStore(RESULTS_DIR / "campaign_E13_ablation")
    report = CampaignRunner(CAMPAIGN, store).run(resume=False)
    assert not report.failed, report.failed
    by_id = {record["cell_id"]: record for record in report.records}

    rows = []
    for label, algorithm in VARIANTS:
        order_recall = _recall_over_orders(by_id, algorithm)
        churn_metrics = by_id[_churn_cell(algorithm).cell_id]["metrics"]
        rows.append(
            [
                label,
                round(order_recall, 3),
                round(churn_metrics["triangle_recall"], 3),
                round(churn_metrics["amortized_round_complexity"], 3),
            ]
        )
    emit_table(
        "E13_ablation_hints",
        [
            "variant",
            "membership recall over all insertion orders",
            "membership recall under churn",
            "amortized rounds (churn)",
        ],
        rows,
        claim="design choice: the mark-(b) hints are what close the gap from robust 2-hop to full triangle membership",
    )
    # The full structure is perfect; the ablation misses a sizable fraction.
    assert rows[0][1] == 1.0 and rows[0][2] == 1.0
    assert rows[1][1] < 1.0


def test_emit_table(benchmark, results_dir):
    """Regenerate and persist this experiment's table (runs under --benchmark-only)."""
    benchmark.pedantic(_emit_table_impl, rounds=1, iterations=1)
