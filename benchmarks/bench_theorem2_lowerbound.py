"""E6 -- Theorem 2 / Corollary 2: non-clique membership listing needs ~n/log n.

Runs the Theorem 2 rewiring adversary for several non-clique patterns against
the Lemma 1 baseline (the natural algorithm able to answer such membership
queries) and, for contrast, against the Theorem 1 clique structure.  The bench
reports the measured amortized complexity next to the information-theoretic
bound recomputed from the proof, and asserts the expected shape: the baseline's
cost grows with n while the clique structure's stays constant.

The sweep is one campaign (pattern x size x algorithm) executed through the
experiment-campaign subsystem; metrics are byte-identical to the previous
bespoke runner.
"""

from __future__ import annotations

import pytest

from repro.analysis import growth_exponent, theorem2_lower_bound
from repro.core.membership import PATTERNS
from repro.experiments import CampaignRunner, CampaignSpec, ExperimentSpec, ResultStore, run_cell

from benchmarks.harness import RESULTS_DIR, emit_table

SIZES = [16, 32, 64]
PATTERN_NAMES = ["P3", "P4", "diamond"]
ITERATIONS = 8

CAMPAIGN = CampaignSpec(
    name="E6_theorem2_membership",
    base={
        "adversary": "theorem2",
        "adversary_params": {"num_iterations": ITERATIONS},
    },
    grid={
        "adversary_params.pattern": PATTERN_NAMES,
        "n": SIZES,
        "algorithm": ["twohop", "triangle"],
    },
)


def _cell(algorithm: str, n: int, pattern_name: str) -> ExperimentSpec:
    return ExperimentSpec.from_dict(
        {
            **CAMPAIGN.base,
            "algorithm": algorithm,
            "n": n,
            "adversary_params": {"num_iterations": ITERATIONS, "pattern": pattern_name},
        }
    )


@pytest.mark.parametrize("n", SIZES)
def test_lemma1_baseline_under_theorem2_adversary(benchmark, n):
    metrics, _ = benchmark.pedantic(
        run_cell, args=(_cell("twohop", n, "P3"),), rounds=1, iterations=1
    )
    benchmark.extra_info["amortized_round_complexity"] = metrics["amortized_round_complexity"]


def _emit_table_impl():
    store = ResultStore(RESULTS_DIR / "campaign_E6_theorem2")
    report = CampaignRunner(CAMPAIGN, store).run(resume=False)
    assert not report.failed, report.failed
    by_id = {record["cell_id"]: record for record in report.records}

    def metrics_for(algorithm: str, n: int, pattern_name: str):
        return by_id[_cell(algorithm, n, pattern_name).cell_id]["metrics"]

    rows = []
    p3_costs = []
    for pattern_name in PATTERN_NAMES:
        for n in SIZES:
            baseline = metrics_for("twohop", n, pattern_name)
            clique_struct = metrics_for("triangle", n, pattern_name)
            bound = theorem2_lower_bound(n, PATTERNS[pattern_name].k)
            rows.append(
                [
                    pattern_name,
                    n,
                    int(baseline["total_changes"]),
                    round(baseline["amortized_round_complexity"], 4),
                    round(clique_struct["amortized_round_complexity"], 4),
                    round(bound.amortized_lower_bound, 4),
                ]
            )
            if pattern_name == "P3":
                p3_costs.append((n, baseline["amortized_round_complexity"]))
    emit_table(
        "E6_theorem2_membership_lower_bound",
        [
            "pattern H",
            "n",
            "changes",
            "Lemma 1 baseline amortized rounds",
            "clique structure amortized rounds",
            "counting bound (proof constants)",
        ],
        rows,
        claim="Theorem 2: membership listing of any non-clique H needs Omega(n / log n) amortized rounds",
    )
    # Shape: the baseline's cost grows clearly with n ...
    sizes = [n for n, _ in p3_costs]
    values = [max(v, 1e-6) for _, v in p3_costs]
    assert values[-1] > 1.5 * values[0]
    assert growth_exponent(sizes, values) > 0.3
    # ... while the clique structure stays constant (<= 3) on every row.
    assert all(row[4] <= 3.0 + 1e-9 for row in rows)


def test_emit_table(benchmark, results_dir):
    """Regenerate and persist this experiment's table (runs under --benchmark-only)."""
    benchmark.pedantic(_emit_table_impl, rounds=1, iterations=1)
