"""E2 -- Theorem 1: triangle membership listing in O(1) amortized rounds.

Measures the amortized round complexity of the triangle membership structure
under uniform random churn and under heavy-tailed P2P churn, across network
sizes, together with the end-of-run correctness check (every node's triangle
list equals the centralized ground truth).  The paper's accounting bounds the
ratio by 3; the bench asserts the measured ratio stays below that constant and
does not grow with n.
"""

from __future__ import annotations

import pytest

from repro.adversary import HeavyTailedChurnAdversary, RandomChurnAdversary
from repro.analysis import growth_exponent
from repro.core import TriangleMembershipNode
from repro.oracle import triangles_containing

from conftest import emit_table, run_experiment

SIZES = [16, 32, 64]


def _run_churn(n: int, seed: int = 0):
    return run_experiment(
        TriangleMembershipNode,
        RandomChurnAdversary(
            n, num_rounds=150, inserts_per_round=3, deletes_per_round=2, seed=seed
        ),
        n,
    )


def _run_p2p(n: int, seed: int = 0):
    return run_experiment(
        TriangleMembershipNode,
        HeavyTailedChurnAdversary(n, num_rounds=150, seed=seed),
        n,
    )


@pytest.mark.parametrize("n", SIZES)
def test_random_churn(benchmark, n):
    result = benchmark.pedantic(_run_churn, args=(n,), rounds=1, iterations=1)
    benchmark.extra_info["amortized_round_complexity"] = result.amortized_round_complexity
    assert result.metrics.max_running_amortized_complexity() <= 3.0 + 1e-9


def _emit_table_impl():
    rows = []
    churn_measure = []
    for n in SIZES:
        for label, result in (("uniform", _run_churn(n)), ("p2p heavy-tailed", _run_p2p(n))):
            correct = all(
                node.known_triangles() == triangles_containing(result.network.edges, v)
                for v, node in result.nodes.items()
            )
            rows.append(
                [
                    n,
                    label,
                    result.metrics.total_changes,
                    round(result.amortized_round_complexity, 4),
                    round(result.metrics.max_running_amortized_complexity(), 4),
                    correct,
                ]
            )
            if label == "uniform":
                churn_measure.append((n, result.amortized_round_complexity))
            assert correct
    emit_table(
        "E2_theorem1_triangle_membership",
        ["n", "workload", "changes", "amortized rounds", "worst prefix", "matches oracle"],
        rows,
        claim="Theorem 1: O(1) amortized rounds (accounting constant 3)",
    )
    sizes = [n for n, _ in churn_measure]
    values = [max(v, 1e-6) for _, v in churn_measure]
    assert growth_exponent(sizes, values) < 0.25
    assert all(v <= 3.0 + 1e-9 for v in values)


def test_emit_table(benchmark, results_dir):
    """Regenerate and persist this experiment's table (runs under --benchmark-only)."""
    benchmark.pedantic(_emit_table_impl, rounds=1, iterations=1)
