"""E2 -- Theorem 1: triangle membership listing in O(1) amortized rounds.

Measures the amortized round complexity of the triangle membership structure
under uniform random churn and under heavy-tailed P2P churn, across network
sizes, together with the end-of-run correctness check (every node's triangle
list equals the centralized ground truth).  The paper's accounting bounds the
ratio by 3; the bench asserts the measured ratio stays below that constant and
does not grow with n.

The sweep is expressed as a :class:`~repro.experiments.spec.CampaignSpec`
(sizes x workloads) and executed through the experiment-campaign subsystem;
per-cell results and realized traces land under ``benchmarks/results/``.
"""

from __future__ import annotations

import pytest

from repro.analysis import growth_exponent
from repro.experiments import CampaignRunner, CampaignSpec, ExperimentSpec, ResultStore, run_cell

from benchmarks.harness import RESULTS_DIR, emit_table

SIZES = [16, 32, 64]

CHURN_PARAMS = {"inserts_per_round": 3, "deletes_per_round": 2}

CAMPAIGN = CampaignSpec(
    name="E2_theorem1_triangle",
    base={"algorithm": "triangle", "rounds": 150, "checks": ["triangle_oracle"]},
    grid={
        "n": SIZES,
        "workload": [
            {"adversary": "churn", "adversary_params": CHURN_PARAMS},
            {"adversary": "p2p", "adversary_params": {}},
        ],
    },
)

WORKLOAD_LABELS = {"churn": "uniform", "p2p": "p2p heavy-tailed"}


def _churn_cell(n: int, seed: int = 0) -> ExperimentSpec:
    return ExperimentSpec.from_dict(
        {
            **CAMPAIGN.base,
            "adversary": "churn",
            "adversary_params": dict(CHURN_PARAMS),
            "n": n,
            "seed": seed,
        }
    )


@pytest.mark.parametrize("n", SIZES)
def test_random_churn(benchmark, n):
    metrics, _ = benchmark.pedantic(run_cell, args=(_churn_cell(n),), rounds=1, iterations=1)
    benchmark.extra_info["amortized_round_complexity"] = metrics["amortized_round_complexity"]
    assert metrics["max_running_amortized_complexity"] <= 3.0 + 1e-9
    assert metrics["triangle_matches_oracle"] == 1.0


def _emit_table_impl():
    store = ResultStore(RESULTS_DIR / "campaign_E2_theorem1")
    report = CampaignRunner(CAMPAIGN, store).run(resume=False)
    assert not report.failed, report.failed
    by_id = {record["cell_id"]: record for record in report.records}

    rows = []
    churn_measure = []
    for cell in CAMPAIGN.expand():
        metrics = by_id[cell.cell_id]["metrics"]
        correct = metrics["triangle_matches_oracle"] == 1.0
        rows.append(
            [
                cell.n,
                WORKLOAD_LABELS[cell.adversary],
                int(metrics["total_changes"]),
                round(metrics["amortized_round_complexity"], 4),
                round(metrics["max_running_amortized_complexity"], 4),
                correct,
            ]
        )
        if cell.adversary == "churn":
            churn_measure.append((cell.n, metrics["amortized_round_complexity"]))
        assert correct
    emit_table(
        "E2_theorem1_triangle_membership",
        ["n", "workload", "changes", "amortized rounds", "worst prefix", "matches oracle"],
        rows,
        claim="Theorem 1: O(1) amortized rounds (accounting constant 3)",
    )
    sizes = [n for n, _ in churn_measure]
    values = [max(v, 1e-6) for _, v in churn_measure]
    assert growth_exponent(sizes, values) < 0.25
    assert all(v <= 3.0 + 1e-9 for v in values)


def test_emit_table(benchmark, results_dir):
    """Regenerate and persist this experiment's table (runs under --benchmark-only)."""
    benchmark.pedantic(_emit_table_impl, rounds=1, iterations=1)
