"""Benchmark harness package (one module per experiment of EXPERIMENTS.md).

Making this directory a package gives its ``conftest.py`` the import name
``benchmarks.conftest``, so it can never shadow the top-level ``conftest``
module of the tier-1 test-suite under ``tests/`` (which bench modules used to
collide with when pytest collected both directories from the repo root).
"""
