"""The Theorem 2 adversary in action: non-clique membership listing is expensive.

Theorem 2 shows that membership listing of any k-vertex pattern other than the
k-clique costs Ω(n / log n) amortized rounds.  This example makes the
separation tangible:

* the *only* general-purpose algorithm that can answer such queries -- the full
  2-hop listing baseline of Lemma 1 -- is run against the Theorem 2 adversary
  for the pattern P3 (a path on three vertices) at several network sizes, and
  its measured amortized cost grows with n;
* the triangle membership structure (which only promises clique queries) is run
  against the same adversary and stays at a small constant;
* the information-theoretic bound from the proof is evaluated alongside.

Run with::

    python examples/lower_bound_demo.py
"""

from __future__ import annotations

from repro import MembershipLowerBoundAdversary, SimulationRunner
from repro.analysis import format_table, theorem2_lower_bound
from repro.core import TriangleMembershipNode, TwoHopListingNode
from repro.core.membership import PATTERNS


def measure(factory, n: int, iterations: int) -> float:
    adversary = MembershipLowerBoundAdversary(n, PATTERNS["P3"], num_iterations=iterations)
    runner = SimulationRunner(n=n, algorithm_factory=factory, adversary=adversary)
    result = runner.run()
    return result.amortized_round_complexity


def main() -> None:
    sizes = [16, 32, 64]
    iterations = 8
    rows = []
    for n in sizes:
        lemma1_cost = measure(TwoHopListingNode, n, iterations)
        triangle_cost = measure(TriangleMembershipNode, n, iterations)
        bound = theorem2_lower_bound(n, k=3)
        rows.append(
            [
                n,
                round(lemma1_cost, 3),
                round(triangle_cost, 3),
                round(bound.amortized_lower_bound, 3),
            ]
        )

    print("Theorem 2 adversary (pattern P3), measured amortized round complexity:\n")
    print(
        format_table(
            [
                "n",
                "Lemma 1 baseline (P3 membership)",
                "Theorem 1 structure (cliques only)",
                "counting bound Ω(n/log n) (proof constants)",
            ],
            rows,
        )
    )
    print(
        "\nThe P3-capable baseline gets more expensive as n grows, while the"
        "\nclique-membership structure stays at a constant -- the complexity"
        "\nlandscape of Theorems 1 and 2."
    )


if __name__ == "__main__":
    main()
