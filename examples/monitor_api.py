"""Using the application-facing DynamicGraphMonitor API.

The other examples are phrased as experiments (an adversary plays against an
algorithm).  Real applications usually just *have* a stream of link up/down
events -- an overlay manager, a service mesh, a wireless testbed -- and want to
ask structural questions while the graph keeps changing.  That is what
:class:`repro.DynamicGraphMonitor` is for: feed it each tick's changes, and
query any node; answers are definite or explicitly "still propagating", and
the paper's O(1) amortized-complexity guarantee caps how often the latter can
happen per change.

The scenario below maintains a small service-overlay graph, watches one
"tenant group" of nodes, and reports when that group becomes a fully-meshed
clique (a common trigger for switching from relayed to direct communication).

Run with::

    python examples/monitor_api.py
"""

from __future__ import annotations

import itertools

from repro import DynamicGraphMonitor


def main() -> None:
    n = 20
    group = [2, 5, 7, 11]
    monitor = DynamicGraphMonitor(n=n, structure="clique")

    # A scripted stream of link events: background links plus the tenant
    # group's links coming up one by one (with one flap in the middle).
    group_links = list(itertools.combinations(group, 2))
    event_stream = [
        {"insert": [(0, 1), (1, 2)]},
        {"insert": [(2, 3), (3, 4), (0, 4)]},
        {"insert": [group_links[0], group_links[1]]},
        {"insert": [group_links[2]], "delete": [(1, 2)]},
        {"insert": [group_links[3], group_links[4]]},
        {"delete": [group_links[0]]},          # flap ...
        {"insert": [(6, 12), (12, 13)]},
        {"insert": [group_links[0]]},          # ... and recovery
        {"insert": [group_links[5]]},          # the mesh is now complete
        {"insert": [(13, 14), (14, 15)]},
        {},                                    # quiet ticks: announcements drain
        {},
        {},
    ]

    became_clique_at = None
    for tick, events in enumerate(event_stream, start=1):
        monitor.update(insert=events.get("insert", ()), delete=events.get("delete", ()))
        answer = monitor.is_clique(group)
        if not answer.definite:
            status = "propagating..."
        elif answer.value:
            status = "FULL MESH"
            if became_clique_at is None:
                became_clique_at = tick
        else:
            status = "not meshed yet"
        print(f"tick {tick:2d}: group {group} -> {status}")

    # Give the structures a few quiet ticks to finish propagating, then confirm.
    settled_rounds = monitor.settle()
    final = monitor.is_clique(group)
    print(f"\nafter {settled_rounds} more quiet ticks: group meshed = {final.value}")
    when = became_clique_at if became_clique_at is not None else "after settling"
    print(f"first observed as a full mesh: tick {when}")
    print(f"members' own views: "
          f"{[sorted(map(sorted, monitor.cliques_of(v, len(group)))) for v in group[:1]][0]}")
    print(f"amortized round complexity so far: {monitor.amortized_round_complexity:.3f} "
          f"(the paper bounds this by a constant)")
    assert final.value is True


if __name__ == "__main__":
    main()
