"""The Section 1.3 flickering adversary: why timestamps are necessary.

The paper motivates its robust-neighborhood machinery with a deceptively
simple strawman: "just forward your incident edge changes to your neighbors".
This example runs the exact bad-case schedule from Section 1.3 against

* that strawman (:class:`~repro.core.naive.NaiveForwardingNode`), and
* the paper's triangle membership structure (Theorem 1),

and prints what each of them believes about the triangle {v, u, w} after the
far edge {u, w} has been deleted behind a screen of flickering incident edges.
The strawman ends up *consistent but wrong*; the paper's structure is right.

Run with::

    python examples/flickering_adversary.py
"""

from __future__ import annotations

from repro import FlickerTriangleAdversary, SimulationRunner
from repro.core import NaiveForwardingNode, TriangleMembershipNode, TriangleQuery


def run_with(algorithm_factory):
    adversary = FlickerTriangleAdversary()
    runner = SimulationRunner(
        n=9,
        algorithm_factory=algorithm_factory,
        adversary=adversary,
    )
    result = runner.run()
    v, u, w = adversary.v, adversary.u, adversary.w
    node_v = result.nodes[v]
    return adversary, result, node_v.query(TriangleQuery({v, u, w})), node_v.is_consistent()


def main() -> None:
    print("Section 1.3 schedule: triangle {0,1,2}; the far edge {1,2} is deleted while")
    print("the edges {0,1} and {0,2} flicker exactly in the announcement rounds.\n")

    adversary, result, naive_answer, naive_consistent = run_with(NaiveForwardingNode)
    exists = result.network.has_edge(adversary.u, adversary.w)
    print(f"ground truth: edge {{u, w}} = {adversary.doomed_edge} exists? {exists}")
    print(f"naive forwarding  : consistent={naive_consistent}, "
          f"'is {{v,u,w}} a triangle?' -> {naive_answer.value}   <-- WRONG")

    _, _, robust_answer, robust_consistent = run_with(TriangleMembershipNode)
    print(f"Theorem 1 structure: consistent={robust_consistent}, "
          f"'is {{v,u,w}} a triangle?' -> {robust_answer.value}  <-- correct")

    assert naive_answer.value == "true" and robust_answer.value == "false"
    print("\nThe timestamp/claim machinery of the robust 2-hop neighborhood is exactly")
    print("what prevents the flickering edges from hiding the deletion.")


if __name__ == "__main__":
    main()
