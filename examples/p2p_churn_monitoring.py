"""Monitoring cliques in a peer-to-peer overlay with heavy-tailed churn.

The paper motivates the highly dynamic model with large peer-to-peer systems
whose peers have short, heavy-tailed session lengths.  This example simulates
such an overlay: peers come online, connect to a few random online peers, stay
for a Pareto-distributed number of rounds and disappear, taking all their
links with them -- an arbitrary number of topology changes per round.

Every peer runs the k-clique membership structure of Corollary 1.  A
monitoring loop periodically asks a sample of peers which triangles and
4-cliques they currently belong to (densely interconnected peer groups are a
common building block for, e.g., gossip redundancy decisions), and the example
reports how often the data structure could answer immediately versus how often
it had to report "inconsistent" -- together with the amortized complexity that
the paper bounds by a constant.

Run with::

    python examples/p2p_churn_monitoring.py
"""

from __future__ import annotations

from repro import HeavyTailedChurnAdversary, SimulationRunner
from repro.core import CliqueMembershipNode, QueryResult, TriangleQuery
from repro.oracle import GroundTruthOracle
from repro.simulator.adversary import AdversaryView


def main() -> None:
    n = 60
    num_rounds = 500
    adversary = HeavyTailedChurnAdversary(
        n,
        num_rounds=num_rounds,
        target_degree=3,
        pareto_shape=1.5,
        mean_session=45.0,
        offline_probability=0.08,
        seed=7,
    )
    oracle = GroundTruthOracle(n)

    answered = 0
    inconsistent = 0
    triangles_seen = 0

    def monitor(round_index, network, nodes) -> None:
        """Every 25 rounds, poll a handful of peers for their triangles."""
        nonlocal answered, inconsistent, triangles_seen
        oracle.observe(network)
        if round_index % 25 != 0:
            return
        for v in range(0, n, n // 6):
            node = nodes[v]
            if not node.is_consistent():
                inconsistent += 1
                continue
            known = node.known_triangles()
            answered += 1
            triangles_seen += len(known)
            # Spot-check one of them against the ground truth.
            if known:
                tri = next(iter(known))
                assert node.query(TriangleQuery(tri)) is QueryResult.TRUE
                assert oracle.is_triangle(tri)

    runner = SimulationRunner(
        n=n,
        algorithm_factory=CliqueMembershipNode,
        adversary=adversary,
    )
    runner.add_validator(monitor)

    print(f"simulating {num_rounds} rounds of heavy-tailed churn over {n} peers ...")
    result = runner.run()

    metrics = result.metrics
    print(f"  topology changes (session arrivals/departures): {metrics.total_changes}")
    print(f"  amortized round complexity (paper: O(1))      : "
          f"{metrics.amortized_round_complexity():.3f}")
    print(f"  monitoring polls answered immediately          : {answered}")
    print(f"  monitoring polls answered 'inconsistent'       : {inconsistent}")
    print(f"  triangles observed across polls                : {triangles_seen}")

    # Final sanity check: every peer's 4-clique knowledge matches the oracle.
    mismatches = 0
    for v, node in result.nodes.items():
        if node.known_cliques(4) != oracle.cliques_containing(v, 4):
            mismatches += 1
    print(f"  final 4-clique knowledge mismatches vs oracle  : {mismatches}")
    assert mismatches == 0


if __name__ == "__main__":
    main()
