"""Quickstart: triangle membership listing in a highly dynamic network.

This example builds a 30-node network subjected to random churn (a few edge
insertions and deletions every round), runs the Theorem 1 data structure on
every node, and then:

1. reports the amortized round complexity (the paper's measure -- it stays a
   small constant no matter how long the run is);
2. queries a few nodes for the triangles they belong to and cross-checks the
   answers against a centralized view of the final graph.

The centralized view is the *incremental* ground-truth oracle: observing
every round costs it O(changes), not O(|E|), and its history lives in a
delta log instead of one snapshot per round -- the memory line below shows
the stored-entry count staying proportional to the churn.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import RandomChurnAdversary, SimulationRunner, TriangleMembershipNode
from repro.core import QueryResult, TriangleQuery
from repro.oracle import GroundTruthOracle


def main() -> None:
    n = 30
    adversary = RandomChurnAdversary(
        n,
        num_rounds=400,
        inserts_per_round=3,
        deletes_per_round=2,
        seed=42,
    )
    oracle = GroundTruthOracle(n)

    runner = SimulationRunner(
        n=n,
        algorithm_factory=TriangleMembershipNode,
        adversary=adversary,
    )
    runner.add_validator(oracle.validator())

    print("running 400 rounds of churn on", n, "nodes ...")
    result = runner.run()

    metrics = result.metrics
    print(f"  topology changes applied : {metrics.total_changes}")
    print(f"  rounds executed          : {metrics.rounds_executed}")
    print(f"  inconsistent rounds      : {metrics.inconsistent_rounds}")
    print(f"  amortized round complexity (paper: O(1)) : "
          f"{metrics.amortized_round_complexity():.3f}")
    print(f"  worst prefix of that ratio               : "
          f"{metrics.max_running_amortized_complexity():.3f}")
    print(f"  bandwidth: max message = {result.bandwidth.max_observed_bits} bits, "
          f"budget = {result.bandwidth.budget_bits(n)} bits")
    memory = oracle.memory_profile()
    print(f"  oracle history: {memory['num_deltas']} round deltas + "
          f"{memory['num_keyframes']} keyframes "
          f"({memory['snapshot_edge_entries']} stored edge entries)")

    # Query a few nodes about the triangles they belong to.
    print("\ntriangle membership queries (node vs. centralized ground truth):")
    shown = 0
    for v in range(n):
        node = result.nodes[v]
        truth = oracle.triangles_containing(v)
        if not truth:
            continue
        triangle = sorted(next(iter(truth)))
        answer = node.query(TriangleQuery(triangle))
        print(f"  node {v:2d}: is {triangle} a triangle?  ->  {answer.value}"
              f"   (knows {len(node.known_triangles())} triangles, "
              f"oracle says {len(truth)})")
        assert answer is QueryResult.TRUE
        assert node.known_triangles() == truth
        shown += 1
        if shown >= 5:
            break
    print("\nall queried answers match the ground truth.")


if __name__ == "__main__":
    main()
