"""Listing 4-cycles and 5-cycles in a dynamic graph (Theorems 3 / 5).

Cycle *listing* is a collective guarantee: for every 4-cycle or 5-cycle of the
graph, at least one of its members must answer TRUE when queried (or admit it
is still inconsistent).  This example plants cycles edge-by-edge in random
order amid background churn, then queries **all** members of every cycle of
the final graph and verifies the collective guarantee, reporting which member
"caught" each cycle.

Run with::

    python examples/cycle_listing_dynamic.py
"""

from __future__ import annotations

from repro import SimulationRunner
from repro.core import CycleListingNode
from repro.oracle import cycles_of_length
from repro.workloads import planted_cycle_churn


def main() -> None:
    n = 16
    print("building a dynamic graph with planted 4-cycles and 5-cycles ...")

    for k in (4, 5):
        adversary, plants = planted_cycle_churn(n, k, num_plants=3, seed=k, teardown=False)
        runner = SimulationRunner(
            n=n,
            algorithm_factory=CycleListingNode,
            adversary=adversary,
        )
        result = runner.run()
        network = result.network

        cycles = cycles_of_length(network.edges, k)
        print(f"\n{k}-cycles in the final graph: {len(cycles)} "
              f"(amortized round complexity {result.amortized_round_complexity:.3f})")
        for cycle in sorted(cycles, key=sorted):
            holders = [
                v
                for v in sorted(cycle)
                if result.nodes[v].is_consistent()
                and result.nodes[v].knows_cycle_set(cycle)
            ]
            print(f"  cycle {sorted(cycle)}: listed by nodes {holders}")
            assert holders, f"no member listed the cycle {sorted(cycle)}"

    print("\nevery cycle was listed by at least one of its members, as Theorem 5 requires.")


if __name__ == "__main__":
    main()
