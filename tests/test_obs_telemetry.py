"""Unit tests for the telemetry registry, histograms and the JSONL sink."""

from __future__ import annotations

import json
import time

import pytest

from repro.obs import (
    SIZE_BUCKETS,
    TIME_BUCKETS,
    Histogram,
    Telemetry,
    TelemetrySink,
    load_final_snapshot,
)


class TestHistogram:
    def test_observe_tracks_exact_sidecars(self):
        hist = Histogram([1.0, 10.0, 100.0])
        for value in (0.5, 5.0, 50.0, 500.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.total == pytest.approx(555.5)
        assert hist.min == 0.5
        assert hist.max == 500.0
        assert hist.mean == pytest.approx(555.5 / 4)
        assert hist.counts == [1, 1, 1, 1]  # one overflow observation

    def test_bucket_bounds_are_inclusive(self):
        hist = Histogram([1.0, 10.0])
        hist.observe(1.0)
        hist.observe(10.0)
        assert hist.counts == [1, 1, 0]

    def test_percentile_interpolates_within_bucket(self):
        hist = Histogram([0.0, 100.0])
        for _ in range(100):
            hist.observe(60.0)
        # All mass in the (0, 100] bucket; interpolation is clamped to the
        # exact observed extremes, so every percentile reports 60.
        assert hist.percentile(50) == pytest.approx(60.0)
        assert hist.percentile(99) == pytest.approx(60.0)

    def test_percentile_overflow_reports_exact_max(self):
        hist = Histogram([1.0])
        hist.observe(123.0)
        assert hist.percentile(99) == 123.0

    def test_percentile_of_empty_is_zero(self):
        assert Histogram([1.0]).percentile(95) == 0.0

    def test_percentile_rejects_bad_q(self):
        with pytest.raises(ValueError):
            Histogram([1.0]).percentile(101)

    def test_merge_sums_counts_and_extremes(self):
        a, b = Histogram([1.0, 10.0]), Histogram([1.0, 10.0])
        a.observe(0.5)
        b.observe(5.0)
        b.observe(20.0)
        a.merge(b)
        assert a.count == 3
        assert a.counts == [1, 1, 1]
        assert a.min == 0.5 and a.max == 20.0

    def test_merge_rejects_mismatched_buckets(self):
        with pytest.raises(ValueError, match="different buckets"):
            Histogram([1.0]).merge(Histogram([2.0]))

    def test_dict_round_trip(self):
        hist = Histogram(TIME_BUCKETS)
        for value in (1e-5, 3e-3, 0.2):
            hist.observe(value)
        clone = Histogram.from_dict(json.loads(json.dumps(hist.to_dict())))
        assert clone.to_dict() == hist.to_dict()
        assert clone.percentile(95) == hist.percentile(95)

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram([2.0, 1.0])

    def test_rejects_empty_buckets(self):
        with pytest.raises(ValueError):
            Histogram([])

    def test_default_ladders_are_increasing(self):
        assert list(TIME_BUCKETS) == sorted(TIME_BUCKETS)
        assert list(SIZE_BUCKETS) == sorted(SIZE_BUCKETS)


class TestTelemetryDisabled:
    def test_disabled_collection_is_a_no_op(self):
        tel = Telemetry()
        tel.count("x")
        tel.gauge("g", 1)
        tel.observe("h", 0.5)
        tel.record_span("s", 0.1)
        tel.tick()
        assert tel.counters == {} and tel.gauges == {}
        assert tel.spans == {} and tel.histograms == {}
        assert tel.ticks == 0

    def test_disabled_span_is_the_shared_noop(self):
        tel = Telemetry()
        # Identity: the disabled path allocates nothing per call.
        assert tel.span("a") is tel.span("b")
        with tel.span("a"):
            pass
        assert tel.spans == {}

    def test_disabled_calls_are_cheap(self):
        # Overhead guard with a generous absolute bound: 100k disabled
        # counter bumps must stay well under a second even on slow CI.
        tel = Telemetry()
        best = min(
            _timed(lambda: [tel.count("x") for _ in range(100_000)])
            for _ in range(3)
        )
        assert best < 0.5


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


class TestTelemetryEnabled:
    def test_counters_and_gauges(self):
        tel = Telemetry()
        tel.enable()
        tel.count("events")
        tel.count("events", 4)
        tel.gauge("level", "high")
        tel.gauge("level", "low")
        assert tel.counters == {"events": 5}
        assert tel.gauges == {"level": "low"}

    def test_span_records_count_total_max(self):
        tel = Telemetry()
        tel.enable()
        tel.record_span("stage", 0.2)
        tel.record_span("stage", 0.5)
        count, total, peak = tel.spans["stage"]
        assert count == 2
        assert total == pytest.approx(0.7)
        assert peak == pytest.approx(0.5)

    def test_span_context_manager_times_the_block(self):
        tel = Telemetry()
        tel.enable()
        with tel.span("sleepy"):
            time.sleep(0.01)
        count, total, _ = tel.spans["sleepy"]
        assert count == 1 and total >= 0.009

    def test_spans_nest_without_corruption(self):
        tel = Telemetry()
        tel.enable()
        with tel.span("outer"):
            with tel.span("inner"):
                pass
            with tel.span("inner"):
                pass
        assert tel.spans["inner"][0] == 2
        assert tel.spans["outer"][0] == 1
        assert tel.spans["outer"][1] >= tel.spans["inner"][1]

    def test_span_is_exception_safe(self):
        tel = Telemetry()
        tel.enable()
        with pytest.raises(RuntimeError):
            with tel.span("doomed"):
                raise RuntimeError("boom")
        assert tel.spans["doomed"][0] == 1

    def test_enable_resets_previous_state(self):
        tel = Telemetry()
        tel.enable()
        tel.count("old")
        tel.enable(label="second")
        assert tel.counters == {}
        assert tel.label == "second"

    def test_snapshot_is_json_ready(self):
        tel = Telemetry()
        tel.enable(label="cell-1")
        tel.count("c")
        tel.observe("h", 2.0, SIZE_BUCKETS)
        with tel.span("s"):
            pass
        snap = json.loads(json.dumps(tel.snapshot(final=True)))
        assert snap["label"] == "cell-1"
        assert snap["final"] is True
        assert snap["counters"] == {"c": 1}
        assert snap["spans"]["s"]["count"] == 1
        assert snap["histograms"]["h"]["count"] == 1


class TestTelemetrySink:
    def test_interval_zero_flushes_every_tick(self, tmp_path):
        path = tmp_path / "t" / "cell.jsonl"
        tel = Telemetry()
        tel.enable(sink=TelemetrySink(path, interval_s=0.0), label="cell")
        tel.count("rounds")
        tel.tick()
        tel.count("rounds")
        tel.tick()
        tel.disable()
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert len(lines) == 3  # two ticks + the final close flush
        assert lines[-1]["final"] is True
        # Snapshots are cumulative: the final line carries the whole run.
        assert lines[-1]["counters"] == {"rounds": 2}

    def test_long_interval_still_writes_first_and_final(self, tmp_path):
        path = tmp_path / "cell.jsonl"
        tel = Telemetry()
        tel.enable(sink=TelemetrySink(path, interval_s=3600.0))
        for _ in range(5):
            tel.tick()
        tel.disable()
        lines = path.read_text().splitlines()
        assert len(lines) == 2  # first tick + final
        assert json.loads(lines[-1])["final"] is True

    def test_disable_without_ticks_still_flushes_final(self, tmp_path):
        path = tmp_path / "cell.jsonl"
        tel = Telemetry()
        tel.enable(sink=TelemetrySink(path))
        tel.count("only")
        tel.disable()
        snap = load_final_snapshot(path)
        assert snap["final"] is True and snap["counters"] == {"only": 1}

    def test_rejects_negative_interval(self, tmp_path):
        with pytest.raises(ValueError):
            TelemetrySink(tmp_path / "x.jsonl", interval_s=-1.0)

    def test_load_final_snapshot_tolerates_torn_line(self, tmp_path):
        path = tmp_path / "cell.jsonl"
        tel = Telemetry()
        tel.enable(sink=TelemetrySink(path, interval_s=0.0))
        tel.count("c")
        tel.tick()
        tel.disable()
        with path.open("a") as handle:
            handle.write('{"torn": tru')  # crashed mid-append
        snap = load_final_snapshot(path)
        assert snap is not None and snap["counters"] == {"c": 1}

    def test_load_final_snapshot_missing_file(self, tmp_path):
        assert load_final_snapshot(tmp_path / "nope.jsonl") is None
