"""Tests for the query/answer dataclasses."""

import pytest

from repro.core.queries import (
    CliqueQuery,
    CycleQuery,
    EdgeQuery,
    QueryResult,
    TriangleQuery,
    TwoHopQuery,
)


class TestQueryResult:
    def test_of_lifts_booleans(self):
        assert QueryResult.of(True) is QueryResult.TRUE
        assert QueryResult.of(False) is QueryResult.FALSE

    def test_definite(self):
        assert QueryResult.TRUE.is_definite
        assert QueryResult.FALSE.is_definite
        assert not QueryResult.INCONSISTENT.is_definite


class TestEdgeQueries:
    def test_edge_query_canonicalises(self):
        assert EdgeQuery(5, 2).edge == (2, 5)
        assert TwoHopQuery(5, 2).edge == (2, 5)

    def test_edge_query_rejects_self_loop(self):
        query = EdgeQuery(3, 3)
        with pytest.raises(ValueError):
            _ = query.edge


class TestTriangleQuery:
    def test_requires_three_distinct_nodes(self):
        TriangleQuery({1, 2, 3})
        TriangleQuery([3, 1, 2])
        with pytest.raises(ValueError):
            TriangleQuery({1, 2})
        with pytest.raises(ValueError):
            TriangleQuery([1, 2, 2])

    def test_is_hashable_and_frozen(self):
        assert TriangleQuery({1, 2, 3}) == TriangleQuery([3, 2, 1])
        assert len({TriangleQuery({1, 2, 3}), TriangleQuery({3, 2, 1})}) == 1


class TestCliqueQuery:
    def test_requires_three_or_more(self):
        assert CliqueQuery({1, 2, 3, 4}).k == 4
        with pytest.raises(ValueError):
            CliqueQuery({1, 2})


class TestCycleQuery:
    def test_edges_of_ordering(self):
        query = CycleQuery((0, 1, 2, 3))
        assert set(query.edges) == {(0, 1), (1, 2), (2, 3), (0, 3)}
        assert query.k == 4

    def test_requires_distinct_nodes(self):
        with pytest.raises(ValueError):
            CycleQuery((0, 1, 0, 2))

    def test_requires_at_least_three(self):
        with pytest.raises(ValueError):
            CycleQuery((0, 1))
