"""Property-based tests (hypothesis) for the observability merge algebra.

Cross-process collection only works if merging is insensitive to *how* the
pieces arrive: shard counts, pipe arrival order and coordinator batching all
vary run to run, yet ``telemetry report`` must not.  So the merge primitives
need real algebraic properties:

* ``Histogram.merge`` is associative and commutative (fixed shared buckets
  make the bucket counts a plain vector sum);
* ``merge_snapshots`` is order-independent on counters, spans, histograms
  and tick totals (gauges are last-wins *by design* and excluded);
* the trace JSONL reader tolerates truncation at any byte — a worker killed
  mid-write yields a clean prefix of its events, never an exception.

Observed values are integer-valued floats so float sums are exact and the
properties can be asserted with ``==`` instead of tolerances.
"""

from __future__ import annotations

import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.obs import Histogram, Telemetry, TraceBuffer, merge_snapshots
from repro.obs.tracing import read_trace_jsonl, write_trace_jsonl

HYP_SETTINGS = dict(max_examples=40, deadline=None)

# Integer-valued floats: exactly representable, so sums are associative.
exact_floats = st.integers(min_value=0, max_value=1_000_000).map(float)
value_lists = st.lists(exact_floats, max_size=20)


def _histogram(values) -> Histogram:
    hist = Histogram()
    for value in values:
        hist.observe(value)
    return hist


def _as_tuple(hist: Histogram):
    return (tuple(hist.counts), hist.count, hist.total, hist.min, hist.max)


def _merged(*hists) -> Histogram:
    out = Histogram()
    for hist in hists:
        out.merge(hist)
    return out


class TestHistogramMergeAlgebra:
    @settings(**HYP_SETTINGS)
    @given(a=value_lists, b=value_lists)
    def test_merge_commutative(self, a, b):
        ab = _merged(_histogram(a), _histogram(b))
        ba = _merged(_histogram(b), _histogram(a))
        assert _as_tuple(ab) == _as_tuple(ba)

    @settings(**HYP_SETTINGS)
    @given(a=value_lists, b=value_lists, c=value_lists)
    def test_merge_associative(self, a, b, c):
        left = _merged(_merged(_histogram(a), _histogram(b)), _histogram(c))
        right = _merged(_histogram(a), _merged(_histogram(b), _histogram(c)))
        assert _as_tuple(left) == _as_tuple(right)

    @settings(**HYP_SETTINGS)
    @given(a=value_lists)
    def test_merge_matches_direct_observation(self, a):
        half = len(a) // 2
        merged = _merged(_histogram(a[:half]), _histogram(a[half:]))
        assert _as_tuple(merged) == _as_tuple(_histogram(a))


# One process's worth of telemetry, as strategy-built snapshot dicts.
metric_names = st.sampled_from(
    ["engine.round", "engine.compute", "engine.worker.compute",
     "engine.worker.deliver", "serve.ingest"]
)
snapshots = st.builds(
    lambda spans, counters, sizes: _snapshot_dict(spans, counters, sizes),
    spans=st.dictionaries(metric_names, value_lists, max_size=3),
    counters=st.dictionaries(metric_names, st.integers(0, 1000), max_size=3),
    sizes=value_lists,
)


def _snapshot_dict(spans, counters, sizes):
    telemetry = Telemetry(enabled=True)
    for name, durations in spans.items():
        for duration in durations:
            telemetry.record_span(name, duration)
    for name, value in counters.items():
        telemetry.count(name, value)
    for value in sizes:
        telemetry.observe("engine.active_set", value)
    snap = telemetry.snapshot(final=True)
    snap["ticks"] = len(sizes)
    return snap


def _comparable(merged):
    return (
        merged["counters"],
        merged["ticks"],
        {name: dict(stat) for name, stat in merged["spans"].items()},
        {name: _as_tuple(hist) for name, hist in merged["histograms"].items()},
    )


class TestMergeSnapshotsOrderIndependence:
    @settings(**HYP_SETTINGS)
    @given(
        snaps=st.lists(snapshots, min_size=1, max_size=4),
        data=st.data(),
    )
    def test_any_permutation_merges_identically(self, snaps, data):
        shuffled = data.draw(st.permutations(snaps))
        assert _comparable(merge_snapshots(shuffled)) == _comparable(
            merge_snapshots(snaps)
        )


class TestTraceTruncationTolerance:
    # tmp_path is function-scoped but every example rewrites the file from
    # scratch, so reuse across examples is safe.
    @settings(
        **HYP_SETTINGS,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        durations=st.lists(exact_floats, min_size=1, max_size=10),
        data=st.data(),
    )
    def test_truncation_yields_clean_event_prefix(self, durations, data, tmp_path):
        buffer = TraceBuffer(64, engine_mode="dense")
        buffer.wall0 = buffer.perf0 = 0.0
        for i, duration in enumerate(durations):
            buffer.add("engine.round", float(i * 10), float(i * 10) + duration,
                       round_index=i)
        path = tmp_path / "t.trace.jsonl"
        write_trace_jsonl(path, buffer)
        raw = path.read_bytes()
        cut = data.draw(st.integers(min_value=0, max_value=len(raw)))
        path.write_bytes(raw[:cut])
        events = read_trace_jsonl(path)  # must not raise
        assert events == buffer.events()[: len(events)]
