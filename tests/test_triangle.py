"""Tests for triangle membership listing (Theorem 1)."""

import itertools

import pytest

from repro.adversary import FlickerTriangleAdversary, RandomChurnAdversary
from repro.core import EdgeQuery, QueryResult, TriangleMembershipNode, TriangleQuery
from repro.oracle import triangle_pattern_set, triangles_containing

from conftest import run_schedule, run_simulation


def assert_equals_pattern_set(result):
    """Every node's known edges must equal T^{v,2} (Figure 2) of the final graph."""
    network = result.network
    times = network.insertion_times()
    for v, node in result.nodes.items():
        expected = triangle_pattern_set(network.edges, times, v)
        assert node.known_edges() == expected, (
            f"node {v}: expected {sorted(expected)}, got {sorted(node.known_edges())}"
        )


def assert_all_triangles_known(result):
    """Every node must know exactly the triangles it belongs to."""
    network = result.network
    for v, node in result.nodes.items():
        assert node.known_triangles() == triangles_containing(network.edges, v)


class TestInsertionOrders:
    @pytest.mark.parametrize("order", list(itertools.permutations([(0, 1), (0, 2), (1, 2)])))
    def test_triangle_membership_for_every_insertion_order(self, order):
        """All 3! edge insertion orders must make all three nodes aware (Section 1.3)."""
        schedule = [([edge], []) for edge in order]
        result, _ = run_schedule(TriangleMembershipNode, schedule, n=4)
        triangle = frozenset({0, 1, 2})
        for v in triangle:
            answer = result.nodes[v].query(TriangleQuery(triangle))
            assert answer is QueryResult.TRUE, f"node {v} missed the triangle for order {order}"
        assert_equals_pattern_set(result)

    @pytest.mark.parametrize("order", list(itertools.permutations([(0, 1), (0, 2), (1, 2)])))
    def test_far_edge_deletion_forgotten_for_every_order(self, order):
        """After deleting the far edge (1,2), node 0 must answer FALSE."""
        schedule = [([edge], []) for edge in order] + [None, ([], [(1, 2)])]
        result, _ = run_schedule(TriangleMembershipNode, schedule, n=4)
        assert result.nodes[0].query(TriangleQuery({0, 1, 2})) is QueryResult.FALSE
        assert_equals_pattern_set(result)


class TestMembershipSemantics:
    def test_non_triangle_is_false(self):
        result, _ = run_schedule(TriangleMembershipNode, [([(0, 1), (1, 2)], [])], n=4)
        assert result.nodes[1].query(TriangleQuery({0, 1, 2})) is QueryResult.FALSE

    def test_query_must_contain_the_node(self):
        result, _ = run_schedule(TriangleMembershipNode, [([(0, 1)], [])], n=5)
        with pytest.raises(ValueError):
            result.nodes[4].query(TriangleQuery({0, 1, 2}))

    def test_edge_query_reports_pattern_set(self):
        result, _ = run_schedule(
            TriangleMembershipNode, [([(0, 1)], []), ([(1, 2)], [])], n=4
        )
        assert result.nodes[0].query(EdgeQuery(1, 2)) is QueryResult.TRUE
        assert result.nodes[0].query(EdgeQuery(2, 3)) is QueryResult.FALSE

    def test_inconsistent_during_burst(self):
        result, _ = run_schedule(
            TriangleMembershipNode,
            [([(0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (2, 3)], [])],
            n=4,
            drain=False,
        )
        assert any(
            node.query(TriangleQuery({0, 1, 2})) is QueryResult.INCONSISTENT
            for v, node in result.nodes.items()
            if v in {0, 1, 2}
        )

    def test_rejects_wrong_query_type(self):
        node = TriangleMembershipNode(0, 4)
        with pytest.raises(TypeError):
            node.query(42)


class TestDeletionsAndRewiring:
    def test_vertex_detachment_removes_triangles(self):
        # Build a triangle then cut node 0 off entirely.
        result, _ = run_schedule(
            TriangleMembershipNode,
            [
                ([(0, 1), (0, 2), (1, 2)], []),
                None,
                ([], [(0, 1), (0, 2)]),
            ],
            n=4,
        )
        assert result.nodes[0].known_triangles() == set()
        assert result.nodes[1].known_triangles() == set()
        assert_equals_pattern_set(result)

    def test_triangle_reappears_after_reinsertion(self):
        result, _ = run_schedule(
            TriangleMembershipNode,
            [
                ([(0, 1), (0, 2), (1, 2)], []),
                None,
                ([], [(1, 2)]),
                None,
                ([(1, 2)], []),
            ],
            n=4,
        )
        for v in (0, 1, 2):
            assert result.nodes[v].query(TriangleQuery({0, 1, 2})) is QueryResult.TRUE
        assert_all_triangles_known(result)

    def test_two_triangles_sharing_an_edge(self):
        result, _ = run_schedule(
            TriangleMembershipNode,
            [
                ([(0, 1)], []),
                ([(1, 2), (1, 3)], []),
                ([(0, 2), (0, 3)], []),
            ],
            n=5,
        )
        assert result.nodes[2].query(TriangleQuery({0, 1, 2})) is QueryResult.TRUE
        assert result.nodes[3].query(TriangleQuery({0, 1, 3})) is QueryResult.TRUE
        assert_all_triangles_known(result)


class TestFlickeringAdversary:
    def test_flicker_handled_correctly(self):
        """The Section 1.3 schedule must not fool the timestamped structure."""
        adversary = FlickerTriangleAdversary()
        result, _ = run_simulation(TriangleMembershipNode, adversary, n=9)
        v, u, w = adversary.v, adversary.u, adversary.w
        node_v = result.nodes[v]
        assert node_v.is_consistent()
        assert node_v.query(TriangleQuery({v, u, w})) is QueryResult.FALSE
        assert_equals_pattern_set(result)


class TestAgainstOracleUnderChurn:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_pattern_set_and_triangles(self, seed):
        result, _ = run_simulation(
            TriangleMembershipNode,
            RandomChurnAdversary(
                16, num_rounds=150, inserts_per_round=3, deletes_per_round=2, seed=seed
            ),
            n=16,
        )
        assert_equals_pattern_set(result)
        assert_all_triangles_known(result)

    def test_amortized_complexity_is_constant(self):
        result, _ = run_simulation(
            TriangleMembershipNode,
            RandomChurnAdversary(
                20, num_rounds=250, inserts_per_round=3, deletes_per_round=2, seed=11
            ),
            n=20,
        )
        # Theorem 1's accounting gives at most 3 inconsistent rounds per change.
        assert result.metrics.max_running_amortized_complexity() <= 3.0 + 1e-9

    def test_no_false_positives_even_when_only_locally_consistent(self):
        """A TRUE answer from a consistent node is always a real triangle.

        Checked at every round, not just after draining.
        """
        from repro.oracle import GroundTruthOracle
        from repro.core import TriangleQuery

        n = 12
        oracle = GroundTruthOracle(n)

        def validator(round_index, network, nodes):
            oracle.observe(network)
            edges = network.edges
            for v, node in nodes.items():
                if not node.is_consistent():
                    continue
                for tri in node.known_triangles():
                    a, b, c = sorted(tri)
                    assert (
                        network.has_edge(a, b)
                        and network.has_edge(a, c)
                        and network.has_edge(b, c)
                    ), f"round {round_index}: node {v} believes in ghost triangle {tri}"

        result, _ = run_simulation(
            TriangleMembershipNode,
            RandomChurnAdversary(n, num_rounds=120, inserts_per_round=3, deletes_per_round=2, seed=5),
            n=n,
            validators=[validator],
            with_oracle=False,
        )
