"""Unit tests for message bit-size accounting and envelopes."""

import pytest

from repro.simulator.messages import (
    EdgeDeleteHopMessage,
    EdgeEventMessage,
    EdgeOp,
    Envelope,
    PathInsertMessage,
    PatternMark,
    SnapshotChunkMessage,
    id_bits,
)


class TestIdBits:
    def test_small_networks(self):
        assert id_bits(2) == 1
        assert id_bits(3) == 2
        assert id_bits(4) == 2
        assert id_bits(1024) == 10
        assert id_bits(1025) == 11

    def test_minimum_one_bit(self):
        assert id_bits(1) == 1


class TestMessageSizes:
    def test_edge_event_size_is_two_ids_plus_marks(self):
        msg = EdgeEventMessage((3, 7), EdgeOp.INSERT, PatternMark.A)
        assert msg.size_bits(100) == 2 * id_bits(100) + 2

    def test_path_message_size_scales_with_length(self):
        short = PathInsertMessage((1, 2))
        longer = PathInsertMessage((1, 2, 3))
        assert longer.size_bits(64) - short.size_bits(64) == id_bits(64)

    def test_path_message_rejects_degenerate(self):
        with pytest.raises(ValueError):
            PathInsertMessage((4,))
        with pytest.raises(ValueError):
            PathInsertMessage((4, 4))

    def test_delete_hop_message_bounds_hops(self):
        EdgeDeleteHopMessage((0, 1), 0)
        EdgeDeleteHopMessage((0, 1), 3)
        with pytest.raises(ValueError):
            EdgeDeleteHopMessage((0, 1), 4)
        with pytest.raises(ValueError):
            EdgeDeleteHopMessage((0, 1), -1)

    def test_snapshot_chunk_size(self):
        chunk = SnapshotChunkMessage(
            owner=1, epoch=2, chunk_index=0, total_chunks=4, members=(2, 3), chunk_bits=25
        )
        assert chunk.size_bits(100) == 25 + 3 * id_bits(100)


class TestEnvelope:
    def test_silent_envelope_costs_nothing(self):
        env = Envelope()
        assert env.is_silent
        assert env.size_bits(100) == 0

    def test_false_flags_cost_one_bit_each(self):
        assert Envelope(is_empty=False).size_bits(100) == 1
        assert Envelope(is_empty=False, are_neighbors_empty=False).size_bits(100) == 2
        assert not Envelope(is_empty=False).is_silent
        assert not Envelope(are_neighbors_empty=False).is_silent

    def test_true_are_neighbors_empty_is_silent(self):
        assert Envelope(are_neighbors_empty=True).is_silent

    def test_payload_dominates_size(self):
        payload = EdgeEventMessage((0, 1), EdgeOp.DELETE)
        env = Envelope(payload=payload, is_empty=False)
        assert env.size_bits(50) == payload.size_bits(50) + 1
        assert not env.is_silent
