"""Tests for cross-process telemetry collection.

Sharded-engine workers run their own process-local registry and ship final
snapshots (and trace buffers) back over the result pipes at shutdown; the
coordinator folds them into the module singleton.  These tests cover the
merge primitive, the shard-skew gauge family, and the end-to-end path: a
sharded run with telemetry enabled whose merged report contains worker-side
``engine.worker.*`` spans whose totals match the per-worker snapshots.
"""

from __future__ import annotations

from itertools import combinations

import pytest

from repro.core import TriangleMembershipNode
from repro.obs import (
    SIZE_BUCKETS,
    TELEMETRY,
    Histogram,
    Telemetry,
    TraceBuffer,
    compute_shard_skew,
    merge_snapshot_into,
    record_shard_skew,
)
from repro.simulator import RoundChanges
from repro.simulator.parallel import ShardedRoundEngine

WORKER_STAGES = (
    "engine.worker.indications",
    "engine.worker.compute",
    "engine.worker.deliver",
)


def _snapshot(spans=None, counters=None, gauges=None, sizes=()):
    """A worker-shaped snapshot dict built through a real registry."""
    telemetry = Telemetry(enabled=True)
    for name, (count, total) in (spans or {}).items():
        for _ in range(count - 1):
            telemetry.record_span(name, 0.0)
        telemetry.record_span(name, total)
    for name, value in (counters or {}).items():
        telemetry.count(name, value)
    for name, value in (gauges or {}).items():
        telemetry.gauge(name, value)
    for value in sizes:
        telemetry.observe("engine.worker.active_set", value, buckets=SIZE_BUCKETS)
    return telemetry.snapshot(final=True)


class TestMergeSnapshotInto:
    def test_counters_sum_spans_fold_gauges_last_win(self):
        telemetry = Telemetry(enabled=True)
        telemetry.count("engine.rounds", 5)
        telemetry.record_span("engine.round", 1.0)
        merge_snapshot_into(
            telemetry,
            _snapshot(
                spans={"engine.round": (2, 3.0), "engine.worker.compute": (1, 0.5)},
                counters={"engine.rounds": 7},
                gauges={"engine.mode": "worker"},
            ),
        )
        snap = telemetry.snapshot()
        assert snap["counters"]["engine.rounds"] == 12
        assert snap["spans"]["engine.round"]["count"] == 3
        assert snap["spans"]["engine.round"]["total_s"] == pytest.approx(4.0)
        assert snap["spans"]["engine.round"]["max_s"] == pytest.approx(3.0)
        assert snap["spans"]["engine.worker.compute"]["count"] == 1
        assert snap["gauges"]["engine.mode"] == "worker"

    def test_histograms_merge_bucket_wise(self):
        telemetry = Telemetry(enabled=True)
        telemetry.observe("engine.worker.active_set", 2.0, buckets=SIZE_BUCKETS)
        merge_snapshot_into(telemetry, _snapshot(sizes=[4.0, 8.0]))
        hist = telemetry.histograms["engine.worker.active_set"]
        assert hist.count == 3
        assert hist.max == 8.0

    def test_merge_into_fresh_registry_round_trips(self):
        source = _snapshot(
            spans={"engine.worker.deliver": (3, 0.9)},
            counters={"engine.worker.updates": 3},
            sizes=[1.0],
        )
        telemetry = Telemetry(enabled=True)
        merge_snapshot_into(telemetry, source)
        merged = telemetry.snapshot()
        assert merged["spans"]["engine.worker.deliver"] == source["spans"][
            "engine.worker.deliver"
        ]
        assert merged["counters"] == source["counters"]
        assert (
            merged["histograms"]["engine.worker.active_set"]["counts"]
            == source["histograms"]["engine.worker.active_set"]["counts"]
        )


class TestShardSkew:
    def test_balanced_workers_have_skew_one(self):
        snapshots = [
            _snapshot(spans={"engine.worker.compute": (4, 2.0)}) for _ in range(3)
        ]
        skew = compute_shard_skew(snapshots)
        assert skew["engine.shard_skew.compute"] == pytest.approx(1.0)

    def test_idle_worker_counts_as_zero_time(self):
        snapshots = [
            _snapshot(spans={"engine.worker.compute": (1, 3.0)}),
            _snapshot(),  # never touched the stage: an idle shard IS skew
        ]
        skew = compute_shard_skew(snapshots)
        # max = 3.0, mean = 1.5 -> skew 2.0
        assert skew["engine.shard_skew.compute"] == pytest.approx(2.0)

    def test_zero_time_stage_and_empty_input_are_omitted(self):
        assert compute_shard_skew([]) == {}
        snapshots = [_snapshot(spans={"engine.worker.compute": (1, 0.0)})]
        assert compute_shard_skew(snapshots) == {}

    def test_non_worker_spans_are_ignored(self):
        snapshots = [_snapshot(spans={"engine.round": (1, 5.0)})]
        assert compute_shard_skew(snapshots) == {}

    def test_record_publishes_gauges(self):
        telemetry = Telemetry(enabled=True)
        snapshots = [
            _snapshot(spans={"engine.worker.deliver": (1, 1.0)}),
            _snapshot(spans={"engine.worker.deliver": (1, 3.0)}),
        ]
        skew = record_shard_skew(telemetry, snapshots)
        assert telemetry.gauges["engine.shard_skew.deliver"] == skew[
            "engine.shard_skew.deliver"
        ]
        assert telemetry.gauges["engine.shard_workers"] == 2


def _run_sharded_rounds(engine: ShardedRoundEngine, rounds: int = 12) -> None:
    pairs = list(combinations(range(engine.network.n), 2))
    for i in range(rounds):
        engine.execute_round(RoundChanges.inserts([pairs[i % len(pairs)]]))
        engine.execute_round(RoundChanges.deletes([pairs[i % len(pairs)]]))
    while not engine.all_consistent:
        engine.execute_quiet_round()


class TestEndToEndCollection:
    def teardown_method(self):
        TELEMETRY.disable()

    def test_workers_ship_spans_and_merge_into_coordinator(self):
        TELEMETRY.enable(tracer=TraceBuffer(10_000))
        try:
            with ShardedRoundEngine(8, TriangleMembershipNode, num_workers=3) as engine:
                _run_sharded_rounds(engine)
            snapshots = engine.worker_snapshots
            tracer = TELEMETRY.tracer
            merged = TELEMETRY.snapshot(final=True)
        finally:
            TELEMETRY.disable()

        # Every worker contributed nonzero per-stage data.
        assert len(snapshots) == 3
        for snap in snapshots:
            for stage in WORKER_STAGES:
                assert snap["spans"][stage]["count"] > 0
            assert snap["counters"]["engine.worker.reacts"] > 0
            assert snap["counters"]["engine.worker.updates"] > 0

        # Satellite invariant: coordinator-merged worker span totals equal the
        # sum over the shipped per-worker snapshots.
        for stage in WORKER_STAGES:
            merged_stat = merged["spans"][stage]
            assert merged_stat["count"] == sum(
                s["spans"][stage]["count"] for s in snapshots
            )
            assert merged_stat["total_s"] == pytest.approx(
                sum(s["spans"][stage]["total_s"] for s in snapshots)
            )

        # Coordinator-side stage spans are still there alongside them.
        for stage in ("engine.indications", "engine.compute", "engine.route",
                      "engine.deliver", "engine.round"):
            assert merged["spans"][stage]["count"] > 0

        # Shard-skew gauges are populated and sane.
        assert merged["gauges"]["engine.shard_workers"] == 3
        for stage in ("indications", "compute", "deliver"):
            assert merged["gauges"][f"engine.shard_skew.{stage}"] >= 1.0

        # Worker trace events were absorbed into the coordinator's buffer.
        worker_events = [
            e for e in tracer.events() if e["name"].startswith("engine.worker.")
        ]
        assert {e["worker"] for e in worker_events} == {0, 1, 2}

    def test_collection_happens_once(self):
        TELEMETRY.enable()
        try:
            engine = ShardedRoundEngine(6, TriangleMembershipNode, num_workers=2)
            _run_sharded_rounds(engine, rounds=4)
            first = engine.collect_worker_telemetry()
            assert len(first) == 2
            assert engine.collect_worker_telemetry() == []
            rounds_after_first = TELEMETRY.counters["engine.worker.reacts"]
            engine.shutdown()  # must not double-merge
            assert TELEMETRY.counters["engine.worker.reacts"] == rounds_after_first
        finally:
            TELEMETRY.disable()

    def test_uninstrumented_run_ships_nothing(self):
        with ShardedRoundEngine(6, TriangleMembershipNode, num_workers=2) as engine:
            _run_sharded_rounds(engine, rounds=4)
        assert engine.worker_snapshots == []
        assert not TELEMETRY.enabled
