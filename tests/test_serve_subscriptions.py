"""Tests for the standing-subscription layer."""

import pytest

from repro import RoundChanges
from repro.serve import MonitorService
from repro.serve.subscriptions import (
    SUBSCRIPTION_KINDS,
    AnswerChanged,
    SubscriptionRegistry,
)
from repro.serve.core import MonitorAnswer, ServingMonitor


def triangle_service(n=12, **kwargs):
    return MonitorService(n, "triangle", **kwargs)


class TestRegistration:
    def test_auto_ids_are_sequential(self):
        service = triangle_service()
        assert service.subscribe("triangle", members=[0, 1, 2]) == "sub-0001"
        assert service.subscribe("triangle", members=[1, 2, 3]) == "sub-0002"
        assert len(service.registry) == 2

    def test_failed_registration_does_not_burn_an_id(self):
        service = MonitorService(12, "robust2hop")
        with pytest.raises(ValueError, match="cannot answer 'triangle'"):
            service.subscribe("triangle", members=[0, 1, 2])
        assert service.subscribe("edge", node=0, u=0, w=1) == "sub-0001"

    def test_explicit_id_and_duplicates(self):
        service = triangle_service()
        service.subscribe("triangle", members=[0, 1, 2], subscription_id="mine")
        assert "mine" in service.registry
        with pytest.raises(ValueError, match="already registered"):
            service.subscribe("triangle", members=[3, 4, 5], subscription_id="mine")

    def test_unregister(self):
        service = triangle_service()
        sid = service.subscribe("triangle", members=[0, 1, 2])
        service.unsubscribe(sid)
        assert sid not in service.registry
        with pytest.raises(KeyError):
            service.unsubscribe(sid)

    def test_unknown_kind(self):
        service = triangle_service()
        with pytest.raises(ValueError, match="unknown subscription kind"):
            service.subscribe("square", members=[0, 1, 2, 3])
        assert set(SUBSCRIPTION_KINDS) == {"edge", "triangle", "clique", "cycle"}

    @pytest.mark.parametrize(
        "kind, params, message",
        [
            ("triangle", {"members": [0, 1]}, "3 distinct members"),
            ("triangle", {"members": [0, 1, 1]}, "3 distinct members"),
            ("triangle", {"members": [0, 1, 99]}, "member"),
            ("triangle", {"members": [0, 1, 2], "extra": 1}, "unexpected"),
            ("edge", {"node": 0, "u": 0, "w": True}, "integer"),
            ("edge", {"node": 0, "u": 0, "w": 1, "x": 2}, "unexpected"),
            ("clique", {"members": [0, 1]}, "distinct members"),
            ("cycle", {"members": [0, 1, 2, 3], "ask": 0}, "collectively"),
        ],
    )
    def test_bad_params(self, kind, params, message):
        service = MonitorService(12, "cycles" if kind == "cycle" else "clique")
        with pytest.raises(ValueError, match=message):
            service.subscribe(kind, **params)

    def test_register_all_specs(self):
        service = triangle_service()
        ids = service.registry.register_all(
            [
                {"id": "a", "kind": "triangle", "members": [0, 1, 2]},
                {"kind": "triangle", "members": [1, 2, 3]},
            ]
        )
        assert ids == ["a", "sub-0001"]
        with pytest.raises(ValueError, match="'kind'"):
            service.registry.register_all([{"members": [0, 1, 2]}])

    def test_registry_validates_settle_streak(self):
        monitor = ServingMonitor(6, "triangle")
        with pytest.raises(ValueError):
            SubscriptionRegistry(monitor, settle_streak=0)


class TestIncrementalEvaluation:
    def test_notifications_fire_on_answer_changes(self):
        service = triangle_service()
        sid = service.subscribe("triangle", members=[0, 1, 2])
        fired = []
        for batch in ([(0, 1), (1, 2)], [(0, 2)]):
            fired += service.ingest(RoundChanges.inserts(batch))
        for _ in range(10):
            fired += service.tick()
        values = [(note.new.value, note.new.definite) for note in fired]
        assert values[-1] == (True, True)
        assert all(isinstance(note, AnswerChanged) for note in fired)
        assert fired[-1].subscription_id == sid
        assert fired[-1].kind == "triangle"

    def test_untouched_subscriptions_are_skipped(self):
        service = triangle_service(n=20)
        near = service.subscribe("triangle", members=[0, 1, 2])
        far = service.subscribe("triangle", members=[15, 16, 17])
        # Let both settle from their registration-dirty state.
        for _ in range(6):
            service.tick()
        skipped_before = service.registry.skipped
        far_evals = service.registry.get(far).evaluations
        service.ingest(RoundChanges.inserts([(0, 1)]))
        # The far subscription was not in the 2-hop ball of the change.
        assert service.registry.get(far).evaluations == far_evals
        assert service.registry.skipped > skipped_before
        assert service.registry.get(near).dirty

    def test_dirty_clears_after_settle_streak(self):
        service = triangle_service(settle_streak=2)
        sid = service.subscribe("triangle", members=[0, 1, 2])
        service.ingest(RoundChanges.inserts([(0, 1), (1, 2), (0, 2)]))
        sub = service.registry.get(sid)
        assert sub.dirty
        for _ in range(20):
            service.tick()
        assert not sub.dirty
        evals = sub.evaluations
        service.tick()
        assert sub.evaluations == evals  # settled -> skipped

    def test_answers_snapshot(self):
        service = triangle_service()
        sid = service.subscribe("triangle", members=[0, 1, 2])
        answers = service.registry.answers()
        assert answers[sid] == MonitorAnswer(value=False, definite=True)

    def test_notification_to_dict_is_engine_comparable(self):
        note = AnswerChanged(
            subscription_id="s",
            kind="edge",
            round_index=3,
            old=None,
            new=MonitorAnswer(value=True, definite=True),
        )
        assert note.to_dict() == {
            "subscription_id": "s",
            "kind": "edge",
            "round_index": 3,
            "old": None,
            "new": [True, True],
        }


class TestKinds:
    def test_edge_subscription(self):
        service = MonitorService(8, "robust2hop")
        sid = service.subscribe("edge", node=0, u=1, w=2)
        fired = list(service.ingest(RoundChanges.inserts([(0, 1), (1, 2)])))
        for _ in range(8):
            fired += service.tick()
        assert fired and fired[-1].new.value is True
        assert service.registry.get(sid).params == {"node": 0, "u": 1, "w": 2}

    def test_clique_subscription(self):
        service = MonitorService(8, "clique")
        sid = service.subscribe("clique", members=[0, 1, 2, 3])
        fired = []
        for a in range(4):
            for b in range(a + 1, 4):
                fired += service.ingest(RoundChanges.inserts([(a, b)]))
        for _ in range(12):
            fired += service.tick()
        assert fired[-1].new.value is True

    def test_cycle_subscription(self):
        service = MonitorService(8, "cycles")
        service.subscribe("cycle", members=[0, 1, 2, 3])
        fired = []
        for edge in [(0, 1), (1, 2), (2, 3), (0, 3)]:
            fired += service.ingest(RoundChanges.inserts([edge]))
        for _ in range(12):
            fired += service.tick()
        assert fired[-1].new.value is True
