"""Tests for live campaign progress rendering and logging configuration."""

from __future__ import annotations

import io
import logging

import pytest

from repro.obs import CampaignProgress, configure_logging, format_duration


class TestFormatDuration:
    @pytest.mark.parametrize(
        "seconds,expected",
        [
            (0.532, "532ms"),
            (0.0, "0ms"),
            (-3.0, "0ms"),
            (4.2, "4.2s"),
            (59.9, "59.9s"),
            (192.0, "3m12s"),
            (7500.0, "2h05m"),
        ],
    )
    def test_cases(self, seconds, expected):
        assert format_duration(seconds) == expected


def _record(cell_id, status="ok", duration=1.5):
    return {"cell_id": cell_id, "status": status, "duration_s": duration}


class TestNonInteractive:
    def test_plain_lines_and_summary(self):
        stream = io.StringIO()
        progress = CampaignProgress(2, stream=stream, interactive=False)
        progress.cell_started("a")
        progress.cell_finished(_record("a", duration=2.0), 1, 2)
        progress.cell_started("b")
        progress.cell_finished(_record("b", duration=0.5), 2, 2)
        progress.close()
        lines = stream.getvalue().splitlines()
        assert lines[0].startswith("[1/2] a ok in 2.0s")
        assert "(eta" in lines[0]  # one of two cells done -> ETA shown
        assert lines[1].startswith("[2/2] b ok in 500ms")
        assert "campaign: 2/2 cells" in lines[-1]
        assert "slowest a (2.0s)" in lines[-1]

    def test_failures_counted_in_summary(self):
        stream = io.StringIO()
        progress = CampaignProgress(1, stream=stream, interactive=False)
        progress.cell_started("bad")
        progress.cell_finished(_record("bad", status="error"), 1, 1)
        progress.close()
        assert "1 failed" in stream.getvalue()

    def test_total_follows_runner_updates(self):
        # The runner reports total=len(pending), which resume can shrink
        # below the constructor's cell count; the rendered totals follow.
        stream = io.StringIO()
        progress = CampaignProgress(10, stream=stream, interactive=False)
        progress.cell_finished(_record("a"), 1, 3)
        assert "[1/3]" in stream.getvalue()


class TestInteractive:
    def test_in_place_rendering_and_close(self):
        stream = io.StringIO()
        progress = CampaignProgress(2, stream=stream, interactive=True)
        progress.cell_started("cell-1")
        progress.cell_finished(_record("cell-1"), 1, 2)
        progress.close()
        output = stream.getvalue()
        assert "\r" in output  # status line rewrites in place
        assert "campaign: 1/2 cells" in output.splitlines()[-1]
        assert "running: cell-1" in output

    def test_defaults_to_non_interactive_on_pipes(self):
        progress = CampaignProgress(1, stream=io.StringIO())
        assert progress.interactive is False


class TestConfigureLogging:
    def test_attaches_one_handler_idempotently(self):
        logger = configure_logging("info")
        again = configure_logging("debug")
        assert logger is again
        cli_handlers = [
            h for h in logger.handlers if getattr(h, "_repro_cli_handler", False)
        ]
        assert len(cli_handlers) == 1
        assert logger.level == logging.DEBUG

    def test_stream_redirect(self):
        stream = io.StringIO()
        logger = configure_logging("warning", stream=stream)
        logging.getLogger("repro.test_obs_progress").warning("hello there")
        assert "hello there" in stream.getvalue()
        assert "WARNING" in stream.getvalue()
        # Propagation stays on so pytest's caplog / root handlers still work.
        assert logger.propagate is True

    def test_rejects_unknown_level(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure_logging("loud")
