"""The ``fuzz`` subcommand: driver loop, acceptance run, replay gating."""

import json

import pytest

from repro.cli import build_fuzz_parser, main
from repro.fuzz.corpus import CorpusStore
from repro.fuzz.driver import FuzzConfig, run_fuzz


class TestParser:
    def test_defaults(self):
        args = build_fuzz_parser().parse_args([])
        assert args.budget == 50
        assert args.seed == 0
        assert not args.shrink and not args.replay
        assert args.modes == "dense,sparse"

    def test_rejects_unknown_profile(self):
        with pytest.raises(SystemExit):
            build_fuzz_parser().parse_args(["--profile", "chaos"])

    def test_rejects_unknown_injected_bug(self):
        with pytest.raises(SystemExit):
            build_fuzz_parser().parse_args(["--inject-bug", "nope"])


class TestUsageErrors:
    def test_replay_requires_corpus(self, capsys):
        assert main(["fuzz", "--replay"]) == 2
        assert "--corpus" in capsys.readouterr().err

    def test_unknown_algorithm(self, capsys):
        assert main(["fuzz", "--algorithms", "magic"]) == 2
        assert "unknown algorithms" in capsys.readouterr().err

    def test_unknown_mode(self, capsys):
        assert main(["fuzz", "--modes", "dense,warp"]) == 2
        assert "unknown mode" in capsys.readouterr().err

    def test_undersized_network(self, capsys):
        assert main(["fuzz", "--nodes", "2", "--budget", "1"]) == 2
        assert "n >= 3" in capsys.readouterr().err

    def test_replay_of_missing_corpus_is_an_error_not_a_green_gate(self, tmp_path, capsys):
        assert main(["fuzz", "--replay", "--corpus", str(tmp_path / "nope")]) == 2
        assert "no corpus entries" in capsys.readouterr().err

    def test_replay_ignores_fuzz_only_flags(self, capsys):
        # the fuzzing knobs are documented as not applying to --replay, so
        # they must not be validated against it either
        from pathlib import Path

        corpus = Path(__file__).parent / "data" / "fuzz_corpus"
        code = main(
            [
                "fuzz", "--replay", "--corpus", str(corpus),
                "--modes", "dense", "--nodes", "2",
            ]
        )
        assert code == 0
        assert "6 ok" in capsys.readouterr().out


class TestCleanBuild:
    def test_small_budget_runs_clean(self, capsys):
        code = main(
            [
                "fuzz", "--budget", "4", "--seed", "3", "--algorithms", "triangle",
                "--nodes", "7", "--schedule-rounds", "12",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "4 schedules fuzzed: 0 failing" in out

    def test_report_file(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        code = main(
            [
                "fuzz", "--budget", "2", "--algorithms", "triangle", "--nodes", "7",
                "--schedule-rounds", "10", "--report", str(report_path),
            ]
        )
        assert code == 0
        report = json.loads(report_path.read_text())
        assert report["ok"] and report["num_cells"] == 2
        assert report["config"]["modes"] == ["dense", "sparse"]


class TestInjectedBugAcceptance:
    """The ISSUE acceptance run: ``fuzz --budget 200 --seed 7 --shrink`` on a
    seeded injected-bug build produces a minimized trace of <= 10 rounds."""

    def test_budget_200_seed_7_shrinks_to_one_screen(self, tmp_path, capsys):
        corpus_dir = tmp_path / "corpus"
        report_path = tmp_path / "report.json"
        code = main(
            [
                "fuzz", "--budget", "200", "--seed", "7", "--shrink",
                "--corpus", str(corpus_dir), "--report", str(report_path),
                "--inject-bug", "triangle_ghost_deletes",
                "--algorithms", "triangle",
            ]
        )
        assert code == 1  # failures found
        report = json.loads(report_path.read_text())
        assert not report["ok"] and report["num_failing"] > 0
        shrunk = [f for f in report["failures"] if f["shrink"] is not None]
        assert shrunk, "at least the first failure class must be minimized"
        for failure in shrunk:
            assert failure["shrink"]["rounds_after"] <= 10
            trace = failure["reproducer"]["adversary_params"]["trace"]
            assert len(trace["rounds"]) <= 10
        # minimized reproducers were banked
        entries = CorpusStore(corpus_dir).entries()
        assert entries
        assert any(e.num_rounds <= 10 for e in entries)
        err = capsys.readouterr().err
        assert "injected bug" in err
        assert "minimized reproducer" in err

    def test_replay_gates_the_banked_corpus(self, tmp_path, capsys):
        corpus_dir = tmp_path / "corpus"
        main(
            [
                "fuzz", "--budget", "6", "--seed", "7", "--shrink",
                "--corpus", str(corpus_dir), "--inject-bug", "triangle_ghost_deletes",
                "--algorithms", "triangle",
            ]
        )
        capsys.readouterr()
        # on the injected build the expect=fail entries still reproduce: ok
        assert main(["fuzz", "--replay", "--corpus", str(corpus_dir),
                     "--inject-bug", "triangle_ghost_deletes"]) == 0
        capsys.readouterr()
        # on the fixed build they stop failing-as-expected: the gate trips
        assert main(["fuzz", "--replay", "--corpus", str(corpus_dir)]) == 1
        assert "stale" in capsys.readouterr().out


class TestDriverDedupe:
    def test_known_failure_classes_are_not_rebanked(self, tmp_path):
        from repro.fuzz.injected import inject_bug

        corpus = CorpusStore(tmp_path / "corpus")
        restore = inject_bug("triangle_ghost_deletes")
        try:
            config = FuzzConfig(budget=8, seed=7, algorithms=("triangle",))
            first = run_fuzz(config, corpus=corpus)
            banked_after_first = len(corpus.entries())
            second = run_fuzz(
                FuzzConfig(budget=8, seed=8, algorithms=("triangle",)), corpus=corpus
            )
        finally:
            restore()
        assert first.num_failing > 0 and second.num_failing > 0
        # the second session saw only already-banked classes: nothing new
        assert len(corpus.entries()) == banked_after_first
        assert all(f.corpus_id is None for f in second.failures)

    def test_fixed_classes_do_not_suppress_regressions(self, tmp_path):
        # An expect="pass" entry records a FIXED bug; if the same failure
        # class reappears, it is a regression and must be shrunk and banked
        # anew, not treated as already-known.
        from repro.fuzz.corpus import CorpusEntry
        from repro.fuzz.injected import inject_bug
        from repro.fuzz.signature import FailureSignature

        corpus = CorpusStore(tmp_path / "corpus")
        corpus.add(
            CorpusEntry(
                algorithm="triangle",
                n=3,
                trace={"n": 3, "rounds": [{"insert": [[0, 1]], "delete": []}]},
                signature=FailureSignature(
                    checks=(("no_ghost_triangles", "known_triangles"),)
                ),
                expect="pass",
            )
        )
        restore = inject_bug("triangle_ghost_deletes")
        try:
            report = run_fuzz(
                FuzzConfig(budget=8, seed=7, algorithms=("triangle",), shrink=True),
                corpus=corpus,
            )
        finally:
            restore()
        assert report.num_failing > 0
        banked = [f for f in report.failures if f.corpus_id is not None]
        assert banked and banked[0].shrink is not None

    def test_new_class_tangled_with_known_one_is_still_banked(self, tmp_path):
        # A failure mixing an already-banked class with a brand-new one must
        # be shrunk against the new part and banked -- intersection matching
        # alone would swallow the new bug forever.
        from repro.fuzz.corpus import CorpusEntry
        from repro.fuzz.injected import inject_bug
        from repro.fuzz.signature import FailureSignature

        known_pair = ("no_ghost_triangles", "known_triangles")
        corpus = CorpusStore(tmp_path / "corpus")
        corpus.add(
            CorpusEntry(
                algorithm="triangle",
                n=3,
                trace={"n": 3, "rounds": [{"insert": [[0, 1]], "delete": []}]},
                signature=FailureSignature(checks=(known_pair,)),
                expect="fail",
            )
        )
        restore = inject_bug("triangle_ghost_deletes")
        try:
            report = run_fuzz(
                FuzzConfig(budget=10, seed=7, algorithms=("triangle",), shrink=True),
                corpus=corpus,
            )
        finally:
            restore()
        fresh_entries = [
            e for e in corpus.entries() if e.signature.checks != (known_pair,)
        ]
        assert fresh_entries, "the new classes alongside the known one were dropped"
        for entry in fresh_entries:
            assert known_pair not in entry.signature.checks
        assert any(f.shrink is not None for f in report.failures)
