"""Structural tests for the lower-bound adversaries (Theorems 2, 4; Remark 1)."""

import pytest

from repro.adversary import (
    CycleLowerBoundAdversary,
    MembershipLowerBoundAdversary,
    ThreePathLowerBoundAdversary,
    choose_parameters,
)
from repro.core.membership import PATTERNS, HPattern
from repro.oracle.subgraphs import cycles_of_length, set_is_cycle
from repro.simulator import DynamicNetwork
from repro.simulator.adversary import AdversaryView


def drive_until_done(adversary, n, consistent=True, max_rounds=200_000, stop_after=None):
    """Apply the schedule to a bare network (assuming instant stabilization)."""
    network = DynamicNetwork(n)
    rounds = 0
    while not adversary.is_done and rounds < max_rounds:
        view = AdversaryView.from_network(network, network.round_index + 1, consistent)
        changes = adversary.changes_for_round(view)
        if changes is None:
            break
        network.apply_changes(network.round_index + 1, changes)
        rounds += 1
        if stop_after is not None and rounds >= stop_after:
            break
    return network, rounds


class TestTheorem2Adversary:
    def test_rejects_clique_patterns(self):
        with pytest.raises(ValueError):
            MembershipLowerBoundAdversary(20, HPattern.clique(3))

    def test_p3_schedule_alternates_attachments(self):
        adversary = MembershipLowerBoundAdversary(12, PATTERNS["P3"], num_iterations=3)
        network, _ = drive_until_done(adversary, 12)
        # P3 has one anchor (the middle vertex); all probe nodes end detached.
        assert len(adversary.anchor_nodes) == 1
        assert network.num_edges == 0
        assert len(adversary.iterations) == 3
        # Every iteration attaches a distinct fresh node to the anchor.
        nodes_used = [it.node for it in adversary.iterations]
        assert len(set(nodes_used)) == 3
        for it in adversary.iterations:
            assert it.phase_a_edges  # vertex a of P3 has one neighbor (the middle)
            assert it.phase_b_edges

    def test_diamond_schedule_wires_anchors(self):
        pattern = PATTERNS["diamond"]
        adversary = MembershipLowerBoundAdversary(15, pattern, num_iterations=2)
        network, _ = drive_until_done(adversary, 15, stop_after=1)
        # After the first round the anchors (pattern vertices 0 and 2) are wired
        # according to the induced pattern (one edge between them).
        assert network.num_edges == 1

    def test_iteration_count_capped_by_available_nodes(self):
        adversary = MembershipLowerBoundAdversary(6, PATTERNS["P3"])
        assert adversary.num_iterations == 5  # one anchor, five probe nodes

    def test_total_changes_linear_in_iterations(self):
        adversary = MembershipLowerBoundAdversary(30, PATTERNS["P4"], num_iterations=10)
        network, _ = drive_until_done(adversary, 30)
        # Each iteration performs O(k) changes; with 10 iterations the total
        # stays well below quadratic.
        assert network.total_changes <= 10 * 2 * (PATTERNS["P4"].k - 2) + 10


class TestTheorem4Adversary:
    def test_parameter_selection(self):
        t, D, gamma = choose_parameters(100, 6)
        assert gamma == 2
        assert t * (gamma + D) <= 100
        assert D >= 3

    def test_too_small_n_rejected(self):
        with pytest.raises(ValueError):
            choose_parameters(10, 6)

    def test_phase_one_builds_components(self):
        adversary = CycleLowerBoundAdversary(100, k=6, seed=1)
        network, _ = drive_until_done(adversary, 100, stop_after=adversary.t)
        for comp in adversary.components:
            # u1 attached to exactly 2D/3 leaves, u2 to all leaves.
            u1_degree = network.degree(comp.u1)
            assert u1_degree == adversary.attached_count
            assert network.degree(comp.u_nodes[1]) == adversary.D

    def test_bridging_creates_six_cycles(self):
        adversary = CycleLowerBoundAdversary(100, k=6, num_components=2, seed=0)
        network = DynamicNetwork(100)
        # Apply rounds until the first bridge (phase I has t rounds, then the
        # stability wait, then the bridge insertion).
        rounds = 0
        while not adversary.is_done:
            view = AdversaryView.from_network(network, network.round_index + 1, True)
            changes = adversary.changes_for_round(view)
            if changes is None:
                break
            network.apply_changes(network.round_index + 1, changes)
            rounds += 1
            if adversary.connection_events and len(cycles_of_length(network.edges, 6)) > 0:
                break
        shared = adversary.shared_leaf_indices(2, 1)
        cycles = cycles_of_length(network.edges, 6)
        # Every shared leaf index yields a 6-cycle through the two bridges.
        assert len(shared) >= adversary.D // 3
        assert len(cycles) >= len(shared)

    def test_schedule_is_valid_to_completion(self):
        adversary = CycleLowerBoundAdversary(64, k=6, num_components=3, seed=2)
        network, rounds = drive_until_done(adversary, 64)
        # All bridges removed at the end; components remain.
        assert rounds > 0
        assert network.num_edges == sum(
            adversary.attached_count + adversary.D for _ in adversary.components
        )

    def test_odd_k_schedule_is_valid(self):
        adversary = CycleLowerBoundAdversary(144, k=7, num_components=3, seed=3)
        network, rounds = drive_until_done(adversary, 144)
        assert rounds > 0


class TestRemark1Adversary:
    def test_components_and_bridges(self):
        adversary = ThreePathLowerBoundAdversary(64, num_components=3, seed=0)
        network, _ = drive_until_done(adversary, 64)
        assert len(adversary.components) == 3
        assert adversary.connection_events == [(2, 1), (3, 1), (3, 2)]
        for comp in adversary.components:
            assert network.degree(comp.hub) == adversary.attached_count

    def test_shared_leaves_exist(self):
        adversary = ThreePathLowerBoundAdversary(100, num_components=4, seed=1)
        drive_until_done(adversary, 100)
        assert len(adversary.shared_leaf_indices(2, 1)) >= adversary.D // 3

    def test_too_small_n_rejected(self):
        with pytest.raises(ValueError):
            ThreePathLowerBoundAdversary(6)
