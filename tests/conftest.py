"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import pytest

from repro.oracle import GroundTruthOracle
from repro.simulator import (
    Adversary,
    NodeAlgorithm,
    RoundChanges,
    SimulationResult,
    SimulationRunner,
)

__all__ = ["run_simulation", "run_schedule"]


def run_simulation(
    algorithm_factory: Callable[[int, int], NodeAlgorithm],
    adversary: Adversary,
    n: int,
    *,
    bandwidth_factor: int = 8,
    strict_bandwidth: bool = True,
    drain: bool = True,
    num_rounds: Optional[int] = None,
    validators: Optional[list] = None,
    with_oracle: bool = True,
) -> Tuple[SimulationResult, Optional[GroundTruthOracle]]:
    """Run a full simulation, optionally recording a ground-truth oracle."""
    oracle = GroundTruthOracle(n) if with_oracle else None
    runner = SimulationRunner(
        n=n,
        algorithm_factory=algorithm_factory,
        adversary=adversary,
        bandwidth_factor=bandwidth_factor,
        strict_bandwidth=strict_bandwidth,
        validators=list(validators or []),
    )
    if oracle is not None:
        runner.add_validator(oracle.validator())
    result = runner.run(num_rounds=num_rounds, drain=drain)
    return result, oracle


def run_schedule(
    algorithm_factory: Callable[[int, int], NodeAlgorithm],
    rounds: List,
    n: int,
    **kwargs,
) -> Tuple[SimulationResult, Optional[GroundTruthOracle]]:
    """Run an explicit per-round schedule (see :class:`ScriptedAdversary`)."""
    from repro.adversary import ScriptedAdversary

    return run_simulation(algorithm_factory, ScriptedAdversary(rounds), n, **kwargs)


@pytest.fixture
def small_n() -> int:
    """A small network size used by most unit tests."""
    return 12
