"""Tests for the simulation runner: drain behaviour, validators, trace recording."""

import pytest

from repro.adversary import ScriptedAdversary
from repro.core import RobustTwoHopNode, TriangleMembershipNode
from repro.simulator import (
    RoundChanges,
    SimulationRunner,
    TopologyTrace,
    TraceReplayAdversary,
)


class TestRun:
    def test_drain_reaches_consistency(self):
        runner = SimulationRunner(
            n=6,
            algorithm_factory=TriangleMembershipNode,
            adversary=ScriptedAdversary.single_batch(insert=[(0, 1), (1, 2), (0, 2)]),
        )
        result = runner.run()
        assert runner.engine.all_consistent
        assert all(node.is_consistent() for node in result.nodes.values())

    def test_no_drain_can_leave_inconsistent_nodes(self):
        runner = SimulationRunner(
            n=6,
            algorithm_factory=TriangleMembershipNode,
            adversary=ScriptedAdversary.single_batch(
                insert=[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]
            ),
        )
        result = runner.run(drain=False)
        # Right after the burst, the queues cannot all be empty.
        assert any(not node.is_consistent() for node in result.nodes.values())

    def test_num_rounds_limits_adversary(self):
        adversary = ScriptedAdversary([RoundChanges.inserts([(i, i + 1)]) for i in range(5)])
        runner = SimulationRunner(n=8, algorithm_factory=RobustTwoHopNode, adversary=adversary)
        result = runner.run(num_rounds=2)
        # Only the first two batches were applied (plus drain rounds).
        assert result.metrics.total_changes == 2

    def test_summary_merges_bandwidth(self):
        runner = SimulationRunner(
            n=5,
            algorithm_factory=RobustTwoHopNode,
            adversary=ScriptedAdversary.single_batch(insert=[(0, 1)]),
        )
        summary = runner.run().summary()
        assert "amortized_round_complexity" in summary
        assert "bandwidth_budget_bits" in summary


class TestValidators:
    def test_validators_run_every_round(self):
        seen = []

        def validator(round_index, network, nodes):
            seen.append(round_index)

        runner = SimulationRunner(
            n=4,
            algorithm_factory=RobustTwoHopNode,
            adversary=ScriptedAdversary([RoundChanges.inserts([(0, 1)]), None]),
            validators=[validator],
        )
        runner.run()
        assert seen and seen == sorted(seen)

    def test_validator_failure_propagates(self):
        def validator(round_index, network, nodes):
            raise AssertionError("boom")

        runner = SimulationRunner(
            n=4,
            algorithm_factory=RobustTwoHopNode,
            adversary=ScriptedAdversary([RoundChanges.inserts([(0, 1)])]),
            validators=[validator],
        )
        with pytest.raises(AssertionError):
            runner.run()


class TestTrace:
    def test_trace_recording_and_replay_equivalence(self, tmp_path):
        adversary = ScriptedAdversary(
            [
                RoundChanges.inserts([(0, 1), (1, 2)]),
                RoundChanges.of(insert=[(0, 2)], delete=[(0, 1)]),
                None,
            ]
        )
        runner = SimulationRunner(
            n=5, algorithm_factory=RobustTwoHopNode, adversary=adversary, record_trace=True
        )
        first = runner.run()
        assert first.trace is not None
        path = tmp_path / "trace.json"
        first.trace.save(path)
        replay_trace = TopologyTrace.load(path)
        assert replay_trace.total_changes == first.trace.total_changes

        replay_runner = SimulationRunner(
            n=5,
            algorithm_factory=RobustTwoHopNode,
            adversary=TraceReplayAdversary(replay_trace),
        )
        second = replay_runner.run()
        assert second.network.edges == first.network.edges
        assert second.metrics.total_changes == first.metrics.total_changes

    def test_trace_round_access(self):
        trace = TopologyTrace(n=4)
        trace.append(RoundChanges.of(insert=[(0, 1)], delete=[]))
        trace.append(RoundChanges.of(insert=[], delete=[(0, 1)]))
        assert trace.num_rounds == 2
        assert trace.changes_for(0).insertions == [(0, 1)]
        assert trace.changes_for(1).deletions == [(0, 1)]
