"""Corpus store behavior plus the committed-corpus permanent regressions."""

import json
from pathlib import Path

import pytest

from repro.fuzz.corpus import CorpusEntry, CorpusStore
from repro.fuzz.injected import inject_bug
from repro.fuzz.signature import FailureSignature

COMMITTED_CORPUS = Path(__file__).parent / "data" / "fuzz_corpus"

GHOST_SIGNATURE = FailureSignature(
    checks=(
        ("no_ghost_triangles", "known_triangles"),
        ("triangle_oracle", "known_triangles"),
    )
)

#: The ghost-delete reproducer the shrinker minimizes the injected triangle
#: bug to (triangle then far-edge delete; the far edge has odd endpoint sum).
GHOST_TRACE = {
    "n": 8,
    "rounds": [
        {"insert": [[0, 6], [0, 7], [6, 7]], "delete": []},
        {"insert": [], "delete": [[0, 7]]},
    ],
}


def ghost_entry(expect: str = "fail") -> CorpusEntry:
    return CorpusEntry(
        algorithm="triangle",
        n=8,
        trace=json.loads(json.dumps(GHOST_TRACE)),
        signature=GHOST_SIGNATURE,
        expect=expect,
        modes=("dense", "sparse"),
    )


class TestCorpusEntry:
    def test_round_trip(self):
        entry = ghost_entry()
        clone = CorpusEntry.from_dict(entry.to_dict())
        assert clone.entry_id == entry.entry_id
        assert clone.signature == entry.signature
        assert clone.spec().cell_id == entry.spec().cell_id

    def test_entry_id_is_content_addressed(self):
        a, b = ghost_entry(), ghost_entry()
        assert a.entry_id == b.entry_id
        b.trace["rounds"].append({"insert": [], "delete": []})
        assert a.entry_id != b.entry_id

    def test_rejects_unknown_expect(self):
        with pytest.raises(ValueError, match="expect"):
            ghost_entry(expect="maybe")

    def test_spec_is_a_valid_scripted_cell(self):
        spec = ghost_entry().spec()
        assert spec.adversary == "scripted"
        assert spec.rounds is None and spec.drain


class TestFaultCarryingEntries:
    """Reproducers found under a fault plan stay self-contained on replay."""

    def fault_entry(self) -> CorpusEntry:
        entry = ghost_entry("pass")
        entry.faults = "crash"
        entry.fault_params = {"crash_p": 0.5, "cycle": 6, "downtime": 2}
        entry.seed = 1234
        return entry

    def test_fault_fields_round_trip(self):
        entry = self.fault_entry()
        clone = CorpusEntry.from_dict(json.loads(json.dumps(entry.to_dict())))
        assert clone.entry_id == entry.entry_id
        assert (clone.faults, clone.fault_params, clone.seed) == (
            "crash",
            {"crash_p": 0.5, "cycle": 6, "downtime": 2},
            1234,
        )
        spec = clone.spec()
        assert spec.faults == "crash" and spec.seed == 1234

    def test_fault_tag_is_part_of_the_identity(self):
        plain, faulted = ghost_entry("pass"), self.fault_entry()
        assert plain.entry_id != faulted.entry_id
        different_seed = self.fault_entry()
        different_seed.seed = 5678
        assert different_seed.entry_id != faulted.entry_id

    def test_fault_free_serialization_is_unchanged(self):
        # Entries recorded before fault support must keep byte-identical
        # JSONL lines and ids: no faults/fault_params/seed keys sneak in.
        data = ghost_entry("pass").to_dict()
        assert {"faults", "fault_params", "seed"}.isdisjoint(data)


class TestCorpusStore:
    def test_add_and_dedupe(self, tmp_path):
        store = CorpusStore(tmp_path / "corpus")
        assert store.add(ghost_entry()) is True
        assert store.add(ghost_entry()) is False
        assert len(store.entries()) == 1

    def test_empty_store(self, tmp_path):
        store = CorpusStore(tmp_path / "nothing")
        assert store.entries() == []
        assert store.replay_all() == []

    def test_torn_lines_are_skipped(self, tmp_path):
        store = CorpusStore(tmp_path / "corpus")
        store.add(ghost_entry())
        with store.corpus_path.open("a") as handle:
            handle.write('{"algorithm": "tri')  # torn append
        assert len(store.entries()) == 1

    def test_invalid_hand_edits_raise_instead_of_vanishing(self, tmp_path):
        # A line that parses but is not a valid entry is a botched hand-edit
        # (e.g. a typo while flipping expect to "pass"); silently skipping it
        # would remove a regression guard from the replay gate.
        store = CorpusStore(tmp_path / "corpus")
        store.add(ghost_entry())
        bad = ghost_entry().to_dict()
        bad["expect"] = "passd"
        bad["trace"]["rounds"].append({"insert": [], "delete": []})  # new id
        with store.corpus_path.open("a") as handle:
            handle.write(json.dumps(bad) + "\n")
        with pytest.raises(ValueError, match="invalid corpus entry"):
            CorpusStore(tmp_path / "corpus").entries()


class TestReplaySemantics:
    def test_expect_fail_reproduces_on_the_injected_build(self, tmp_path):
        store = CorpusStore(tmp_path / "corpus")
        store.add(ghost_entry("fail"))
        restore = inject_bug("triangle_ghost_deletes")
        try:
            outcomes = store.replay_all()
        finally:
            restore()
        assert len(outcomes) == 1 and outcomes[0].ok
        assert "still reproduces" in outcomes[0].detail

    def test_expect_fail_flags_staleness_on_the_fixed_build(self, tmp_path):
        store = CorpusStore(tmp_path / "corpus")
        store.add(ghost_entry("fail"))
        (outcome,) = store.replay_all()
        assert not outcome.ok
        assert "stopped failing-as-expected" in outcome.detail

    def test_expect_pass_guards_against_regressions(self, tmp_path):
        store = CorpusStore(tmp_path / "corpus")
        store.add(ghost_entry("pass"))
        (outcome,) = store.replay_all()
        assert outcome.ok, outcome.detail
        restore = inject_bug("triangle_ghost_deletes")
        try:
            (regressed,) = store.replay_all()
        finally:
            restore()
        assert not regressed.ok
        assert "regression" in regressed.detail


class TestCommittedCorpus:
    """The permanent regressions: every minimized reproducer replays green."""

    def test_corpus_is_committed_and_minimal(self):
        store = CorpusStore(COMMITTED_CORPUS)
        entries = store.entries()
        assert len(entries) >= 5
        for entry in entries:
            assert entry.expect == "pass", (
                f"{entry.entry_id}: open bugs must not be committed as expect=fail"
            )
            assert entry.num_rounds <= 10, (
                f"{entry.entry_id}: committed reproducers must stay one-screen "
                f"({entry.num_rounds} rounds)"
            )
            assert set(entry.modes) == {"dense", "sparse", "sharded"}

    def test_corpus_replays_green_across_all_three_engines(self):
        store = CorpusStore(COMMITTED_CORPUS)
        outcomes = store.replay_all()  # each entry's own modes: all three engines
        bad = [o.describe() for o in outcomes if not o.ok]
        assert not bad, "\n".join(bad)

    def test_corpus_carries_a_fault_reproducer(self):
        # The fault work's satellite: at least one committed reproducer runs
        # under a fault plan, so the fault machinery itself stays inside the
        # permanent replay gate.
        store = CorpusStore(COMMITTED_CORPUS)
        faulted = [e for e in store.entries() if e.faults != "none"]
        assert faulted, "no fault-carrying reproducer committed"
        assert any(e.spec().faults != "none" for e in faulted)

    def test_corpus_replay_is_deterministic(self):
        # Two replays of the same entry observe identical signatures -- the
        # minimized traces replay deterministically on every engine.
        store = CorpusStore(COMMITTED_CORPUS)
        entry = store.entries()[0]
        first = store.replay(entry, modes=("dense", "sparse"))
        second = store.replay(entry, modes=("dense", "sparse"))
        assert first.observed == second.observed
        assert first.ok and second.ok
