"""Tests for the canned workload generators."""

from repro.oracle.subgraphs import is_clique, set_is_cycle
from repro.simulator import DynamicNetwork
from repro.simulator.adversary import AdversaryView
from repro.workloads import (
    flip_flop_edges,
    growing_random_graph,
    planted_clique_churn,
    planted_cycle_churn,
)


def replay(adversary, n):
    """Replay a scripted workload, recording the graph after every round."""
    network = DynamicNetwork(n)
    snapshots = []
    while not adversary.is_done:
        view = AdversaryView.from_network(network, network.round_index + 1, True)
        changes = adversary.changes_for_round(view)
        if changes is None:
            break
        network.apply_changes(network.round_index + 1, changes)
        snapshots.append(network.edges)
    return network, snapshots


class TestPlantedCliques:
    def test_each_plant_is_fully_present_at_some_point(self):
        adversary, plants = planted_clique_churn(12, 4, num_plants=3, seed=2)
        _, snapshots = replay(adversary, 12)
        for clique in plants:
            assert any(is_clique(edges, clique) for edges in snapshots), clique

    def test_deterministic(self):
        a1, p1 = planted_clique_churn(10, 3, num_plants=2, seed=7)
        a2, p2 = planted_clique_churn(10, 3, num_plants=2, seed=7)
        assert p1 == p2
        n1, _ = replay(a1, 10)
        n2, _ = replay(a2, 10)
        assert n1.edges == n2.edges

    def test_k_larger_than_n_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            planted_clique_churn(3, 5, num_plants=1)


class TestPlantedCycles:
    def test_each_cycle_is_present_at_some_point(self):
        adversary, plants = planted_cycle_churn(12, 5, num_plants=2, seed=3)
        _, snapshots = replay(adversary, 12)
        for cycle in plants:
            assert any(set_is_cycle(edges, cycle) for edges in snapshots), cycle

    def test_cycles_eventually_removed(self):
        adversary, plants = planted_cycle_churn(10, 4, num_plants=1, seed=0)
        network, _ = replay(adversary, 10)
        assert network.num_edges == 0


class TestGrowingAndFlipFlop:
    def test_growing_random_graph_reaches_target(self):
        adversary = growing_random_graph(15, 25, edges_per_round=2, seed=1)
        network, snapshots = replay(adversary, 15)
        assert network.num_edges == 25
        # Monotone growth.
        sizes = [len(s) for s in snapshots]
        assert sizes == sorted(sizes)

    def test_flip_flop_returns_to_empty(self):
        adversary = flip_flop_edges([(0, 1), (1, 2)], repetitions=3, gap_rounds=2)
        network, snapshots = replay(adversary, 5)
        assert network.num_edges == 0
        # The edges were present during each repetition.
        assert sum(1 for s in snapshots if (0, 1) in s) >= 3
