"""Remark 2: membership listing of any 2-diameter pattern in O(n / log n).

The paper notes (Remark 2) that combining Lemma 1 (full 2-hop neighborhood
listing) with Theorem 2 pins the complexity of membership listing for every
pattern of diameter 2: achievable in O(n / log n) amortized rounds, and no
faster in general.  These tests exercise the "achievable" half end-to-end: the
Lemma 1 structure answers H-membership queries for 2-diameter patterns
(diamond, C4, P3) correctly once it is consistent, including under the
Theorem 2 rewiring adversary.
"""

import pytest

from repro.adversary import MembershipLowerBoundAdversary, ScriptedAdversary
from repro.core import HMembershipQuery, QueryResult, TwoHopListingNode
from repro.core.membership import PATTERNS

from conftest import run_schedule, run_simulation


class TestDiamondMembership:
    def test_present_occurrence_is_reported(self):
        # Diamond pattern: vertices 0..3, edges (0,1),(0,2),(0,3),(1,2),(2,3).
        # Map pattern vertex i -> network node i; query at the hub (node 0).
        edges = [(0, 1), (0, 2), (0, 3), (1, 2), (2, 3)]
        result, _ = run_schedule(TwoHopListingNode, [(edges, [])], n=6)
        query = HMembershipQuery(PATTERNS["diamond"], (0, 1, 2, 3))
        assert result.nodes[0].query(query) is QueryResult.TRUE
        assert result.nodes[2].query(query) is QueryResult.TRUE

    def test_missing_edge_is_detected(self):
        edges = [(0, 1), (0, 2), (0, 3), (1, 2)]  # (2,3) missing
        result, _ = run_schedule(TwoHopListingNode, [(edges, [])], n=6)
        query = HMembershipQuery(PATTERNS["diamond"], (0, 1, 2, 3))
        assert result.nodes[0].query(query) is QueryResult.FALSE

    def test_c4_membership_from_a_cycle_node(self):
        edges = [(0, 1), (1, 2), (2, 3), (0, 3)]
        result, _ = run_schedule(TwoHopListingNode, [(edges, [])], n=6)
        query = HMembershipQuery(PATTERNS["C4"], (0, 1, 2, 3))
        assert result.nodes[0].query(query) is QueryResult.TRUE
        broken = HMembershipQuery(PATTERNS["C4"], (0, 1, 2, 4))
        assert result.nodes[0].query(broken) is QueryResult.FALSE


class TestUnderTheoremTwoAdversary:
    @pytest.mark.parametrize("pattern_name", ["P3", "diamond"])
    def test_membership_answers_track_the_rewiring(self, pattern_name):
        """After every stabilization the Lemma 1 structure answers correctly.

        The Theorem 2 adversary alternates a fresh node's attachment between
        the two non-adjacent pattern vertices; a checker queries the currently
        attached occurrence after the run and verifies it against the true
        graph (the point of Remark 2 is that this *works*, just not cheaply).
        """
        pattern = PATTERNS[pattern_name]
        n = 14
        adversary = MembershipLowerBoundAdversary(n, pattern, num_iterations=4)
        result, oracle = run_simulation(TwoHopListingNode, adversary, n=n)
        network = result.network
        # Build a query for the last iteration's phase-a occurrence: pattern
        # vertex a -> the probe node, anchors -> anchor nodes, b -> any spare node.
        probe = adversary.iterations[-1].node
        a, b = adversary.vertex_a, adversary.vertex_b
        assignment = [None] * pattern.k
        assignment[a] = probe
        for vertex, node in adversary.anchor_map.items():
            assignment[vertex] = node
        spare = next(
            x for x in range(n) if x not in set(assignment) - {None} and x != probe
        )
        assignment[b] = spare
        query = HMembershipQuery(pattern, tuple(assignment))
        expected = all(network.has_edge(*e) for e in query.mapped_edges())
        anchor = adversary.anchor_nodes[0]
        answer = result.nodes[anchor].query(query)
        assert answer is QueryResult.of(expected)

    def test_growth_documented_by_integration_suite(self):
        """The cost side of Remark 2 is covered by E6/E7 and the integration tests."""
        # This test exists to point readers at the right place; the actual
        # growth assertions live in tests/test_integration_paper_claims.py and
        # benchmarks/bench_theorem2_lowerbound.py.
        assert True
