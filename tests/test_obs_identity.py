"""Telemetry must never perturb the simulation.

The hard constraint of the observability subsystem: with telemetry (and even
a profiler) enabled, every engine produces bit-identical results -- same
metrics, same realized traces, same final state fingerprints -- as a plain
run.  These tests pin that across the dense, sparse and sharded engines, and
cover the campaign-runner plumbing that carries the settings into worker
processes.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments import (
    CampaignRunner,
    CampaignSpec,
    ExperimentSpec,
    ResultStore,
    execute_cell,
)
from repro.obs import TELEMETRY, load_final_snapshot

ENGINE_CONFIGS = [
    pytest.param({"engine_mode": "dense"}, id="dense"),
    pytest.param({"engine_mode": "sparse"}, id="sparse"),
    pytest.param({"engine": "sharded", "num_workers": 2}, id="sharded"),
]


def _spec(**overrides) -> ExperimentSpec:
    base = {
        "algorithm": "triangle",
        "adversary": "churn",
        "n": 12,
        "rounds": 30,
        "seed": 3,
        "adversary_params": {"inserts_per_round": 2, "deletes_per_round": 1},
    }
    base.update(overrides)
    return ExperimentSpec.from_dict(base)


def _essence(record):
    """The deterministic portion of a cell record (timing and observability
    payload fields dropped -- the shipped snapshot and trace-event bookkeeping
    only exist on instrumented runs by design)."""
    return {
        key: value
        for key, value in record.items()
        if key
        not in (
            "duration_s",
            "finished_at",
            "telemetry_path",
            "profile_path",
            "telemetry",
            "trace_events",
            "trace_events_dropped",
            "trace_events_path",
        )
    }


class TestBitIdentity:
    @pytest.mark.parametrize("config", ENGINE_CONFIGS)
    def test_telemetry_does_not_perturb_results(self, config, tmp_path):
        spec = _spec(**config)
        plain_record, plain_trace = execute_cell(spec)
        instr_record, instr_trace = execute_cell(spec, telemetry_dir=tmp_path)
        assert plain_record["status"] == "ok"
        assert _essence(instr_record) == _essence(plain_record)
        assert instr_trace == plain_trace
        assert instr_record["state_fingerprint"] == plain_record["state_fingerprint"]

    @pytest.mark.parametrize("config", ENGINE_CONFIGS)
    def test_telemetry_snapshot_names_engine_stages(self, config, tmp_path):
        spec = _spec(**config)
        record, _ = execute_cell(spec, telemetry_dir=tmp_path, telemetry_interval_s=0.0)
        snap = load_final_snapshot(record["telemetry_path"])
        assert snap is not None and snap["final"] is True
        spans = snap["spans"]
        for stage in ("engine.indications", "engine.compute", "engine.route",
                      "engine.deliver", "engine.round"):
            assert stage in spans, f"missing span {stage} in {sorted(spans)}"
            assert spans[stage]["count"] > 0
            assert spans[stage]["total_s"] >= 0.0
        assert spans["engine.round"]["total_s"] > 0.0
        # Drain rounds run past the scheduled horizon, so >= not ==.
        assert snap["counters"]["engine.rounds"] >= spec.rounds
        assert "engine.active_set" in snap["histograms"]

    def test_profiling_does_not_perturb_results(self, tmp_path):
        spec = _spec(engine_mode="sparse")
        plain_record, plain_trace = execute_cell(spec)
        prof_record, prof_trace = execute_cell(
            spec, profile="cprofile", profile_dir=tmp_path
        )
        assert _essence(prof_record) == _essence(plain_record)
        assert prof_trace == plain_trace
        assert (tmp_path / f"{spec.cell_id}.pstats").exists()

    def test_telemetry_singleton_left_disabled(self, tmp_path):
        execute_cell(_spec(), telemetry_dir=tmp_path)
        assert not TELEMETRY.enabled

    def test_telemetry_disabled_even_on_cell_error(self, tmp_path):
        spec = _spec(
            adversary="scripted",
            adversary_params={"trace_path": str(tmp_path / "missing.json")},
        )
        record, _ = execute_cell(spec, telemetry_dir=tmp_path)
        assert record["status"] == "error"
        assert not TELEMETRY.enabled
        # Even a failed cell leaves a parseable final snapshot behind.
        assert load_final_snapshot(record["telemetry_path"]) is not None

    def test_rejects_unknown_profiler(self):
        with pytest.raises(ValueError, match="unknown profiler"):
            execute_cell(_spec(), profile="magic")


def _campaign(**telemetry) -> CampaignSpec:
    return CampaignSpec(
        name="obs-identity",
        base={
            "algorithm": "triangle",
            "adversary": "churn",
            "rounds": 20,
            "adversary_params": {"inserts_per_round": 2, "deletes_per_round": 1},
        },
        grid={"n": [10, 12]},
        seeds=[0, 1],
        **({"telemetry": telemetry} if telemetry else {}),
    )


class TestCampaignTelemetry:
    def test_runner_flag_writes_per_cell_artifacts(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        report = CampaignRunner(
            _campaign(), store, jobs=1, telemetry=True, telemetry_interval_s=0.0
        ).run()
        assert report.num_run == 4 and not report.failed
        for record in report.records:
            path = store.telemetry_path(record["cell_id"])
            assert record["telemetry_path"] == str(path)
            assert load_final_snapshot(path)["label"] == record["cell_id"]

    def test_worker_pool_carries_telemetry_and_start_events(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        started = []
        report = CampaignRunner(
            _campaign(), store, jobs=2, telemetry=True
        ).run(on_start=started.append)
        assert report.num_run == 4 and not report.failed
        assert sorted(started) == sorted(r["cell_id"] for r in report.records)
        assert len(list(store.telemetry_root.glob("*.jsonl"))) == 4

    def test_spec_level_telemetry_settings_apply(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        report = CampaignRunner(
            _campaign(enabled=True, interval_s=0.0), store, jobs=1
        ).run()
        assert report.num_run == 4
        assert len(list(store.telemetry_root.glob("*.jsonl"))) == 4

    def test_runner_flag_overrides_spec_off(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        CampaignRunner(
            _campaign(enabled=True), store, jobs=1, telemetry=False
        ).run()
        assert not store.telemetry_root.exists()

    def test_telemetry_identical_fingerprints_vs_plain_run(self, tmp_path):
        plain = CampaignRunner(_campaign(), ResultStore(tmp_path / "plain"), jobs=1).run()
        instr = CampaignRunner(
            _campaign(), ResultStore(tmp_path / "instr"), jobs=1, telemetry=True
        ).run()
        plain_fp = {r["cell_id"]: r["state_fingerprint"] for r in plain.records}
        instr_fp = {r["cell_id"]: r["state_fingerprint"] for r in instr.records}
        assert plain_fp == instr_fp

    def test_profiler_writes_pstats(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        report = CampaignRunner(
            _campaign(), store, jobs=1, profile="cprofile"
        ).run()
        assert report.num_run == 4
        for record in report.records:
            assert store.profile_path(record["cell_id"]).exists()

    def test_rejects_unknown_profiler(self, tmp_path):
        with pytest.raises(ValueError, match="unknown profiler"):
            CampaignRunner(_campaign(), ResultStore(tmp_path / "s"), profile="magic")

    def test_telemetry_spec_round_trips_json(self):
        campaign = _campaign(enabled=True, interval_s=0.5)
        clone = CampaignSpec.from_dict(json.loads(json.dumps(campaign.to_dict())))
        assert clone.telemetry == {"enabled": True, "interval_s": 0.5}
        # Telemetry settings live on the campaign, not the cells: cell ids
        # (spec hashes) are identical with and without them.
        assert [c.cell_id for c in clone.expand()] == [
            c.cell_id for c in _campaign().expand()
        ]

    def test_telemetry_spec_validation(self):
        with pytest.raises(ValueError, match="telemetry"):
            CampaignSpec(
                name="bad", base={"algorithm": "triangle", "adversary": "churn"},
                grid={}, telemetry={"bogus_key": 1},
            )
