"""Tests for the process-parallel sharded round engine."""

import sys

import pytest

from repro.adversary import RandomChurnAdversary
from repro.core import EdgeQuery, QueryResult, RobustTwoHopNode, TriangleMembershipNode
from repro.simulator import (
    DynamicNetwork,
    MetricsCollector,
    RoundEngine,
    ShardedRoundEngine,
    shard_nodes,
)
from repro.simulator.adversary import AdversaryView

pytestmark = pytest.mark.skipif(
    not sys.platform.startswith("linux"), reason="fork start method required"
)


class TestSharding:
    def test_shard_nodes_balanced(self):
        shards = shard_nodes(10, 3)
        assert [len(s) for s in shards] == [4, 3, 3]
        assert sorted(v for shard in shards for v in shard) == list(range(10))

    def test_shard_count_capped_by_n(self):
        assert len(shard_nodes(2, 8)) == 2

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            shard_nodes(5, 0)


def run_serial(n, adversary_factory):
    adversary = adversary_factory()
    network = DynamicNetwork(n)
    nodes = {v: TriangleMembershipNode(v, n) for v in range(n)}
    engine = RoundEngine(network, nodes, metrics=MetricsCollector())
    while not adversary.is_done:
        view = AdversaryView.from_network(network, network.round_index + 1, engine.all_consistent)
        changes = adversary.changes_for_round(view)
        if changes is None:
            break
        engine.execute_round(changes)
    while not engine.all_consistent:
        engine.execute_quiet_round()
    return engine


def run_sharded(n, adversary_factory, workers):
    adversary = adversary_factory()
    engine = ShardedRoundEngine(n, TriangleMembershipNode, num_workers=workers)
    try:
        while not adversary.is_done:
            view = AdversaryView.from_network(
                engine.network, engine.network.round_index + 1, engine.all_consistent
            )
            changes = adversary.changes_for_round(view)
            if changes is None:
                break
            engine.execute_round(changes)
        while not engine.all_consistent:
            engine.execute_quiet_round()
        return engine
    except Exception:
        engine.shutdown()
        raise


class TestEquivalenceWithSerialEngine:
    def test_same_metrics_and_answers(self):
        n = 10
        make_adversary = lambda: RandomChurnAdversary(
            n, num_rounds=60, inserts_per_round=2, deletes_per_round=1, seed=3
        )
        serial = run_serial(n, make_adversary)
        sharded = run_sharded(n, make_adversary, workers=3)
        try:
            assert sharded.network.edges == serial.network.edges
            assert (
                sharded.metrics.inconsistent_rounds == serial.metrics.inconsistent_rounds
            )
            assert sharded.metrics.total_changes == serial.metrics.total_changes
            assert sharded.metrics.total_envelopes == serial.metrics.total_envelopes
            # Spot-check queries against the serial nodes' answers.
            for v in range(n):
                for u in range(v + 1, n):
                    expected = serial.nodes[v].query(EdgeQuery(v, u))
                    assert sharded.query(v, EdgeQuery(v, u)) is expected
        finally:
            sharded.shutdown()

    def test_context_manager_shuts_down(self):
        with ShardedRoundEngine(6, RobustTwoHopNode, num_workers=2) as engine:
            from repro.simulator import RoundChanges

            engine.execute_round(RoundChanges.inserts([(0, 1)]))
            engine.execute_quiet_round()
            assert engine.query(0, EdgeQuery(0, 1)) is QueryResult.TRUE
        # After the context exits the engine refuses further work.
        with pytest.raises(RuntimeError):
            engine.execute_quiet_round()
