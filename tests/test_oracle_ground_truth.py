"""Tests for the GroundTruthOracle (snapshot bookkeeping and reference queries)."""

import pytest

from repro.oracle import GroundTruthOracle
from repro.simulator import DynamicNetwork, RoundChanges


def build_oracle():
    """A small history: a triangle appears over three rounds, then loses an edge."""
    network = DynamicNetwork(5)
    oracle = GroundTruthOracle(5)
    network.apply_changes(1, RoundChanges.inserts([(0, 1)]))
    oracle.observe(network)
    network.apply_changes(2, RoundChanges.inserts([(1, 2)]))
    oracle.observe(network)
    network.apply_changes(3, RoundChanges.inserts([(0, 2)]))
    oracle.observe(network)
    network.apply_changes(5, RoundChanges.deletes([(1, 2)]))
    oracle.observe(network)
    return oracle


class TestSnapshots:
    def test_round_zero_is_empty(self):
        oracle = GroundTruthOracle(4)
        assert oracle.edges_at(0) == frozenset()

    def test_latest_round_tracking(self):
        oracle = build_oracle()
        assert oracle.latest_round == 5
        assert oracle.edges_at() == frozenset({(0, 1), (0, 2)})

    def test_historic_rounds(self):
        oracle = build_oracle()
        assert oracle.edges_at(1) == frozenset({(0, 1)})
        assert oracle.edges_at(3) == frozenset({(0, 1), (0, 2), (1, 2)})

    def test_unobserved_round_falls_back_to_previous(self):
        oracle = build_oracle()
        # Round 4 was quiet/unobserved: the round-3 snapshot applies.
        assert oracle.edges_at(4) == oracle.edges_at(3)

    def test_round_before_history_raises(self):
        oracle = GroundTruthOracle(4)
        with pytest.raises(KeyError):
            oracle.snapshot(-1)

    def test_insertion_times_at_round(self):
        oracle = build_oracle()
        assert oracle.times_at(3)[(0, 2)] == 3
        assert (1, 2) not in oracle.times_at(5)


class TestReferenceQueries:
    def test_subgraph_queries_current_and_past(self):
        oracle = build_oracle()
        assert oracle.is_triangle({0, 1, 2}, round_index=3)
        assert not oracle.is_triangle({0, 1, 2}, round_index=5)
        assert oracle.triangles_containing(0, round_index=3) == {frozenset({0, 1, 2})}
        assert oracle.triangles_containing(0) == set()

    def test_clique_and_cycle_queries(self):
        oracle = build_oracle()
        assert oracle.is_clique({0, 1}, round_index=1)
        assert oracle.set_is_cycle({0, 1, 2}, round_index=3)
        assert oracle.is_cycle_ordering((0, 1, 2), round_index=3)
        assert not oracle.is_cycle_ordering((0, 1, 2), round_index=5)
        assert oracle.cycles_of_length(3, round_index=3) == {frozenset({0, 1, 2})}

    def test_robust_sets_at_round(self):
        oracle = build_oracle()
        # At round 3 the far edge (1,2) is older than (0,2) but newer than (0,1):
        # robust for node 0 via endpoint 1.
        assert (1, 2) in oracle.robust_two_hop(0, round_index=3)
        assert (1, 2) in oracle.triangle_pattern_set(0, round_index=3)
        assert (1, 2) in oracle.robust_three_hop(0, round_index=3)
        assert oracle.khop_edges(0, 1, round_index=3) == frozenset({(0, 1), (0, 2)})

    def test_validator_records_rounds(self):
        network = DynamicNetwork(4)
        oracle = GroundTruthOracle(4)
        validator = oracle.validator()
        network.apply_changes(1, RoundChanges.inserts([(0, 1)]))
        validator(1, network, {})
        assert oracle.edges_at(1) == frozenset({(0, 1)})
