"""Tests for the adversary / workload generators (validity and structure)."""

import pytest

from repro.adversary import (
    WAIT_FOR_STABILITY,
    BatchInsertAdversary,
    FlickerTriangleAdversary,
    HeavyTailedChurnAdversary,
    RandomChurnAdversary,
    ScheduleAdversary,
    ScriptedAdversary,
    flicker_schedule,
)
from repro.simulator import DynamicNetwork, RoundChanges
from repro.simulator.adversary import AdversaryView


def drive(adversary, n, max_rounds=10_000, consistent=True):
    """Apply an adversary's schedule to a bare network and return it.

    This validates that every produced batch is legal for the current graph
    (the network raises otherwise).
    """
    network = DynamicNetwork(n)
    rounds = 0
    while not adversary.is_done and rounds < max_rounds:
        view = AdversaryView.from_network(network, network.round_index + 1, consistent)
        changes = adversary.changes_for_round(view)
        if changes is None:
            break
        network.apply_changes(network.round_index + 1, changes)
        rounds += 1
    return network, rounds


class TestScripted:
    def test_replays_rounds_in_order(self):
        adversary = ScriptedAdversary([
            ([(0, 1)], []),
            None,
            ([(1, 2)], [(0, 1)]),
        ])
        network, rounds = drive(adversary, 4)
        assert rounds == 3
        assert network.edges == frozenset({(1, 2)})
        assert adversary.is_done

    def test_rejects_bad_entry(self):
        with pytest.raises(TypeError):
            ScriptedAdversary(["nonsense"])

    def test_one_edge_per_round(self):
        adversary = ScriptedAdversary.one_edge_per_round([(0, 1), (1, 2)])
        network, rounds = drive(adversary, 4)
        assert rounds == 2
        assert network.num_edges == 2


class TestScriptedStrictness:
    """Schedules referencing unknown node ids are rejected up front."""

    def test_scripted_adversary_validates_against_n(self):
        with pytest.raises(ValueError, match=r"node 7 .*round 2.*nodes 0\.\.3"):
            ScriptedAdversary([([(0, 1)], []), ([(3, 7)], [])], n=4)

    def test_scripted_adversary_without_n_stays_lenient(self):
        # n is optional: unit tests that construct schedules for ad-hoc
        # networks keep working, and the network itself still validates.
        ScriptedAdversary([([(3, 7)], [])])

    def test_trace_replay_rejects_out_of_range_ids(self):
        from repro.simulator.trace import TopologyTrace, TraceReplayAdversary

        trace = TopologyTrace(n=4)
        trace.append(RoundChanges.inserts([(0, 1)]))
        trace.append(RoundChanges.inserts([(2, 5)]))
        with pytest.raises(ValueError, match=r"node 5 .*round 2"):
            TraceReplayAdversary(trace)

    def test_validate_nodes_accepts_legal_traces(self):
        from repro.simulator.trace import TopologyTrace

        trace = TopologyTrace(n=4)
        trace.append(RoundChanges.of(insert=[(0, 3)], delete=[]))
        assert trace.validate_nodes() is trace
        assert trace.max_node_id() == 3
        assert TopologyTrace(n=4).max_node_id() == -1

    def test_registry_scripted_builder_is_strict(self):
        from repro.experiments import build_adversary

        bad = {"n": 4, "rounds": [{"insert": [[0, 9]], "delete": []}]}
        # even though the spec's network (n=12) could host node 9, the trace
        # declares n=4: the recording and the schedule contradict each other
        with pytest.raises(ValueError, match="node 9"):
            build_adversary("scripted", n=12, rounds=None, seed=0, params={"trace": bad})


class TestScheduleAdversary:
    def test_wait_for_stability_blocks_until_consistent(self):
        def gen():
            yield RoundChanges.inserts([(0, 1)])
            yield WAIT_FOR_STABILITY
            yield RoundChanges.inserts([(1, 2)])

        adversary = ScheduleAdversary(gen())
        network = DynamicNetwork(4)
        # Round 1: the insert.
        view = AdversaryView.from_network(network, 1, True)
        network.apply_changes(1, adversary.changes_for_round(view))
        # Round 2: system inconsistent -> quiet round.
        view = AdversaryView.from_network(network, 2, False)
        changes = adversary.changes_for_round(view)
        assert len(changes) == 0
        # Round 3: still inconsistent -> still waiting.
        view = AdversaryView.from_network(network, 3, False)
        assert len(adversary.changes_for_round(view)) == 0
        # Round 4: consistent -> the next batch is released.
        view = AdversaryView.from_network(network, 4, True)
        changes = adversary.changes_for_round(view)
        assert changes.insertions == [(1, 2)]

    def test_wait_skipped_if_already_stable(self):
        def gen():
            yield RoundChanges.inserts([(0, 1)])
            yield WAIT_FOR_STABILITY
            yield RoundChanges.inserts([(1, 2)])

        adversary = ScheduleAdversary(gen())
        network = DynamicNetwork(4)
        view = AdversaryView.from_network(network, 1, True)
        network.apply_changes(1, adversary.changes_for_round(view))
        # Consistent already: the wait sentinel must not burn a round.
        view = AdversaryView.from_network(network, 2, True)
        changes = adversary.changes_for_round(view)
        assert changes.insertions == [(1, 2)]


class TestRandomChurn:
    def test_produces_valid_batches(self):
        adversary = RandomChurnAdversary(15, num_rounds=120, inserts_per_round=3, deletes_per_round=2, seed=5)
        network, rounds = drive(adversary, 15)
        assert rounds == 120

    def test_deterministic_given_seed(self):
        def realize(seed):
            adversary = RandomChurnAdversary(10, num_rounds=40, seed=seed)
            network, _ = drive(adversary, 10)
            return network.edges

        assert realize(3) == realize(3)
        assert realize(3) != realize(4)

    def test_warmup_edges(self):
        adversary = RandomChurnAdversary(12, num_rounds=1, inserts_per_round=0,
                                         deletes_per_round=0, warmup_edges=10, seed=0)
        network, _ = drive(adversary, 12)
        assert network.num_edges == 10

    def test_requires_two_nodes(self):
        with pytest.raises(ValueError):
            RandomChurnAdversary(1, num_rounds=1)


class TestHeavyTailedChurn:
    def test_produces_valid_batches(self):
        adversary = HeavyTailedChurnAdversary(20, num_rounds=150, seed=7)
        network, rounds = drive(adversary, 20)
        assert rounds == 150

    def test_sessions_create_and_destroy_edges(self):
        adversary = HeavyTailedChurnAdversary(20, num_rounds=200, seed=1, offline_probability=0.5)
        network = DynamicNetwork(20)
        total_inserts = total_deletes = 0
        while not adversary.is_done:
            view = AdversaryView.from_network(network, network.round_index + 1, True)
            changes = adversary.changes_for_round(view)
            total_inserts += len(changes.insertions)
            total_deletes += len(changes.deletions)
            network.apply_changes(network.round_index + 1, changes)
        assert total_inserts > 0
        assert total_deletes > 0

    def test_deterministic_given_seed(self):
        def realize(seed):
            adversary = HeavyTailedChurnAdversary(15, num_rounds=60, seed=seed)
            network, _ = drive(adversary, 15)
            return network.edges

        assert realize(2) == realize(2)


class TestBatchInsert:
    def test_single_burst(self):
        adversary = BatchInsertAdversary([(0, 1), (2, 3)], quiet_rounds=2)
        network, rounds = drive(adversary, 5)
        assert network.num_edges == 2
        assert rounds == 3  # burst + two quiet rounds

    def test_random_graph_builder(self):
        adversary = BatchInsertAdversary.random_graph(10, num_edges=12, seed=0)
        network, _ = drive(adversary, 10)
        assert network.num_edges == 12


class TestFlicker:
    def test_schedule_shape(self):
        schedule = flicker_schedule(0, 1, 2, filler_u=[3, 4], filler_w=[5, 6, 7, 8])
        # Round 1 builds the triangle plus filler edges.
        assert (0, 1) in schedule[0].insertions and (1, 2) in schedule[0].insertions
        # Round 2 deletes the far edge.
        assert schedule[1].deletions == [(1, 2)]
        # The {v,u} edge is deleted exactly in u's announcement round (3 + 2).
        announce_u = 3 + 2
        assert (0, 1) in schedule[announce_u - 1].deletions
        assert (0, 1) in schedule[announce_u].insertions
        # The {v,w} edge is deleted exactly in w's announcement round (3 + 4).
        announce_w = 3 + 4
        assert (0, 2) in schedule[announce_w - 1].deletions
        assert (0, 2) in schedule[announce_w].insertions

    def test_requires_distinct_backlogs(self):
        with pytest.raises(ValueError):
            flicker_schedule(0, 1, 2, filler_u=[3], filler_w=[4])

    def test_requires_distinct_nodes(self):
        with pytest.raises(ValueError):
            flicker_schedule(0, 1, 2, filler_u=[3], filler_w=[3, 4])

    def test_adversary_is_valid_schedule(self):
        adversary = FlickerTriangleAdversary()
        network, _ = drive(adversary, 9)
        # At the end of the schedule the far edge is gone but the two incident
        # edges are back.
        assert not network.has_edge(1, 2)
        assert network.has_edge(0, 1) and network.has_edge(0, 2)

    def test_background_edges_embed_gadget_in_static_graph(self):
        adversary = FlickerTriangleAdversary(background_edges=25, n=40)
        network, _ = drive(adversary, 40)
        # The gadget plays out exactly as without a background...
        assert not network.has_edge(1, 2)
        assert network.has_edge(0, 1) and network.has_edge(0, 2)
        # ...while 25 static edges among non-gadget nodes survive untouched.
        gadget = set(range(9))
        background = [e for e in network.edges if not set(e) & gadget]
        assert len(background) == 25

    def test_background_edges_deterministic_per_seed(self):
        a = FlickerTriangleAdversary(background_edges=10, n=30, settle_rounds=0)
        b = FlickerTriangleAdversary(background_edges=10, n=30, settle_rounds=0)
        net_a, _ = drive(a, 30)
        net_b, _ = drive(b, 30)
        assert net_a.edges == net_b.edges

    def test_background_edges_require_n(self):
        with pytest.raises(ValueError, match="network size"):
            FlickerTriangleAdversary(background_edges=5)

    def test_registry_wires_spec_seed_into_background(self):
        # Multi-seed sweeps of a flicker+background cell must realize
        # distinct graphs (the background is the cell's only randomness).
        from repro.experiments import build_adversary

        def edges_for(seed):
            adversary = build_adversary(
                "flicker",
                n=30,
                seed=seed,
                params={"background_edges": 10, "settle_rounds": 0},
            )
            network, _ = drive(adversary, 30)
            return network.edges

        assert edges_for(0) == edges_for(0)
        assert edges_for(0) != edges_for(1)


class TestTraceJSONRoundTrip:
    """Every registered random adversary's trace JSON-serializes and replays
    bit-identically (regression: numpy-backed generators leaked ``np.int64``
    endpoints that json.dumps rejects and that broke replay fingerprints)."""

    REPLAYABLE = [
        "batch", "churn", "flicker", "fuzz", "growing", "growing_star",
        "p2p", "planted_clique", "planted_cycle", "theorem2", "threepath",
    ]

    @pytest.mark.parametrize("name", REPLAYABLE)
    def test_trace_serializes_and_replays_identically(self, name):
        import json

        from repro.experiments import ALGORITHMS, build_adversary
        from repro.simulator import (
            SimulationRunner,
            TopologyTrace,
            TraceReplayAdversary,
        )

        def run(adversary):
            runner = SimulationRunner(
                n=16,
                algorithm_factory=ALGORITHMS["naive"],
                adversary=adversary,
                record_trace=True,
                strict_bandwidth=False,
            )
            return runner.run(num_rounds=20)

        first = run(build_adversary(name, n=16, rounds=20, seed=3, params={}))
        payload = json.dumps(first.trace.to_dict(), sort_keys=True)
        # Endpoint types must be builtin ints all the way down.
        for inserts, deletes in first.trace.rounds:
            for edge in list(inserts) + list(deletes):
                assert all(type(x) is int for x in edge), (name, edge)
        replayed = run(
            TraceReplayAdversary(TopologyTrace.from_dict(json.loads(payload)))
        )
        assert replayed.trace.to_dict() == first.trace.to_dict()
        assert replayed.metrics.rounds == first.metrics.rounds
        assert replayed.network.edges == first.network.edges

    def test_theorem4_trace_serializes(self):
        import json

        from repro.experiments import ALGORITHMS, build_adversary
        from repro.simulator import SimulationRunner

        adversary = build_adversary("theorem4", n=49, rounds=15, seed=1, params={})
        runner = SimulationRunner(
            n=49,
            algorithm_factory=ALGORITHMS["naive"],
            adversary=adversary,
            record_trace=True,
            strict_bandwidth=False,
        )
        result = runner.run(num_rounds=15)
        json.dumps(result.trace.to_dict())
