"""Tests for the robust 2-hop neighborhood data structure (Theorem 7)."""

import pytest

from repro.adversary import FlickerTriangleAdversary, RandomChurnAdversary, ScriptedAdversary
from repro.core import EdgeQuery, QueryResult, RobustTwoHopNode
from repro.oracle import robust_two_hop

from conftest import run_schedule, run_simulation


def assert_equals_robust_set(result, scope="final graph"):
    """The known edge set of every node must equal R^{v,2} of the final graph."""
    network = result.network
    times = network.insertion_times()
    for v, node in result.nodes.items():
        expected = robust_two_hop(network.edges, times, v)
        assert node.known_edges() == expected, (
            f"node {v} ({scope}): expected {sorted(expected)}, got {sorted(node.known_edges())}"
        )


class TestBasicScenarios:
    def test_single_edge_insertion(self):
        result, _ = run_schedule(RobustTwoHopNode, [([(0, 1)], [])], n=4)
        assert result.nodes[0].knows_edge(0, 1)
        assert result.nodes[1].knows_edge(0, 1)
        assert not result.nodes[2].knows_edge(0, 1)
        assert_equals_robust_set(result)

    def test_two_hop_edge_learned_when_newer(self):
        # 0-1 first, then 1-2: the far edge is newer, so 0 must learn it.
        result, _ = run_schedule(RobustTwoHopNode, [([(0, 1)], []), ([(1, 2)], [])], n=4)
        assert result.nodes[0].knows_edge(1, 2)
        assert_equals_robust_set(result)

    def test_two_hop_edge_not_learned_when_older(self):
        # 1-2 first, then 0-1: the far edge is older, so it is *not* robust for 0.
        result, _ = run_schedule(RobustTwoHopNode, [([(1, 2)], []), ([(0, 1)], [])], n=4)
        assert not result.nodes[0].knows_edge(1, 2)
        assert_equals_robust_set(result)

    def test_same_round_insertions_are_robust(self):
        result, _ = run_schedule(RobustTwoHopNode, [([(0, 1), (1, 2)], [])], n=4)
        # Equal timestamps satisfy t_e >= t_{v,u}.
        assert result.nodes[0].knows_edge(1, 2)
        assert_equals_robust_set(result)

    def test_far_edge_deletion_is_propagated(self):
        result, _ = run_schedule(
            RobustTwoHopNode,
            [([(0, 1)], []), ([(1, 2)], []), None, ([], [(1, 2)])],
            n=4,
        )
        assert not result.nodes[0].knows_edge(1, 2)
        assert_equals_robust_set(result)

    def test_connection_deletion_forgets_unsupported_edges(self):
        # 0 learns 1-2 through 1; when 0-1 disappears the knowledge goes away.
        result, _ = run_schedule(
            RobustTwoHopNode,
            [([(0, 1)], []), ([(1, 2)], []), None, ([], [(0, 1)])],
            n=4,
        )
        assert not result.nodes[0].knows_edge(1, 2)
        assert_equals_robust_set(result)

    def test_edge_supported_via_second_endpoint_survives(self):
        # 0 connects to both 1 and 2 before 1-2 appears; deleting 0-1 keeps
        # the knowledge via 2.
        result, _ = run_schedule(
            RobustTwoHopNode,
            [([(0, 1), (0, 2)], []), ([(1, 2)], []), None, ([], [(0, 1)])],
            n=4,
        )
        assert result.nodes[0].knows_edge(1, 2)
        assert_equals_robust_set(result)

    def test_reinsertion_refreshes_robustness(self):
        # The far edge is deleted and re-inserted after the connection: robust again.
        result, _ = run_schedule(
            RobustTwoHopNode,
            [
                ([(1, 2)], []),
                ([(0, 1)], []),
                None,
                ([], [(1, 2)]),
                None,
                ([(1, 2)], []),
            ],
            n=4,
        )
        assert result.nodes[0].knows_edge(1, 2)
        assert_equals_robust_set(result)


class TestFlickeringAdversary:
    def test_flicker_does_not_leave_ghost_edges(self):
        """The Section 1.3 bad case: the robust structure must forget {u, w}."""
        adversary = FlickerTriangleAdversary()
        result, _ = run_simulation(RobustTwoHopNode, adversary, n=9)
        v_node = result.nodes[adversary.v]
        assert v_node.is_consistent()
        assert not v_node.knows_edge(*adversary.doomed_edge)
        assert_equals_robust_set(result)


class TestQueries:
    def test_query_semantics(self):
        result, _ = run_schedule(RobustTwoHopNode, [([(0, 1)], []), ([(1, 2)], [])], n=4)
        node0 = result.nodes[0]
        assert node0.query(EdgeQuery(0, 1)) is QueryResult.TRUE
        assert node0.query(EdgeQuery(1, 2)) is QueryResult.TRUE
        assert node0.query(EdgeQuery(2, 3)) is QueryResult.FALSE

    def test_inconsistent_while_queue_pending(self):
        result, _ = run_schedule(
            RobustTwoHopNode,
            [([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)], [])],
            n=4,
            drain=False,
        )
        # Right after a burst of 6 changes nobody can have drained their queue.
        assert any(
            node.query(EdgeQuery(0, 1)) is QueryResult.INCONSISTENT
            for node in result.nodes.values()
        )

    def test_rejects_wrong_query_type(self):
        node = RobustTwoHopNode(0, 4)
        with pytest.raises(TypeError):
            node.query("not a query")


class TestAgainstOracleUnderChurn:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_reference_robust_set(self, seed):
        result, _ = run_simulation(
            RobustTwoHopNode,
            RandomChurnAdversary(16, num_rounds=120, inserts_per_round=3, deletes_per_round=2, seed=seed),
            n=16,
        )
        assert_equals_robust_set(result)

    def test_amortized_complexity_is_constant(self):
        result, _ = run_simulation(
            RobustTwoHopNode,
            RandomChurnAdversary(20, num_rounds=200, inserts_per_round=3, deletes_per_round=2, seed=9),
            n=20,
        )
        # Theorem 7: at most one inconsistent round per topology change.
        assert result.metrics.max_running_amortized_complexity() <= 1.0 + 1e-9
