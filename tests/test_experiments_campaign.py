"""Tests for campaign execution: determinism, resume, parallelism, replay."""

from __future__ import annotations

import sys

import pytest

from repro.experiments import (
    CampaignRunner,
    CampaignSpec,
    ExperimentSpec,
    ResultStore,
    execute_cell,
    run_cell,
)

pytestmark = pytest.mark.skipif(
    not sys.platform.startswith("linux"), reason="fork start method required"
)

CHURN = {"inserts_per_round": 3, "deletes_per_round": 2}


def _campaign(name="sweep", rounds=30, sizes=(10, 14)):
    return CampaignSpec(
        name=name,
        base={
            "algorithm": "triangle",
            "adversary": "churn",
            "rounds": rounds,
            "adversary_params": dict(CHURN),
            "checks": ["triangle_oracle"],
        },
        grid={"n": list(sizes)},
        seeds=[0, 1],
    )


class TestRunCell:
    def test_deterministic(self):
        spec = ExperimentSpec(
            algorithm="triangle", adversary="churn", n=12, rounds=30, seed=4,
            adversary_params=dict(CHURN),
        )
        metrics_a, trace_a = run_cell(spec)
        metrics_b, trace_b = run_cell(spec)
        assert metrics_a == metrics_b
        assert trace_a.to_dict() == trace_b.to_dict()

    def test_checks_merge_into_metrics(self):
        spec = ExperimentSpec(
            algorithm="triangle", adversary="churn", n=12, rounds=30,
            adversary_params=dict(CHURN), checks=("triangle_oracle", "consistent"),
        )
        metrics, _ = run_cell(spec)
        assert metrics["triangle_matches_oracle"] == 1.0
        assert metrics["all_consistent"] == 1.0

    def test_no_trace_when_disabled(self):
        spec = ExperimentSpec(n=10, rounds=10, record_trace=False)
        _, trace = run_cell(spec)
        assert trace is None

    def test_sharded_engine_matches_serial_metrics(self):
        base = dict(
            algorithm="triangle", adversary="churn", n=24, rounds=25,
            adversary_params=dict(CHURN), drain=False,
        )
        serial, _ = run_cell(ExperimentSpec(**base, engine="serial"))
        sharded, _ = run_cell(ExperimentSpec(**base, engine="sharded", num_workers=2))
        for key in ("rounds_executed", "total_changes", "total_envelopes", "total_bits"):
            assert serial[key] == sharded[key], key

    def test_execute_cell_captures_errors(self):
        spec = ExperimentSpec(
            algorithm="triangle",
            adversary="scripted",
            n=12,
            adversary_params={"trace_path": "/nonexistent/trace.json"},
        )
        record, trace_dict = execute_cell(spec)
        assert record["status"] == "error"
        assert "FileNotFoundError" in record["error"]
        assert record["metrics"] == {}
        assert trace_dict is None


class TestCampaignRunner:
    def test_inline_run_persists_all_cells(self, tmp_path):
        campaign = _campaign()
        store = ResultStore(tmp_path / "store")
        report = CampaignRunner(campaign, store, jobs=1).run()
        assert report.num_run == 4
        assert not report.failed
        assert store.completed_ids() == {c.cell_id for c in campaign.expand()}
        for cell in campaign.expand():
            assert store.load_trace(cell.cell_id).num_rounds > 0

    def test_parallel_matches_inline(self, tmp_path):
        campaign = _campaign()
        inline_store = ResultStore(tmp_path / "inline")
        parallel_store = ResultStore(tmp_path / "parallel")
        CampaignRunner(campaign, inline_store, jobs=1).run()
        CampaignRunner(campaign, parallel_store, jobs=3).run()
        inline = {cid: r["metrics"] for cid, r in inline_store.latest().items()}
        parallel = {cid: r["metrics"] for cid, r in parallel_store.latest().items()}
        assert inline == parallel

    def test_same_seed_same_stored_metrics(self, tmp_path):
        campaign = _campaign()
        store_a = ResultStore(tmp_path / "a")
        store_b = ResultStore(tmp_path / "b")
        CampaignRunner(campaign, store_a, jobs=2).run()
        CampaignRunner(campaign, store_b, jobs=2).run()
        metrics_a = {cid: r["metrics"] for cid, r in store_a.latest().items()}
        metrics_b = {cid: r["metrics"] for cid, r in store_b.latest().items()}
        assert metrics_a == metrics_b

    def test_rerun_skips_completed_cells(self, tmp_path):
        campaign = _campaign()
        store = ResultStore(tmp_path / "store")
        first = CampaignRunner(campaign, store, jobs=2).run()
        second = CampaignRunner(campaign, store, jobs=2).run()
        assert first.num_run == 4 and first.num_skipped == 0
        assert second.num_run == 0 and second.num_skipped == 4
        assert len(store.records()) == 4

    def test_partial_store_resumes_remaining(self, tmp_path):
        campaign = _campaign()
        cells = campaign.expand()
        store = ResultStore(tmp_path / "store")
        # simulate an interrupted campaign: only the first two cells finished
        for spec in cells[:2]:
            record, trace_dict = execute_cell(spec)
            store.save_trace(spec.cell_id, trace_dict)
            store.append(record)
        report = CampaignRunner(campaign, store, jobs=2).run()
        assert report.num_skipped == 2
        assert {r["cell_id"] for r in report.records} == {c.cell_id for c in cells[2:]}
        assert store.completed_ids() == {c.cell_id for c in cells}

    def test_no_resume_reruns_everything(self, tmp_path):
        campaign = _campaign()
        store = ResultStore(tmp_path / "store")
        CampaignRunner(campaign, store, jobs=1).run()
        report = CampaignRunner(campaign, store, jobs=1).run(resume=False)
        assert report.num_run == 4 and report.num_skipped == 0
        assert len(store.records()) == 8  # append-only; latest() dedupes

    def test_failed_cells_recorded_and_retried(self, tmp_path):
        campaign = CampaignSpec(
            name="fails",
            base={
                "algorithm": "triangle",
                "adversary": "scripted",
                "adversary_params": {"trace_path": "/nonexistent/trace.json"},
            },
            grid={"n": [12]},
        )
        store = ResultStore(tmp_path / "store")
        report = CampaignRunner(campaign, store, jobs=1).run()
        assert len(report.failed) == 1
        assert store.completed_ids() == set()
        retry = CampaignRunner(campaign, store, jobs=1).run()
        assert retry.num_run == 1  # error cells are retried, not skipped

    def test_dead_worker_surfaces_missing_cells(self, tmp_path, monkeypatch):
        """A worker killed mid-shard must not silently drop its cells."""
        import os

        from repro.experiments import ADVERSARIES

        def _killer(n, rounds, seed, params):
            os._exit(13)  # simulate an OOM-kill: no exception, no cleanup

        monkeypatch.setitem(ADVERSARIES, "killer", _killer)
        campaign = CampaignSpec(
            name="deaths",
            base={"algorithm": "triangle", "rounds": 5},
            grid={
                "n": [8, 10],
                "workload": [
                    {"adversary": "churn", "adversary_params": dict(CHURN)},
                    {"adversary": "killer"},
                ],
            },
        )
        store = ResultStore(tmp_path / "store")
        report = CampaignRunner(campaign, store, jobs=2).run()
        # every cell is accounted for: the churn cells succeed, the cells the
        # dead workers never reached come back as errors (and will be retried)
        assert report.num_run == 4
        died = [r for r in report.failed if "worker process died" in r["error"]]
        assert len(died) == 2
        assert len(store.completed_ids()) == 2

    def test_unknown_start_method_resolves_to_spawn(self, tmp_path):
        # An unavailable start method falls back to 'spawn', not to inline.
        runner = CampaignRunner(
            _campaign(), tmp_path / "store", jobs=4, start_method="no-such-method"
        )
        assert runner.resolved_start_method() == "spawn"

    def test_fork_unavailable_falls_back_to_spawn(self, tmp_path, monkeypatch):
        """Without fork the pool must still run in parallel, under spawn.

        The worker target is a module-level function fed plain spec dicts, so
        it is importable and picklable from a spawned interpreter; this test
        runs a real spawn pool to prove it.
        """
        from repro.experiments import campaign as campaign_module

        real_get_context = campaign_module.mp.get_context
        requested = []

        def recording_get_context(method):
            requested.append(method)
            return real_get_context(method)

        monkeypatch.setattr(
            campaign_module.mp, "get_all_start_methods", lambda: ["spawn"]
        )
        monkeypatch.setattr(campaign_module.mp, "get_context", recording_get_context)
        campaign = CampaignSpec(
            name="spawned",
            base={
                "algorithm": "triangle",
                "adversary": "churn",
                "rounds": 5,
                "adversary_params": dict(CHURN),
                "record_trace": False,
            },
            grid={"n": [8, 10]},
        )
        store = ResultStore(tmp_path / "store")
        report = CampaignRunner(campaign, store, jobs=2, start_method="fork").run()
        assert requested == ["spawn"]
        assert report.num_run == 2 and not report.failed
        assert len(store.completed_ids()) == 2

    def test_no_start_method_available_falls_back_inline(self, tmp_path, monkeypatch):
        from repro.experiments import campaign as campaign_module

        monkeypatch.setattr(campaign_module.mp, "get_all_start_methods", lambda: [])
        monkeypatch.setattr(
            campaign_module.mp,
            "get_context",
            lambda method: pytest.fail("inline fallback must not build a context"),
        )
        campaign = _campaign()
        report = CampaignRunner(
            campaign, tmp_path / "store", jobs=4, start_method="fork"
        ).run()
        assert report.num_run == 4 and not report.failed

    def test_progress_callback_sees_every_cell(self, tmp_path):
        campaign = _campaign()
        seen = []
        CampaignRunner(campaign, tmp_path / "store", jobs=2).run(
            progress=lambda record, done, total: seen.append((record["cell_id"], total))
        )
        assert len(seen) == 4
        assert all(total == 4 for _, total in seen)

    def test_rejects_bad_jobs(self, tmp_path):
        with pytest.raises(ValueError):
            CampaignRunner(_campaign(), tmp_path / "store", jobs=0)


class TestTraceReplay:
    def test_recorded_trace_replays_to_identical_metrics(self, tmp_path):
        spec = ExperimentSpec(
            algorithm="triangle", adversary="churn", n=12, rounds=40, seed=5,
            adversary_params=dict(CHURN), checks=("triangle_oracle",),
        )
        store = ResultStore(tmp_path / "store")
        record, trace_dict = execute_cell(spec)
        trace_path = store.save_trace(spec.cell_id, trace_dict)

        replay_spec = ExperimentSpec(
            algorithm="triangle",
            adversary="scripted",
            n=12,
            adversary_params={"trace_path": str(trace_path)},
            checks=("triangle_oracle",),
        )
        replay_metrics, replay_trace = run_cell(replay_spec)
        original = record["metrics"]
        for key in (
            "rounds_executed",
            "total_changes",
            "inconsistent_rounds",
            "amortized_round_complexity",
            "total_envelopes",
            "total_bits",
            "final_edges",
            "triangle_matches_oracle",
        ):
            assert replay_metrics[key] == original[key], key
        # replaying a trace re-records the identical schedule
        assert replay_trace.to_dict() == trace_dict

    def test_replay_under_different_algorithm(self, tmp_path):
        """The same realized schedule can be fed to a different structure."""
        spec = ExperimentSpec(
            algorithm="triangle", adversary="p2p", n=12, rounds=30, seed=2,
        )
        _, trace = run_cell(spec)
        path = tmp_path / "trace.json"
        trace.save(path)
        replay = ExperimentSpec(
            algorithm="robust2hop",
            adversary="scripted",
            n=12,
            adversary_params={"trace_path": str(path)},
        )
        metrics, _ = run_cell(replay)
        assert metrics["total_changes"] == float(trace.total_changes)


class TestFlickerGhostCheck:
    def test_default_geometry_verdicts(self):
        spec = ExperimentSpec(
            algorithm="naive", adversary="flicker", n=9, checks=("flicker_ghost",),
            record_trace=False,
        )
        metrics, _ = run_cell(spec)
        # The Section 1.3 strawman: consistent but believing the deleted edge.
        assert metrics["node_v_consistent"] == 1.0
        assert metrics["believes_deleted_edge"] == 1.0

    def test_relocated_geometry_supported(self):
        # Regression: relocated v/u/w used to crash the check mid-campaign
        # ("default flicker geometry"); the promoted check reads the gadget
        # position from the spec and grades the actual node v.
        spec = ExperimentSpec(
            algorithm="naive", adversary="flicker", n=16, checks=("flicker_ghost",),
            adversary_params={"v": 9, "u": 10, "w": 11}, record_trace=False,
        )
        metrics, _ = run_cell(spec)
        assert metrics["node_v_consistent"] == 1.0
        assert metrics["believes_deleted_edge"] == 1.0

    def test_relocated_geometry_correct_structure(self):
        # The robust structure at the same relocated gadget must NOT believe
        # the deleted far edge.
        spec = ExperimentSpec(
            algorithm="robust2hop", adversary="flicker", n=16,
            checks=("flicker_ghost",),
            adversary_params={"v": 9, "u": 10, "w": 11}, record_trace=False,
        )
        metrics, _ = run_cell(spec)
        assert metrics["node_v_consistent"] == 1.0
        assert metrics["believes_deleted_edge"] == 0.0


class TestResumeValidation:
    """Fingerprint-based resume: skip only cells whose spec hash matches."""

    def test_records_carry_spec_hash_and_state_fingerprint(self):
        spec = ExperimentSpec(
            algorithm="triangle", adversary="churn", n=10, rounds=15,
            adversary_params=dict(CHURN),
        )
        record, _ = execute_cell(spec)
        assert record["spec_hash"] == spec.spec_hash
        assert len(record["spec_hash"]) == 40  # the full sha1, not the cell_id prefix
        assert record["spec_hash"].startswith(spec.cell_id.rsplit("-", 1)[-1])
        assert isinstance(record["state_fingerprint"], str)
        # deterministic: re-running the cell reproduces the same final state
        again, _ = execute_cell(spec)
        assert again["state_fingerprint"] == record["state_fingerprint"]

    def test_sharded_cells_are_fingerprinted_too(self):
        base = dict(
            algorithm="triangle", adversary="churn", n=12, rounds=15,
            adversary_params=dict(CHURN),
        )
        serial, _ = execute_cell(ExperimentSpec(**base, engine="serial"))
        sharded, _ = execute_cell(
            ExperimentSpec(**base, engine="sharded", num_workers=2)
        )
        # engine/num_workers are spec fields, so the ids differ, but the final
        # node state must be engine-independent: identical fingerprints.
        assert sharded["state_fingerprint"] == serial["state_fingerprint"]

    def test_error_records_have_no_fingerprint(self):
        spec = ExperimentSpec(
            algorithm="triangle", adversary="scripted", n=12,
            adversary_params={"trace_path": "/nonexistent/trace.json"},
        )
        record, _ = execute_cell(spec)
        assert record["status"] == "error"
        assert record["state_fingerprint"] is None

    def test_resume_skips_only_matching_spec_hashes(self, tmp_path):
        campaign = _campaign()
        store = ResultStore(tmp_path / "store")
        CampaignRunner(campaign, store, jobs=1).run()
        # tamper with one stored record's spec hash (a store from a different
        # spec revision, a truncated-id collision, or a hand-edited file)
        records = store.records()
        victim = records[0]["cell_id"]
        tampered_path = tmp_path / "tampered"
        tampered = ResultStore(tampered_path)
        for record in records:
            if record["cell_id"] == victim:
                record = {**record, "spec_hash": "0" * 40}
            tampered.append(record)

        with pytest.warns(RuntimeWarning, match="NOT resuming"):
            report = CampaignRunner(campaign, tampered, jobs=1).run()
        assert report.num_skipped == 3
        assert {r["cell_id"] for r in report.records} == {victim}

    def test_resume_warns_loudly_via_logging(self, tmp_path, caplog):
        campaign = _campaign()
        store = ResultStore(tmp_path / "store")
        CampaignRunner(campaign, store, jobs=1).run()
        victim = campaign.expand()[0]
        legacy = ResultStore(tmp_path / "legacy")
        for record in store.records():
            record = dict(record)
            if record["cell_id"] == victim.cell_id:
                record.pop("spec_hash")  # a record predating hash stamping
            legacy.append(record)
        with pytest.warns(RuntimeWarning):
            with caplog.at_level("WARNING", logger="repro.experiments.campaign"):
                report = CampaignRunner(campaign, legacy, jobs=1).run()
        logged = "\n".join(r.getMessage() for r in caplog.records)
        assert victim.cell_id in logged and "re-run" in logged
        assert report.num_skipped == 3 and report.num_run == 1

    def test_matching_hashes_resume_silently(self, tmp_path, recwarn):
        campaign = _campaign()
        store = ResultStore(tmp_path / "store")
        CampaignRunner(campaign, store, jobs=1).run()
        report = CampaignRunner(campaign, store, jobs=1).run()
        assert report.num_run == 0 and report.num_skipped == 4
        assert not [w for w in recwarn if issubclass(w.category, RuntimeWarning)]
