"""Unit tests for the per-link bandwidth policy."""

import pytest

from repro.simulator.bandwidth import BandwidthExceededError, BandwidthPolicy
from repro.simulator.messages import Envelope, SnapshotChunkMessage, id_bits


def big_envelope(n: int) -> Envelope:
    """An envelope carrying an n-bit snapshot (always over budget)."""
    return Envelope(
        payload=SnapshotChunkMessage(
            owner=0, epoch=1, chunk_index=0, total_chunks=1, members=(), chunk_bits=n
        )
    )


class TestBudget:
    def test_budget_scales_with_log_n(self):
        policy = BandwidthPolicy(factor=8)
        assert policy.budget_bits(16) == 8 * 4
        assert policy.budget_bits(1024) == 8 * 10

    def test_silent_envelopes_are_free(self):
        policy = BandwidthPolicy()
        size = policy.charge(1, 0, 1, Envelope(), n=64)
        assert size == 0
        assert policy.total_envelopes == 0
        assert policy.total_bits == 0


class TestEnforcement:
    def test_strict_mode_raises(self):
        policy = BandwidthPolicy(factor=2, strict=True)
        with pytest.raises(BandwidthExceededError):
            policy.charge(3, 0, 1, big_envelope(1000), n=64)
        assert policy.num_violations == 1

    def test_non_strict_mode_records(self):
        policy = BandwidthPolicy(factor=2, strict=False)
        size = policy.charge(3, 0, 1, big_envelope(1000), n=64)
        assert size > policy.budget_bits(64)
        assert policy.num_violations == 1
        violation = policy.violations[0]
        assert violation.round_index == 3
        assert (violation.sender, violation.receiver) == (0, 1)
        assert violation.size_bits == size

    def test_within_budget_is_not_a_violation(self):
        policy = BandwidthPolicy(factor=8, strict=True)
        env = Envelope(is_empty=False)
        policy.charge(1, 0, 1, env, n=64)
        assert policy.num_violations == 0
        assert policy.total_envelopes == 1
        assert policy.max_observed_bits == 1

    def test_summary_contents(self):
        policy = BandwidthPolicy(factor=4, strict=False)
        policy.charge(1, 0, 1, Envelope(is_empty=False), n=32)
        summary = policy.summary(32)
        assert summary["budget_bits"] == 4 * id_bits(32)
        assert summary["total_envelopes"] == 1
        assert summary["violations"] == 0
