"""Unit tests for topology-change events and round batches."""

import pytest

from repro.simulator.events import (
    EdgeDelete,
    EdgeInsert,
    RoundChanges,
    canonical_edge,
)


class TestCanonicalEdge:
    def test_orders_endpoints(self):
        assert canonical_edge(5, 2) == (2, 5)
        assert canonical_edge(2, 5) == (2, 5)

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            canonical_edge(3, 3)

    def test_rejects_negative_nodes(self):
        with pytest.raises(ValueError):
            canonical_edge(-1, 2)
        with pytest.raises(ValueError):
            canonical_edge(2, -7)


class TestEvents:
    def test_insert_properties(self):
        ev = EdgeInsert(4, 1)
        assert ev.edge == (1, 4)
        assert ev.is_insert and not ev.is_delete

    def test_delete_properties(self):
        ev = EdgeDelete(0, 9)
        assert ev.edge == (0, 9)
        assert ev.is_delete and not ev.is_insert


class TestRoundChanges:
    def test_empty(self):
        rc = RoundChanges.empty()
        assert len(rc) == 0
        assert not rc
        assert rc.insertions == [] and rc.deletions == []

    def test_of_builder(self):
        rc = RoundChanges.of(insert=[(1, 2), (3, 4)], delete=[(5, 6)])
        assert set(rc.insertions) == {(1, 2), (3, 4)}
        assert rc.deletions == [(5, 6)]
        assert len(rc) == 3
        assert rc.touched_nodes() == {1, 2, 3, 4, 5, 6}

    def test_inserts_and_deletes_builders(self):
        assert RoundChanges.inserts([(2, 1)]).insertions == [(1, 2)]
        assert RoundChanges.deletes([(2, 1)]).deletions == [(1, 2)]

    def test_duplicate_edge_rejected(self):
        with pytest.raises(ValueError):
            RoundChanges.of(insert=[(1, 2)], delete=[(2, 1)])
        with pytest.raises(ValueError):
            RoundChanges.inserts([(1, 2), (2, 1)])

    def test_extend_validates(self):
        rc = RoundChanges.inserts([(1, 2)])
        with pytest.raises(ValueError):
            rc.extend([EdgeDelete(2, 1)])

    def test_iteration_order_preserved(self):
        rc = RoundChanges.of(insert=[(1, 2)], delete=[(3, 4)])
        kinds = [ev.is_delete for ev in rc]
        # Deletions are listed before insertions by the builder.
        assert kinds == [True, False]


class TestNumpyCoercion:
    """Numpy integers entering the event layer become builtin ints (satellite
    of the columnar PR: numpy-backed adversaries used to leak ``np.int64``
    endpoints into traces, breaking JSON serialization and fingerprints)."""

    def test_canonical_edge_coerces_numpy_ints(self):
        np = pytest.importorskip("numpy")
        edge = canonical_edge(np.int64(5), np.int32(2))
        assert edge == (2, 5)
        assert type(edge[0]) is int and type(edge[1]) is int

    def test_events_built_from_numpy_ints_serialize(self):
        import json

        np = pytest.importorskip("numpy")
        rc = RoundChanges.of(
            insert=[(np.int64(1), np.int64(2))], delete=[(np.int32(4), np.int32(3))]
        )
        payload = {
            "insert": [list(e) for e in rc.insertions],
            "delete": [list(e) for e in rc.deletions],
        }
        assert json.loads(json.dumps(payload)) == {
            "insert": [[1, 2]],
            "delete": [[3, 4]],
        }
        for edge in rc.insertions + rc.deletions:
            assert all(type(x) is int for x in edge)
