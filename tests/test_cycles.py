"""Tests for 4-cycle and 5-cycle listing (Theorems 3 / 5)."""

import itertools

import pytest

from repro.adversary import RandomChurnAdversary
from repro.core import CycleListingNode, CycleQuery, EdgeQuery, QueryResult
from repro.core.cycles import cyclic_orderings
from repro.oracle import cycles_of_length, is_cycle_ordering
from repro.workloads import planted_cycle_churn

from conftest import run_schedule, run_simulation


def cycle_edges(ordering):
    k = len(ordering)
    return [tuple(sorted((ordering[i], ordering[(i + 1) % k]))) for i in range(k)]


def collective_answer(result, cycle_nodes):
    """Query every node of the cycle; return the collective listing outcome.

    Returns a pair ``(any_true, any_inconsistent)`` as in the paper's
    definition of the listing problem.
    """
    any_true = False
    any_inconsistent = False
    for v in cycle_nodes:
        node = result.nodes[v]
        if not node.is_consistent():
            any_inconsistent = True
            continue
        if node.knows_cycle_set(set(cycle_nodes)):
            any_true = True
    return any_true, any_inconsistent


class TestCyclicOrderings:
    def test_orderings_are_anchored(self):
        orderings = cyclic_orderings({1, 2, 3, 4}, anchor=3)
        assert all(o[0] == 3 for o in orderings)
        assert len(orderings) == 6  # 3! permutations of the rest

    def test_anchor_must_be_member(self):
        with pytest.raises(ValueError):
            cyclic_orderings({1, 2, 3}, anchor=9)


class TestPlantedCycles:
    @pytest.mark.parametrize("k", [4, 5])
    @pytest.mark.parametrize("order_seed", [0, 1, 2])
    def test_some_member_lists_the_cycle(self, k, order_seed):
        """For every insertion order of a planted k-cycle, some member answers TRUE."""
        import numpy as np

        members = list(range(k))
        edges = cycle_edges(members)
        rng = np.random.default_rng(order_seed)
        order = [edges[i] for i in rng.permutation(k)]
        schedule = [([edge], []) for edge in order]
        result, _ = run_schedule(CycleListingNode, schedule, n=k + 2)
        any_true, any_inconsistent = collective_answer(result, members)
        assert any_true and not any_inconsistent

    @pytest.mark.parametrize("k", [4, 5])
    def test_no_member_claims_a_destroyed_cycle(self, k):
        members = list(range(k))
        edges = cycle_edges(members)
        schedule = [(edges, []), None, None, ([], [edges[0]]), None, None]
        result, _ = run_schedule(CycleListingNode, schedule, n=k + 2)
        any_true, any_inconsistent = collective_answer(result, members)
        assert not any_true and not any_inconsistent

    def test_ordered_query_checks_exactly_those_edges(self):
        # A 4-cycle 0-1-2-3 plus a chord: the ordered query for the cycle is
        # TRUE, the query for a non-cyclic ordering is FALSE.
        members = [0, 1, 2, 3]
        result, _ = run_schedule(
            CycleListingNode,
            [(cycle_edges(members) + [(0, 2)], [])],
            n=6,
        )
        node0 = result.nodes[0]
        assert node0.query(CycleQuery((0, 1, 2, 3))) is QueryResult.TRUE
        # 0-1-3-2 needs edges (1,3) and (0,2)... (0,2) exists but (1,3) does not.
        assert node0.query(CycleQuery((0, 1, 3, 2))) is QueryResult.FALSE

    def test_query_must_contain_the_node(self):
        result, _ = run_schedule(CycleListingNode, [(cycle_edges([0, 1, 2, 3]), [])], n=6)
        with pytest.raises(ValueError):
            result.nodes[5].query(CycleQuery((0, 1, 2, 3)))

    def test_edge_queries_still_answered(self):
        result, _ = run_schedule(CycleListingNode, [(cycle_edges([0, 1, 2, 3]), [])], n=6)
        assert result.nodes[0].query(EdgeQuery(1, 2)) is QueryResult.TRUE


class TestKnownCycleEnumeration:
    def test_known_cycles_are_real(self):
        adversary, plants = planted_cycle_churn(10, 4, num_plants=2, seed=1)
        result, _ = run_simulation(CycleListingNode, adversary, n=10)
        network = result.network
        true_cycles = cycles_of_length(network.edges, 4)
        for v, node in result.nodes.items():
            for cycle in node.known_cycles(4):
                assert cycle in true_cycles

    def test_known_cycles_rejects_bad_k(self):
        node = CycleListingNode(0, 5)
        with pytest.raises(ValueError):
            node.known_cycles(6)


class TestListingGuaranteeUnderChurn:
    @pytest.mark.parametrize("k", [4, 5])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_every_cycle_is_listed_by_some_member(self, k, seed):
        """The Theorem 5 guarantee, checked on the final (drained) graph.

        After draining, G_{i-1} = G_i, so every k-cycle of the final graph must
        be claimed by at least one of its members (and no member may claim a
        node set that is not a cycle -- checked via known_cycles above).
        """
        result, _ = run_simulation(
            CycleListingNode,
            RandomChurnAdversary(
                12, num_rounds=100, inserts_per_round=3, deletes_per_round=2, seed=seed
            ),
            n=12,
        )
        network = result.network
        cycles = cycles_of_length(network.edges, k)
        for cycle in cycles:
            any_true, any_inconsistent = collective_answer(result, sorted(cycle))
            assert any_true or any_inconsistent, f"cycle {sorted(cycle)} missed by all members"

    def test_amortized_complexity_is_constant(self):
        result, _ = run_simulation(
            CycleListingNode,
            RandomChurnAdversary(
                14, num_rounds=120, inserts_per_round=3, deletes_per_round=2, seed=4
            ),
            n=14,
        )
        assert result.metrics.max_running_amortized_complexity() <= 4.0 + 1e-9
