"""Unit tests for the amortized-complexity accounting."""

from repro.simulator.metrics import MetricsCollector


def record(collector, round_index, changes, inconsistent, envelopes=0, bits=0):
    return collector.record_round(round_index, changes, inconsistent, envelopes, bits)


class TestAmortizedComplexity:
    def test_zero_changes_gives_zero(self):
        m = MetricsCollector()
        record(m, 1, 0, [])
        assert m.amortized_round_complexity() == 0.0

    def test_ratio_of_inconsistent_rounds_to_changes(self):
        m = MetricsCollector()
        record(m, 1, 2, [0, 1])
        record(m, 2, 0, [0])
        record(m, 3, 0, [])
        assert m.total_changes == 2
        assert m.inconsistent_rounds == 2
        assert m.amortized_round_complexity() == 1.0

    def test_running_curve_is_prefix_wise(self):
        m = MetricsCollector()
        record(m, 1, 1, [3])
        record(m, 2, 0, [3])
        record(m, 3, 1, [])
        curve = m.running_amortized_complexity()
        assert curve == [1.0, 2.0, 1.0]
        assert m.max_running_amortized_complexity() == 2.0

    def test_multiple_inconsistent_nodes_count_one_round(self):
        m = MetricsCollector()
        record(m, 1, 5, [0, 1, 2, 3])
        assert m.inconsistent_rounds == 1
        assert m.amortized_round_complexity() == 1 / 5


class TestPerNodeAndTotals:
    def test_per_node_counts(self):
        m = MetricsCollector()
        record(m, 1, 1, [0, 2])
        record(m, 2, 0, [2])
        assert m.per_node_inconsistent_rounds == {0: 1, 2: 2}
        assert m.worst_node_inconsistent_rounds() == 2

    def test_bits_and_envelopes_accumulate(self):
        m = MetricsCollector()
        record(m, 1, 2, [], envelopes=3, bits=30)
        record(m, 2, 0, [], envelopes=1, bits=12)
        assert m.total_envelopes == 4
        assert m.total_bits == 42
        assert m.amortized_bits_per_change() == 21.0

    def test_tail_consistent_rounds(self):
        m = MetricsCollector()
        record(m, 1, 1, [0])
        record(m, 2, 0, [])
        record(m, 3, 0, [])
        assert m.tail_consistent_rounds() == 2

    def test_summary_keys(self):
        m = MetricsCollector()
        record(m, 1, 1, [0], envelopes=1, bits=5)
        summary = m.summary()
        assert summary["total_changes"] == 1.0
        assert summary["inconsistent_rounds"] == 1.0
        assert summary["amortized_round_complexity"] == 1.0
        assert "amortized_bits_per_change" in summary


class TestIncrementalConsistencyAccounting:
    def test_delta_recording_matches_full_lists(self):
        full = MetricsCollector()
        delta = MetricsCollector()
        # Round 1: nodes 0 and 1 flip inconsistent.
        full.record_round(1, 2, [0, 1], 4, 40)
        delta.record_round_delta(1, 2, became_inconsistent=[0, 1], became_consistent=[], num_envelopes=4, bits_sent=40)
        # Round 2: node 1 recovers, node 3 flips.
        full.record_round(2, 0, [0, 3], 1, 8)
        delta.record_round_delta(2, 0, became_inconsistent=[3], became_consistent=[1], num_envelopes=1, bits_sent=8)
        # Round 3: everyone recovers.
        full.record_round(3, 1, [], 0, 0)
        delta.record_round_delta(3, 1, became_inconsistent=[], became_consistent=[0, 3], num_envelopes=0, bits_sent=0)

        assert full.rounds == delta.rounds
        assert full.summary() == delta.summary()
        assert full.per_node_inconsistent_rounds == delta.per_node_inconsistent_rounds

    def test_current_inconsistent_set_is_maintained(self):
        m = MetricsCollector()
        m.record_round_delta(1, 1, became_inconsistent=[2, 5], became_consistent=[], num_envelopes=0, bits_sent=0)
        assert m.current_inconsistent_nodes == {2, 5}
        m.record_round_delta(2, 0, became_inconsistent=[], became_consistent=[5], num_envelopes=0, bits_sent=0)
        assert m.current_inconsistent_nodes == {2}
        # record_round resets the live set from the full list.
        m.record_round(3, 0, [7], 0, 0)
        assert m.current_inconsistent_nodes == {7}

    def test_empty_delta_round_counts_persisting_inconsistency(self):
        m = MetricsCollector()
        m.record_round_delta(1, 1, became_inconsistent=[4], became_consistent=[], num_envelopes=0, bits_sent=0)
        # Node 4 stays inconsistent through a round with no flips at all.
        m.record_round_delta(2, 0, became_inconsistent=[], became_consistent=[], num_envelopes=0, bits_sent=0)
        assert m.inconsistent_rounds == 2
        assert m.per_node_inconsistent_rounds == {4: 2}
