"""Equivalence and regression tests for the sparse (activity-proportional) engine.

The contract under test: for every registered algorithm, the sparse engine's
RoundRecord stream, trace, bandwidth accounting, per-node metrics and final
node state are bit-identical to the dense reference engine -- and a fully
quiescent round costs zero algorithm callbacks.
"""

from __future__ import annotations

import random
import sys

import pytest

from repro.adversary import FlickerTriangleAdversary
from repro.experiments import ALGORITHMS, build_adversary
from repro.simulator import (
    BandwidthPolicy,
    DynamicNetwork,
    MetricsCollector,
    RoundChanges,
    ShardedRoundEngine,
    SimulationRunner,
    SparseRoundEngine,
    create_engine,
    drive_engine,
)
from repro.simulator.node import NodeAlgorithm, QuiescenceProtocol


def _fingerprint(result):
    """Everything that must match between the two engines, as plain data."""
    state = {}
    for v, node in result.nodes.items():
        entry = {"consistent": node.is_consistent(), "size": node.local_state_size()}
        if hasattr(node, "known_edges"):
            entry["known"] = node.known_edges()
        state[v] = entry
    return {
        "rounds": result.metrics.rounds,
        "summary": result.summary(),
        "per_node": result.metrics.per_node_inconsistent_rounds,
        "trace": result.trace.to_dict() if result.trace else None,
        "edges": result.network.edges,
        "state": state,
    }


def _run(algorithm, adversary_name, n, rounds, seed, params, mode):
    adversary = build_adversary(
        adversary_name, n=n, rounds=rounds, seed=seed, params=params
    )
    runner = SimulationRunner(
        n=n,
        algorithm_factory=ALGORITHMS[algorithm],
        adversary=adversary,
        strict_bandwidth=algorithm != "broadcast",
        record_trace=True,
        engine_mode=mode,
    )
    return runner.run(num_rounds=rounds)


class TestDenseSparseEquivalence:
    @pytest.mark.parametrize(
        "algorithm",
        ["triangle", "robust2hop", "robust3hop", "twohop", "naive", "cycles", "broadcast"],
    )
    def test_random_churn_identical(self, algorithm):
        dense = _fingerprint(
            _run(algorithm, "churn", 24, 80, 11, {"inserts_per_round": 2, "deletes_per_round": 2}, "dense")
        )
        sparse = _fingerprint(
            _run(algorithm, "churn", 24, 80, 11, {"inserts_per_round": 2, "deletes_per_round": 2}, "sparse")
        )
        assert dense == sparse

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_randomized_schedules_property(self, seed):
        """Property-style check: random (n, churn-rate, adversary) cells agree."""
        rng = random.Random(seed)
        n = rng.choice([12, 20, 33, 48])
        rounds = rng.choice([40, 70, 100])
        adversary_name = rng.choice(["churn", "p2p", "growing"])
        params = (
            {
                "inserts_per_round": rng.randint(1, 4),
                "deletes_per_round": rng.randint(0, 3),
            }
            if adversary_name == "churn"
            else {}
        )
        algorithm = rng.choice(["triangle", "robust2hop", "twohop"])
        dense = _fingerprint(_run(algorithm, adversary_name, n, rounds, seed, dict(params), "dense"))
        sparse = _fingerprint(_run(algorithm, adversary_name, n, rounds, seed, dict(params), "sparse"))
        assert dense == sparse

    def test_flicker_schedule_identical(self):
        """The adversarial flicker schedule (delayed queues, re-inserted edges)."""
        for algorithm in ("naive", "triangle", "robust2hop"):
            results = {}
            for mode in ("dense", "sparse"):
                runner = SimulationRunner(
                    n=16,
                    algorithm_factory=ALGORITHMS[algorithm],
                    adversary=FlickerTriangleAdversary(),
                    record_trace=True,
                    engine_mode=mode,
                )
                results[mode] = _fingerprint(runner.run())
            assert results["dense"] == results["sparse"], algorithm

    def test_unported_algorithm_stays_dense_but_correct(self):
        """An algorithm without is_quiescent keeps its dense behaviour under sparse."""

        class EchoNode(NodeAlgorithm):
            def __init__(self, node_id, n):
                super().__init__(node_id, n)
                self.touched_rounds = 0
                self.adj = set()

            def on_topology_change(self, round_index, inserted, deleted):
                self.touched_rounds += 1
                self.adj.difference_update(deleted)
                self.adj.update(inserted)

            def compose_messages(self, round_index):
                return {}

            def on_messages(self, round_index, received):
                pass

            def is_consistent(self):
                return True

            def query(self, query):
                return None

        runs = {}
        for mode in ("dense", "sparse"):
            adversary = build_adversary("churn", n=10, rounds=25, seed=2, params={})
            runner = SimulationRunner(
                n=10, algorithm_factory=EchoNode, adversary=adversary, engine_mode=mode
            )
            result = runner.run(num_rounds=25)
            runs[mode] = (
                result.metrics.rounds,
                {v: node.touched_rounds for v, node in result.nodes.items()},
            )
        # Default is_quiescent() == False => the sparse engine visits every
        # node every round, exactly like the dense engine.
        assert runs["dense"] == runs["sparse"]
        assert all(count == 25 for count in runs["sparse"][1].values())


class _CountingTriangle(ALGORITHMS["triangle"]):
    """Triangle node that counts every engine callback it receives."""

    def __init__(self, node_id, n):
        super().__init__(node_id, n)
        self.callbacks = 0

    def on_topology_change(self, round_index, inserted, deleted):
        self.callbacks += 1
        super().on_topology_change(round_index, inserted, deleted)

    def compose_messages(self, round_index):
        self.callbacks += 1
        return super().compose_messages(round_index)

    def on_messages(self, round_index, received):
        self.callbacks += 1
        super().on_messages(round_index, received)


class TestQuiescence:
    def test_protocol_default_is_active(self):
        node = ALGORITHMS["null"](0, 4)
        assert isinstance(node, QuiescenceProtocol)
        assert node.is_quiescent()

        naive = ALGORITHMS["naive"](0, 4)
        assert naive.is_quiescent()
        naive.on_topology_change(1, [1], [])
        assert not naive.is_quiescent()

    def test_fully_quiescent_round_invokes_zero_callbacks(self):
        """Regression: once everyone is quiescent, a quiet round is free."""
        n = 12
        network = DynamicNetwork(n)
        nodes = {v: _CountingTriangle(v, n) for v in range(n)}
        engine = SparseRoundEngine(network, nodes, BandwidthPolicy(), MetricsCollector())
        engine.execute_round(RoundChanges.inserts([(0, 1), (1, 2), (0, 2)]))
        engine.run_until_quiet()
        assert engine.all_consistent
        assert all(node.is_quiescent() for node in nodes.values())

        before = {v: node.callbacks for v, node in nodes.items()}
        record = engine.execute_quiet_round()
        after = {v: node.callbacks for v, node in nodes.items()}
        assert before == after
        assert record.num_inconsistent_nodes == 0
        assert record.num_envelopes == 0

    def test_quiet_rounds_only_touch_active_nodes(self):
        """While queues drain, untouched nodes receive no callbacks at all."""
        n = 30
        network = DynamicNetwork(n)
        nodes = {v: _CountingTriangle(v, n) for v in range(n)}
        engine = SparseRoundEngine(network, nodes, BandwidthPolicy(), MetricsCollector())
        engine.execute_round(RoundChanges.inserts([(0, 1)]))
        engine.run_until_quiet()
        # Only the two endpoints of the single inserted edge were ever active.
        assert all(nodes[v].callbacks == 0 for v in range(n) if v > 1)
        assert nodes[0].callbacks > 0 and nodes[1].callbacks > 0

    def test_create_engine_rejects_unknown_mode(self):
        network = DynamicNetwork(2)
        nodes = {v: ALGORITHMS["null"](v, 2) for v in range(2)}
        with pytest.raises(ValueError, match="engine mode"):
            create_engine("turbo", network, nodes)

    def test_runner_rejects_unknown_mode(self):
        adversary = build_adversary("churn", n=4, rounds=5, seed=0, params={})
        with pytest.raises(ValueError, match="engine_mode"):
            SimulationRunner(
                n=4,
                algorithm_factory=ALGORITHMS["triangle"],
                adversary=adversary,
                engine_mode="turbo",
            )


@pytest.mark.skipif(not sys.platform.startswith("linux"), reason="fork start method required")
class TestShardedSparse:
    def test_sharded_sparse_matches_serial_dense(self):
        reference = None
        for mode in ("dense", "sparse"):
            adversary = build_adversary(
                "churn", n=26, rounds=60, seed=5,
                params={"inserts_per_round": 2, "deletes_per_round": 1},
            )
            with ShardedRoundEngine(
                26, ALGORITHMS["triangle"], num_workers=3, mode=mode
            ) as engine:
                drive_engine(engine, adversary, num_rounds=60)
                outcome = (
                    engine.metrics.rounds,
                    engine.metrics.summary(),
                    engine.metrics.per_node_inconsistent_rounds,
                )
            if reference is None:
                reference = outcome
            else:
                assert outcome == reference

        adversary = build_adversary(
            "churn", n=26, rounds=60, seed=5,
            params={"inserts_per_round": 2, "deletes_per_round": 1},
        )
        serial = SimulationRunner(
            n=26,
            algorithm_factory=ALGORITHMS["triangle"],
            adversary=adversary,
            engine_mode="dense",
        ).run(num_rounds=60)
        assert (
            serial.metrics.rounds,
            serial.metrics.summary(),
            serial.metrics.per_node_inconsistent_rounds,
        ) == reference

    def test_sharded_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="mode"):
            ShardedRoundEngine(8, ALGORITHMS["triangle"], num_workers=2, mode="turbo")


class ContractViolatorNode(NodeAlgorithm):
    """Claims quiescence while inconsistent -- the latch-bug failure class.

    After its first topology indication the node declares itself permanently
    inconsistent, yet keeps reporting quiescence; under the sparse engine the
    drain reaches a fixpoint it can never leave.
    """

    def __init__(self, node_id, n):
        super().__init__(node_id, n)
        self.touched = False

    def on_topology_change(self, round_index, inserted, deleted):
        if inserted or deleted:
            self.touched = True

    def compose_messages(self, round_index):
        return {}

    def on_messages(self, round_index, received):
        pass

    def is_consistent(self):
        return not self.touched

    def is_quiescent(self):
        return True  # the lie: inconsistent but claiming nothing to do

    def query(self, query):
        return None


class TestQuietRoundFastForward:
    """Drain fixpoint detection: hopeless drains are batched into one step."""

    def _engine(self, mode):
        n = 6
        network = DynamicNetwork(n)
        nodes = {v: ContractViolatorNode(v, n) for v in range(n)}
        engine = create_engine(mode, network, nodes, BandwidthPolicy(), MetricsCollector())
        engine.execute_round(RoundChanges.inserts([(0, 1)]))
        return engine

    def test_sparse_engine_fast_forwards_hopeless_drain(self):
        engine = self._engine("sparse")
        assert engine.drain_fixpoint
        with pytest.raises(RuntimeError, match="quiescent fixpoint"):
            engine.run_until_quiet(max_rounds=10_000)
        # the fast-forward executed zero of the 10_000 budgeted quiet rounds
        assert len(engine.metrics.rounds) == 1

    def test_dense_engine_still_walks_the_budget(self):
        engine = self._engine("dense")
        assert not engine.drain_fixpoint  # dense never proves a fixpoint
        with pytest.raises(RuntimeError, match="after 7 quiet rounds"):
            engine.run_until_quiet(max_rounds=7)
        assert len(engine.metrics.rounds) == 8  # change round + 7 quiet rounds

    def test_drive_engine_drain_fast_forwards(self):
        n = 6
        network = DynamicNetwork(n)
        nodes = {v: ContractViolatorNode(v, n) for v in range(n)}
        engine = create_engine("sparse", network, nodes, BandwidthPolicy(), MetricsCollector())
        from repro.adversary import ScriptedAdversary

        with pytest.raises(RuntimeError, match="quiescent fixpoint"):
            drive_engine(
                engine, ScriptedAdversary([([(0, 1)], [])]), drain=True,
                max_drain_rounds=10_000,
            )
        assert len(engine.metrics.rounds) == 1

    def test_sharded_sparse_engine_fast_forwards_too(self):
        from repro.adversary import ScriptedAdversary

        with ShardedRoundEngine(
            6, ContractViolatorNode, num_workers=2, mode="sparse"
        ) as engine:
            with pytest.raises(RuntimeError, match="quiescent fixpoint"):
                drive_engine(
                    engine, ScriptedAdversary([([(0, 1)], [])]), drain=True,
                    max_drain_rounds=10_000,
                )
            assert len(engine.metrics.rounds) == 1
            assert engine.drain_fixpoint

    def test_fixpoint_does_not_trip_healthy_algorithms(self):
        # A consistent quiescent system exits the drain loop before the
        # fixpoint check matters; the sparse engine's verdict stays usable.
        adversary = build_adversary(
            "churn", n=12, rounds=20, seed=3,
            params={"inserts_per_round": 2, "deletes_per_round": 1},
        )
        runner = SimulationRunner(
            n=12, algorithm_factory=ALGORITHMS["triangle"], adversary=adversary,
            engine_mode="sparse",
        )
        result = runner.run(num_rounds=20, drain=True)
        assert all(node.is_consistent() for node in result.nodes.values())
        assert runner.engine.drain_fixpoint  # drained and quiescent: fixpoint

    def test_fast_forward_preserves_bit_identity_on_successful_runs(self):
        # The satellite's gate: dense and sparse streams stay identical on
        # runs that drain successfully (the fast-forward only touches runs
        # that can never finish).
        outcomes = []
        for mode in ("dense", "sparse"):
            adversary = build_adversary(
                "churn", n=14, rounds=30, seed=9,
                params={"inserts_per_round": 3, "deletes_per_round": 2},
            )
            runner = SimulationRunner(
                n=14, algorithm_factory=ALGORITHMS["robust2hop"], adversary=adversary,
                engine_mode=mode,
            )
            result = runner.run(num_rounds=30, drain=True)
            outcomes.append((result.metrics.rounds, result.summary()))
        assert outcomes[0] == outcomes[1]
