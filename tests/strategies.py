"""Shared Hypothesis strategies: random schedules and random experiment specs.

Used by the property-based tests to generate

* legal churn schedules (per round: deletions of present edges, insertions of
  absent edges, at most one event per edge per round), and
* whole :class:`~repro.experiments.spec.ExperimentSpec` cells -- an algorithm
  drawn from the registry, a workload that is either an inline scripted trace
  (the generated schedule, replayed bit-for-bit by every engine) or a seeded
  random churn adversary, and small sizes/budgets that keep each example fast.

The spec strategy is what the engine differential property tests (dense vs
sparse vs sharded vs columnar, optionally under fault models and telemetry)
feed to :func:`repro.verification.run_differential`.
"""

from typing import List, Tuple

from hypothesis import strategies as st

from repro.experiments import ExperimentSpec

__all__ = [
    "churn_schedules",
    "experiment_specs",
    "fault_configs",
    "schedule_to_trace",
]


@st.composite
def churn_schedules(draw, n: int = 8, max_rounds: int = 14, max_events_per_round: int = 3):
    """Generate a legal schedule: per round, deletions of present edges and
    insertions of absent edges (at most one event per edge per round)."""
    num_rounds = draw(st.integers(min_value=1, max_value=max_rounds))
    present: set = set()
    rounds: List[Tuple[List[Tuple[int, int]], List[Tuple[int, int]]]] = []
    all_pairs = [(u, w) for u in range(n) for w in range(u + 1, n)]
    for _ in range(num_rounds):
        num_events = draw(st.integers(min_value=0, max_value=max_events_per_round))
        inserts: List[Tuple[int, int]] = []
        deletes: List[Tuple[int, int]] = []
        touched: set = set()
        for _ in range(num_events):
            pair = draw(st.sampled_from(all_pairs))
            if pair in touched:
                continue
            touched.add(pair)
            if pair in present:
                deletes.append(pair)
                present.discard(pair)
            else:
                inserts.append(pair)
                present.add(pair)
        rounds.append((inserts, deletes))
    return rounds


def schedule_to_trace(n: int, rounds) -> dict:
    """An explicit schedule as the inline-trace dict the ``scripted`` adversary takes."""
    return {
        "n": n,
        "rounds": [
            {"insert": [list(e) for e in inserts], "delete": [list(e) for e in deletes]}
            for inserts, deletes in rounds
        ],
    }


#: Algorithms the random-spec strategy draws from: every paper structure that
#: is cheap enough to run dozens of times per test session.
SPEC_ALGORITHMS = ("robust2hop", "triangle", "clique", "robust3hop", "twohop", "cycles")


#: Fault models the random-spec strategy draws from, with legal parameter
#: draws for each (the registry's remaining models are covered by the
#: explicit fault grid in test_faults / test_columnar_engine).
_FAULT_AXES = (
    ("uniform_loss", lambda draw: {"p": draw(st.sampled_from((0.2, 0.5)))}),
    (
        "crash",
        lambda draw: {
            "crash_p": draw(st.sampled_from((0.3, 0.6))),
            "cycle": 5,
            "downtime": 2,
        },
    ),
    ("partition", lambda draw: {"period": 5, "split": 2}),
)


@st.composite
def fault_configs(draw):
    """Draw a ``(faults, fault_params)`` pair legal for any spec size."""
    name, params_for = draw(st.sampled_from(_FAULT_AXES))
    return name, params_for(draw)


@st.composite
def experiment_specs(draw, max_n: int = 9, with_faults: bool = False):
    """Generate a small random :class:`ExperimentSpec` cell.

    The workload is either the exact schedule of :func:`churn_schedules`
    (as an inline scripted trace) or a seeded random churn adversary; both
    are deterministic given the spec, so the same cell replays identically
    under every engine.  With ``with_faults`` the cell also draws a fault
    model from :data:`_FAULT_AXES` (or none), exercising the engines'
    fault-overlay paths.
    """
    algorithm = draw(st.sampled_from(SPEC_ALGORITHMS))
    n = draw(st.integers(min_value=5, max_value=max_n))
    fault_kwargs = {}
    if with_faults and draw(st.booleans()):
        faults, fault_params = draw(fault_configs())
        fault_kwargs = {"faults": faults, "fault_params": fault_params}
    use_scripted = draw(st.booleans())
    if use_scripted:
        rounds = draw(churn_schedules(n=n, max_rounds=10, max_events_per_round=3))
        return ExperimentSpec(
            algorithm=algorithm,
            adversary="scripted",
            n=n,
            adversary_params={"trace": schedule_to_trace(n, rounds)},
            num_workers=draw(st.integers(min_value=2, max_value=3)),
            **fault_kwargs,
        )
    adversary = draw(st.sampled_from(("churn", "p2p")))
    params = {}
    if adversary == "churn" and draw(st.booleans()):
        params = {
            "inserts_per_round": draw(st.integers(min_value=1, max_value=3)),
            "deletes_per_round": draw(st.integers(min_value=0, max_value=2)),
        }
    return ExperimentSpec(
        algorithm=algorithm,
        adversary=adversary,
        n=n,
        rounds=draw(st.integers(min_value=1, max_value=25)),
        seed=draw(st.integers(min_value=0, max_value=2**16)),
        adversary_params=params,
        num_workers=draw(st.integers(min_value=2, max_value=3)),
        **fault_kwargs,
    )
