"""Unit tests for the round engine (Figure 1 execution order and delivery rules)."""

from typing import Dict, Mapping, Sequence

import pytest

from repro.simulator import (
    BandwidthPolicy,
    DynamicNetwork,
    EdgeEventMessage,
    EdgeOp,
    Envelope,
    MessageTargetError,
    MetricsCollector,
    NodeAlgorithm,
    RoundChanges,
    RoundEngine,
)


class EchoNode(NodeAlgorithm):
    """A minimal algorithm used to probe the engine: records everything it sees."""

    def __init__(self, node_id: int, n: int) -> None:
        super().__init__(node_id, n)
        self.neighbors: set[int] = set()
        self.received_log: list[tuple[int, int]] = []  # (round, sender)
        self.indication_log: list[tuple[int, tuple, tuple]] = []
        self.pending_target: int | None = None
        self.force_inconsistent_rounds: set[int] = set()
        self._round = 0

    def on_topology_change(self, round_index, inserted: Sequence[int], deleted: Sequence[int]):
        self._round = round_index
        self.neighbors.update(inserted)
        self.neighbors.difference_update(deleted)
        if inserted or deleted:
            self.indication_log.append((round_index, tuple(inserted), tuple(deleted)))

    def compose_messages(self, round_index) -> Dict[int, Envelope]:
        if self.pending_target is not None:
            target = self.pending_target
            self.pending_target = None
            return {
                target: Envelope(
                    payload=EdgeEventMessage((self.node_id, target) if self.node_id < target else (target, self.node_id), EdgeOp.INSERT),
                    is_empty=False,
                )
            }
        return {}

    def on_messages(self, round_index, received: Mapping[int, Envelope]):
        for sender in received:
            self.received_log.append((round_index, sender))

    def is_consistent(self) -> bool:
        return self._round not in self.force_inconsistent_rounds

    def query(self, query):  # pragma: no cover - not used
        return None


def make_engine(n=4):
    network = DynamicNetwork(n)
    nodes = {v: EchoNode(v, n) for v in range(n)}
    engine = RoundEngine(network, nodes, BandwidthPolicy(), MetricsCollector())
    return network, nodes, engine


class TestEngineBasics:
    def test_requires_full_node_cover(self):
        network = DynamicNetwork(3)
        nodes = {0: EchoNode(0, 3), 1: EchoNode(1, 3)}
        with pytest.raises(ValueError):
            RoundEngine(network, nodes)

    def test_indications_reach_touched_nodes_only(self):
        network, nodes, engine = make_engine()
        engine.execute_round(RoundChanges.inserts([(0, 1)]))
        assert nodes[0].indication_log == [(1, (1,), ())]
        assert nodes[1].indication_log == [(1, (0,), ())]
        assert nodes[2].indication_log == []

    def test_messages_delivered_same_round(self):
        network, nodes, engine = make_engine()
        engine.execute_round(RoundChanges.inserts([(0, 1)]))
        nodes[0].pending_target = 1
        engine.execute_round(RoundChanges.empty())
        assert (2, 0) in nodes[1].received_log

    def test_message_to_non_neighbor_raises(self):
        network, nodes, engine = make_engine()
        engine.execute_round(RoundChanges.inserts([(0, 1)]))
        nodes[0].pending_target = 2  # never connected
        with pytest.raises(MessageTargetError):
            engine.execute_round(RoundChanges.empty())

    def test_message_on_just_deleted_edge_raises(self):
        network, nodes, engine = make_engine()
        engine.execute_round(RoundChanges.inserts([(0, 1)]))
        nodes[0].pending_target = 1
        # The edge disappears at the beginning of the round in which node 0
        # tries to use it, so the engine must reject the send.
        with pytest.raises(MessageTargetError):
            engine.execute_round(RoundChanges.deletes([(0, 1)]))

    def test_self_message_raises(self):
        network, nodes, engine = make_engine()
        engine.execute_round(RoundChanges.inserts([(0, 1)]))
        nodes[0].pending_target = 0
        with pytest.raises(MessageTargetError):
            engine.execute_round(RoundChanges.empty())


class TestEngineAccounting:
    def test_inconsistent_nodes_recorded(self):
        network, nodes, engine = make_engine()
        nodes[2].force_inconsistent_rounds = {1}
        record = engine.execute_round(RoundChanges.inserts([(0, 1)]))
        assert record.num_inconsistent_nodes == 1
        assert engine.inconsistent_nodes == [2]
        assert not engine.all_consistent

    def test_metrics_accumulate_changes(self):
        network, nodes, engine = make_engine()
        engine.execute_round(RoundChanges.inserts([(0, 1), (1, 2)]))
        engine.execute_round(RoundChanges.deletes([(0, 1)]))
        assert engine.metrics.total_changes == 3
        assert engine.metrics.rounds_executed == 2

    def test_run_until_quiet(self):
        network, nodes, engine = make_engine()
        nodes[3].force_inconsistent_rounds = {1, 2}
        engine.execute_round(RoundChanges.inserts([(0, 3)]))
        assert not engine.all_consistent
        quiet = engine.run_until_quiet(max_rounds=10)
        assert engine.all_consistent
        assert quiet >= 1

    def test_run_until_quiet_gives_up(self):
        network, nodes, engine = make_engine()
        nodes[3].force_inconsistent_rounds = set(range(1, 100))
        engine.execute_round(RoundChanges.inserts([(0, 3)]))
        with pytest.raises(RuntimeError):
            engine.run_until_quiet(max_rounds=5)


class CountdownNode(NodeAlgorithm):
    """Becomes inconsistent for exactly ``settle`` quiet rounds after a change.

    Used to pin the inclusive-budget contract of ``run_until_quiet`` at the
    exact boundary: the number of quiet rounds needed is known in advance.
    """

    settle = 3

    def __init__(self, node_id: int, n: int) -> None:
        super().__init__(node_id, n)
        self.remaining = 0

    def on_topology_change(self, round_index, inserted, deleted):
        if inserted or deleted:
            # +1 because this round's own on_messages already decrements.
            self.remaining = self.settle + 1

    def compose_messages(self, round_index):
        return {}

    def on_messages(self, round_index, received):
        if self.remaining > 0:
            self.remaining -= 1

    def is_consistent(self) -> bool:
        return self.remaining == 0

    def is_quiescent(self) -> bool:
        return self.remaining == 0

    def query(self, query):  # pragma: no cover - not used
        return None


class TestRunUntilQuietBoundary:
    """max_rounds is an inclusive budget, for the dense and sparse engines alike.

    Audit result for the check-then-execute loop shape: needing exactly
    ``max_rounds`` quiet rounds succeeds and returns ``max_rounds``; the
    RuntimeError fires only when the budget is genuinely insufficient.
    """

    def make(self, mode: str):
        from repro.simulator import create_engine

        n = 4
        network = DynamicNetwork(n)
        nodes = {v: CountdownNode(v, n) for v in range(n)}
        engine = create_engine(mode, network, nodes)
        engine.execute_round(RoundChanges.inserts([(0, 1)]))
        assert not engine.all_consistent
        return engine

    @pytest.mark.parametrize("mode", ["dense", "sparse"])
    def test_exactly_max_rounds_needed_succeeds(self, mode):
        engine = self.make(mode)
        assert engine.run_until_quiet(max_rounds=CountdownNode.settle) == CountdownNode.settle
        assert engine.all_consistent

    @pytest.mark.parametrize("mode", ["dense", "sparse"])
    def test_one_round_short_raises(self, mode):
        engine = self.make(mode)
        with pytest.raises(RuntimeError, match="still inconsistent"):
            engine.run_until_quiet(max_rounds=CountdownNode.settle - 1)

    @pytest.mark.parametrize("mode", ["dense", "sparse"])
    def test_surplus_budget_stops_at_need(self, mode):
        engine = self.make(mode)
        assert engine.run_until_quiet(max_rounds=CountdownNode.settle + 1) == CountdownNode.settle
        assert engine.all_consistent

    @pytest.mark.parametrize("mode", ["dense", "sparse"])
    def test_no_rounds_executed_is_vacuously_quiet(self, mode):
        from repro.simulator import create_engine

        n = 4
        network = DynamicNetwork(n)
        nodes = {v: CountdownNode(v, n) for v in range(n)}
        engine = create_engine(mode, network, nodes)
        assert engine.run_until_quiet(max_rounds=0) == 0
