"""Shrinker invariants: reproduction, idempotence, legality, determinism.

The contracts pinned here (see ISSUE satellite "shrinker invariants"):

* every accepted ddmin step -- and therefore the final minimized schedule --
  still reproduces the original failure class;
* shrinking is idempotent (re-shrinking a minimized schedule is a no-op);
* every candidate handed to the harness is legal (``legalize`` invariants);
* minimized schedules replay deterministically across engines.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import ExperimentSpec
from repro.fuzz.injected import inject_bug
from repro.fuzz.shrink import Shrinker, legalize, materialize_trace, shrink_failure
from repro.fuzz.signature import FailureSignature, evaluate_spec, trace_fingerprint
from repro.simulator.network import DynamicNetwork

from strategies import churn_schedules
from test_fuzz_generators import replay_through_network


@pytest.fixture
def ghost_bug():
    restore = inject_bug("triangle_ghost_deletes")
    yield
    restore()


@pytest.fixture
def latch_bug():
    restore = inject_bug("robust2hop_quiescence_latch")
    yield
    restore()


def failing_fuzz_spec(algorithm: str, seed: int) -> ExperimentSpec:
    return ExperimentSpec(
        algorithm=algorithm, adversary="fuzz", n=8, rounds=30, seed=seed,
        adversary_params={"profile": "mixed", "max_events_per_round": 3},
    )


def first_failing_spec(algorithm: str, base_seed: int, limit: int = 12):
    """The first fuzz cell (from ``base_seed``) that fails on this build.

    The injected bugs fail on most schedules but not every one, and the
    schedule stream may legitimately change as generator phases evolve --
    probing keeps these tests pinned to behavior, not to one frozen seed.
    """
    for i in range(limit):
        spec = failing_fuzz_spec(algorithm, base_seed + i)
        signature, _ = evaluate_spec(spec, ("dense", "sparse"))
        if signature.is_failure:
            return spec, signature
    raise AssertionError(f"no failing schedule within {limit} seeds of {base_seed}")


class TestLegalize:
    @settings(max_examples=30, deadline=None)
    @given(rounds=churn_schedules(n=7, max_rounds=12))
    def test_legal_schedules_pass_through_unchanged(self, rounds):
        canonical = [
            (sorted(map(tuple, ins)), sorted(map(tuple, dels))) for ins, dels in rounds
        ]
        assert legalize(canonical) == canonical

    def test_orphaned_events_are_dropped(self):
        rounds = [
            ([(0, 1)], [(2, 3)]),        # delete of a never-inserted edge
            ([(0, 1)], []),              # duplicate insert
            ([], [(0, 1)]),              # fine
            ([], [(0, 1)]),              # edge already gone
        ]
        assert legalize(rounds) == [
            ([(0, 1)], []),
            ([], []),
            ([], [(0, 1)]),
            ([], []),
        ]

    @settings(max_examples=30, deadline=None)
    @given(
        data=st.lists(
            st.tuples(
                st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=4),
                st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=4),
            ),
            max_size=8,
        )
    )
    def test_output_is_always_legal(self, data):
        rounds = [
            (
                [tuple(sorted(e)) for e in ins if e[0] != e[1]],
                [tuple(sorted(e)) for e in dels if e[0] != e[1]],
            )
            for ins, dels in data
        ]
        legal = legalize(rounds)
        network = DynamicNetwork(6)
        from repro.simulator.events import RoundChanges

        for i, (ins, dels) in enumerate(legal):
            network.apply_changes(i + 1, RoundChanges.of(insert=ins, delete=dels))


class TestFailureSignature:
    def test_matching_is_intersection_on_classes(self):
        a = FailureSignature(checks=(("triangle_oracle", "known_triangles"),))
        b = FailureSignature(
            checks=(("triangle_oracle", "known_triangles"), ("consistent", "is_consistent"))
        )
        c = FailureSignature(divergences=(("final_state", "state_fingerprint"),))
        assert a.matches(b) and b.matches(a)
        assert not a.matches(c)
        assert not FailureSignature().matches(a)

    def test_round_trip(self):
        sig = FailureSignature(
            divergences=(("trace", "realized_schedule"),),
            checks=(("no_ghost_triangles", "known_triangles"),),
            errors=("RuntimeError",),
        )
        assert FailureSignature.from_dict(sig.to_dict()) == sig

    def test_fingerprint_is_content_addressed(self):
        rounds = [([(0, 1)], []), ([], [(0, 1)])]
        assert trace_fingerprint("triangle", 4, rounds) == trace_fingerprint(
            "triangle", 4, [(list(ins), list(dels)) for ins, dels in rounds]
        )
        assert trace_fingerprint("triangle", 4, rounds) != trace_fingerprint(
            "clique", 4, rounds
        )
        assert trace_fingerprint("triangle", 4, rounds) != trace_fingerprint(
            "triangle", 5, rounds
        )


class TestMaterializeTrace:
    def test_scripted_inline(self):
        trace = {"n": 4, "rounds": [{"insert": [[0, 1]], "delete": []}]}
        spec = ExperimentSpec(
            algorithm="triangle", adversary="scripted", n=4, adversary_params={"trace": trace}
        )
        assert materialize_trace(spec).rounds == [([(0, 1)], [])]

    def test_fuzz_regenerates_the_exact_schedule(self):
        spec = failing_fuzz_spec("triangle", seed=123)
        a = materialize_trace(spec)
        b = materialize_trace(spec)
        assert a.rounds == b.rounds and a.num_rounds == 30

    def test_open_loop_adversaries_are_re_driven(self):
        spec = ExperimentSpec(
            algorithm="triangle", adversary="churn", n=6, rounds=10, seed=3,
            adversary_params={"inserts_per_round": 2, "deletes_per_round": 1},
        )
        trace = materialize_trace(spec)
        assert trace.num_rounds == 10
        replay_through_network(trace)


class TestDdmin:
    def test_ddmin_reaches_a_minimal_core(self):
        core = {3, 7}
        tried = []

        def reproduces(items):
            tried.append(list(items))
            return core <= set(items)

        result = Shrinker._ddmin(list(range(10)), reproduces)
        assert set(result) == core
        # every *accepted* step reproduced: re-check the accepted chain
        assert all(reproduces(result) for _ in [0])

    def test_ddmin_single_item(self):
        assert Shrinker._ddmin([1], lambda items: 1 in items) == [1]
        assert Shrinker._ddmin([1], lambda items: True) == []


class TestShrinkerEndToEnd:
    def test_ghost_bug_shrinks_to_single_digit_rounds(self, ghost_bug):
        spec, signature = first_failing_spec("triangle", base_seed=7_000_021)

        accepted = []
        shrinker = Shrinker(
            ("dense", "sparse"),
            progress=lambda event, detail: accepted.append((event, detail)),
        )
        result = shrinker.shrink(
            _scripted(spec), signature
        )
        # the acceptance bar: a one-screen reproducer
        assert result.rounds_after <= 10
        assert result.events_after <= 10
        assert result.rounds_after < result.rounds_before
        # the minimized spec still reproduces the original failure class
        observed, _ = evaluate_spec(result.minimized, ("dense", "sparse"))
        assert observed.matches(signature)
        # the verdict cache did real work
        assert result.cache_hits > 0
        assert result.candidates_tried > 0

    def test_shrinking_is_idempotent_and_deterministic(self, ghost_bug):
        spec = _scripted(first_failing_spec("triangle", base_seed=7_000_021)[0])
        first = shrink_failure(spec)
        again = shrink_failure(spec)
        assert first.minimized.to_dict() == again.minimized.to_dict()
        second = shrink_failure(first.minimized, first.signature)
        assert second.minimized.adversary_params["trace"] == first.minimized.adversary_params["trace"]
        assert second.rounds_after == first.rounds_after
        assert second.accepted_steps == 0

    def test_minimized_schedule_is_legal_and_strict(self, ghost_bug):
        result = shrink_failure(_scripted(first_failing_spec("triangle", base_seed=7_000_021)[0]))
        trace = materialize_trace(result.minimized)
        replay_through_network(trace)
        assert trace.max_node_id() < result.minimized.n

    def test_divergence_class_shrinks_and_renames_nodes(self, latch_bug):
        spec = _scripted(first_failing_spec("robust2hop", base_seed=1_000_003)[0])
        result = shrink_failure(spec)
        assert result.signature.divergences or result.signature.errors
        assert result.rounds_after <= 10
        # the latch bug is node-id independent, so the renaming pass lands
        assert result.n_after < result.n_before
        observed, _ = evaluate_spec(result.minimized, ("dense", "sparse"))
        assert observed.matches(result.signature)

    def test_refuses_to_shrink_a_passing_cell(self):
        spec = _scripted(failing_fuzz_spec("triangle", seed=1))
        with pytest.raises(ValueError, match="does not fail"):
            shrink_failure(spec)


def _scripted(spec: ExperimentSpec) -> ExperimentSpec:
    data = spec.to_dict()
    data.update(
        adversary="scripted",
        rounds=None,
        adversary_params={"trace": materialize_trace(spec).to_dict()},
    )
    return ExperimentSpec.from_dict(data)
