"""Tests for the fault-injection subsystem: models, plan, overlay, engines.

The acceptance gate of the fault work lives here too: a grid of fault models
must run bit-identically across the dense, sparse and sharded engines, with
the fault statistics part of the gated summary.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import ExperimentSpec, run_cell
from repro.faults.models import (
    FAULT_NONE,
    FAULTS,
    CrashRecover,
    FaultPlan,
    GilbertElliottLoss,
    PartitionCycle,
    RegionalOutage,
    UniformLoss,
    build_fault_plan,
    register_fault,
)
from repro.faults.overlay import FaultOverlayAdversary
from repro.verification import run_differential

ALL_MODES = ("dense", "sparse", "sharded")


class TestRegistry:
    def test_all_five_models_registered(self):
        assert {"uniform_loss", "burst_loss", "crash", "regional", "partition"} <= set(
            FAULTS
        )

    def test_none_builds_no_plan(self):
        assert build_fault_plan(FAULT_NONE, n=8, seed=0) is None

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown fault model"):
            build_fault_plan("solar_flare", n=8, seed=0)

    def test_bad_params_surface_as_value_error(self):
        with pytest.raises(ValueError, match="bad fault_params"):
            build_fault_plan("uniform_loss", n=8, seed=0, params={"probability": 0.5})

    def test_none_name_is_reserved(self):
        with pytest.raises(ValueError, match="reserved"):
            register_fault(FAULT_NONE, UniformLoss)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_fault("uniform_loss", UniformLoss)

    def test_during_drain_is_a_plan_knob_not_a_model_param(self):
        plan = build_fault_plan(
            "uniform_loss", n=8, seed=0, params={"p": 0.5, "during_drain": True}
        )
        assert plan.during_drain
        assert plan.model.p == 0.5


class TestModelDeterminism:
    """Every decision is a pure function of (seed, round, ids) -- no RNG state."""

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32), n=st.integers(6, 12))
    def test_loss_schedules_replay_bit_identically(self, seed, n):
        for name in ("uniform_loss", "burst_loss"):
            a = FAULTS[name](n, seed)
            b = FAULTS[name](n, seed)
            schedule_a = [
                a.drops_message(r, u, v)
                for r in range(1, 15)
                for u in range(n)
                for v in range(n)
                if u != v
            ]
            schedule_b = [
                b.drops_message(r, u, v)
                for r in range(1, 15)
                for u in range(n)
                for v in range(n)
                if u != v
            ]
            assert schedule_a == schedule_b, name

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32), n=st.integers(6, 12))
    def test_topology_schedules_replay_bit_identically(self, seed, n):
        for name in ("crash", "regional"):
            a = FAULTS[name](n, seed)
            b = FAULTS[name](n, seed)
            assert [a.down_nodes(r) for r in range(1, 25)] == [
                b.down_nodes(r) for r in range(1, 25)
            ], name
        a = PartitionCycle(n, seed)
        b = PartitionCycle(n, seed)
        cuts_a = [a.cuts_edge(r, 0, n - 1) for r in range(1, 25)]
        cuts_b = [b.cuts_edge(r, 0, n - 1) for r in range(1, 25)]
        assert cuts_a == cuts_b

    def test_burst_loss_is_call_order_independent(self):
        # The Gilbert-Elliott chain advances with a lazy cursor, but the state
        # at any round must not depend on the query pattern: the engines ask
        # in different orders (the sharded workers each ask for their shard).
        forward = GilbertElliottLoss(8, seed=3, p_enter=0.3, p_exit=0.3)
        scattered = GilbertElliottLoss(8, seed=3, p_enter=0.3, p_exit=0.3)
        rounds = list(range(1, 20))
        answers_forward = {r: forward.drops_message(r, 1, 2) for r in rounds}
        answers_scattered = {
            r: scattered.drops_message(r, 1, 2) for r in [10, 3, 19, 1, 7, 15]
        }
        for r, answer in answers_scattered.items():
            assert answer == answers_forward[r]

    def test_different_seeds_draw_different_schedules(self):
        a = UniformLoss(8, seed=1, p=0.5)
        b = UniformLoss(8, seed=2, p=0.5)
        schedule = lambda m: [
            m.drops_message(r, u, v) for r in range(1, 20) for u in range(8) for v in range(8)
        ]
        assert schedule(a) != schedule(b)


class TestModelBehavior:
    def test_uniform_loss_extremes(self):
        never = UniformLoss(8, seed=0, p=0.0)
        always = UniformLoss(8, seed=0, p=1.0)
        assert not any(never.drops_message(r, 0, 1) for r in range(1, 50))
        assert all(always.drops_message(r, 0, 1) for r in range(1, 50))

    def test_crash_downtime_is_contiguous_and_bounded(self):
        model = CrashRecover(10, seed=5, crash_p=0.9, cycle=8, downtime=3)
        for v in range(10):
            for epoch in range(4):
                down_rounds = [
                    offset
                    for offset in range(model.cycle)
                    if v in model.down_nodes(epoch * model.cycle + offset + 1)
                ]
                assert len(down_rounds) in (0, model.downtime)
                if down_rounds:
                    lo, hi = min(down_rounds), max(down_rounds)
                    assert hi - lo + 1 == model.downtime  # one contiguous block

    def test_regional_outage_takes_whole_regions_down(self):
        model = RegionalOutage(12, seed=2, regions=3, outage_p=0.9)
        regions = {}
        for v in range(12):
            regions.setdefault(model._region_of(v), set()).add(v)
        assert len(regions) == 3
        for r in range(1, 40):
            down = model.down_nodes(r)
            for members in regions.values():
                # all-or-nothing per region: a rack fails as a unit
                assert members <= down or not (members & down)

    def test_partition_cuts_only_crossing_edges_only_during_split(self):
        model = PartitionCycle(10, seed=4, period=8, split=3)
        for r in range(1, 25):
            offset = (r - 1) % model.period
            cycle = (r - 1) // model.period
            for u in range(10):
                for v in range(u + 1, 10):
                    cut = model.cuts_edge(r, u, v)
                    if offset >= model.split:
                        assert not cut  # healed window
                    elif cut:
                        assert model._side(cycle, u) != model._side(cycle, v)

    def test_amnesia_flag_rides_the_params(self):
        assert not CrashRecover(8, seed=0).amnesia
        assert CrashRecover(8, seed=0, amnesia=True).amnesia


class TestFaultPlan:
    def test_drop_accounting(self):
        plan = FaultPlan(UniformLoss(8, seed=0, p=1.0))
        assert plan.message_dropped(1, 0, 1)
        assert plan.message_dropped(1, 2, 3)
        assert plan.stats["fault_messages_dropped"] == 2

    def test_drain_freezes_loss_by_default(self):
        plan = FaultPlan(UniformLoss(8, seed=0, p=1.0))
        plan.enter_drain()
        assert not plan.message_dropped(5, 0, 1)
        assert plan.stats["fault_messages_dropped"] == 0

    def test_during_drain_keeps_loss_on(self):
        plan = FaultPlan(UniformLoss(8, seed=0, p=1.0), during_drain=True)
        plan.enter_drain()
        assert plan.message_dropped(5, 0, 1)

    def test_reset_schedule_round_trip(self):
        plan = FaultPlan(CrashRecover(8, seed=0, amnesia=True))
        plan.record_resets(4, [2, 5])
        assert plan.resets_for_round(4) == (2, 5)
        assert plan.resets_for_round(5) == ()
        assert plan.stats["fault_node_resets"] == 2

    def test_fresh_node_requires_wiring(self):
        plan = FaultPlan(CrashRecover(8, seed=0, amnesia=True))
        with pytest.raises(RuntimeError, match="algorithm_factory"):
            plan.fresh_node(3, 8)


class TestOverlay:
    def test_rejects_delivery_only_models(self):
        from repro.experiments import build_adversary

        inner = build_adversary("churn", n=8, rounds=10, seed=0, params={})
        plan = FaultPlan(UniformLoss(8, seed=0))
        with pytest.raises(ValueError, match="does not affect topology"):
            FaultOverlayAdversary(inner, 8, plan)

    def test_physical_graph_never_touches_down_nodes(self):
        # Drive a real faulted cell and audit every recorded (physical) round:
        # no surviving edge may be incident to a node the model says is down.
        spec = ExperimentSpec(
            algorithm="triangle",
            adversary="churn",
            n=10,
            rounds=20,
            seed=3,
            adversary_params={"inserts_per_round": 3, "deletes_per_round": 1},
            faults="crash",
            fault_params={"crash_p": 0.6, "cycle": 6, "downtime": 2},
        )
        _, trace = run_cell(spec)
        model = CrashRecover(10, seed=3, crash_p=0.6, cycle=6, downtime=2)
        from repro.simulator.network import DynamicNetwork

        network = DynamicNetwork(10)
        for i in range(trace.num_rounds):
            network.apply_changes(i + 1, trace.changes_for(i))
            down = model.down_nodes(i + 1)
            assert not network.edges_incident(down), f"round {i + 1}"

    def test_logical_schedule_is_fault_independent(self):
        # Same seed with faults on/off: the *logical* adversary stream must
        # not shift (the overlay feeds it a private logical view).  The
        # physical trace differs, but re-running the faulted spec reproduces
        # it bit-identically.
        base = dict(
            algorithm="triangle",
            adversary="churn",
            n=10,
            rounds=15,
            seed=7,
            adversary_params={"inserts_per_round": 3, "deletes_per_round": 1},
        )
        faulted = ExperimentSpec(
            **base, faults="partition", fault_params={"period": 6, "split": 2}
        )
        _, trace_a = run_cell(faulted)
        _, trace_b = run_cell(faulted)
        assert trace_a.to_dict() == trace_b.to_dict()
        _, clean_trace = run_cell(ExperimentSpec(**base))
        assert clean_trace.to_dict() != trace_a.to_dict()


class TestEdgesIncident:
    def test_edges_incident_matches_bruteforce(self):
        from repro.simulator.network import DynamicNetwork
        from repro.simulator.events import RoundChanges

        network = DynamicNetwork(8)
        network.apply_changes(
            1, RoundChanges.of(insert=((0, 1), (1, 2), (2, 3), (4, 5), (6, 7)))
        )
        assert network.edges_incident({1}) == {(0, 1), (1, 2)}
        assert network.edges_incident({1, 4}) == {(0, 1), (1, 2), (4, 5)}
        assert network.edges_incident(()) == frozenset()

    def test_edges_incident_validates_nodes(self):
        from repro.simulator.network import DynamicNetwork, TopologyError

        with pytest.raises(TopologyError):
            DynamicNetwork(4).edges_incident({9})


class TestSpecFaultAxis:
    def test_fault_free_cell_id_unchanged(self):
        with_field = ExperimentSpec(n=8, rounds=5, faults="none")
        without = ExperimentSpec(n=8, rounds=5)
        assert with_field.cell_id == without.cell_id
        assert "faults" not in with_field.to_dict()

    def test_faulted_cell_id_embeds_the_model(self):
        clean = ExperimentSpec(n=8, rounds=5)
        faulted = ExperimentSpec(n=8, rounds=5, faults="uniform_loss")
        assert clean.cell_id != faulted.cell_id
        assert "uniform_loss" in faulted.cell_id

    def test_faulted_spec_round_trips(self):
        spec = ExperimentSpec(
            algorithm="triangle",
            adversary="churn",
            n=8,
            rounds=10,
            faults="crash",
            fault_params={"crash_p": 0.5, "amnesia": True},
        )
        clone = ExperimentSpec.from_dict(spec.to_dict())
        assert clone.cell_id == spec.cell_id
        assert clone.faults == "crash" and clone.fault_params == spec.fault_params

    def test_invalid_fault_model_rejected_at_spec_time(self):
        with pytest.raises(ValueError, match="unknown fault model"):
            ExperimentSpec(n=8, rounds=5, faults="gremlins")


class TestDifferentialAcceptance:
    """The PR's acceptance gate: faulted cells stay bit-identical across all
    three engines, with the fault statistics part of the gated summary."""

    GRID = {
        "uniform_loss": {"p": 0.2},
        "crash": {"crash_p": 0.3, "cycle": 6, "downtime": 2, "amnesia": True},
        "partition": {"period": 6, "split": 2},
    }

    @pytest.mark.parametrize("faults", sorted(GRID))
    def test_three_models_by_three_engines(self, faults):
        spec = ExperimentSpec(
            algorithm="triangle",
            adversary="churn",
            n=10,
            rounds=20,
            seed=1,
            adversary_params={"inserts_per_round": 3, "deletes_per_round": 1},
            faults=faults,
            fault_params=dict(self.GRID[faults]),
        )
        report = run_differential(spec, modes=ALL_MODES)
        assert report.ok, report.describe()
        summary = report.summaries["dense"]
        assert {k for k in summary if k.startswith("fault_")} == {
            "fault_messages_dropped",
            "fault_node_resets",
            "fault_masked_edges",
            "fault_down_node_rounds",
        }
        # every mode reports the identical fault accounting
        for mode in ALL_MODES[1:]:
            assert report.summaries[mode] == summary

    def test_fault_machinery_actually_fires(self):
        totals = {}
        for faults, params in self.GRID.items():
            spec = ExperimentSpec(
                algorithm="triangle",
                adversary="churn",
                n=10,
                rounds=20,
                seed=1,
                adversary_params={"inserts_per_round": 3, "deletes_per_round": 1},
                faults=faults,
                fault_params=dict(params),
            )
            metrics, _ = run_cell(spec)
            totals[faults] = sum(v for k, v in metrics.items() if k.startswith("fault_"))
        assert all(total > 0 for total in totals.values()), totals

    def test_amnesia_resets_are_engine_independent(self):
        spec = ExperimentSpec(
            algorithm="robust2hop",
            adversary="churn",
            n=9,
            rounds=18,
            seed=6,
            adversary_params={"inserts_per_round": 3, "deletes_per_round": 1},
            faults="crash",
            fault_params={"crash_p": 0.7, "cycle": 5, "downtime": 2, "amnesia": True},
        )
        report = run_differential(spec, modes=ALL_MODES)
        assert report.ok, report.describe()
        assert report.summaries["dense"]["fault_node_resets"] > 0

    def test_auto_checks_are_disabled_under_faults(self):
        # The registered checks grade fault-free semantics; a faulted cell
        # must not auto-select them (it would fail for the wrong reason).
        spec = ExperimentSpec(
            algorithm="triangle",
            adversary="churn",
            n=8,
            rounds=10,
            seed=0,
            adversary_params={"inserts_per_round": 2, "deletes_per_round": 1},
            faults="uniform_loss",
            fault_params={"p": 0.5},
        )
        report = run_differential(spec, modes=("dense", "sparse"), auto_checks=True)
        assert report.ok, report.describe()
        assert not report.executed_checks
