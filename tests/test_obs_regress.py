"""Tests for the perf-regression tracker and its CLI surface.

``telemetry diff`` compares two perf documents (hotspot reports, BENCH
files, or result-store directories) under per-metric tolerance thresholds;
these tests pin the metric-direction classifier, the two document shapes
:func:`extract_rows` understands, the gating arithmetic, the history
trajectory, and the CLI exit-code contract (0 ok / 1 regression / 2 unusable
input — always a diagnostic naming the path, never a traceback).
"""

from __future__ import annotations

import json

import pytest

from repro.cli import telemetry_main
from repro.obs import (
    RegressionReport,
    append_history,
    diff_rows,
    extract_rows,
    format_diff,
    load_history,
    load_perf_document,
    metric_direction,
)


class TestMetricDirection:
    @pytest.mark.parametrize(
        "name",
        ["wall_s", "duration_s", "mean_s", "p99_ms", "rss_bytes", "answer_latency", "peak_mb"],
    )
    def test_lower_is_better(self, name):
        assert metric_direction(name) == "lower"

    @pytest.mark.parametrize(
        "name", ["rounds_per_s", "events_per_sec", "speedup", "throughput", "queries_qps"]
    )
    def test_higher_is_better(self, name):
        assert metric_direction(name) == "higher"

    @pytest.mark.parametrize("name", ["count", "rounds", "fired", "n"])
    def test_directionless(self, name):
        assert metric_direction(name) is None


class TestExtractRows:
    def test_hotspot_report_shape(self):
        doc = {
            "root": "/tmp/t",
            "cells": ["cell-a"],  # hotspot reports also carry a cells list
            "hotspots": [
                {"span": "engine.round", "count": 10, "total_s": 1.5,
                 "mean_s": 0.15, "max_s": 0.3},
            ],
            "histograms": [
                {"histogram": "serve.answer_latency_s", "count": 4, "mean": 0.01,
                 "p50": 0.01, "p95": 0.02, "p99": 0.02, "max": 0.03},
            ],
            "counters": {"engine.rounds": 40},
        }
        rows = extract_rows(doc)
        assert rows["span engine.round"]["total_s"] == 1.5
        assert rows["histogram serve.answer_latency_s"]["p95"] == 0.02
        assert rows["counter engine.rounds"] == {"value": 40.0}

    def test_bench_shape_keys_rows_by_identity(self):
        doc = {
            "cells": [
                {"cell_id": "abc123", "label": "churn", "n": 200,
                 "engine_mode": "sparse", "wall_s": 2.0, "rounds_per_s": 50.0},
                {"cell_id": "def456", "label": "churn", "n": 1000,
                 "engine_mode": "sparse", "wall_s": 9.0, "rounds_per_s": 11.0},
            ],
            "scale_probe": {"cells": [{"n": 64, "wall_s": 0.5}]},
        }
        rows = extract_rows(doc)
        assert rows["engine_mode=sparse label=churn n=200"]["wall_s"] == 2.0
        assert rows["engine_mode=sparse label=churn n=1000"]["rounds_per_s"] == 11.0
        # cell_id is excluded from identity: spec hashes churn with schema.
        assert not any("abc123" in key for key in rows)
        assert rows["n=64 scale_probe=True"]["wall_s"] == 0.5

    def test_unknown_shape_yields_nothing(self):
        assert extract_rows({"whatever": 1}) == {}


def _rows(**metrics):
    return {"cell": metrics}


class TestDiffRows:
    def test_within_tolerance_passes(self):
        report = diff_rows(
            _rows(wall_s=1.0), _rows(wall_s=1.2), threshold=0.25
        )
        assert not report.failed and report.compared == 1
        assert not report.improvements

    def test_lower_better_regression(self):
        report = diff_rows(_rows(wall_s=1.0), _rows(wall_s=1.3), threshold=0.25)
        assert report.failed
        (entry,) = report.regressions
        assert entry["metric"] == "wall_s" and entry["direction"] == "lower"

    def test_higher_better_regression(self):
        report = diff_rows(
            _rows(rounds_per_s=100.0), _rows(rounds_per_s=70.0), threshold=0.25
        )
        assert report.failed

    def test_improvement_recorded_not_failed(self):
        report = diff_rows(_rows(wall_s=2.0), _rows(wall_s=1.0), threshold=0.25)
        assert not report.failed
        assert len(report.improvements) == 1

    def test_directionless_metric_never_gates(self):
        report = diff_rows(_rows(fired=10.0), _rows(fired=1000.0), threshold=0.01)
        assert not report.failed and report.compared == 1

    def test_near_zero_pairs_skipped(self):
        report = diff_rows(_rows(wall_s=1e-9), _rows(wall_s=5e-9), threshold=0.25)
        assert not report.failed

    def test_per_metric_override_beats_global(self):
        base, cand = _rows(wall_s=1.0), _rows(wall_s=1.5)
        assert diff_rows(base, cand, threshold=0.25).failed
        assert not diff_rows(
            base, cand, threshold=0.25, per_metric={"wall_s": 1.0}
        ).failed

    def test_row_set_changes_reported(self):
        report = diff_rows({"a": {"wall_s": 1.0}}, {"b": {"wall_s": 1.0}})
        assert report.missing_rows == ["a"] and report.new_rows == ["b"]
        assert report.compared == 0

    def test_format_diff_mentions_regressions(self):
        report = diff_rows(_rows(wall_s=1.0), _rows(wall_s=2.0), threshold=0.25)
        text = format_diff(report)
        assert "REGRESSION" in text and "wall_s" in text
        ok = format_diff(RegressionReport("a", "b", 0.25))
        assert "OK" in ok


class TestHistory:
    def test_append_and_load_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_history.jsonl"
        doc = {"cells": [{"label": "churn", "n": 10, "wall_s": 1.0}]}
        append_history(path, doc, source="BENCH_a.json")
        append_history(path, doc, source="BENCH_b.json")
        records = load_history(path)
        assert [r["source"] for r in records] == ["BENCH_a.json", "BENCH_b.json"]
        assert records[0]["rows"]["label=churn n=10"]["wall_s"] == 1.0

    def test_torn_lines_and_missing_file_tolerated(self, tmp_path):
        path = tmp_path / "h.jsonl"
        assert load_history(path) == []
        append_history(path, {"cells": [{"label": "x", "wall_s": 1.0}]}, source="s")
        with path.open("a") as fh:
            fh.write('{"ts": 1.0, "rows"')
        assert len(load_history(path)) == 1


class TestLoadPerfDocument:
    def test_missing_file_names_path(self, tmp_path):
        missing = tmp_path / "nope.json"
        with pytest.raises(FileNotFoundError, match=str(missing)):
            load_perf_document(missing)

    def test_unparseable_file_names_path(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ValueError, match=str(bad)):
            load_perf_document(bad)

    def test_snapshotless_directory_names_path(self, tmp_path):
        with pytest.raises(ValueError, match="no telemetry snapshots"):
            load_perf_document(tmp_path)


def _bench_file(tmp_path, name, wall_s):
    path = tmp_path / name
    path.write_text(
        json.dumps({"cells": [{"label": "churn", "n": 64, "wall_s": wall_s,
                               "rounds_per_s": 10.0 / wall_s}]})
    )
    return path


class TestTelemetryDiffCli:
    def test_ok_exit_zero(self, tmp_path, capsys):
        base = _bench_file(tmp_path, "base.json", 1.0)
        cand = _bench_file(tmp_path, "cand.json", 1.1)
        assert telemetry_main(["diff", str(base), str(cand)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_regression_exit_one(self, tmp_path, capsys):
        base = _bench_file(tmp_path, "base.json", 1.0)
        cand = _bench_file(tmp_path, "cand.json", 2.0)
        assert telemetry_main(["diff", str(base), str(cand)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_warn_only_downgrades_to_zero(self, tmp_path, capsys):
        base = _bench_file(tmp_path, "base.json", 1.0)
        cand = _bench_file(tmp_path, "cand.json", 2.0)
        assert telemetry_main(["diff", "--warn-only", str(base), str(cand)]) == 0

    def test_per_metric_flag(self, tmp_path):
        base = _bench_file(tmp_path, "base.json", 1.0)
        cand = _bench_file(tmp_path, "cand.json", 2.0)
        code = telemetry_main(
            ["diff", "--metric", "wall_s=2.0", "--metric", "rounds_per_s=2.0",
             str(base), str(cand)]
        )
        assert code == 0

    def test_missing_document_exit_two(self, tmp_path, capsys):
        base = _bench_file(tmp_path, "base.json", 1.0)
        missing = tmp_path / "nope.json"
        assert telemetry_main(["diff", str(base), str(missing)]) == 2
        assert str(missing) in capsys.readouterr().err

    def test_no_overlap_exit_two(self, tmp_path, capsys):
        base = _bench_file(tmp_path, "base.json", 1.0)
        other = tmp_path / "other.json"
        other.write_text(json.dumps({"cells": [{"label": "flicker", "wall_s": 1.0}]}))
        assert telemetry_main(["diff", str(base), str(other)]) == 2
        assert "overlap" in capsys.readouterr().err

    def test_rowless_document_exit_two(self, tmp_path, capsys):
        base = _bench_file(tmp_path, "base.json", 1.0)
        empty = tmp_path / "empty.json"
        empty.write_text("{}")
        assert telemetry_main(["diff", str(base), str(empty)]) == 2
        assert str(empty) in capsys.readouterr().err

    def test_wrong_arity_exit_two(self, tmp_path, capsys):
        base = _bench_file(tmp_path, "base.json", 1.0)
        assert telemetry_main(["diff", str(base)]) == 2

    def test_history_flag_appends(self, tmp_path):
        base = _bench_file(tmp_path, "base.json", 1.0)
        cand = _bench_file(tmp_path, "cand.json", 1.0)
        history = tmp_path / "BENCH_history.jsonl"
        telemetry_main(["diff", "--history", str(history), str(base), str(cand)])
        records = load_history(history)
        assert len(records) == 1
        assert records[0]["source"].endswith("cand.json")


class TestTelemetryStoreCliErrors:
    """``telemetry report``/``trace`` on empty or missing stores: exit 2,
    message names the path, never a traceback."""

    def test_report_missing_store(self, tmp_path, capsys):
        store = tmp_path / "nope"
        assert telemetry_main(["report", "--store", str(store)]) == 2
        assert str(store) in capsys.readouterr().err

    def test_report_snapshotless_store(self, tmp_path, capsys):
        (tmp_path / "telemetry").mkdir()
        assert telemetry_main(["report", "--store", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "snapshot" in err and "--telemetry" in err

    def test_trace_missing_store(self, tmp_path, capsys):
        store = tmp_path / "nope"
        assert telemetry_main(["trace", "--store", str(store)]) == 2
        assert str(store) in capsys.readouterr().err

    def test_trace_store_without_trace_files(self, tmp_path, capsys):
        (tmp_path / "telemetry").mkdir()
        assert telemetry_main(["trace", "--store", str(tmp_path)]) == 2
        assert "--trace-events" in capsys.readouterr().err

    def test_store_flag_required(self, capsys):
        assert telemetry_main(["report"]) == 2
        assert "--store" in capsys.readouterr().err
