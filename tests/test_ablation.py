"""Tests for the ablated (hint-free) triangle structure.

The ablation isolates the contribution of the mark-(b) hint mechanism: without
it, the structure maintains exactly the robust 2-hop neighborhood and
therefore misses triangles whose far edge is older than both incident edges.
"""

import itertools

from repro.adversary import RandomChurnAdversary, ScriptedAdversary
from repro.core import HintFreeTriangleNode, QueryResult, TriangleMembershipNode, TriangleQuery
from repro.oracle import robust_two_hop, triangles_containing

from conftest import run_schedule, run_simulation


class TestHintFreeTriangleNode:
    def test_misses_triangle_when_far_edge_is_oldest(self):
        # Far edge (1,2) inserted first: without hints node 0 never learns it.
        schedule = [([(1, 2)], []), ([(0, 1)], []), ([(0, 2)], [])]
        result, _ = run_schedule(HintFreeTriangleNode, schedule, n=4)
        node0 = result.nodes[0]
        assert node0.is_consistent()
        assert node0.query(TriangleQuery({0, 1, 2})) is QueryResult.FALSE
        # The full structure answers correctly on the same schedule.
        full, _ = run_schedule(TriangleMembershipNode, schedule, n=4)
        assert full.nodes[0].query(TriangleQuery({0, 1, 2})) is QueryResult.TRUE

    def test_catches_triangle_when_far_edge_is_newest(self):
        schedule = [([(0, 1)], []), ([(0, 2)], []), ([(1, 2)], [])]
        result, _ = run_schedule(HintFreeTriangleNode, schedule, n=4)
        assert result.nodes[0].query(TriangleQuery({0, 1, 2})) is QueryResult.TRUE

    def test_equals_robust_two_hop_knowledge(self):
        """Without hints the far-edge knowledge collapses to R^{v,2}."""
        result, _ = run_simulation(
            HintFreeTriangleNode,
            RandomChurnAdversary(14, num_rounds=100, inserts_per_round=3, deletes_per_round=2, seed=6),
            n=14,
        )
        network = result.network
        times = network.insertion_times()
        for v, node in result.nodes.items():
            assert node.known_edges() == robust_two_hop(network.edges, times, v)

    def test_recall_gap_over_all_insertion_orders(self):
        def recall(factory):
            hits = total = 0
            for order in itertools.permutations([(0, 1), (0, 2), (1, 2)]):
                schedule = [([edge], []) for edge in order]
                result, _ = run_schedule(factory, schedule, n=4)
                for v in (0, 1, 2):
                    total += 1
                    hits += frozenset({0, 1, 2}) in result.nodes[v].known_triangles()
            return hits / total

        assert recall(TriangleMembershipNode) == 1.0
        # Each of the 6 orders leaves exactly one vertex opposite the oldest
        # edge; that vertex misses the triangle without hints: recall 12/18.
        assert abs(recall(HintFreeTriangleNode) - 12 / 18) < 1e-9

    def test_never_reports_ghost_triangles(self):
        """The ablation loses completeness, not soundness."""
        result, _ = run_simulation(
            HintFreeTriangleNode,
            RandomChurnAdversary(12, num_rounds=80, inserts_per_round=3, deletes_per_round=2, seed=1),
            n=12,
        )
        network = result.network
        for v, node in result.nodes.items():
            assert node.known_triangles() <= triangles_containing(network.edges, v)
