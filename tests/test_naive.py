"""Tests for the baseline strawmen: the flickering failure and the bandwidth cost.

Experiment E10 in code form: the Section 1.3 adversary makes the timestamp-free
forwarding algorithm answer a triangle query *incorrectly while claiming to be
consistent*, whereas the paper's structures stay correct.
"""

import pytest

from repro.adversary import FlickerTriangleAdversary, RandomChurnAdversary
from repro.core import (
    EdgeQuery,
    FullBroadcastNode,
    NaiveForwardingNode,
    QueryResult,
    RobustTwoHopNode,
    TriangleMembershipNode,
    TriangleQuery,
)

from conftest import run_simulation


class TestNaiveForwardingIsWrongUnderFlicker:
    def test_naive_believes_ghost_triangle(self):
        adversary = FlickerTriangleAdversary()
        result, _ = run_simulation(NaiveForwardingNode, adversary, n=9)
        v, u, w = adversary.v, adversary.u, adversary.w
        node_v = result.nodes[v]
        # The node claims to be consistent ...
        assert node_v.is_consistent()
        # ... yet answers TRUE for a triangle whose far edge was deleted.
        assert node_v.query(TriangleQuery({v, u, w})) is QueryResult.TRUE
        assert not result.network.has_edge(u, w)

    def test_robust_structures_answer_correctly_on_the_same_schedule(self):
        for factory in (RobustTwoHopNode, TriangleMembershipNode):
            adversary = FlickerTriangleAdversary()
            result, _ = run_simulation(factory, adversary, n=9)
            v = adversary.v
            node_v = result.nodes[v]
            assert node_v.is_consistent()
            assert not node_v.knows_edge(*adversary.doomed_edge)

    def test_naive_is_fine_without_flickering(self):
        """On insertion-only workloads the naive algorithm is not (yet) wrong."""
        result, _ = run_simulation(
            NaiveForwardingNode,
            RandomChurnAdversary(10, num_rounds=60, inserts_per_round=2, deletes_per_round=0, seed=0),
            n=10,
        )
        network = result.network
        for v, node in result.nodes.items():
            for edge in node.known_edges():
                assert network.has_edge(*edge)


class TestFullBroadcastBaseline:
    def test_needs_linear_bandwidth(self):
        result, _ = run_simulation(
            FullBroadcastNode,
            RandomChurnAdversary(30, num_rounds=40, inserts_per_round=2, deletes_per_round=1, seed=1),
            n=30,
            strict_bandwidth=False,
        )
        assert result.bandwidth.num_violations > 0
        assert result.bandwidth.max_observed_bits >= 30  # Theta(n)-bit messages

    def test_view_is_correct_one_round_later(self):
        result, _ = run_simulation(
            FullBroadcastNode,
            RandomChurnAdversary(12, num_rounds=50, inserts_per_round=2, deletes_per_round=1, seed=2),
            n=12,
            strict_bandwidth=False,
        )
        network = result.network
        for v, node in result.nodes.items():
            for u in node.adj:
                assert node.view.get(u, set()) == set(network.neighbors(u))

    def test_rejects_unknown_query(self):
        node = FullBroadcastNode(0, 4)
        with pytest.raises(TypeError):
            node.query(object())

    def test_edge_query(self):
        result, _ = run_simulation(
            FullBroadcastNode,
            RandomChurnAdversary(8, num_rounds=30, inserts_per_round=1, deletes_per_round=0, seed=3),
            n=8,
            strict_bandwidth=False,
        )
        network = result.network
        node0 = result.nodes[0]
        for u in list(node0.adj)[:3]:
            for w in network.neighbors(u):
                if w != 0:
                    assert node0.query(EdgeQuery(u, w)) is QueryResult.TRUE
