"""Unit tests for the ground-truth dynamic graph."""

import pytest

from repro.simulator.events import RoundChanges
from repro.simulator.network import DynamicNetwork, TopologyError


class TestConstruction:
    def test_starts_empty(self):
        net = DynamicNetwork(5)
        assert net.num_edges == 0
        assert net.round_index == 0
        assert list(net.nodes) == [0, 1, 2, 3, 4]
        assert net.total_changes == 0

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            DynamicNetwork(0)


class TestApplyChanges:
    def test_insert_and_indications(self):
        net = DynamicNetwork(4)
        indications = net.apply_changes(1, RoundChanges.inserts([(0, 1), (2, 3)]))
        assert net.has_edge(0, 1) and net.has_edge(3, 2)
        assert net.num_edges == 2
        assert indications[0].inserted == (1,)
        assert indications[1].inserted == (0,)
        assert indications[2].inserted == (3,)
        assert 0 not in indications[2].inserted
        assert net.total_changes == 2

    def test_delete_and_indications(self):
        net = DynamicNetwork(4)
        net.apply_changes(1, RoundChanges.inserts([(0, 1)]))
        indications = net.apply_changes(2, RoundChanges.deletes([(1, 0)]))
        assert not net.has_edge(0, 1)
        assert indications[0].deleted == (1,)
        assert indications[1].deleted == (0,)

    def test_insertion_time_tracks_latest(self):
        net = DynamicNetwork(3)
        net.apply_changes(1, RoundChanges.inserts([(0, 1)]))
        assert net.insertion_time(0, 1) == 1
        net.apply_changes(2, RoundChanges.deletes([(0, 1)]))
        assert net.insertion_time(0, 1) == 1
        assert net.deletion_time(0, 1) == 2
        net.apply_changes(5, RoundChanges.inserts([(0, 1)]))
        assert net.insertion_time(0, 1) == 5

    def test_never_inserted_edge_has_time_minus_one(self):
        net = DynamicNetwork(3)
        assert net.insertion_time(0, 2) == -1
        assert net.deletion_time(0, 2) == -1

    def test_rejects_double_insert(self):
        net = DynamicNetwork(3)
        net.apply_changes(1, RoundChanges.inserts([(0, 1)]))
        with pytest.raises(TopologyError):
            net.apply_changes(2, RoundChanges.inserts([(1, 0)]))

    def test_rejects_deleting_missing_edge(self):
        net = DynamicNetwork(3)
        with pytest.raises(TopologyError):
            net.apply_changes(1, RoundChanges.deletes([(0, 1)]))

    def test_rejects_out_of_range_node(self):
        net = DynamicNetwork(3)
        with pytest.raises(TopologyError):
            net.apply_changes(1, RoundChanges.inserts([(0, 3)]))

    def test_rejects_non_increasing_round(self):
        net = DynamicNetwork(3)
        net.apply_changes(2, RoundChanges.inserts([(0, 1)]))
        with pytest.raises(TopologyError):
            net.apply_changes(2, RoundChanges.inserts([(0, 2)]))
        with pytest.raises(TopologyError):
            net.apply_changes(1, RoundChanges.inserts([(0, 2)]))

    def test_failed_batch_leaves_graph_untouched(self):
        net = DynamicNetwork(3)
        net.apply_changes(1, RoundChanges.inserts([(0, 1)]))
        with pytest.raises(TopologyError):
            net.apply_changes(2, RoundChanges.of(insert=[(0, 2)], delete=[(1, 2)]))
        # The valid insert in the failed batch must not have been applied.
        assert not net.has_edge(0, 2)
        assert net.round_index == 1


class TestAccessors:
    def test_neighbors_and_degree(self):
        net = DynamicNetwork(4)
        net.apply_changes(1, RoundChanges.inserts([(0, 1), (0, 2)]))
        assert net.neighbors(0) == frozenset({1, 2})
        assert net.degree(0) == 2
        assert net.degree(3) == 0

    def test_insertion_times_mapping_only_current_edges(self):
        net = DynamicNetwork(4)
        net.apply_changes(1, RoundChanges.inserts([(0, 1), (2, 3)]))
        net.apply_changes(2, RoundChanges.deletes([(2, 3)]))
        assert net.insertion_times() == {(0, 1): 1}

    def test_copy_is_independent(self):
        net = DynamicNetwork(4)
        net.apply_changes(1, RoundChanges.inserts([(0, 1)]))
        clone = net.copy()
        net.apply_changes(2, RoundChanges.inserts([(2, 3)]))
        assert not clone.has_edge(2, 3)
        assert clone.has_edge(0, 1)
        assert clone.total_changes == 1


class TestSnapshotCaching:
    def test_edges_snapshot_identity_across_calls(self):
        net = DynamicNetwork(4)
        net.apply_changes(1, RoundChanges.inserts([(0, 1), (1, 2)]))
        first = net.edges
        # No per-call copy: the exact same frozenset object is returned until
        # the graph changes.
        assert net.edges is first
        assert net.snapshot() is first

    def test_neighbors_snapshot_identity_across_calls(self):
        net = DynamicNetwork(4)
        net.apply_changes(1, RoundChanges.inserts([(0, 1), (1, 2)]))
        first = net.neighbors(1)
        assert net.neighbors(1) is first

    def test_apply_changes_invalidates_snapshots(self):
        net = DynamicNetwork(4)
        net.apply_changes(1, RoundChanges.inserts([(0, 1)]))
        edges_before = net.edges
        neigh0_before = net.neighbors(0)
        neigh3_before = net.neighbors(3)
        net.apply_changes(2, RoundChanges.inserts([(0, 2)]))
        assert net.edges is not edges_before
        assert net.edges == frozenset({(0, 1), (0, 2)})
        assert net.neighbors(0) is not neigh0_before
        assert net.neighbors(0) == frozenset({1, 2})
        # Untouched nodes keep their cached snapshot (delta invalidation).
        assert net.neighbors(3) is neigh3_before

    def test_empty_batch_keeps_snapshots(self):
        net = DynamicNetwork(4)
        net.apply_changes(1, RoundChanges.inserts([(0, 1)]))
        edges_before = net.edges
        net.apply_changes(2, RoundChanges.empty())
        assert net.edges is edges_before

    def test_copy_does_not_share_snapshots(self):
        net = DynamicNetwork(4)
        net.apply_changes(1, RoundChanges.inserts([(0, 1)]))
        _ = net.edges, net.neighbors(0)
        clone = net.copy()
        clone.apply_changes(2, RoundChanges.inserts([(2, 3)]))
        assert net.edges == frozenset({(0, 1)})
        assert clone.edges == frozenset({(0, 1), (2, 3)})
        assert clone.neighbors(0) == net.neighbors(0)
