"""Every registered check: a passing fixture and a corrupted one that must fail.

For each entry of the :data:`repro.verification.CHECKS` registry this module
runs a small deterministic cell on which the check passes, then deliberately
corrupts the finished :class:`~repro.simulator.runner.SimulationResult` (or
its recorded trace) and asserts the check now reports a structured
:class:`~repro.verification.CheckFailure` -- with the offending check name,
field, and (where applicable) node.

A registry entry without a fixture here fails the suite, so new checks must
ship with both fixtures.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentSpec
from repro.simulator import RoundChanges
from repro.verification import CHECKS, CheckSession, run_reference

TRIANGLE = [(0, 1), (0, 2), (1, 2)]


def _scripted(n: int, edges) -> dict:
    """A spec dict replaying the given edges, one insertion per round."""
    return {
        "n": n,
        "adversary": "scripted",
        "adversary_params": {
            "trace": {
                "n": n,
                "rounds": [{"insert": [list(e)], "delete": []} for e in edges],
            }
        },
    }


def _delete_edges(result, edges) -> None:
    """Corrupt the ground-truth network: delete edges behind the nodes' backs."""
    result.network.apply_changes(
        result.network.round_index + 1, RoundChanges.deletes(edges)
    )


def _insert_edges(result, edges) -> None:
    result.network.apply_changes(
        result.network.round_index + 1, RoundChanges.inserts(edges)
    )


def _tamper_trace(result, *_args) -> None:
    """Corrupt the recorded trace: drop the first recorded insertion."""
    inserts, deletes = result.trace.rounds[0]
    result.trace.rounds[0] = (inserts[1:], deletes)


def _force_inconsistent(result) -> None:
    result.nodes[0].consistent = False


def _drop_insertion_time(result) -> None:
    edge = sorted(result.network.edges)[0]
    del result.network._insertion_time[edge]


# name -> (spec dict, corrupt(result) function)
FIXTURES = {
    "consistent": (
        {"algorithm": "robust2hop", **_scripted(4, TRIANGLE)},
        _force_inconsistent,
    ),
    "coverage": (
        {"algorithm": "null", **_scripted(4, TRIANGLE)},
        _drop_insertion_time,
    ),
    "triangle_oracle": (
        {"algorithm": "triangle", **_scripted(4, TRIANGLE)},
        lambda result: _delete_edges(result, [(1, 2)]),
    ),
    "clique_oracle": (
        {"algorithm": "clique", **_scripted(4, TRIANGLE)},
        lambda result: _delete_edges(result, [(1, 2)]),
    ),
    "robust2hop_oracle": (
        {"algorithm": "robust2hop", **_scripted(4, TRIANGLE)},
        lambda result: _delete_edges(result, [(1, 2)]),
    ),
    "robust3hop_oracle": (
        {"algorithm": "robust3hop", **_scripted(5, [(0, 1), (1, 2), (2, 3)])},
        lambda result: _delete_edges(result, [(2, 3)]),
    ),
    "twohop_oracle": (
        {"algorithm": "twohop", **_scripted(4, TRIANGLE)},
        lambda result: _delete_edges(result, [(1, 2)]),
    ),
    "cycle_cover": (
        {"algorithm": "cycles", **_scripted(8, [(0, 1), (1, 2), (2, 3), (0, 3)])},
        lambda result: _insert_edges(result, [(4, 5), (5, 6), (6, 7), (4, 7)]),
    ),
    "membership_oracle": (
        {"algorithm": "clique", **_scripted(4, TRIANGLE)},
        lambda result: _delete_edges(result, [(1, 2)]),
    ),
    "triangle_recall": (
        {"algorithm": "triangle", **_scripted(4, TRIANGLE)},
        lambda result: _delete_edges(result, [(1, 2)]),
    ),
    "no_ghost_triangles": (
        {"algorithm": "triangle", **_scripted(4, TRIANGLE)},
        lambda result: _delete_edges(result, [(1, 2)]),
    ),
    "flicker_ghost": (
        {"algorithm": "robust2hop", "adversary": "flicker", "n": 9},
        lambda result: _delete_edges(result, [(0, 1)]),
    ),
    "theorem4_visits": (
        {
            "algorithm": "null",
            "adversary": "theorem4",
            "n": 81,
            "adversary_params": {"k": 6, "num_components": 2},
        },
        _tamper_trace,
    ),
    "threepath_visits": (
        {
            "algorithm": "null",
            "adversary": "threepath",
            "n": 49,
            "adversary_params": {"num_components": 2},
        },
        _tamper_trace,
    ),
}


@pytest.fixture(scope="module")
def reference_runs():
    """One finished run per fixture spec, shared across the pass/fail tests."""
    runs = {}
    for name, (spec_dict, _) in FIXTURES.items():
        spec = ExperimentSpec.from_dict(spec_dict)
        result, _ = run_reference(spec)
        runs[name] = (spec, result)
    return runs


def test_every_registered_check_has_a_fixture():
    assert sorted(FIXTURES) == sorted(CHECKS), (
        "every CHECKS entry needs a passing + corrupted fixture in this module"
    )


@pytest.mark.parametrize("name", sorted(FIXTURES))
def test_check_passes_on_clean_run(name, reference_runs):
    spec, result = reference_runs[name]
    outcome = CHECKS[name].evaluate(result, spec)
    assert outcome.ok, outcome.describe()
    assert outcome.metrics, "a check must report at least one metric"


@pytest.mark.parametrize("name", sorted(FIXTURES))
def test_check_fails_structured_on_corrupted_run(name):
    spec_dict, corrupt = FIXTURES[name]
    spec = ExperimentSpec.from_dict(spec_dict)
    result, _ = run_reference(spec)
    corrupt(result)
    outcome = CHECKS[name].evaluate(result, spec)
    assert not outcome.ok, f"{name} did not notice the corruption"
    failure = outcome.failures[0]
    assert failure.check == name
    assert failure.field
    assert failure.describe().startswith(f"[{name}]")


def test_round_hook_collects_structured_failures():
    """A per-round hook reports (round, node, field) through the session."""
    spec = ExperimentSpec.from_dict({"algorithm": "triangle", **_scripted(4, TRIANGLE)})
    check = CHECKS["no_ghost_triangles"]
    session = CheckSession(check, spec)
    result, _ = run_reference(spec)

    # Simulate a mid-run validator call on a corrupted network snapshot.
    _delete_edges(result, [(1, 2)])
    hook = session.validator()
    assert hook is not None
    hook(7, result.network, result.nodes)
    outcome = session.finish(result)
    assert not outcome.ok
    assert outcome.metrics["no_ghost_triangles_violations"] >= 1.0
    round_failures = [f for f in outcome.failures if f.round_index == 7]
    assert round_failures and round_failures[0].node is not None
