"""Tests for the command-line interface."""

import pytest

from repro.cli import ALGORITHMS, build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.algorithm == "triangle"
        assert args.adversary == "churn"
        assert args.nodes == 30

    def test_algorithm_choices_cover_core(self):
        assert {"triangle", "clique", "robust2hop", "robust3hop", "cycles", "twohop", "naive"} <= set(
            ALGORITHMS
        )

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--algorithm", "magic"])


class TestMain:
    def test_churn_run_prints_metrics(self, capsys):
        code = main(["--algorithm", "triangle", "--nodes", "12", "--rounds", "40", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "amortized_round_complexity" in out
        assert "total_changes" in out

    def test_p2p_adversary(self, capsys):
        code = main(["--algorithm", "clique", "--adversary", "p2p", "--nodes", "12", "--rounds", "30"])
        assert code == 0
        assert "amortized_round_complexity" in capsys.readouterr().out

    def test_batch_adversary_with_naive_baseline(self, capsys):
        code = main(
            [
                "--algorithm",
                "naive",
                "--adversary",
                "batch",
                "--nodes",
                "10",
                "--rounds",
                "10",
                "--loose-bandwidth",
            ]
        )
        assert code == 0

    def test_theorem2_adversary(self, capsys):
        code = main(
            [
                "--algorithm",
                "twohop",
                "--adversary",
                "theorem2",
                "--nodes",
                "10",
                "--rounds",
                "200",
                "--pattern",
                "P3",
            ]
        )
        assert code == 0
        assert "inconsistent_rounds" in capsys.readouterr().out
