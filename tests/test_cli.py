"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import (
    ALGORITHMS,
    build_campaign_parser,
    build_parser,
    build_verify_parser,
    main,
)


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.algorithm == "triangle"
        assert args.adversary == "churn"
        assert args.nodes == 30

    def test_algorithm_choices_cover_core(self):
        assert {"triangle", "clique", "robust2hop", "robust3hop", "cycles", "twohop", "naive"} <= set(
            ALGORITHMS
        )

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--algorithm", "magic"])


class TestMain:
    def test_churn_run_prints_metrics(self, capsys):
        code = main(["--algorithm", "triangle", "--nodes", "12", "--rounds", "40", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "amortized_round_complexity" in out
        assert "total_changes" in out

    def test_p2p_adversary(self, capsys):
        code = main(["--algorithm", "clique", "--adversary", "p2p", "--nodes", "12", "--rounds", "30"])
        assert code == 0
        assert "amortized_round_complexity" in capsys.readouterr().out

    def test_batch_adversary_with_naive_baseline(self, capsys):
        code = main(
            [
                "--algorithm",
                "naive",
                "--adversary",
                "batch",
                "--nodes",
                "10",
                "--rounds",
                "10",
                "--loose-bandwidth",
            ]
        )
        assert code == 0

    def test_theorem2_adversary(self, capsys):
        code = main(
            [
                "--algorithm",
                "twohop",
                "--adversary",
                "theorem2",
                "--nodes",
                "10",
                "--rounds",
                "200",
                "--pattern",
                "P3",
            ]
        )
        assert code == 0
        assert "inconsistent_rounds" in capsys.readouterr().out


class TestNewAdversaries:
    """Every implemented adversary is reachable from the command line."""

    def test_adversary_choices_cover_all_implemented(self):
        from repro.experiments import ADVERSARIES

        action = next(
            a for a in build_parser()._actions if getattr(a, "dest", "") == "adversary"
        )
        assert set(action.choices) == set(ADVERSARIES)
        assert {"flicker", "threepath", "theorem4", "scripted"} <= set(action.choices)

    def test_flicker_adversary(self, capsys):
        code = main(["--algorithm", "triangle", "--adversary", "flicker", "--nodes", "12", "--rounds", "60"])
        assert code == 0
        assert "amortized_round_complexity" in capsys.readouterr().out

    def test_threepath_adversary(self, capsys):
        code = main(["--algorithm", "null", "--adversary", "threepath", "--nodes", "16", "--rounds", "40"])
        assert code == 0

    def test_scripted_requires_trace(self):
        with pytest.raises(SystemExit):
            main(["--adversary", "scripted", "--nodes", "10", "--rounds", "10"])

    def test_save_trace_then_replay(self, tmp_path, capsys):
        trace_file = tmp_path / "trace.json"
        code = main(
            [
                "--algorithm", "triangle", "--adversary", "churn",
                "--nodes", "10", "--rounds", "20", "--seed", "3",
                "--save-trace", str(trace_file),
            ]
        )
        assert code == 0 and trace_file.exists()
        first = capsys.readouterr().out
        code = main(
            [
                "--algorithm", "triangle", "--adversary", "scripted",
                "--trace", str(trace_file), "--nodes", "10", "--rounds", "20",
            ]
        )
        assert code == 0
        replay = capsys.readouterr().out

        def metric(out, name):
            for line in out.splitlines():
                if line.startswith(name):
                    return line.split()[-1]
            raise AssertionError(f"{name} not in output")

        assert metric(replay, "total_changes") == metric(first, "total_changes")
        assert metric(replay, "inconsistent_rounds") == metric(first, "inconsistent_rounds")


class TestCampaignSubcommand:
    @pytest.fixture
    def spec_file(self, tmp_path):
        spec = {
            "name": "cli-smoke",
            "base": {
                "algorithm": "triangle",
                "adversary": "churn",
                "rounds": 25,
                "adversary_params": {"inserts_per_round": 3, "deletes_per_round": 2},
            },
            "grid": {"n": [10, 12]},
            "seeds": [0, 1],
        }
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        return path

    def test_campaign_parser_defaults(self, spec_file):
        args = build_campaign_parser().parse_args(["--spec", str(spec_file)])
        assert args.jobs == 1 and not args.no_resume

    def test_list_cells(self, spec_file, capsys):
        code = main(["campaign", "--spec", str(spec_file), "--list"])
        assert code == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 4
        assert all(line.startswith("triangle-churn-") for line in out)

    def test_run_and_resume(self, spec_file, tmp_path, capsys):
        out_dir = tmp_path / "store"
        code = main(["campaign", "--spec", str(spec_file), "--jobs", "2", "--out", str(out_dir)])
        assert code == 0
        first = capsys.readouterr().out
        assert "ran 4 cells, skipped 0" in first
        assert "mean amortized_round_complexity" in first
        assert (out_dir / "results.jsonl").exists()
        assert len(list((out_dir / "traces").glob("*.json"))) == 4

        code = main(["campaign", "--spec", str(spec_file), "--jobs", "2", "--out", str(out_dir)])
        assert code == 0
        assert "ran 0 cells, skipped 4" in capsys.readouterr().out

    def test_missing_spec_file(self, tmp_path, capsys):
        code = main(["campaign", "--spec", str(tmp_path / "nope.json")])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_check_failures_gate_the_campaign(self, tmp_path, capsys):
        # n=25 gives the Remark 1 construction D=4 leaves with only 2
        # attached per hub -- no guaranteed overlap, so threepath_visits
        # legitimately fails; the campaign must exit nonzero on it.
        spec = {
            "name": "cli-check-gate",
            "base": {
                "algorithm": "null",
                "adversary": "threepath",
                "n": 25,
                "adversary_params": {"num_components": 2},
                "checks": ["threepath_visits"],
            },
            "grid": {},
        }
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        code = main(["campaign", "--spec", str(path), "--out", str(tmp_path / "store")])
        assert code == 1
        captured = capsys.readouterr()
        assert "check failures" in captured.err
        assert "ran 1 cells" in captured.out

    def test_failing_cell_sets_exit_code(self, tmp_path, capsys):
        spec = {
            "name": "cli-fail",
            "base": {
                "algorithm": "triangle",
                "adversary": "scripted",
                "adversary_params": {"trace_path": str(tmp_path / "missing-trace.json")},
            },
            "grid": {"n": [12]},
        }
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        code = main(["campaign", "--spec", str(path), "--out", str(tmp_path / "store")])
        assert code == 1
        assert "1 failed" in capsys.readouterr().out


class TestChecksFlag:
    def test_named_checks_report_metrics(self, capsys):
        code = main(
            [
                "--algorithm", "triangle", "--nodes", "10", "--rounds", "25",
                "--checks", "triangle_oracle,consistent",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "triangle_matches_oracle" in out
        assert "all_consistent" in out
        assert "checks passed: triangle_oracle, consistent" in out

    def test_auto_selects_applicable_checks(self, capsys):
        code = main(
            ["--algorithm", "robust2hop", "--nodes", "10", "--rounds", "20", "--checks", "auto"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "robust2hop_matches_oracle" in out

    def test_unknown_check_is_rejected(self, capsys):
        code = main(["--nodes", "10", "--rounds", "10", "--checks", "magic"])
        assert code == 2
        assert "unknown checks" in capsys.readouterr().err

    def test_inapplicable_check_is_rejected(self, capsys):
        code = main(
            ["--algorithm", "robust2hop", "--nodes", "10", "--rounds", "10",
             "--checks", "triangle_oracle"]
        )
        assert code == 2
        assert "does not apply" in capsys.readouterr().err


class TestVerifySubcommand:
    @pytest.fixture
    def spec_file(self, tmp_path):
        spec = {
            "name": "verify-smoke",
            "base": {
                "algorithm": "triangle",
                "adversary": "churn",
                "rounds": 20,
                "adversary_params": {"inserts_per_round": 2, "deletes_per_round": 1},
            },
            "grid": {"n": [8], "engine_mode": ["dense", "sparse"]},
        }
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        return path

    def test_parser_defaults(self, spec_file):
        args = build_verify_parser().parse_args(["--spec", str(spec_file)])
        assert args.modes == "dense,sparse,sharded,columnar"
        assert not args.no_coverage and not args.require_all_checks

    def test_verify_dedupes_engine_axis_and_passes(self, spec_file, capsys):
        code = main(
            ["verify", "--spec", str(spec_file), "--modes", "dense,sparse", "--no-coverage"]
        )
        assert code == 0
        out = capsys.readouterr().out
        # The two engine_mode cells normalize to one differential run.
        assert "[1/1]" in out
        assert "0 divergences, 0 check failures" in out
        assert "triangle_oracle" in out

    def test_require_all_checks_fails_without_coverage(self, spec_file, capsys):
        code = main(
            [
                "verify", "--spec", str(spec_file), "--modes", "dense,sparse",
                "--no-coverage", "--require-all-checks",
            ]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "checks skipped" in captured.out
        assert "never executed" in captured.err

    def test_report_file(self, spec_file, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        code = main(
            [
                "verify", "--spec", str(spec_file), "--modes", "dense,sparse",
                "--no-coverage", "--report", str(report_path),
            ]
        )
        assert code == 0
        report = json.loads(report_path.read_text())
        assert report["ok"] is True
        assert report["cells"][0]["modes"] == ["dense", "sparse"]
        assert "triangle_oracle" in report["executed_checks"]

    def test_unknown_mode_is_rejected(self, spec_file, capsys):
        code = main(["verify", "--spec", str(spec_file), "--modes", "dense,turbo"])
        assert code == 2
        assert "unknown mode" in capsys.readouterr().err

    def test_missing_spec_file(self, tmp_path, capsys):
        code = main(["verify", "--spec", str(tmp_path / "nope.json")])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestEngineFlag:
    def test_default_engine_is_sparse(self):
        args = build_parser().parse_args([])
        assert args.engine == "sparse"

    def test_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--engine", "turbo"])

    def test_dense_and_sparse_print_identical_metrics(self, capsys):
        argv = ["--algorithm", "triangle", "--adversary", "churn", "--nodes", "14", "--rounds", "40"]
        assert main(argv + ["--engine", "dense"]) == 0
        dense_out = capsys.readouterr().out
        assert main(argv + ["--engine", "sparse"]) == 0
        sparse_out = capsys.readouterr().out
        assert dense_out == sparse_out
