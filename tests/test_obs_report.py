"""Tests for snapshot merging, the hotspot report and the telemetry CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_telemetry_parser, main
from repro.obs import (
    Histogram,
    build_report,
    format_report,
    load_snapshots,
    merge_snapshots,
)


def _snapshot(label, *, counters=None, spans=None, histograms=None, gauges=None,
              ticks=1, elapsed=1.0, final=True):
    return {
        "label": label,
        "seq": 1,
        "final": final,
        "ts": 0.0,
        "elapsed_s": elapsed,
        "ticks": ticks,
        "counters": counters or {},
        "gauges": gauges or {},
        "spans": spans or {},
        "histograms": histograms or {},
    }


def _hist_dict(values, buckets=(1.0, 10.0, 100.0)):
    hist = Histogram(buckets)
    for value in values:
        hist.observe(value)
    return hist.to_dict()


def _write(root, name, *lines):
    root.mkdir(parents=True, exist_ok=True)
    (root / f"{name}.jsonl").write_text(
        "".join(json.dumps(line) + "\n" for line in lines)
    )


class TestMergeSnapshots:
    def test_counters_and_spans_sum_across_cells(self):
        merged = merge_snapshots([
            _snapshot("a", counters={"engine.rounds": 10},
                      spans={"engine.round": {"count": 10, "total_s": 1.0, "max_s": 0.2}}),
            _snapshot("b", counters={"engine.rounds": 5, "oracle.cache_hits": 3},
                      spans={"engine.round": {"count": 5, "total_s": 0.5, "max_s": 0.4}}),
        ])
        assert merged["cells"] == 2
        assert merged["counters"] == {"engine.rounds": 15, "oracle.cache_hits": 3}
        span = merged["spans"]["engine.round"]
        assert span["count"] == 15
        assert span["total_s"] == pytest.approx(1.5)
        assert span["max_s"] == pytest.approx(0.4)

    def test_histograms_merge_bucket_wise(self):
        merged = merge_snapshots([
            _snapshot("a", histograms={"sizes": _hist_dict([0.5, 5.0])}),
            _snapshot("b", histograms={"sizes": _hist_dict([50.0])}),
        ])
        hist = merged["histograms"]["sizes"]
        assert hist.count == 3
        assert hist.max == 50.0

    def test_empty_input(self):
        merged = merge_snapshots([])
        assert merged["cells"] == 0 and merged["counters"] == {}


class TestLoadSnapshots:
    def test_last_line_per_file_wins(self, tmp_path):
        _write(
            tmp_path, "cell-a",
            _snapshot("cell-a", counters={"c": 1}, final=False),
            _snapshot("cell-a", counters={"c": 9}),
        )
        snaps = load_snapshots(tmp_path)
        assert list(snaps) == ["cell-a"]
        assert snaps["cell-a"]["counters"] == {"c": 9}

    def test_missing_root_is_empty(self, tmp_path):
        assert load_snapshots(tmp_path / "nope") == {}


class TestBuildAndFormatReport:
    @pytest.fixture
    def root(self, tmp_path):
        _write(
            tmp_path / "t", "cell-a",
            _snapshot(
                "cell-a",
                counters={"engine.rounds": 30, "engine.envelopes": 120},
                spans={
                    "engine.round": {"count": 30, "total_s": 3.0, "max_s": 0.3},
                    "engine.compute": {"count": 30, "total_s": 2.0, "max_s": 0.2},
                    "engine.route": {"count": 30, "total_s": 0.5, "max_s": 0.05},
                },
                histograms={"engine.active_set": _hist_dict([2.0, 4.0, 8.0])},
            ),
        )
        _write(
            tmp_path / "t", "cell-b",
            _snapshot(
                "cell-b",
                counters={"engine.rounds": 10},
                spans={"engine.round": {"count": 10, "total_s": 1.0, "max_s": 0.1}},
            ),
        )
        return tmp_path / "t"

    def test_hotspots_ranked_by_cumulative_time(self, root):
        report = build_report(root)
        assert report["cells"] == ["cell-a", "cell-b"]
        assert [row["span"] for row in report["hotspots"]] == [
            "engine.round", "engine.compute", "engine.route",
        ]
        assert report["hotspots"][0]["total_s"] == pytest.approx(4.0)
        assert report["counters"]["engine.rounds"] == 40

    def test_top_limits_hotspot_rows(self, root):
        report = build_report(root, top=1)
        assert len(report["hotspots"]) == 1
        assert report["hotspots"][0]["span"] == "engine.round"

    def test_report_is_json_serializable(self, root):
        json.dumps(build_report(root))

    def test_format_report_golden(self, root):
        text = format_report(build_report(root))
        lines = text.splitlines()
        assert lines[0] == "telemetry report: 2 cell(s), 2 tick(s), 2.00s instrumented"
        assert "hotspots (top spans by cumulative time)" in text
        # Rank order and formatted durations appear in the table body.
        round_row = next(l for l in lines if l.startswith("engine.round"))
        assert "40" in round_row and "4.000s" in round_row
        hist_row = next(l for l in lines if l.startswith("engine.active_set"))
        assert hist_row.split()[1] == "3"  # count column
        assert "counters" in text and "engine.envelopes" in text

    def test_format_report_empty(self):
        text = format_report(build_report("does-not-exist"))
        assert "(no telemetry snapshots found)" in text


class TestTelemetryCli:
    def test_parser_defaults(self, tmp_path):
        args = build_telemetry_parser().parse_args(
            ["report", "--store", str(tmp_path)]
        )
        assert args.command == "report" and args.top == 20

    @pytest.fixture
    def campaign_store(self, tmp_path):
        spec = {
            "name": "obs-cli",
            "base": {
                "algorithm": "triangle",
                "adversary": "churn",
                "rounds": 20,
                "adversary_params": {"inserts_per_round": 2, "deletes_per_round": 1},
            },
            "grid": {"n": [10]},
            "seeds": [0, 1],
        }
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec))
        store = tmp_path / "store"
        code = main(
            ["campaign", "--spec", str(spec_path), "--out", str(store),
             "--telemetry", "--telemetry-interval", "0"]
        )
        assert code == 0
        return store

    def test_report_over_campaign_store(self, campaign_store, capsys):
        code = main(["telemetry", "report", "--store", str(campaign_store)])
        assert code == 0
        out = capsys.readouterr().out
        assert "telemetry report: 2 cell(s)" in out
        assert "engine.round" in out and "engine.compute" in out

    def test_json_output(self, campaign_store, tmp_path, capsys):
        json_path = tmp_path / "report.json"
        code = main(
            ["telemetry", "report", "--store", str(campaign_store),
             "--json", str(json_path)]
        )
        assert code == 0
        report = json.loads(json_path.read_text())
        assert len(report["cells"]) == 2
        assert any(row["span"] == "engine.round" for row in report["hotspots"])
        assert all(
            row["total_s"] > 0 for row in report["hotspots"]
            if row["span"] == "engine.round"
        )

    def test_missing_store_errors(self, tmp_path, capsys):
        code = main(["telemetry", "report", "--store", str(tmp_path / "nope")])
        assert code == 2
        assert "no telemetry" in capsys.readouterr().err

    def test_store_without_snapshots_errors(self, tmp_path, capsys):
        code = main(["telemetry", "report", "--store", str(tmp_path)])
        assert code == 2
        assert "telemetry" in capsys.readouterr().err

    def test_campaign_without_flag_collects_nothing(self, tmp_path, capsys):
        spec = {
            "name": "obs-off",
            "base": {"algorithm": "triangle", "adversary": "churn", "rounds": 10},
            "grid": {"n": [10]},
        }
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec))
        store = tmp_path / "store"
        assert main(["campaign", "--spec", str(spec_path), "--out", str(store)]) == 0
        capsys.readouterr()
        assert not (store / "telemetry").exists()


class TestFuzzTelemetry:
    def test_fuzz_heartbeat_file(self, tmp_path, capsys):
        out = tmp_path / "fuzz-telemetry.jsonl"
        code = main(
            ["fuzz", "--budget", "3", "--seed", "1", "--nodes", "6",
             "--schedule-rounds", "10", "--telemetry-out", str(out)]
        )
        assert code == 0
        capsys.readouterr()
        from repro.obs import load_final_snapshot

        snap = load_final_snapshot(out)
        assert snap["final"] is True
        assert snap["counters"]["fuzz.schedules"] == 3
        assert snap["gauges"]["fuzz.budget_used"] == 3
        assert "fuzz.schedule" in snap["spans"]
