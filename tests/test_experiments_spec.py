"""Tests for the declarative experiment/campaign spec layer."""

from __future__ import annotations

import pytest

from repro.experiments import CampaignSpec, ExperimentSpec


class TestExperimentSpecRoundTrip:
    def test_dict_round_trip(self):
        spec = ExperimentSpec(
            algorithm="triangle",
            adversary="churn",
            n=20,
            rounds=100,
            seed=3,
            adversary_params={"inserts_per_round": 4},
            checks=("triangle_oracle",),
        )
        data = spec.to_dict()
        rebuilt = ExperimentSpec.from_dict(data)
        assert rebuilt == spec
        assert rebuilt.to_dict() == data

    def test_json_ready(self):
        import json

        spec = ExperimentSpec(checks=("consistent",))
        assert json.loads(json.dumps(spec.to_dict())) == spec.to_dict()

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown ExperimentSpec fields"):
            ExperimentSpec.from_dict({"algorithm": "triangle", "bogus": 1})

    def test_from_dict_does_not_alias_nested_dicts(self):
        data = {"adversary_params": {"inserts_per_round": 4}}
        spec = ExperimentSpec.from_dict(data)
        spec.adversary_params["inserts_per_round"] = 9
        assert data["adversary_params"]["inserts_per_round"] == 4


class TestExperimentSpecValidation:
    def test_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            ExperimentSpec(algorithm="magic")

    def test_unknown_adversary(self):
        with pytest.raises(ValueError, match="unknown adversary"):
            ExperimentSpec(adversary="magic")

    def test_unknown_check(self):
        with pytest.raises(ValueError, match="unknown checks"):
            ExperimentSpec(checks=("magic",))

    def test_bad_engine(self):
        with pytest.raises(ValueError, match="engine"):
            ExperimentSpec(engine="quantum")

    def test_checks_require_serial_engine(self):
        with pytest.raises(ValueError, match="serial"):
            ExperimentSpec(engine="sharded", checks=("consistent",))

    def test_tiny_n_rejected(self):
        with pytest.raises(ValueError, match="n must be"):
            ExperimentSpec(n=1)


class TestCellId:
    def test_deterministic(self):
        a = ExperimentSpec(n=16, seed=2)
        b = ExperimentSpec(n=16, seed=2)
        assert a.cell_id == b.cell_id

    def test_sensitive_to_every_field(self):
        base = ExperimentSpec(n=16)
        assert base.cell_id != ExperimentSpec(n=16, bandwidth_factor=9).cell_id
        assert base.cell_id != ExperimentSpec(n=16, adversary_params={"inserts_per_round": 1}).cell_id

    def test_readable_prefix(self):
        spec = ExperimentSpec(algorithm="clique", adversary="p2p", n=33, seed=7)
        assert spec.cell_id.startswith("clique-p2p-n33-s7-")


class TestGridExpansion:
    def test_counts_axes_times_seeds(self):
        campaign = CampaignSpec(
            name="t",
            base={"algorithm": "triangle", "adversary": "churn", "rounds": 10},
            grid={"n": [8, 16, 32], "bandwidth_factor": [8, 16]},
            seeds=[0, 1],
        )
        cells = campaign.expand()
        assert len(cells) == 3 * 2 * 2
        assert campaign.num_cells == len(cells)
        assert len({c.cell_id for c in cells}) == len(cells)

    def test_seed_axis_in_grid_overrides_seeds(self):
        campaign = CampaignSpec(
            name="t",
            base={"rounds": 10},
            grid={"seed": [5, 6]},
            seeds=[0, 1, 2],
        )
        cells = campaign.expand()
        assert [c.seed for c in cells] == [5, 6]
        assert campaign.num_cells == 2

    def test_dotted_keys_reach_adversary_params(self):
        campaign = CampaignSpec(
            name="t",
            base={"adversary": "churn", "rounds": 10},
            grid={"adversary_params.inserts_per_round": [1, 5]},
        )
        cells = campaign.expand()
        assert [c.adversary_params["inserts_per_round"] for c in cells] == [1, 5]

    def test_patch_axis_varies_coupled_fields(self):
        campaign = CampaignSpec(
            name="t",
            base={"rounds": 10},
            grid={
                "workload": [
                    {"adversary": "churn", "adversary_params": {"inserts_per_round": 3}},
                    {"adversary": "p2p", "adversary_params": {}},
                ]
            },
        )
        cells = campaign.expand()
        assert [c.adversary for c in cells] == ["churn", "p2p"]
        assert cells[0].adversary_params == {"inserts_per_round": 3}
        assert cells[1].adversary_params == {}

    def test_patch_axis_may_pin_seed(self):
        campaign = CampaignSpec(
            name="t",
            base={"rounds": 10},
            grid={"workload": [{"adversary": "churn", "seed": 1}, {"adversary": "p2p", "seed": 2}]},
        )
        assert [c.seed for c in campaign.expand()] == [1, 2]

    def test_cells_do_not_share_base_dicts(self):
        campaign = CampaignSpec(
            name="t",
            base={"adversary": "churn", "adversary_params": {"inserts_per_round": 3}, "rounds": 10},
            grid={"n": [8, 16]},
        )
        cells = campaign.expand()
        cells[0].adversary_params["inserts_per_round"] = 99
        assert cells[1].adversary_params["inserts_per_round"] == 3
        assert campaign.base["adversary_params"]["inserts_per_round"] == 3

    def test_scalar_value_on_non_field_axis_rejected(self):
        campaign = CampaignSpec(name="t", base={"rounds": 10}, grid={"workload": [1, 2]})
        with pytest.raises(ValueError, match="dict patches"):
            campaign.expand()

    def test_duplicate_cells_rejected(self):
        campaign = CampaignSpec(
            name="t",
            base={"rounds": 10},
            grid={"workload": [{"n": 8}, {"n": 8}]},
        )
        with pytest.raises(ValueError, match="duplicate cell"):
            campaign.expand()


class TestCampaignSpecSerialisation:
    def test_round_trip(self):
        campaign = CampaignSpec(
            name="sweep",
            description="a test sweep",
            base={"algorithm": "triangle", "adversary": "churn", "rounds": 20},
            grid={"n": [8, 16]},
            seeds=[0, 1],
        )
        rebuilt = CampaignSpec.from_dict(campaign.to_dict())
        assert rebuilt == campaign
        assert CampaignSpec.from_json(campaign.to_json()) == campaign

    def test_save_load(self, tmp_path):
        campaign = CampaignSpec(name="s", base={"rounds": 5}, grid={"n": [8]})
        path = tmp_path / "spec.json"
        campaign.save(path)
        assert CampaignSpec.load(path) == campaign

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            CampaignSpec.load(path)

    def test_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown CampaignSpec fields"):
            CampaignSpec.from_dict({"name": "x", "cells": []})

    def test_rejects_empty_axis(self):
        with pytest.raises(ValueError, match="no values"):
            CampaignSpec(name="x", grid={"n": []})

    def test_rejects_empty_seeds(self):
        with pytest.raises(ValueError, match="seeds"):
            CampaignSpec(name="x", seeds=[])


class TestEngineMode:
    def test_default_is_sparse(self):
        assert ExperimentSpec().engine_mode == "sparse"

    def test_bad_engine_mode(self):
        with pytest.raises(ValueError, match="engine_mode"):
            ExperimentSpec(engine_mode="turbo")

    def test_engine_mode_round_trips(self):
        spec = ExperimentSpec(engine_mode="dense")
        assert ExperimentSpec.from_dict(spec.to_dict()).engine_mode == "dense"

    def test_engine_mode_grid_axis(self):
        campaign = CampaignSpec(
            name="mode-sweep",
            base={"algorithm": "triangle", "adversary": "churn", "rounds": 10},
            grid={"n": [8, 16], "engine_mode": ["dense", "sparse"]},
        )
        cells = campaign.expand()
        assert len(cells) == 4
        assert sorted({c.engine_mode for c in cells}) == ["dense", "sparse"]
        # Mode participates in the cell id, so dense/sparse results are
        # stored as distinct cells.
        ids = {c.cell_id for c in cells}
        assert len(ids) == 4
