"""Tests for the H-pattern machinery used by the Theorem 2 experiments."""

import pytest

from repro.core.membership import PATTERNS, HMembershipQuery, HPattern


class TestHPattern:
    def test_clique_detection(self):
        assert HPattern.clique(4).is_clique
        assert not HPattern.path(3).is_clique
        assert not HPattern.diamond().is_clique

    def test_clique_has_no_non_adjacent_pair(self):
        assert HPattern.clique(5).non_adjacent_pair() is None

    def test_path_non_adjacent_pair(self):
        pattern = HPattern.path(3)
        pair = pattern.non_adjacent_pair()
        assert pair is not None
        a, b = pair
        assert not pattern.has_edge(a, b)

    def test_neighbors_and_degree(self):
        p4 = HPattern.path(4)
        assert p4.neighbors(0) == frozenset({1})
        assert p4.neighbors(1) == frozenset({0, 2})
        assert p4.degree(1) == 2
        assert p4.degree(0) == 1

    def test_cycle_pattern(self):
        c5 = HPattern.cycle(5)
        assert len(c5.edges) == 5
        assert all(c5.degree(v) == 2 for v in range(5))

    def test_diamond_pattern(self):
        d = HPattern.diamond()
        assert d.k == 4
        assert len(d.edges) == 5
        assert d.non_adjacent_pair() == (1, 3)

    def test_invalid_edges_rejected(self):
        with pytest.raises(ValueError):
            HPattern(name="bad", k=3, edges=frozenset({(0, 3)}))

    def test_pattern_zoo(self):
        assert set(PATTERNS) >= {"P3", "P4", "C4", "C5", "diamond", "K3", "K4", "K5"}
        assert PATTERNS["K3"].is_clique
        assert not PATTERNS["C4"].is_clique


class TestHMembershipQuery:
    def test_mapped_edges(self):
        query = HMembershipQuery(PATTERNS["P3"], (5, 9, 7))
        # P3 edges are (0,1) and (1,2): mapped to {5,9} and {7,9}.
        assert sorted(query.mapped_edges()) == [(5, 9), (7, 9)]
        assert query.nodes == frozenset({5, 7, 9})

    def test_assignment_must_cover_pattern(self):
        with pytest.raises(ValueError):
            HMembershipQuery(PATTERNS["P4"], (1, 2, 3))

    def test_assignment_must_be_injective(self):
        with pytest.raises(ValueError):
            HMembershipQuery(PATTERNS["P3"], (1, 2, 1))
