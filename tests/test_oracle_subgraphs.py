"""Tests for the centralized subgraph enumeration oracle."""

import itertools

import networkx as nx
import pytest

from repro.oracle.subgraphs import (
    all_triangles,
    build_graph,
    cliques_containing,
    cycles_containing,
    cycles_of_length,
    is_clique,
    is_cycle_ordering,
    set_is_cycle,
    triangles_containing,
)


K4_EDGES = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
C5_EDGES = [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]


class TestTriangles:
    def test_all_triangles_of_k4(self):
        assert all_triangles(K4_EDGES) == {
            frozenset(c) for c in itertools.combinations(range(4), 3)
        }

    def test_triangles_containing(self):
        edges = [(0, 1), (0, 2), (1, 2), (2, 3)]
        assert triangles_containing(edges, 0) == {frozenset({0, 1, 2})}
        assert triangles_containing(edges, 3) == set()

    def test_triangles_of_triangle_free_graph(self):
        assert all_triangles(C5_EDGES) == set()

    def test_matches_networkx_triangle_count(self):
        graph = nx.gnp_random_graph(20, 0.3, seed=4)
        edges = [tuple(sorted(e)) for e in graph.edges()]
        expected_total = sum(nx.triangles(graph).values()) // 3
        assert len(all_triangles(edges)) == expected_total


class TestCliques:
    def test_is_clique(self):
        assert is_clique(K4_EDGES, [0, 1, 2, 3])
        assert not is_clique(C5_EDGES, [0, 1, 2])

    def test_cliques_containing(self):
        assert cliques_containing(K4_EDGES, 0, 4) == {frozenset(range(4))}
        assert cliques_containing(K4_EDGES, 0, 3) == {
            frozenset(c) | {0} for c in itertools.combinations([1, 2, 3], 2)
        }

    def test_cliques_containing_low_degree_node(self):
        assert cliques_containing([(0, 1)], 0, 3) == set()


class TestCycles:
    def test_cycles_of_length_four_in_k4(self):
        # Cycles are reported as node sets; in K4 all 4-cycles share the same
        # node set, and the three distinct orderings are all valid cycles.
        assert cycles_of_length(K4_EDGES, 4) == {frozenset(range(4))}
        assert is_cycle_ordering(K4_EDGES, (0, 1, 2, 3))
        assert is_cycle_ordering(K4_EDGES, (0, 2, 1, 3))
        assert is_cycle_ordering(K4_EDGES, (0, 1, 3, 2))

    def test_cycles_of_length_five(self):
        assert cycles_of_length(C5_EDGES, 5) == {frozenset(range(5))}
        assert cycles_of_length(C5_EDGES, 4) == set()

    def test_cycles_containing(self):
        assert cycles_containing(C5_EDGES, 2, 5) == {frozenset(range(5))}

    def test_is_cycle_ordering(self):
        assert is_cycle_ordering(C5_EDGES, (0, 1, 2, 3, 4))
        assert not is_cycle_ordering(C5_EDGES, (0, 2, 1, 3, 4))

    def test_set_is_cycle(self):
        assert set_is_cycle(C5_EDGES, range(5))
        assert not set_is_cycle(C5_EDGES, [0, 1, 2, 3])
        assert set_is_cycle(K4_EDGES, [0, 1, 2, 3])

    def test_set_is_cycle_rejects_tiny_sets(self):
        assert not set_is_cycle(K4_EDGES, [0, 1])

    def test_cycle_enumeration_matches_networkx_cycle_basis_on_ring(self):
        n = 7
        ring = [(i, (i + 1) % n) for i in range(n)]
        assert cycles_of_length(ring, n) == {frozenset(range(n))}
        assert cycles_of_length(ring, n - 1) == set()


class TestBuildGraph:
    def test_isolated_nodes_included_when_n_given(self):
        graph = build_graph([(0, 1)], n=5)
        assert set(graph.nodes) == set(range(5))

    def test_without_n_only_touched_nodes(self):
        graph = build_graph([(0, 1)])
        assert set(graph.nodes) == {0, 1}
