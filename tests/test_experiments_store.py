"""Tests for the JSONL result store and its aggregation helpers."""

from __future__ import annotations

import json
import os
import signal
import sys
import textwrap

import pytest

from repro.experiments import ResultStore, percentile
from repro.simulator import TopologyTrace


def _record(cell_id, *, n=16, seed=0, status="ok", amortized=1.0):
    return {
        "cell_id": cell_id,
        "spec": {"algorithm": "triangle", "adversary": "churn", "n": n, "seed": seed},
        "status": status,
        "metrics": {"amortized_round_complexity": amortized},
        "error": None,
    }


class TestPercentile:
    def test_single_value(self):
        assert percentile([4.0], 95) == 4.0

    def test_median(self):
        assert percentile([1.0, 2.0, 3.0], 50) == 2.0

    def test_interpolates(self):
        assert percentile([0.0, 10.0], 95) == pytest.approx(9.5)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_rejects_bad_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 150)


class TestAppendAndRead:
    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.append(_record("a"))
        store.append(_record("b"))
        assert [r["cell_id"] for r in store.records()] == ["a", "b"]

    def test_empty_store(self, tmp_path):
        store = ResultStore(tmp_path / "missing")
        assert store.records() == []
        assert store.completed_ids() == set()

    def test_record_needs_cell_id(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        with pytest.raises(ValueError, match="cell_id"):
            store.append({"status": "ok"})

    def test_torn_final_line_is_skipped(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.append(_record("a"))
        with store.results_path.open("a") as handle:
            handle.write('{"cell_id": "b", "status": "o')  # interrupted append
        assert [r["cell_id"] for r in store.records()] == ["a"]
        # the store stays appendable after the torn write
        store.append(_record("c"))
        assert {r["cell_id"] for r in store.records()} == {"a", "c"}

    def test_corrupt_middle_line_is_skipped(self, tmp_path):
        # a torn append can end up mid-file once later appends land after it;
        # the reader drops it so the resume pass simply re-runs that cell
        store = ResultStore(tmp_path / "s")
        store.append(_record("a"))
        with store.results_path.open("a") as handle:
            handle.write("garbage\n")
        store.append(_record("b"))
        assert [r["cell_id"] for r in store.records()] == ["a", "b"]


class TestCompletionAndLatest:
    def test_error_records_do_not_complete(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.append(_record("a", status="error"))
        store.append(_record("b"))
        assert store.completed_ids() == {"b"}

    def test_later_record_wins(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.append(_record("a", status="error"))
        store.append(_record("a", status="ok", amortized=2.0))
        assert store.completed_ids() == {"a"}
        assert store.latest()["a"]["metrics"]["amortized_round_complexity"] == 2.0


class TestTraces:
    def test_save_load_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        trace = TopologyTrace(n=4)
        trace.rounds.append(([(0, 1), (1, 2)], []))
        trace.rounds.append(([], [(0, 1)]))
        store.save_trace("cell-x", trace)
        loaded = store.load_trace("cell-x")
        assert loaded.to_dict() == trace.to_dict()

    def test_accepts_plain_dict(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        trace = TopologyTrace(n=3)
        trace.rounds.append(([(0, 2)], []))
        store.save_trace("cell-y", trace.to_dict())
        assert store.load_trace("cell-y").to_dict() == trace.to_dict()

    def test_missing_trace_raises(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        with pytest.raises(FileNotFoundError):
            store.load_trace("nope")

    def test_repeated_saves_byte_identical(self, tmp_path):
        """sort_keys pins the on-disk bytes across re-saves of the same trace."""
        store = ResultStore(tmp_path / "s")
        trace = TopologyTrace(n=5)
        trace.rounds.append(([(0, 1), (3, 4)], []))
        first = store.save_trace("cell-x", trace).read_bytes()
        second = store.save_trace("cell-x", trace).read_bytes()
        assert first == second
        # Field order in the source dict must not matter either.
        as_dict = trace.to_dict()
        reordered = {k: as_dict[k] for k in reversed(list(as_dict))}
        assert store.save_trace("cell-x", reordered).read_bytes() == first

    def test_no_temp_file_left_after_save(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        trace = TopologyTrace(n=3)
        store.save_trace("cell-x", trace)
        leftovers = [p for p in store.traces_root.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []

    def test_writer_killed_mid_dump_leaves_old_trace_intact(self, tmp_path):
        """Regression: save_trace used to write the destination in place, so a
        writer killed mid-dump left a torn, unparseable file where a complete
        trace used to be.  With the temp-file + os.replace protocol the
        destination always holds some complete, valid trace."""
        import subprocess
        import time

        store = ResultStore(tmp_path / "s")
        good = TopologyTrace(n=4)
        good.rounds.append(([(0, 1)], []))
        path = store.save_trace("cell-x", good)
        good_dict = json.loads(path.read_text())
        big_dict = {
            "n": 4,
            "rounds": [{"insert": [[0, 1], [1, 2], [2, 3]], "delete": []}] * 5000,
        }

        # The child overwrites cell-x with the large trace, forever.
        writer = textwrap.dedent(
            f"""
            import json, sys
            from repro.experiments import ResultStore
            store = ResultStore({str(tmp_path / "s")!r})
            big = json.loads(sys.stdin.read())
            while True:
                store.save_trace("cell-x", big)
            """
        )
        for _ in range(5):
            import repro

            src_root = os.path.dirname(os.path.dirname(repro.__file__))
            proc = subprocess.Popen(
                [sys.executable, "-c", writer],
                stdin=subprocess.PIPE,
                env={**os.environ, "PYTHONPATH": src_root},
            )
            proc.stdin.write(json.dumps(big_dict).encode())
            proc.stdin.close()
            time.sleep(0.15)
            proc.send_signal(signal.SIGKILL)
            proc.wait()
            # Whatever the kill interrupted, the visible file is one of the
            # two complete traces -- never a torn prefix.
            loaded = json.loads(path.read_text())
            assert loaded in (good_dict, big_dict)


class TestAggregation:
    def test_mean_and_percentiles_per_group(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        for seed, value in enumerate([1.0, 2.0, 3.0]):
            store.append(_record(f"a{seed}", n=16, seed=seed, amortized=value))
        store.append(_record("b0", n=32, seed=0, amortized=10.0))
        headers, rows = store.aggregate(group_by=("n",))
        assert headers == [
            "n",
            "cells",
            "mean amortized_round_complexity",
            "p50 amortized_round_complexity",
            "p95 amortized_round_complexity",
            "p99 amortized_round_complexity",
            "n amortized_round_complexity",
        ]
        by_n = {row[0]: row for row in rows}
        assert by_n[16][1] == 3
        assert by_n[16][2] == pytest.approx(2.0)
        assert by_n[16][3] == pytest.approx(2.0)  # p50
        assert by_n[16][4] == pytest.approx(percentile([1.0, 2.0, 3.0], 95))
        assert by_n[16][5] == pytest.approx(percentile([1.0, 2.0, 3.0], 99))
        assert by_n[16][6] == 3  # every cell carried the metric
        assert by_n[32][2] == pytest.approx(10.0)

    def test_error_cells_excluded(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.append(_record("a", amortized=1.0))
        store.append(_record("b", status="error", amortized=99.0))
        _, rows = store.aggregate(group_by=("n",))
        assert rows[0][1] == 1

    def test_missing_metric_renders_dash(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.append(_record("a"))
        _, rows = store.aggregate(group_by=("n",), metrics=("no_such_metric",))
        assert rows[0][2:] == ["-", "-", "-", "-", 0]

    def test_heterogeneous_records_surface_with_metric_count(self, tmp_path):
        """`cells` counts group members; `n <metric>` counts values averaged.

        Regression: records whose metric is missing or None were silently
        dropped from the statistics while still counted in `cells`, so a
        group could claim 4-cell coverage with a mean computed from 2.
        """
        store = ResultStore(tmp_path / "s")
        store.append(_record("a0", seed=0, amortized=1.0))
        store.append(_record("a1", seed=1, amortized=3.0))
        missing = _record("a2", seed=2)
        del missing["metrics"]["amortized_round_complexity"]
        store.append(missing)
        store.append(_record("a3", seed=3, amortized=None))
        headers, rows = store.aggregate(group_by=("n",))
        assert rows[0][headers.index("cells")] == 4
        assert rows[0][headers.index("mean amortized_round_complexity")] == pytest.approx(2.0)
        assert rows[0][headers.index("n amortized_round_complexity")] == 2

    def test_numeric_groups_sort_numerically(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        for i, n in enumerate([128, 8, 16]):
            store.append(_record(f"c{i}", n=n))
        _, rows = store.aggregate(group_by=("n",))
        assert [row[0] for row in rows] == [8, 16, 128]

    def test_format_aggregate_renders_table(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.append(_record("a"))
        text = store.format_aggregate(group_by=("algorithm", "n"))
        assert "algorithm" in text and "mean amortized_round_complexity" in text
        assert "triangle" in text
