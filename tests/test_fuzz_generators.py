"""Tests for the schedule fuzzer: legality, determinism, registry wiring."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import CampaignSpec, ExperimentSpec, build_adversary
from repro.fuzz.generators import PROFILES, ScheduleFuzzer, generate_trace
from repro.simulator.network import DynamicNetwork
from repro.simulator.trace import TraceReplayAdversary


def replay_through_network(trace) -> DynamicNetwork:
    """Apply every round; DynamicNetwork raises TopologyError on any illegality."""
    network = DynamicNetwork(trace.n)
    for i in range(trace.num_rounds):
        network.apply_changes(i + 1, trace.changes_for(i))
    return network


class TestLegality:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32),
        profile=st.sampled_from(sorted(PROFILES)),
        n=st.integers(min_value=3, max_value=12),
    )
    def test_every_generated_schedule_is_legal(self, seed, profile, n):
        trace = generate_trace(n, 35, seed, profile=profile)
        assert trace.num_rounds == 35
        replay_through_network(trace)  # raises on any illegal event
        assert trace.max_node_id() < n

    def test_one_event_per_edge_per_round(self):
        trace = generate_trace(6, 60, seed=11)
        for ins, dels in trace.rounds:
            edges = [tuple(sorted(e)) for e in ins + dels]
            assert len(edges) == len(set(edges))

    def test_schedules_actually_exercise_deletions_and_quiet_rounds(self):
        trace = generate_trace(8, 80, seed=5)
        assert any(dels for _, dels in trace.rounds)
        assert any(ins for ins, _ in trace.rounds)
        assert any(not ins and not dels for ins, dels in trace.rounds)


class TestDeterminism:
    def test_same_arguments_same_schedule(self):
        a = generate_trace(8, 50, seed=42, profile="gadgets")
        b = generate_trace(8, 50, seed=42, profile="gadgets")
        assert a.rounds == b.rounds

    def test_different_seeds_differ(self):
        a = generate_trace(8, 50, seed=1)
        b = generate_trace(8, 50, seed=2)
        assert a.rounds != b.rounds

    def test_prefix_stability_not_required_but_budget_is_exact(self):
        assert generate_trace(8, 0, seed=3).num_rounds == 0
        assert generate_trace(8, 7, seed=3).num_rounds == 7

    def test_reused_fuzzer_stays_legal(self):
        # generate() resets to an empty graph each call; a truncated first
        # schedule must not leak its present-set into the second one.
        fuzzer = ScheduleFuzzer(6, 0)
        fuzzer.generate(3)
        replay_through_network(fuzzer.generate(12))


class TestFaultsProfile:
    """The crash/partition splice phases behind the ``faults`` profile."""

    def test_faults_profile_registered(self):
        assert "faults" in PROFILES
        assert PROFILES["faults"]["crash_splice"] > 0
        assert PROFILES["faults"]["partition_splice"] > 0

    def test_faults_schedules_are_deterministic(self):
        a = generate_trace(8, 50, seed=21, profile="faults")
        b = generate_trace(8, 50, seed=21, profile="faults")
        assert a.rounds == b.rounds

    def test_splices_tear_and_revive_edges(self):
        # The splice phases delete live edges, idle through a downtime window
        # and re-insert: a faults-profile schedule exercises deletions, quiet
        # rounds and re-insertions of previously deleted edges.
        trace = generate_trace(8, 80, seed=4, profile="faults")
        deleted, reinserted = set(), set()
        for ins, dels in trace.rounds:
            for e in dels:
                deleted.add(tuple(sorted(e)))
            for e in ins:
                if tuple(sorted(e)) in deleted:
                    reinserted.add(tuple(sorted(e)))
        assert deleted and reinserted
        assert any(not ins and not dels for ins, dels in trace.rounds)

    def test_existing_profiles_keep_their_streams(self):
        # Adding the faults profile (and its phases) must not shift the RNG
        # stream of the other profiles: pinned fuzz seeds in the corpus and
        # in CI would silently change meaning.  Each profile draws only from
        # its own phase table, so their schedules stay independent.
        mixed = generate_trace(8, 40, seed=12, profile="mixed")
        faults = generate_trace(8, 40, seed=12, profile="faults")
        assert mixed.rounds != faults.rounds


class TestValidation:
    def test_rejects_tiny_networks(self):
        with pytest.raises(ValueError, match="n >= 3"):
            ScheduleFuzzer(2, 0)

    def test_rejects_unknown_profile(self):
        with pytest.raises(ValueError, match="profile"):
            ScheduleFuzzer(8, 0, profile="chaos")

    def test_rejects_bad_intensity(self):
        with pytest.raises(ValueError, match="max_events_per_round"):
            ScheduleFuzzer(8, 0, max_events_per_round=0)


class TestRegistryWiring:
    def test_fuzz_adversary_is_registered_and_deterministic(self):
        a = build_adversary("fuzz", n=8, rounds=20, seed=9, params={})
        b = build_adversary("fuzz", n=8, rounds=20, seed=9, params={})
        assert isinstance(a, TraceReplayAdversary)
        assert a.trace.rounds == b.trace.rounds
        assert a.trace.num_rounds == 20

    def test_fuzz_params_reach_the_generator(self):
        a = build_adversary("fuzz", n=8, rounds=20, seed=9, params={"profile": "churn"})
        b = build_adversary("fuzz", n=8, rounds=20, seed=9, params={"profile": "gadgets"})
        assert a.trace.rounds != b.trace.rounds

    def test_unknown_fuzz_params_rejected(self):
        with pytest.raises(ValueError, match="unexpected fuzz params"):
            build_adversary("fuzz", n=8, rounds=5, seed=0, params={"wat": 1})

    def test_fuzz_spec_round_trips(self):
        spec = ExperimentSpec(
            algorithm="triangle", adversary="fuzz", n=8, rounds=15, seed=4,
            adversary_params={"profile": "mixed"},
        )
        assert ExperimentSpec.from_dict(spec.to_dict()).cell_id == spec.cell_id

    def test_fuzz_axis_expands_in_campaigns(self):
        campaign = CampaignSpec(
            name="fuzz-sweep",
            base={"algorithm": "triangle", "adversary": "fuzz", "n": 8, "rounds": 15},
            grid={"adversary_params.profile": ["mixed", "churn"]},
            seeds=[0, 1, 2],
        )
        cells = campaign.expand()
        assert len(cells) == 6
        assert len({cell.cell_id for cell in cells}) == 6

    def test_fuzz_cell_runs_clean_through_the_differential_harness(self):
        from repro.verification import run_differential

        spec = ExperimentSpec(algorithm="triangle", adversary="fuzz", n=7, rounds=12, seed=2)
        report = run_differential(spec, modes=("dense", "sparse"), auto_checks=True)
        assert report.ok, report.describe()
        assert report.executed_checks  # the checks registry actually ran
