"""Unit tests of the cross-engine differential verification harness."""

from __future__ import annotations

import json

import pytest

from repro.experiments import CampaignSpec, ExperimentSpec
from repro.simulator import state_fingerprint
from repro.verification import (
    CHECKS,
    normalize_cell,
    run_differential,
    run_reference,
    verify_campaign,
)
from repro.verification.differential import _compare, _run_mode

CHURN_CELL = dict(
    algorithm="triangle",
    adversary="churn",
    n=10,
    rounds=25,
    adversary_params={"inserts_per_round": 3, "deletes_per_round": 2},
)


class TestStateFingerprint:
    def test_identical_runs_have_identical_fingerprints(self):
        spec = ExperimentSpec(**CHURN_CELL)
        a, _ = run_reference(spec)
        b, _ = run_reference(spec)
        for v in a.nodes:
            assert a.nodes[v].state_fingerprint() == b.nodes[v].state_fingerprint()

    def test_fingerprint_sees_state_mutations(self):
        spec = ExperimentSpec(**CHURN_CELL)
        result, _ = run_reference(spec)
        node = result.nodes[0]
        before = node.state_fingerprint()
        node.consistent = not node.consistent
        assert node.state_fingerprint() != before

    def test_fingerprint_ignores_set_iteration_order(self):
        class Bag:
            def __init__(self, items):
                self.items = set(items)

        assert state_fingerprint(Bag([1, 2, 3])) == state_fingerprint(Bag([3, 1, 2]))

    def test_sharded_fingerprints_match_serial(self):
        spec = ExperimentSpec(**CHURN_CELL, num_workers=2)
        serial, _ = run_reference(spec)
        run, _ = _run_mode(spec, "sharded", ())
        assert run.fingerprints == {
            v: algo.state_fingerprint() for v, algo in serial.nodes.items()
        }


class TestRunDifferential:
    def test_ok_across_all_modes(self):
        spec = ExperimentSpec(**CHURN_CELL, num_workers=2)
        report = run_differential(spec, auto_checks=True)
        assert report.ok
        assert report.modes == ("dense", "sparse", "sharded", "columnar")
        assert "triangle_oracle" in report.executed_checks
        assert set(report.summaries) == {"dense", "sparse", "sharded", "columnar"}
        # The report serializes cleanly for --report files.
        json.dumps(report.to_dict())

    def test_needs_two_modes(self):
        spec = ExperimentSpec(**CHURN_CELL)
        with pytest.raises(ValueError, match="at least two modes"):
            run_differential(spec, modes=("sparse",))

    def test_divergences_are_structured(self):
        # Two different seeds produce genuinely different runs; comparing them
        # through the harness's comparator must localize the difference.
        spec_a = ExperimentSpec(**CHURN_CELL)
        spec_b = ExperimentSpec(**{**CHURN_CELL, "seed": 1})
        run_a, _ = _run_mode(spec_a, "sparse", ())
        run_b, _ = _run_mode(spec_b, "sparse", ())
        divergences = _compare(run_a, run_b)
        assert divergences
        kinds = {d.kind for d in divergences}
        assert "round_record" in kinds or "trace" in kinds
        first = divergences[0]
        assert first.describe()
        record_divs = [d for d in divergences if d.kind == "round_record"]
        if record_divs:
            assert record_divs[0].round_index is not None

    def test_check_failures_fold_into_report(self):
        # A naive-forwarding cell under the flicker schedule: the flicker_ghost
        # check runs (metrics land in the report) without failing, while the
        # engines still agree bit-for-bit.
        spec = ExperimentSpec(
            algorithm="naive",
            adversary="flicker",
            n=9,
            strict_bandwidth=False,
        )
        report = run_differential(spec, modes=("dense", "sparse"), auto_checks=True)
        assert "flicker_ghost" in report.executed_checks
        assert report.check_outcomes["flicker_ghost"].metrics["believes_deleted_edge"] == 1.0
        assert report.ok, report.describe()


class TestVerifyCampaign:
    def test_normalize_cell_strips_engine_axes(self):
        base = ExperimentSpec.from_dict({**CHURN_CELL, "engine_mode": "dense"})
        normalized = normalize_cell(base)
        assert normalized.engine_mode == "sparse"
        assert normalized.record_trace is True
        assert normalized.checks == ()
        assert normalize_cell(ExperimentSpec.from_dict(CHURN_CELL)).cell_id == normalized.cell_id

    def test_engine_axis_cells_verify_once(self):
        campaign = CampaignSpec(
            name="dedupe",
            base=dict(CHURN_CELL),
            grid={"engine_mode": ["dense", "sparse"]},
        )
        summary = verify_campaign(
            campaign, modes=("dense", "sparse"), include_coverage=False
        )
        assert len(summary.cells) == 1
        assert summary.ok

    def test_coverage_cells_execute_whole_registry(self):
        campaign = CampaignSpec(name="one-cell", base=dict(CHURN_CELL), grid={})
        summary = verify_campaign(campaign, modes=("dense", "sparse"))
        assert summary.ok
        assert summary.executed_checks == sorted(CHECKS)
        assert summary.skipped_checks == []
        assert any(cell.coverage for cell in summary.cells)
        # No cell (grid or coverage) is ever verified twice.
        ids = [cell.spec.cell_id for cell in summary.cells]
        assert len(ids) == len(set(ids))

    def test_ablation_cells_are_not_graded_by_oracle_equality(self):
        # The hint-free ablation legitimately misses triangles; auto checks
        # must grade it with triangle_recall, never triangle_oracle.
        spec = ExperimentSpec.from_dict({**CHURN_CELL, "algorithm": "triangle_nohints"})
        report = run_differential(spec, modes=("dense", "sparse"), auto_checks=True)
        assert report.ok, report.describe()
        assert "triangle_recall" in report.executed_checks
        assert "triangle_oracle" not in report.executed_checks

    def test_legacy_function_checks_keep_working(self):
        from repro.verification import register_check

        name = "legacy_fixture_check"
        register_check(name, lambda result: {"legacy_metric": 1.0})
        try:
            # No drain constraint: the plain-callable registry never had one.
            spec = ExperimentSpec.from_dict(
                {**CHURN_CELL, "drain": False, "checks": [name]}
            )
            result, outcomes = run_reference(spec, checks=[name])
            assert outcomes[name].metrics == {"legacy_metric": 1.0}
            assert outcomes[name].ok
        finally:
            del CHECKS[name]

    def test_without_coverage_checks_are_reported_skipped(self):
        campaign = CampaignSpec(name="one-cell", base=dict(CHURN_CELL), grid={})
        summary = verify_campaign(
            campaign, modes=("dense", "sparse"), include_coverage=False
        )
        assert summary.ok
        assert "robust2hop_oracle" in summary.skipped_checks
