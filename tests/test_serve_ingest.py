"""Tests for the serving ingestion layer (event sources + log conversion)."""

import json

import pytest

from repro.serve import (
    AdversaryEventSource,
    LogConversionError,
    LogConverter,
    LogEventSource,
    MonitorService,
    TraceEventSource,
)
from repro.serve.core import ServingMonitor
from repro.simulator import RoundChanges
from repro.simulator.events import EdgeDelete, EdgeInsert
from repro.simulator.trace import TopologyTrace


def _line(ts, u, v, op):
    return json.dumps({"ts": ts, "u": u, "v": v, "op": op})


class TestRoundChangesCoalesce:
    def test_last_event_per_edge_wins(self):
        batch = RoundChanges.coalesce(
            [EdgeInsert(0, 1), EdgeInsert(1, 2), EdgeDelete(1, 0), EdgeInsert(0, 1)]
        )
        assert batch.insertions == [(1, 2), (0, 1)]
        assert batch.deletions == []

    def test_empty(self):
        assert len(RoundChanges.coalesce([])) == 0


class TestTraceFromBatches:
    def test_builds_and_validates(self):
        trace = TopologyTrace.from_batches(
            4, [RoundChanges.inserts([(0, 1)]), RoundChanges.empty()]
        )
        assert trace.num_rounds == 2
        assert trace.changes_for(0).insertions == [(0, 1)]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="node 9"):
            TopologyTrace.from_batches(4, [RoundChanges.inserts([(0, 9)])])


class TestLogConverter:
    def test_timestamp_bucketing_and_gaps(self):
        converted = LogConverter(8).convert_lines(
            [
                _line(0.0, 0, 1, "up"),
                _line(0.9, 1, 2, "up"),   # same bucket as ts 0.0
                _line(3.2, 0, 1, "down"),  # bucket 3 -> two quiet rounds between
            ]
        )
        trace = converted.trace
        assert trace.num_rounds == 4
        assert trace.changes_for(0).insertions == [(0, 1), (1, 2)]
        assert len(trace.changes_for(1)) == 0 and len(trace.changes_for(2)) == 0
        assert trace.changes_for(3).deletions == [(0, 1)]
        assert converted.stats["quiet_rounds"] == 2

    def test_explicit_round_field_takes_precedence(self):
        converted = LogConverter(8).convert_lines(
            [
                json.dumps({"round": 2, "u": 0, "v": 1, "op": "up"}),
                json.dumps({"round": 0, "u": 1, "v": 2, "op": "up"}),
            ]
        )
        assert converted.trace.changes_for(0).insertions == [(1, 2)]
        assert converted.trace.changes_for(2).insertions == [(0, 1)]

    def test_coalescing_within_a_round(self):
        converted = LogConverter(8).convert_lines(
            [
                _line(0.0, 0, 1, "up"),
                _line(0.4, 0, 1, "down"),
                _line(0.8, 0, 1, "up"),
            ]
        )
        # Last event of the window wins: a single insert survives.
        assert converted.trace.changes_for(0).insertions == [(0, 1)]
        assert converted.stats["coalesced_dropped"] == 2

    def test_noop_transitions_dropped(self):
        converted = LogConverter(8).convert_lines(
            [
                _line(0.0, 0, 1, "up"),
                _line(1.0, 0, 1, "up"),     # already up
                _line(2.0, 2, 3, "down"),   # never existed
            ]
        )
        assert converted.stats["noop_dropped"] == 2
        assert converted.stats["events_emitted"] == 1

    def test_max_quiet_gap_clamps(self):
        converted = LogConverter(8, max_quiet_gap=1).convert_lines(
            [_line(0.0, 0, 1, "up"), _line(100.0, 1, 2, "up")]
        )
        assert converted.trace.num_rounds == 3  # bucket, one clamped gap, bucket
        assert converted.stats["quiet_rounds"] == 1

    def test_op_aliases(self):
        converted = LogConverter(8).convert_lines(
            [_line(0.0, 0, 1, "insert"), _line(1.0, 0, 1, "delete")]
        )
        assert converted.stats["events_emitted"] == 2

    @pytest.mark.parametrize(
        "line, message",
        [
            ("not json", "invalid JSON"),
            ("[1, 2]", "JSON object"),
            (json.dumps({"ts": 0, "u": 0, "v": 1, "op": "flap"}), "'op'"),
            (json.dumps({"ts": 0, "u": 0, "op": "up"}), "endpoint"),
            (json.dumps({"ts": 0, "u": 0, "v": "x", "op": "up"}), "integers"),
            (json.dumps({"ts": 0, "u": 0, "v": True, "op": "up"}), "integers"),
            (json.dumps({"ts": 0, "u": 3, "v": 3, "op": "up"}), "self loops"),
            (json.dumps({"ts": 0, "u": 0, "v": 99, "op": "up"}), "out of range"),
            (json.dumps({"u": 0, "v": 1, "op": "up"}), "'ts'"),
            (json.dumps({"round": -1, "u": 0, "v": 1, "op": "up"}), "'round'"),
        ],
    )
    def test_bad_records_name_the_line(self, line, message):
        with pytest.raises(LogConversionError, match="line 2") as exc:
            LogConverter(8).convert_lines([_line(0.0, 0, 1, "up"), line])
        assert message in str(exc.value)

    def test_timestamp_before_origin_rejected(self):
        with pytest.raises(LogConversionError, match="precedes the origin"):
            LogConverter(8).convert_lines([_line(5.0, 0, 1, "up"), _line(1.0, 1, 2, "up")])

    def test_explicit_origin_allows_early_round_zero(self):
        converted = LogConverter(8, origin_ts=0.0).convert_lines(
            [_line(5.0, 0, 1, "up"), _line(1.0, 1, 2, "up")]
        )
        assert converted.trace.changes_for(1).insertions == [(1, 2)]
        assert converted.trace.changes_for(5).insertions == [(0, 1)]

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            LogConverter(0)
        with pytest.raises(ValueError):
            LogConverter(4, round_duration=0)
        with pytest.raises(ValueError):
            LogConverter(4, max_quiet_gap=-1)


class TestEventSources:
    def test_trace_source_replays_and_exhausts(self):
        trace = TopologyTrace.from_batches(
            4, [RoundChanges.inserts([(0, 1)]), RoundChanges.deletes([(0, 1)])]
        )
        source = TraceEventSource(trace)
        monitor = ServingMonitor(4, "robust2hop")
        assert not source.is_done
        assert source.next_batch(monitor).insertions == [(0, 1)]
        assert source.next_batch(monitor).deletions == [(0, 1)]
        assert source.next_batch(monitor) is None
        assert source.is_done

    def test_trace_source_load(self, tmp_path):
        trace = TopologyTrace.from_batches(4, [RoundChanges.inserts([(0, 1)])])
        path = tmp_path / "trace.json"
        trace.save(path)
        source = TraceEventSource.load(path)
        assert source.trace.num_rounds == 1

    def test_adversary_source_respects_rounds_cap(self):
        from repro import RandomChurnAdversary

        source = AdversaryEventSource(
            RandomChurnAdversary(8, num_rounds=100, seed=1), rounds=5
        )
        monitor = ServingMonitor(8, "robust2hop")
        batches = 0
        while (changes := source.next_batch(monitor)) is not None:
            monitor.ingest(changes)
            batches += 1
        assert batches == 5
        assert source.is_done

    def test_log_event_source_exposes_stats(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text("\n".join([_line(0.0, 0, 1, "up"), _line(1.0, 1, 2, "up")]) + "\n")
        source = LogEventSource(path, n=8)
        assert source.stats["records_read"] == 2
        assert source.trace.num_rounds == 2


class TestLogRoundTrip:
    """JSONL log -> trace -> replay must equal direct ingestion."""

    LINES = [
        _line(0.0, 0, 1, "up"),
        _line(0.3, 1, 2, "up"),
        _line(0.8, 0, 2, "up"),
        _line(2.5, 0, 2, "down"),
        _line(2.9, 0, 2, "up"),  # same bucket: coalesces to "up", then no-op'd away
        _line(5.0, 1, 3, "up"),
    ]

    def _run(self, source_factory):
        service = MonitorService(6, "triangle")
        service.subscribe("triangle", members=[0, 1, 2], subscription_id="tri")
        report = service.run(source_factory(), settle_rounds=8)
        return report.comparable_dict()

    def test_replaying_converted_trace_matches_log_ingestion(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text("\n".join(self.LINES) + "\n")
        converted = LogConverter(6).convert_file(path)
        direct = self._run(lambda: LogEventSource(path, n=6))
        replayed = self._run(lambda: TraceEventSource(converted.trace))
        assert direct == replayed
        assert direct["fired"] > 0
