"""Tests for the serving loop: MonitorService, ServingReport, CLI serve."""

import json

import pytest

from repro import RoundChanges
from repro.cli import main
from repro.serve import (
    AdversaryEventSource,
    LogEventSource,
    MonitorService,
    TraceEventSource,
)
from repro.simulator.trace import TopologyTrace


def flicker_source(n):
    from repro import FlickerTriangleAdversary

    return AdversaryEventSource(FlickerTriangleAdversary(n=n), rounds=60)


def churn_source(n, rounds=50):
    from repro import RandomChurnAdversary

    return AdversaryEventSource(
        RandomChurnAdversary(n, num_rounds=rounds, seed=7), rounds=rounds
    )


class TestServingReport:
    def test_report_shape_and_throughput(self):
        service = MonitorService(16, "triangle")
        service.subscribe("triangle", members=[0, 1, 2])
        report = service.run(churn_source(16, rounds=20), settle_rounds=5)
        assert report.batches == 25
        assert report.subscriptions == 1
        assert report.evaluated > 0
        assert report.duration_s > 0
        assert report.queries_per_s == report.evaluated / report.duration_s
        data = report.to_dict()
        assert data["engine_mode"] == "sparse"
        assert data["state_fingerprint"]
        json.dumps(data)  # JSON-ready, including the firing log

    def test_comparable_dict_excludes_wall_clock(self):
        service = MonitorService(8, "triangle")
        report = service.run(churn_source(8, rounds=5))
        comparable = report.comparable_dict()
        assert "duration_s" not in comparable
        assert "queries_per_s" not in comparable
        assert "engine_mode" not in comparable

    def test_max_batches_caps_open_ended_sources(self):
        service = MonitorService(8, "triangle")
        report = service.run(churn_source(8, rounds=50), max_batches=10)
        assert report.batches == 10

    def test_on_notification_callback_order(self):
        service = MonitorService(12, "triangle")
        service.subscribe("triangle", members=[0, 1, 2])
        seen = []
        report = service.run(
            flicker_source(12), settle_rounds=8, on_notification=seen.append
        )
        assert [note.to_dict() for note in seen] == report.firings
        assert report.fired == len(seen) > 0


class TestCrossEngineIdentity:
    """The serving differential gate: identical firings on every engine."""

    @pytest.mark.parametrize("source_factory", [flicker_source, churn_source])
    def test_firings_bit_identical_across_engines(self, source_factory):
        def run(mode):
            service = MonitorService(20, "triangle", engine_mode=mode)
            service.subscribe("triangle", members=[0, 1, 2], subscription_id="a")
            service.subscribe("triangle", members=[3, 4, 5], subscription_id="b")
            service.subscribe("triangle", members=[10, 11, 12], subscription_id="far")
            return service.run(source_factory(20), settle_rounds=8).comparable_dict()

        reference = run("dense")
        assert reference["fired"] > 0
        for mode in ("sparse", "columnar"):
            assert run(mode) == reference

    def test_edge_subscriptions_identical_across_engines(self):
        def run(mode):
            service = MonitorService(16, "robust2hop", engine_mode=mode)
            for i in range(8):
                service.subscribe("edge", node=i, u=i, w=(i + 1) % 16)
            return service.run(churn_source(16, rounds=30), settle_rounds=8).comparable_dict()

        reference = run("dense")
        assert run("sparse") == reference
        assert run("columnar") == reference


class TestServiceOracleWiring:
    def test_oracle_tracks_served_rounds(self):
        service = MonitorService(8, "triangle")
        service.ingest(RoundChanges.inserts([(0, 1)]))
        service.tick()
        assert service.oracle.latest_round == service.monitor.round_index == 2
        assert service.oracle.snapshot().edges == frozenset({(0, 1)})

    def test_quiet_round_has_empty_ball(self):
        service = MonitorService(8, "triangle")
        service.ingest(RoundChanges.inserts([(0, 1)]))
        service.tick()
        assert service.oracle.last_changed_ball(3) == set()


class TestServeCLI:
    def _write_inputs(self, tmp_path):
        log = tmp_path / "events.jsonl"
        log.write_text(
            "\n".join(
                json.dumps(record)
                for record in [
                    {"ts": 0.0, "u": 0, "v": 1, "op": "up"},
                    {"ts": 0.5, "u": 1, "v": 2, "op": "up"},
                    {"ts": 1.0, "u": 0, "v": 2, "op": "up"},
                ]
            )
            + "\n"
        )
        subs = tmp_path / "subs.json"
        subs.write_text(json.dumps([{"id": "tri", "kind": "triangle", "members": [0, 1, 2]}]))
        return log, subs

    def test_serve_log_source(self, tmp_path, capsys):
        log, subs = self._write_inputs(tmp_path)
        report_path = tmp_path / "report.json"
        code = main(
            [
                "serve",
                "--source", "log",
                "--log", str(log),
                "--nodes", "8",
                "--structure", "triangle",
                "--subscriptions", str(subs),
                "--report", str(report_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "log normalized:" in out
        assert "tri (triangle)" in out
        report = json.loads(report_path.read_text())
        assert report["subscriptions"] == 1
        assert report["fired"] >= 1
        assert report["firings"][-1]["new"] == [True, True]

    def test_serve_adversary_source(self, capsys):
        code = main(
            [
                "serve",
                "--source", "adversary",
                "--adversary", "churn",
                "--nodes", "10",
                "--rounds", "20",
            ]
        )
        assert code == 0
        assert "state_fingerprint" in capsys.readouterr().out

    def test_serve_trace_source(self, tmp_path, capsys):
        trace = TopologyTrace.from_batches(
            8, [RoundChanges.inserts([(0, 1)]), RoundChanges.empty()]
        )
        path = tmp_path / "trace.json"
        trace.save(path)
        code = main(["serve", "--source", "trace", "--trace", str(path), "--nodes", "8"])
        assert code == 0

    def test_serve_usage_errors(self, tmp_path, capsys):
        assert main(["serve", "--source", "trace", "--nodes", "8"]) == 2
        assert main(["serve", "--source", "log", "--nodes", "8"]) == 2
        bad_log = tmp_path / "bad.jsonl"
        bad_log.write_text('{"ts": 0, "u": 0, "v": 99, "op": "up"}\n')
        assert main(["serve", "--source", "log", "--log", str(bad_log), "--nodes", "8"]) == 2
        err = capsys.readouterr().err
        assert "out of range" in err

    def test_serve_rejects_sharded_engine(self):
        with pytest.raises(SystemExit):
            main(["serve", "--engine", "sharded", "--nodes", "8"])

    def test_serve_telemetry_out(self, tmp_path, capsys):
        log, subs = self._write_inputs(tmp_path)
        telemetry_path = tmp_path / "telemetry.jsonl"
        code = main(
            [
                "serve",
                "--source", "log",
                "--log", str(log),
                "--nodes", "8",
                "--subscriptions", str(subs),
                "--telemetry-out", str(telemetry_path),
            ]
        )
        assert code == 0
        snapshots = [json.loads(line) for line in telemetry_path.read_text().splitlines()]
        final = snapshots[-1]
        assert final["final"] is True
        assert "serve.ingest" in final["spans"]
        assert "serve.answer_latency_s" in final["histograms"]
        assert final["counters"]["serve.batches"] > 0
        # The log normalizer's ingest stats surface as serve.ingest.* counters.
        assert final["counters"]["serve.ingest.records_read"] == 3
        assert final["counters"]["serve.ingest.events_emitted"] > 0
        assert "serve.ingest.coalesced_dropped" in final["counters"]
        assert "serve.ingest.clamped_gap_rounds" in final["counters"]

    def test_serve_trace_out(self, tmp_path, capsys):
        from repro.obs.tracing import read_trace_jsonl

        log, subs = self._write_inputs(tmp_path)
        trace_path = tmp_path / "serve.trace.jsonl"
        code = main(
            [
                "serve",
                "--source", "log",
                "--log", str(log),
                "--nodes", "8",
                "--subscriptions", str(subs),
                "--settle-rounds", "4",
                "--trace-out", str(trace_path),
            ]
        )
        assert code == 0
        events = read_trace_jsonl(trace_path)
        names = {event["name"] for event in events}
        assert "engine.round" in names
        assert "serve.evaluate" in names
        # Trace-out alone enables telemetry, but no snapshot sink is written.
        assert not (tmp_path / "telemetry.jsonl").exists()
        from repro.obs import TELEMETRY

        assert not TELEMETRY.enabled and TELEMETRY.tracer is None
