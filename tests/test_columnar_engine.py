"""Tests for the columnar (vectorized) round engine and its substrate.

The contract under test mirrors the sparse engine's: for every registered
algorithm -- ported through :class:`ColumnarProtocol` or running on the
per-node fallback -- the columnar engine's RoundRecord stream, trace,
bandwidth accounting, fault statistics and final node state are bit-identical
to the dense and sparse engines, with and without fault models and with
telemetry on and off.  The adjacency mirror and send buffer underneath are
covered directly.
"""

from __future__ import annotations

import random

import pytest

from repro.adversary import FlickerTriangleAdversary
from repro.core import RobustTwoHopNode, TriangleMembershipNode
from repro.experiments import ALGORITHMS, ExperimentSpec, build_adversary
from repro.obs import TELEMETRY
from repro.simulator import (
    AdjacencyMirror,
    ColumnarRoundEngine,
    DynamicNetwork,
    RoundChanges,
    SendBuffer,
    SimulationRunner,
    create_engine,
)
from repro.simulator.columnar import _columnar_port
from repro.simulator.node import NodeAlgorithm
from repro.verification import run_differential


def _fingerprint(result):
    """Everything that must match between engines, as plain data."""
    state = {}
    for v, node in result.nodes.items():
        entry = {"consistent": node.is_consistent(), "size": node.local_state_size()}
        if hasattr(node, "known_edges"):
            entry["known"] = node.known_edges()
        state[v] = entry
    return {
        "rounds": result.metrics.rounds,
        "summary": result.summary(),
        "per_node": result.metrics.per_node_inconsistent_rounds,
        "trace": result.trace.to_dict() if result.trace else None,
        "edges": result.network.edges,
        "bandwidth": (
            result.bandwidth.total_envelopes,
            result.bandwidth.total_bits,
            result.bandwidth.max_observed_bits,
            result.bandwidth.violations,
        ),
        "state": state,
    }


def _run(algorithm, adversary_name, n, rounds, seed, params, mode, **runner_kwargs):
    adversary = build_adversary(
        adversary_name, n=n, rounds=rounds, seed=seed, params=params
    )
    runner = SimulationRunner(
        n=n,
        algorithm_factory=ALGORITHMS[algorithm],
        adversary=adversary,
        strict_bandwidth=algorithm != "broadcast",
        record_trace=True,
        engine_mode=mode,
        **runner_kwargs,
    )
    return runner.run(num_rounds=rounds)


CHURN = {"inserts_per_round": 2, "deletes_per_round": 2}


class TestColumnarIdentity:
    """Columnar vs dense vs sparse on ported and fallback algorithms."""

    @pytest.mark.parametrize(
        "algorithm",
        # triangle/clique/robust2hop take the batched path; the rest exercise
        # the per-node fallback inside the same engine.
        ["triangle", "clique", "robust2hop", "robust3hop", "twohop", "naive", "cycles"],
    )
    def test_random_churn_identical(self, algorithm):
        runs = {
            mode: _fingerprint(_run(algorithm, "churn", 24, 80, 11, dict(CHURN), mode))
            for mode in ("dense", "sparse", "columnar")
        }
        assert runs["dense"] == runs["columnar"], algorithm
        assert runs["sparse"] == runs["columnar"], algorithm

    def test_flicker_schedule_identical(self):
        for algorithm in ("naive", "triangle", "robust2hop"):
            results = {}
            for mode in ("dense", "columnar"):
                runner = SimulationRunner(
                    n=16,
                    algorithm_factory=ALGORITHMS[algorithm],
                    adversary=FlickerTriangleAdversary(),
                    record_trace=True,
                    engine_mode=mode,
                )
                results[mode] = _fingerprint(runner.run())
            assert results["dense"] == results["columnar"], algorithm

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_randomized_schedules_property(self, seed):
        rng = random.Random(seed)
        n = rng.choice([12, 20, 33])
        rounds = rng.choice([40, 70])
        adversary_name = rng.choice(["churn", "p2p", "growing"])
        params = (
            {
                "inserts_per_round": rng.randint(1, 4),
                "deletes_per_round": rng.randint(0, 3),
            }
            if adversary_name == "churn"
            else {}
        )
        algorithm = rng.choice(["triangle", "robust2hop", "clique"])
        dense = _fingerprint(
            _run(algorithm, adversary_name, n, rounds, seed, dict(params), "dense")
        )
        columnar = _fingerprint(
            _run(algorithm, adversary_name, n, rounds, seed, dict(params), "columnar")
        )
        assert dense == columnar

    def test_differential_harness_all_four_modes(self):
        spec = ExperimentSpec(
            algorithm="triangle",
            adversary="churn",
            n=12,
            rounds=30,
            seed=5,
            adversary_params=dict(CHURN),
        )
        report = run_differential(
            spec, modes=("dense", "sparse", "sharded", "columnar"), auto_checks=True
        )
        assert report.ok, report.describe()


class TestColumnarFaultIdentity:
    """Fault statistics and drop realizations match the per-envelope engines."""

    @pytest.mark.parametrize(
        "faults,fault_params",
        [
            ("uniform_loss", {"p": 0.3}),
            ("crash", {"crash_p": 0.5, "cycle": 6, "downtime": 2}),
            ("partition", {"period": 6, "split": 2}),
            ("burst_loss", {}),
            ("regional", {}),
        ],
    )
    @pytest.mark.parametrize("algorithm", ["triangle", "robust2hop"])
    def test_fault_models_identical(self, algorithm, faults, fault_params):
        spec = ExperimentSpec(
            algorithm=algorithm,
            adversary="churn",
            n=12,
            rounds=30,
            seed=7,
            adversary_params=dict(CHURN),
            faults=faults,
            fault_params=fault_params,
        )
        report = run_differential(spec, modes=("dense", "sparse", "columnar"))
        assert report.ok, report.describe()


class TestColumnarTelemetry:
    """Telemetry must not perturb results, and spans must stay faithful."""

    def _run_with_telemetry(self, mode):
        TELEMETRY.enable()
        try:
            result = _run("triangle", "churn", 16, 40, 3, dict(CHURN), mode)
            fp = _fingerprint(result)
        finally:
            TELEMETRY.disable()
        return fp

    def test_telemetry_does_not_perturb(self):
        plain = _fingerprint(_run("triangle", "churn", 16, 40, 3, dict(CHURN), "columnar"))
        instrumented = self._run_with_telemetry("columnar")
        assert instrumented == plain
        assert not TELEMETRY.enabled

    def test_telemetry_identical_across_engines(self):
        assert self._run_with_telemetry("dense") == self._run_with_telemetry("columnar")


class TestColumnarFallbackDetection:
    def test_unported_subclass_falls_back(self):
        """Overriding on_messages below the port owner disables the batched path."""

        class ShadowTriangle(TriangleMembershipNode):
            def on_messages(self, round_index, inbox):
                super().on_messages(round_index, inbox)

        assert _columnar_port(TriangleMembershipNode)
        assert _columnar_port(RobustTwoHopNode)
        assert not _columnar_port(ShadowTriangle)
        assert not _columnar_port(NodeAlgorithm)

        network = DynamicNetwork(6)
        nodes = {v: ShadowTriangle(v, 6) for v in range(6)}
        engine = ColumnarRoundEngine(network, nodes)
        assert engine._port_cls is None

    def test_unported_compose_override_falls_back(self):
        class ShadowCompose(TriangleMembershipNode):
            def compose_messages(self, round_index):
                return super().compose_messages(round_index)

        assert not _columnar_port(ShadowCompose)

    def test_heterogeneous_population_falls_back(self):
        network = DynamicNetwork(6)
        nodes = {
            v: (TriangleMembershipNode if v % 2 else RobustTwoHopNode)(v, 6)
            for v in range(6)
        }
        engine = ColumnarRoundEngine(network, nodes)
        assert engine._port_cls is None

    def test_ported_population_detected(self):
        network = DynamicNetwork(6)
        nodes = {v: TriangleMembershipNode(v, 6) for v in range(6)}
        engine = create_engine("columnar", network, nodes)
        assert isinstance(engine, ColumnarRoundEngine)
        assert engine._port_cls is TriangleMembershipNode


class TestEngineConstructionValidation:
    """Satellite 3: O(1)-ish validation that still names the offending ids."""

    def test_missing_node_named(self):
        network = DynamicNetwork(5)
        nodes = {v: TriangleMembershipNode(v, 5) for v in range(4)}
        with pytest.raises(ValueError, match=r"missing ids \[4\]"):
            ColumnarRoundEngine(network, nodes)

    def test_unexpected_node_named(self):
        network = DynamicNetwork(4)
        nodes = {v: TriangleMembershipNode(v, 4) for v in range(4)}
        nodes[9] = TriangleMembershipNode(3, 4)
        with pytest.raises(ValueError, match=r"unexpected ids \[9\]"):
            create_engine("dense", network, nodes)

    def test_negative_id_named(self):
        network = DynamicNetwork(4)
        nodes = {v: TriangleMembershipNode(v, 4) for v in range(4)}
        nodes[-1] = nodes.pop(3)
        with pytest.raises(ValueError, match=r"unexpected ids \[-1\]"):
            create_engine("sparse", network, nodes)


class TestSpecRejectsShardedColumnar:
    def test_sharded_engine_columnar_mode_rejected(self):
        with pytest.raises(ValueError, match="columnar.*requires engine='serial'"):
            ExperimentSpec(
                algorithm="triangle",
                adversary="churn",
                n=8,
                engine="sharded",
                engine_mode="columnar",
            )


class TestAdjacencyMirror:
    def _apply(self, network, round_index, inserts=(), deletes=()):
        changes = RoundChanges.of(insert=inserts, delete=deletes)
        network.apply_changes(round_index, changes)

    def test_incremental_sync_tracks_network(self):
        rng = random.Random(42)
        n = 20
        network = DynamicNetwork(n)
        mirror = AdjacencyMirror(network)
        present = set()
        for r in range(1, 60):
            inserts, deletes = [], []
            for _ in range(rng.randint(0, 4)):
                u, v = sorted(rng.sample(range(n), 2))
                if (u, v) in present:
                    deletes.append((u, v))
                    present.discard((u, v))
                else:
                    inserts.append((u, v))
                    present.add((u, v))
            self._apply(network, r, inserts, deletes)
            mirror.sync()
            for u in range(n):
                for v in range(u + 1, n):
                    assert mirror.has_edge(u, v) == network.has_edge(u, v)
            assert all(
                mirror.degree(v) == len(network.neighbors(v)) for v in range(n)
            )

    def test_rebuild_after_missed_rounds(self):
        """A mirror that skipped rounds falls back to a full rebuild."""
        n = 10
        network = DynamicNetwork(n)
        mirror = AdjacencyMirror(network)
        self._apply(network, 1, inserts=[(0, 1), (2, 3)])
        self._apply(network, 2, inserts=[(4, 5)], deletes=[(0, 1)])
        mirror.sync()  # two batches behind -> rebuild path
        assert mirror.has_edge(4, 5) and mirror.has_edge(2, 3)
        assert not mirror.has_edge(0, 1)

    def test_pairs_all_exist_both_paths(self):
        n = 50
        network = DynamicNetwork(n)
        edges = [(u, u + 1) for u in range(0, n - 1)]
        self._apply(network, 1, inserts=edges)
        mirror = AdjacencyMirror(network)
        mirror.sync()
        senders = [u for u, _ in edges]
        targets = [v for _, v in edges]
        # Large batch takes the vectorized bitset path (>= VECTOR_MIN_ROWS).
        assert mirror.pairs_all_exist(senders, targets)
        assert not mirror.pairs_all_exist(senders + [0], targets + [49])
        # Small batch takes the packed-key sweep.
        assert mirror.pairs_all_exist(senders[:3], targets[:3])
        assert not mirror.pairs_all_exist([0], [49])


class TestSendBuffer:
    def test_row_size_bits(self):
        buf = SendBuffer()
        buf.senders += [0, 1, 2]
        buf.targets += [1, 2, 0]
        buf.edges += [(0, 1), None, (1, 2)]
        buf.ops += [None, None, None]
        buf.patterns += [None, None, None]
        buf.empty_flags += [True, False, False]
        payload_bits = 10
        assert buf.row_size_bits(0, payload_bits) == 10  # payload, empty
        assert buf.row_size_bits(1, payload_bits) == 1  # no payload, flag
        assert buf.row_size_bits(2, payload_bits) == 11  # payload + flag
        assert len(buf) == 3
        buf.clear()
        assert len(buf) == 0 and buf.payload_rows == 0


class TestQuietRoundFastPath:
    def test_drain_rounds_identical_to_sparse(self):
        """Settle-heavy schedule: one burst then many empty rounds."""
        results = {}
        for mode in ("sparse", "columnar"):
            runner = SimulationRunner(
                n=16,
                algorithm_factory=ALGORITHMS["triangle"],
                adversary=build_adversary(
                    "batch", n=16, rounds=60, seed=2, params={}
                ),
                record_trace=True,
                engine_mode=mode,
            )
            results[mode] = _fingerprint(runner.run(num_rounds=60))
        assert results["sparse"] == results["columnar"]


class TestFuzzCorpusAcrossAllModes:
    """Every committed fuzz reproducer passes the four-way differential."""

    def test_corpus_entries_identical_across_modes(self):
        from pathlib import Path

        from repro.fuzz.corpus import CorpusStore

        store = CorpusStore(Path(__file__).parent / "data" / "fuzz_corpus")
        entries = [e for e in store.entries() if e.expect == "pass"]
        assert entries, "committed corpus unexpectedly empty"
        for entry in entries:
            report = run_differential(
                entry.spec(), modes=("dense", "sparse", "sharded", "columnar")
            )
            assert report.ok, (entry.entry_id, report.describe())
