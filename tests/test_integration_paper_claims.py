"""Integration tests: the paper's headline claims as executable checks.

These are slower, cross-module tests that exercise the complexity landscape
described in the paper's abstract:

* the fast structures (triangle/clique membership, 4/5-cycle listing, robust
  neighborhoods) keep their amortized round complexity constant as ``n`` grows;
* the full-2-hop baseline (the only algorithm that can serve non-clique
  membership queries) gets *more* expensive per change as ``n`` grows, in line
  with the Theorem 2 / Corollary 2 lower bound;
* every algorithm respects the ``O(log n)`` bandwidth restriction.
"""

import pytest

from repro.adversary import (
    MembershipLowerBoundAdversary,
    RandomChurnAdversary,
)
from repro.analysis import growth_exponent
from repro.core import (
    CliqueMembershipNode,
    CycleListingNode,
    RobustThreeHopNode,
    RobustTwoHopNode,
    TriangleMembershipNode,
    TwoHopListingNode,
)
from repro.core.membership import PATTERNS

from conftest import run_simulation


def amortized_under_churn(factory, n, *, rounds, seed=0):
    result, _ = run_simulation(
        factory,
        RandomChurnAdversary(
            n, num_rounds=rounds, inserts_per_round=3, deletes_per_round=2, seed=seed
        ),
        n=n,
        with_oracle=False,
    )
    return result


class TestConstantAmortizedComplexityAcrossSizes:
    @pytest.mark.parametrize(
        "factory,bound",
        [
            (RobustTwoHopNode, 1.0),
            (TriangleMembershipNode, 3.0),
            (CliqueMembershipNode, 3.0),
        ],
    )
    def test_amortized_complexity_does_not_grow_with_n(self, factory, bound):
        sizes = [10, 20, 40]
        measured = []
        for n in sizes:
            result = amortized_under_churn(factory, n, rounds=80)
            measured.append(result.amortized_round_complexity)
            assert result.metrics.max_running_amortized_complexity() <= bound + 1e-9
        # Flat (or decreasing) trend: log-log slope well below 0.3.
        assert growth_exponent(sizes, [max(m, 1e-6) for m in measured]) < 0.3

    @pytest.mark.parametrize("factory", [RobustThreeHopNode, CycleListingNode])
    def test_three_hop_structures_stay_constant(self, factory):
        sizes = [10, 18]
        measured = []
        for n in sizes:
            result = amortized_under_churn(factory, n, rounds=60)
            measured.append(result.amortized_round_complexity)
            assert result.metrics.max_running_amortized_complexity() <= 4.0 + 1e-9
        assert growth_exponent(sizes, [max(m, 1e-6) for m in measured]) < 0.3


class TestLowerBoundSeparation:
    def test_two_hop_listing_cost_grows_under_theorem2_adversary(self):
        """Running the Lemma 1 baseline against the Theorem 2 adversary shows
        the growing per-change cost that the lower bound mandates, while the
        triangle structure under the same kind of schedule stays cheap."""
        costs = {}
        for n in (12, 48):
            adversary = MembershipLowerBoundAdversary(
                n, PATTERNS["P3"], num_iterations=min(8, n - 1)
            )
            result, _ = run_simulation(TwoHopListingNode, adversary, n=n, with_oracle=False)
            costs[n] = result.amortized_round_complexity
        assert costs[48] > 1.5 * costs[12]

    def test_triangle_structure_is_cheap_under_the_same_adversary(self):
        adversary = MembershipLowerBoundAdversary(48, PATTERNS["P3"], num_iterations=8)
        result, _ = run_simulation(TriangleMembershipNode, adversary, n=48, with_oracle=False)
        assert result.metrics.max_running_amortized_complexity() <= 3.0 + 1e-9


class TestBandwidthDiscipline:
    @pytest.mark.parametrize(
        "factory",
        [RobustTwoHopNode, TriangleMembershipNode, RobustThreeHopNode, CycleListingNode, TwoHopListingNode],
    )
    def test_all_fast_algorithms_fit_logarithmic_bandwidth(self, factory):
        # strict bandwidth (the default) raises on any violation.
        result = amortized_under_churn(factory, 24, rounds=40, seed=2)
        assert result.bandwidth.num_violations == 0
        assert result.bandwidth.max_observed_bits <= result.bandwidth.budget_bits(24)
