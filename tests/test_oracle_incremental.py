"""The incremental oracle: delta log, keyframes, dirty-region cache, and the
bit-identity property against the from-scratch reference.

The acceptance bar of the incremental :class:`~repro.oracle.GroundTruthOracle`
is that *every* query answer is bit-identical to the reference functions of
:mod:`repro.oracle.robust_sets` / :mod:`repro.oracle.subgraphs` on arbitrary
insert/delete/re-insert interleavings -- including historical queries at
keyframe-boundary rounds and observations that skipped changed rounds (the
full-diff fallback).  The hypothesis tests below generate those
interleavings from the shared :mod:`strategies` schedules.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.oracle import (
    DeltaLog,
    GroundTruthOracle,
    NaiveGroundTruthOracle,
    RoundDelta,
    cliques_containing,
    cycles_of_length,
    khop_edges,
    robust_three_hop,
    robust_two_hop,
    triangle_pattern_set,
    triangles_containing,
)
from repro.simulator import DynamicNetwork, RoundChanges
from repro.simulator.runner import ActiveNodesView

from strategies import churn_schedules

N = 8

HYP_SETTINGS = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def apply_schedule(network, oracles, rounds, observe_mask=None):
    """Drive a network through a schedule, observing after each round.

    Returns ``{round: (edges, times)}`` for every *observed* round.
    """
    observed = {0: (frozenset(), {})}
    for i, (inserts, deletes) in enumerate(rounds):
        r = i + 1
        network.apply_changes(r, RoundChanges.of(insert=inserts, delete=deletes))
        if observe_mask is not None and not observe_mask[i] and r != len(rounds):
            continue
        for oracle in oracles:
            oracle.observe(network)
        observed[r] = (network.edges, dict(network.insertion_times()))
    return observed


class TestDeltaLog:
    def delta(self, r, inserted=(), deleted=()):
        return RoundDelta(r, tuple(inserted), tuple(deleted))

    def test_reconstruct_replays_from_nearest_keyframe(self):
        log = DeltaLog(keyframe_interval=2)
        state_edges, state_times = set(), {}
        expected = {}
        for r in range(1, 8):
            edge = (0, r)
            state_edges.add(edge)
            state_times[edge] = r
            log.append(self.delta(r, inserted=[(edge, r)]), state_edges, state_times)
            expected[r] = (set(state_edges), dict(state_times))
        assert log.num_keyframes == 1 + 7 // 2
        for r in range(8):
            edges, times = log.reconstruct(r)
            if r == 0:
                assert edges == set() and times == {}
            else:
                assert (edges, times) == expected[r]

    def test_unobserved_round_resolves_to_previous(self):
        log = DeltaLog()
        log.append(self.delta(2, inserted=[((0, 1), 2)]), {(0, 1)}, {(0, 1): 2})
        assert log.reconstruct(5) == ({(0, 1)}, {(0, 1): 2})
        assert log.reconstruct(1) == (set(), {})

    def test_negative_round_raises(self):
        with pytest.raises(KeyError):
            DeltaLog().reconstruct(-1)

    def test_rounds_must_increase(self):
        log = DeltaLog()
        log.append(self.delta(3, deleted=[(0, 1)]), set(), {})
        with pytest.raises(ValueError):
            log.append(self.delta(3, deleted=[(1, 2)]), set(), {})

    def test_memory_entries_bounded_by_keyframe_interval(self):
        # A static bulk of edges plus one churned edge per round: the naive
        # oracle would store O(rounds x bulk); the log stores the bulk once
        # per keyframe plus one delta event per round.
        bulk = {(0, j) for j in range(1, 50)}
        times = {e: 1 for e in bulk}
        rounds = 64
        log = DeltaLog(keyframe_interval=16)
        log.append(
            self.delta(1, inserted=[(e, 1) for e in sorted(bulk)]), bulk, times
        )
        for r in range(2, rounds + 1):
            edge = (50, 51)
            if r % 2 == 0:
                log.append(self.delta(r, inserted=[(edge, r)]), bulk | {edge}, times)
            else:
                log.append(self.delta(r, deleted=[edge]), bulk, times)
        naive_equivalent = rounds * len(bulk)
        assert log.memory_entries() < naive_equivalent / 3
        assert log.num_keyframes == 1 + rounds // 16


class TestIncrementalObservation:
    def test_matches_naive_on_explicit_history(self):
        network = DynamicNetwork(5)
        inc = GroundTruthOracle(5, keyframe_interval=2)
        naive = NaiveGroundTruthOracle(5)
        schedule = [
            ([(0, 1)], []),
            ([(1, 2)], []),
            ([(0, 2)], []),
            ([], [(1, 2)]),
            ([(1, 2)], []),  # re-insert with a fresh timestamp
        ]
        apply_schedule(network, [inc, naive], schedule)
        for r in range(6):
            assert inc.edges_at(r) == naive.edges_at(r), r
            assert dict(inc.times_at(r)) == dict(naive.times_at(r)), r

    def test_quiet_observation_is_a_recorded_noop(self):
        network = DynamicNetwork(4)
        oracle = GroundTruthOracle(4)
        network.apply_changes(1, RoundChanges.inserts([(0, 1)]))
        oracle.observe(network)
        assert oracle.last_changed_ball(1) == {0, 1}
        network.apply_changes(2, RoundChanges.empty())
        delta = oracle.observe(network)
        assert delta.is_empty
        assert oracle.last_changed_ball(3) == set()
        assert oracle.latest_round == 2
        assert oracle.memory_profile()["num_deltas"] == 1  # no delta stored

    def test_skipped_changed_rounds_fall_back_to_full_diff(self):
        network = DynamicNetwork(5)
        oracle = GroundTruthOracle(5)
        network.apply_changes(1, RoundChanges.inserts([(0, 1), (2, 3)]))
        oracle.observe(network)
        # Two unobserved rounds, including a delete + re-insert of (0, 1):
        # the diff must pick up the *timestamp* change, not just membership.
        network.apply_changes(2, RoundChanges.deletes([(0, 1)]))
        network.apply_changes(3, RoundChanges.of(insert=[(0, 1), (1, 4)]))
        oracle.observe(network)
        assert oracle.edges_at() == network.edges
        assert dict(oracle.times_at())[(0, 1)] == 3
        assert oracle.robust_two_hop(0) == robust_two_hop(
            network.edges, network.insertion_times(), 0
        )

    def test_observing_an_older_round_raises(self):
        network = DynamicNetwork(4)
        oracle = GroundTruthOracle(4)
        network.apply_changes(1, RoundChanges.inserts([(0, 1)]))
        network.apply_changes(2, RoundChanges.inserts([(1, 2)]))
        oracle.observe(network)
        stale = DynamicNetwork(4)
        stale.apply_changes(1, RoundChanges.inserts([(0, 1)]))
        with pytest.raises(ValueError):
            oracle.observe(stale)

    def test_from_network_primes_live_state(self):
        network = DynamicNetwork(4)
        network.apply_changes(1, RoundChanges.inserts([(0, 1), (1, 2), (0, 2)]))
        network.apply_changes(3, RoundChanges.deletes([(0, 2)]))
        oracle = GroundTruthOracle.from_network(network)
        assert oracle.latest_round == 3
        assert oracle.edges_at() == network.edges
        assert oracle.triangles_containing(0) == set()


class TestDirtyRegionCache:
    def build(self):
        # Two far-apart components on 12 nodes: a triangle at 0-1-2 and a
        # path at 8-9-10.
        network = DynamicNetwork(12)
        network.apply_changes(
            1, RoundChanges.inserts([(0, 1), (1, 2), (0, 2), (8, 9), (9, 10)])
        )
        oracle = GroundTruthOracle.from_network(network)
        return network, oracle

    def test_far_change_preserves_cached_answers(self):
        network, oracle = self.build()
        far = oracle.robust_two_hop(8)
        tri = oracle.triangles_containing(0)
        network.apply_changes(2, RoundChanges.inserts([(1, 3)]))
        oracle.observe(network)
        # Node 8 is >3 hops from the change: served from cache, same object.
        assert oracle.robust_two_hop(8) is far
        # Node 0 is 1 hop from the change: recomputed (and still correct).
        assert oracle.triangles_containing(0) == tri
        assert oracle.robust_two_hop(0) == robust_two_hop(
            network.edges, network.insertion_times(), 0
        )

    def test_near_change_invalidates_within_radius(self):
        network, oracle = self.build()
        before = oracle.robust_two_hop(0)
        network.apply_changes(2, RoundChanges.deletes([(1, 2)]))
        oracle.observe(network)
        after = oracle.robust_two_hop(0)
        assert after != before
        assert after == robust_two_hop(network.edges, network.insertion_times(), 0)

    def test_global_queries_invalidate_on_any_change(self):
        network, oracle = self.build()
        assert oracle.cycles_of_length(3) == {frozenset({0, 1, 2})}
        network.apply_changes(2, RoundChanges.deletes([(0, 1)]))
        oracle.observe(network)
        assert oracle.cycles_of_length(3) == set()


class TestActivityProportionalGhostHook:
    """The no_ghost_triangles round hook under partial activity reporting."""

    class FakeNode:
        def __init__(self, triangles=(), consistent=True):
            self._triangles = set(triangles)
            self._consistent = consistent

        def is_consistent(self):
            return self._consistent

        def known_triangles(self):
            return set(self._triangles)

    def drive(self, active_per_round):
        """Run the hook over four rounds; node 0 claims {0,1,2} throughout."""
        from repro.verification import CHECKS, CheckSession

        network = DynamicNetwork(5)
        nodes = {v: self.FakeNode() for v in range(5)}
        nodes[0] = self.FakeNode(triangles=[frozenset({0, 1, 2})])
        session = CheckSession(CHECKS["no_ghost_triangles"], None)
        hook = session.validator()
        schedule = {
            1: RoundChanges.inserts([(0, 1), (0, 2)]),  # ghost: (1,2) missing
            2: RoundChanges.empty(),                    # ghost persists
            3: RoundChanges.inserts([(1, 2)]),          # triangle real now
            4: RoundChanges.deletes([(1, 2)]),          # ghost returns
        }
        for r in range(1, 5):
            network.apply_changes(r, schedule[r])
            view = (
                nodes
                if active_per_round is None
                else ActiveNodesView(nodes, active_per_round[r])
            )
            hook(r, network, view)
        return session.round_failures

    def test_sparse_activity_matches_full_scan(self):
        # Sparse reporting: only round 1 touches any node; later rounds rely
        # on the dirty ball (rounds 3/4) and the carried-forward ghost map
        # (round 2).
        sparse = self.drive({1: {0, 1, 2}, 2: set(), 3: set(), 4: set()})
        dense = self.drive(None)
        assert [(f.round_index, f.node, f.field) for f in sparse] == [
            (f.round_index, f.node, f.field) for f in dense
        ]
        assert [f.round_index for f in sparse] == [1, 2, 4]

    def test_real_triangle_not_containing_claimer_is_not_a_ghost(self):
        # Regression: the hook's ghost predicate is edge existence (same as
        # collect()), not membership in triangles_containing(claimer) -- a
        # node listing a real triangle it is not part of is odd but sound.
        from repro.verification import CHECKS, CheckSession

        network = DynamicNetwork(5)
        network.apply_changes(
            1, RoundChanges.inserts([(1, 2), (1, 3), (2, 3)])
        )
        nodes = {v: self.FakeNode() for v in range(5)}
        nodes[0] = self.FakeNode(triangles=[frozenset({1, 2, 3})])
        session = CheckSession(CHECKS["no_ghost_triangles"], None)
        hook = session.validator()
        hook(1, network, ActiveNodesView(nodes, {0, 1, 2, 3}))
        assert session.round_failures == []
        # A far deletion breaks the claimed triangle while the claimer is
        # inactive and outside the 1-hop dirty ball: still reported.
        network.apply_changes(2, RoundChanges.deletes([(2, 3)]))
        hook(2, network, ActiveNodesView(nodes, set()))
        assert [(f.round_index, f.node) for f in session.round_failures] == [(2, 0)]

    def test_inconsistent_claimer_is_not_a_ghost(self):
        from repro.verification import CHECKS, CheckSession

        network = DynamicNetwork(3)
        network.apply_changes(1, RoundChanges.inserts([(0, 1)]))
        nodes = {
            0: self.FakeNode(triangles=[frozenset({0, 1, 2})], consistent=False),
            1: self.FakeNode(),
            2: self.FakeNode(),
        }
        session = CheckSession(CHECKS["no_ghost_triangles"], None)
        hook = session.validator()
        hook(1, network, nodes)
        assert session.round_failures == []


class TestOracleReferenceProperty:
    """Hypothesis: every incremental answer equals the from-scratch reference."""

    @settings(**HYP_SETTINGS)
    @given(
        rounds=churn_schedules(n=N, max_rounds=14, max_events_per_round=3),
        keyframe_interval=st.integers(min_value=1, max_value=4),
    )
    def test_live_queries_bit_identical(self, rounds, keyframe_interval):
        network = DynamicNetwork(N)
        oracle = GroundTruthOracle(N, keyframe_interval=keyframe_interval)
        for i, (inserts, deletes) in enumerate(rounds):
            network.apply_changes(
                i + 1, RoundChanges.of(insert=inserts, delete=deletes)
            )
            oracle.observe(network)
            edges = network.edges
            times = dict(network.insertion_times())
            for v in range(N):
                assert oracle.khop_edges(v, 2) == khop_edges(edges, v, 2)
                assert oracle.khop_edges(v, 3) == khop_edges(edges, v, 3)
                assert oracle.robust_two_hop(v) == robust_two_hop(edges, times, v)
                assert oracle.triangle_pattern_set(v) == triangle_pattern_set(
                    edges, times, v
                )
                assert oracle.robust_three_hop(v) == robust_three_hop(edges, times, v)
                assert oracle.triangles_containing(v) == triangles_containing(edges, v)
                assert oracle.cliques_containing(v, 3) == cliques_containing(edges, v, 3)
            assert oracle.cycles_of_length(4) == cycles_of_length(edges, 4)

    @settings(**HYP_SETTINGS)
    @given(
        rounds=churn_schedules(n=N, max_rounds=14, max_events_per_round=3),
        keyframe_interval=st.integers(min_value=1, max_value=3),
    )
    def test_historical_reconstruction_matches_naive(self, rounds, keyframe_interval):
        """Replay from keyframes equals the naive full-snapshot history,
        including at keyframe-boundary rounds (interval as small as 1)."""
        network = DynamicNetwork(N)
        inc = GroundTruthOracle(N, keyframe_interval=keyframe_interval)
        naive = NaiveGroundTruthOracle(N)
        observed = apply_schedule(network, [inc, naive], rounds)
        for r, (edges, times) in observed.items():
            assert inc.edges_at(r) == edges, r
            assert dict(inc.times_at(r)) == times, r
            assert naive.edges_at(r) == edges, r
            # Spot-check a derived historical query against the reference.
            assert inc.robust_two_hop(0, round_index=r) == robust_two_hop(
                edges, times, 0
            )
            assert inc.triangles_containing(3, round_index=r) == triangles_containing(
                edges, 3
            )

    @settings(**HYP_SETTINGS)
    @given(
        rounds=churn_schedules(n=N, max_rounds=12, max_events_per_round=3),
        mask=st.lists(st.booleans(), min_size=12, max_size=12),
    )
    def test_skipped_observations_stay_correct(self, rounds, mask):
        """Observing only some changed rounds exercises the diff fallback."""
        network = DynamicNetwork(N)
        oracle = GroundTruthOracle(N, keyframe_interval=2)
        observed = apply_schedule(network, [oracle], rounds, observe_mask=mask)
        edges = network.edges
        times = dict(network.insertion_times())
        for v in range(N):
            assert oracle.robust_two_hop(v) == robust_two_hop(edges, times, v)
            assert oracle.triangles_containing(v) == triangles_containing(edges, v)
        for r, (past_edges, past_times) in observed.items():
            assert oracle.edges_at(r) == past_edges, r
            assert dict(oracle.times_at(r)) == past_times, r
