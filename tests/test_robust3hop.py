"""Tests for the robust 3-hop neighborhood data structure (Theorem 6)."""

import pytest

from repro.adversary import HeavyTailedChurnAdversary, RandomChurnAdversary
from repro.core import EdgeQuery, QueryResult, RobustThreeHopNode
from repro.oracle import khop_edges, robust_three_hop, robust_two_hop

from conftest import run_schedule, run_simulation


def assert_sandwich(result):
    """Check the Theorem 6 guarantee on the final (drained) graph.

    After draining, rounds ``i`` and ``i-1`` have the same graph, so the
    guarantee collapses to ``R^{v,3} ⊆ known ⊆ E^{v,3}``.
    """
    network = result.network
    times = network.insertion_times()
    for v, node in result.nodes.items():
        known = node.known_edges()
        lower = robust_three_hop(network.edges, times, v)
        upper = khop_edges(network.edges, v, 3)
        assert lower <= known, f"node {v} missing {sorted(lower - known)}"
        assert known <= upper, f"node {v} has ghost edges {sorted(known - upper)}"


class TestScriptedScenarios:
    def test_three_hop_edge_learned_when_newest(self):
        # Path 0-1-2-3 built inwards-out: the farthest edge is newest.
        result, _ = run_schedule(
            RobustThreeHopNode,
            [([(0, 1)], []), ([(1, 2)], []), ([(2, 3)], [])],
            n=5,
        )
        assert result.nodes[0].knows_edge(2, 3)
        assert_sandwich(result)

    def test_three_hop_edge_not_required_when_old(self):
        # The far edge is the oldest: it is not in the robust 3-hop set, and the
        # upper bound still has to hold.
        result, _ = run_schedule(
            RobustThreeHopNode,
            [([(2, 3)], []), ([(1, 2)], []), ([(0, 1)], [])],
            n=5,
        )
        assert_sandwich(result)

    def test_two_hop_part_behaves_like_theorem7(self):
        result, _ = run_schedule(
            RobustThreeHopNode, [([(0, 1)], []), ([(1, 2)], [])], n=4
        )
        assert result.nodes[0].knows_edge(1, 2)
        assert result.nodes[0].knows_edge(0, 1)
        assert_sandwich(result)

    def test_far_edge_deletion_propagates_two_hops(self):
        result, _ = run_schedule(
            RobustThreeHopNode,
            [([(0, 1)], []), ([(1, 2)], []), ([(2, 3)], []), None, None, ([], [(2, 3)])],
            n=5,
        )
        assert not result.nodes[0].knows_edge(2, 3)
        assert_sandwich(result)

    def test_cutting_the_path_removes_downstream_knowledge(self):
        result, _ = run_schedule(
            RobustThreeHopNode,
            [([(0, 1)], []), ([(1, 2)], []), ([(2, 3)], []), None, None, ([], [(1, 2)])],
            n=5,
        )
        # With 1-2 gone, the edge 2-3 is no longer in node 0's 3-hop
        # neighborhood at all, so it must not be reported.
        assert not result.nodes[0].knows_edge(2, 3)
        assert_sandwich(result)

    def test_multiple_paths_keep_edge_alive(self):
        # Two routes to the same far edge; cutting one keeps the other.
        result, _ = run_schedule(
            RobustThreeHopNode,
            [
                ([(0, 1), (0, 2)], []),
                ([(1, 3), (2, 3)], []),
                ([(3, 4)], []),
                None,
                None,
                ([], [(0, 1)]),
            ],
            n=6,
        )
        assert result.nodes[0].knows_edge(3, 4)
        assert_sandwich(result)

    def test_incident_edges_always_known(self):
        result, _ = run_schedule(RobustThreeHopNode, [([(0, 1), (0, 2)], [])], n=4)
        assert result.nodes[0].knows_edge(0, 1)
        assert result.nodes[0].knows_edge(0, 2)
        assert not result.nodes[0].knows_edge(1, 2)


class TestQueries:
    def test_query_semantics(self):
        result, _ = run_schedule(
            RobustThreeHopNode,
            [([(0, 1)], []), ([(1, 2)], []), ([(2, 3)], [])],
            n=5,
        )
        node0 = result.nodes[0]
        assert node0.query(EdgeQuery(2, 3)) is QueryResult.TRUE
        assert node0.query(EdgeQuery(3, 4)) is QueryResult.FALSE

    def test_inconsistent_during_burst(self):
        result, _ = run_schedule(
            RobustThreeHopNode,
            [([(0, 1), (1, 2), (2, 3), (0, 3), (1, 3)], [])],
            n=5,
            drain=False,
        )
        assert any(
            node.query(EdgeQuery(0, 1)) is QueryResult.INCONSISTENT
            for node in result.nodes.values()
        )

    def test_two_round_consistency_rule(self):
        """A node stays inconsistent for one extra round after its queues empty."""
        result, _ = run_schedule(
            RobustThreeHopNode,
            [([(0, 1)], [])],
            n=3,
            drain=False,
        )
        # Round 1 only: the endpoints enqueued and immediately announced, but
        # the two-round rule keeps them inconsistent at the end of round 1.
        assert not result.nodes[0].is_consistent()

    def test_rejects_wrong_query_type(self):
        node = RobustThreeHopNode(0, 4)
        with pytest.raises(TypeError):
            node.query(object())


class TestAgainstOracleUnderChurn:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_sandwich_under_random_churn(self, seed):
        result, _ = run_simulation(
            RobustThreeHopNode,
            RandomChurnAdversary(
                13, num_rounds=90, inserts_per_round=3, deletes_per_round=2, seed=seed
            ),
            n=13,
        )
        assert_sandwich(result)

    def test_sandwich_under_heavy_tailed_churn(self):
        result, _ = run_simulation(
            RobustThreeHopNode,
            HeavyTailedChurnAdversary(14, num_rounds=100, seed=2),
            n=14,
        )
        assert_sandwich(result)

    def test_amortized_complexity_is_constant(self):
        result, _ = run_simulation(
            RobustThreeHopNode,
            RandomChurnAdversary(
                14, num_rounds=150, inserts_per_round=3, deletes_per_round=2, seed=8
            ),
            n=14,
        )
        # Theorem 6's accounting gives a small constant (3 enqueue rounds per
        # change, plus the two-round consistency rule).
        assert result.metrics.max_running_amortized_complexity() <= 4.0 + 1e-9


class TestStaleIncidentDeletion:
    """Regression: local prune/store must happen at indication time.

    Found by the differential/property harness (PR 3): when an incident edge
    is deleted and re-inserted while the announcement queue is backlogged, a
    prune deferred to the queue head would destroy paths the re-insertion's
    announcements had just rebuilt, leaving the node permanently short of
    ``R^{v,3}``.
    """

    FALSIFYING_SCHEDULE = [
        ([(0, 1), (0, 3)], []),
        ([(3, 7)], []),
        ([], [(3, 7), (0, 3)]),
        ([(0, 7), (3, 7)], []),
    ]

    def test_delete_reinsert_with_backlogged_queue(self):
        result, _ = run_schedule(RobustThreeHopNode, self.FALSIFYING_SCHEDULE, n=8)
        assert_sandwich(result)
        # Node 3 must know (0, 7): both edges of the path 3-7-0 were inserted
        # in the same round, so the edge is robust for it.
        assert (0, 7) in result.nodes[3].known_edges()

    def test_stale_reinsert_does_not_resurrect_deleted_edge(self):
        # The mirrored hazard: a backlogged insert announcement must not
        # re-store an incident edge that was deleted after the insertion.
        schedule = [
            ([(0, 1), (0, 3)], []),       # backlog node 0's queue
            ([(3, 7)], []),
            ([], [(3, 7)]),
            ([], []),
        ]
        result, _ = run_schedule(RobustThreeHopNode, schedule, n=8)
        assert_sandwich(result)
        assert (3, 7) not in result.nodes[3].known_edges()
