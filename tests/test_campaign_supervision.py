"""Worker-supervision tests: real SIGKILLs, timeouts, retries, quarantine.

These drive the chaos adversaries (``chaos_kill`` / ``chaos_sleep``) through a
supervised :class:`CampaignRunner` pool -- the worker process genuinely dies
(SIGKILL mid-cell) or stalls past the per-cell deadline, and the supervisor
must detect it, retry with backoff, and quarantine poison cells without ever
hanging the campaign.
"""

from __future__ import annotations

import sys

import pytest

from repro.experiments import CampaignRunner, CampaignSpec, ResultStore
from repro.experiments.campaign import _retry_jitter

pytestmark = pytest.mark.skipif(
    not sys.platform.startswith("linux"), reason="fork start method required"
)

CHURN = {"inserts_per_round": 2, "deletes_per_round": 1}


def _chaos_campaign(adversary_params, name="chaos"):
    return CampaignSpec(
        name=name,
        base={
            "algorithm": "triangle",
            "rounds": 5,
            "adversary_params": adversary_params,
            "record_trace": False,
        },
        grid={"n": [8], "adversary": [adversary_params.pop("_adversary")]},
    )


def _kill_campaign(tmp_path, times, name="kills"):
    return _chaos_campaign(
        {"_adversary": "chaos_kill", "kill_file": str(tmp_path / "kills"), "times": times},
        name=name,
    )


class TestRetryThenOk:
    def test_killed_worker_is_retried_to_success(self, tmp_path):
        campaign = _kill_campaign(tmp_path, times=1)
        store = ResultStore(tmp_path / "store")
        runner = CampaignRunner(
            campaign, store, jobs=2, max_retries=2, retry_backoff_s=0.0
        )
        report = runner.run()
        assert report.num_run == 1 and not report.failed
        assert report.counters["campaign.worker_deaths"] == 1
        assert report.counters["campaign.retries"] == 1
        assert report.counters["campaign.quarantined"] == 0
        assert store.completed_ids() == {campaign.expand()[0].cell_id}

    def test_failed_attempts_are_persisted_but_not_reported(self, tmp_path):
        campaign = _kill_campaign(tmp_path, times=1)
        store = ResultStore(tmp_path / "store")
        CampaignRunner(
            campaign, store, jobs=2, max_retries=2, retry_backoff_s=0.0
        ).run()
        records = store.records()
        attempts = [r for r in records if r.get("attempt")]
        finals = [r for r in records if not r.get("attempt")]
        assert len(attempts) == 1 and attempts[0]["status"] == "error"
        assert "worker process died" in attempts[0]["error"]
        assert len(finals) == 1 and finals[0]["status"] == "ok"

    def test_supervision_snapshot_lands_in_telemetry(self, tmp_path):
        campaign = _kill_campaign(tmp_path, times=1)
        store = ResultStore(tmp_path / "store")
        CampaignRunner(
            campaign, store, jobs=2, max_retries=1, retry_backoff_s=0.0
        ).run()
        snapshot_path = store.telemetry_root / "_campaign.jsonl"
        assert snapshot_path.exists()
        from repro.obs.report import load_snapshots

        snapshots = load_snapshots(store.telemetry_root)
        assert snapshots["_campaign"]["counters"]["campaign.retries"] == 1

    def test_clean_supervised_run_writes_no_snapshot(self, tmp_path):
        campaign = CampaignSpec(
            name="clean",
            base={
                "algorithm": "triangle",
                "adversary": "churn",
                "rounds": 5,
                "adversary_params": dict(CHURN),
                "record_trace": False,
            },
            grid={"n": [8, 10]},
        )
        store = ResultStore(tmp_path / "store")
        report = CampaignRunner(
            campaign, store, jobs=2, max_retries=1, retry_backoff_s=0.0
        ).run()
        assert not report.failed
        assert not any(report.counters.values())
        assert not (store.telemetry_root / "_campaign.jsonl").exists()


class TestQuarantine:
    def test_poison_cell_is_quarantined_after_exhausted_retries(self, tmp_path):
        campaign = _kill_campaign(tmp_path, times=10)  # kills forever
        store = ResultStore(tmp_path / "store")
        report = CampaignRunner(
            campaign, store, jobs=2, max_retries=2, retry_backoff_s=0.0
        ).run()
        assert report.num_run == 1
        (bad,) = report.quarantined
        assert bad["status"] == "quarantined"
        assert "worker process died" in bad["error"]
        assert report.counters["campaign.worker_deaths"] == 3  # 1 + 2 retries
        assert report.counters["campaign.quarantined"] == 1
        assert store.completed_ids() == set()

    def test_quarantined_cells_rerun_on_resume(self, tmp_path):
        campaign = _kill_campaign(tmp_path, times=2)
        store = ResultStore(tmp_path / "store")
        first = CampaignRunner(
            campaign, store, jobs=2, max_retries=1, retry_backoff_s=0.0
        ).run()
        assert len(first.quarantined) == 1
        # the kill budget (2) is now exhausted, so the resume attempt succeeds
        second = CampaignRunner(
            campaign, store, jobs=2, max_retries=1, retry_backoff_s=0.0
        ).run()
        assert second.num_run == 1 and not second.failed
        assert store.completed_ids() == {campaign.expand()[0].cell_id}

    def test_unsupervised_runs_keep_plain_error_status(self, tmp_path):
        # Without retries the quarantine vocabulary would be noise: a
        # deterministic in-cell failure stays status == "error".
        campaign = CampaignSpec(
            name="fails",
            base={
                "algorithm": "triangle",
                "adversary": "scripted",
                "adversary_params": {"trace_path": "/nonexistent/trace.json"},
            },
            grid={"n": [8]},
        )
        report = CampaignRunner(campaign, tmp_path / "store", jobs=1).run()
        assert len(report.failed) == 1 and not report.quarantined
        assert report.failed[0]["status"] == "error"

    def test_deterministic_errors_are_not_retried(self, tmp_path):
        # Retry covers infrastructure failures only: a cell that raises the
        # same exception every time must fail once, not max_retries+1 times.
        campaign = CampaignSpec(
            name="fails",
            base={
                "algorithm": "triangle",
                "adversary": "scripted",
                "adversary_params": {"trace_path": "/nonexistent/trace.json"},
            },
            grid={"n": [8]},
        )
        store = ResultStore(tmp_path / "store")
        report = CampaignRunner(
            campaign, store, jobs=2, max_retries=3, retry_backoff_s=0.0
        ).run()
        assert len(report.failed) == 1
        assert report.counters["campaign.retries"] == 0
        assert len(store.records()) == 1


class TestTimeout:
    def test_stalled_cell_is_killed_and_retried(self, tmp_path):
        campaign = _chaos_campaign(
            {
                "_adversary": "chaos_sleep",
                "sleep_s": 60.0,
                "skip_file": str(tmp_path / "stalls"),
                "times": 1,
            },
            name="stalls",
        )
        store = ResultStore(tmp_path / "store")
        report = CampaignRunner(
            campaign,
            store,
            jobs=2,
            max_retries=1,
            cell_timeout_s=2.0,
            retry_backoff_s=0.0,
        ).run()
        assert report.num_run == 1 and not report.failed, report.failed
        assert report.counters["campaign.timeouts"] == 1
        assert report.counters["campaign.heartbeats"] > 0

    def test_timeout_without_retries_fails_the_cell(self, tmp_path):
        campaign = _chaos_campaign(
            {"_adversary": "chaos_sleep", "sleep_s": 60.0}, name="stalls"
        )
        report = CampaignRunner(
            campaign, tmp_path / "store", jobs=2, cell_timeout_s=1.5
        ).run()
        assert len(report.failed) == 1
        assert "wall-clock timeout" in report.failed[0]["error"]


class TestConfiguration:
    def test_rejects_bad_supervision_knobs(self, tmp_path):
        campaign = _kill_campaign(tmp_path, times=0)
        for kwargs in (
            {"max_retries": -1},
            {"cell_timeout_s": 0.0},
            {"retry_backoff_s": -1.0},
            {"heartbeat_interval_s": 0.0},
        ):
            with pytest.raises(ValueError):
                CampaignRunner(campaign, tmp_path / "store", jobs=2, **kwargs)

    def test_supervised_property(self, tmp_path):
        campaign = _kill_campaign(tmp_path, times=0)
        assert not CampaignRunner(campaign, tmp_path / "a", jobs=1).supervised
        assert CampaignRunner(campaign, tmp_path / "b", jobs=1, max_retries=1).supervised
        assert CampaignRunner(
            campaign, tmp_path / "c", jobs=1, cell_timeout_s=5.0
        ).supervised

    def test_retry_jitter_is_deterministic_and_bounded(self):
        draws = {_retry_jitter(f"cell-{i}", attempt) for i in range(50) for attempt in (1, 2)}
        assert len(draws) > 40  # actually spreads
        assert all(1.0 <= j < 2.0 for j in draws)
        assert _retry_jitter("cell-0", 1) == _retry_jitter("cell-0", 1)
        assert _retry_jitter("cell-0", 1) != _retry_jitter("cell-0", 2)
