"""Tests for the analysis utilities (fits, counting bounds, tables)."""

import math
from pathlib import Path

import pytest

from repro.analysis import (
    MODELS,
    campaign_table,
    compare_models,
    fit_scaled_model,
    format_table,
    growth_exponent,
    is_bounded_by_constant,
    latest_ok_records,
    load_results_jsonl,
    log2_binomial,
    theorem2_lower_bound,
    theorem4_lower_bound,
    write_csv,
)

FIXTURE_STORE = Path(__file__).parent / "data" / "campaign_store"


class TestGrowthFits:
    def test_growth_exponent_of_linear_data(self):
        sizes = [10, 20, 40, 80]
        values = [3 * n for n in sizes]
        assert abs(growth_exponent(sizes, values) - 1.0) < 1e-6

    def test_growth_exponent_of_constant_data(self):
        sizes = [10, 20, 40, 80]
        values = [2.5] * 4
        assert abs(growth_exponent(sizes, values)) < 1e-6

    def test_growth_exponent_of_sqrt_data(self):
        sizes = [16, 64, 256, 1024]
        values = [math.sqrt(n) for n in sizes]
        assert abs(growth_exponent(sizes, values) - 0.5) < 1e-6

    def test_growth_exponent_requires_two_points(self):
        with pytest.raises(ValueError):
            growth_exponent([10], [1])

    def test_fit_scaled_model_recovers_scale(self):
        sizes = [32, 64, 128, 256]
        values = [7 * n / math.log2(n) for n in sizes]
        fit = fit_scaled_model(sizes, values, "n_over_log_n")
        assert abs(fit.scale - 7) < 1e-6
        assert fit.relative_residual < 1e-9
        assert abs(fit.predict(64) - 7 * 64 / 6) < 1e-6

    def test_fit_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            fit_scaled_model([1, 2], [1, 2], "exponential")

    def test_compare_models_picks_the_right_shape(self):
        sizes = [64, 256, 1024, 4096]
        values = [5 * n / math.log2(n) for n in sizes]
        fits = compare_models(sizes, values)
        best = min(fits.values(), key=lambda f: f.relative_residual)
        assert best.model == "n_over_log_n"

    def test_is_bounded_by_constant(self):
        assert is_bounded_by_constant([0.5, 2.9, 1.0], 3.0)
        assert not is_bounded_by_constant([0.5, 3.2], 3.0)

    def test_models_are_positive(self):
        for name, fn in MODELS.items():
            assert fn(100) > 0, name


class TestCountingBounds:
    def test_log2_binomial_matches_math_comb(self):
        assert abs(log2_binomial(20, 7) - math.log2(math.comb(20, 7))) < 1e-9
        assert log2_binomial(5, 9) == 0.0

    def test_theorem2_bound_grows_nearly_linearly(self):
        bounds = {n: theorem2_lower_bound(n, k=3).amortized_lower_bound for n in (128, 512, 2048)}
        sizes = sorted(bounds)
        exponent = growth_exponent(sizes, [bounds[n] for n in sizes])
        # n / log n growth has a log-log slope a bit below 1.
        assert 0.8 < exponent < 1.05

    def test_theorem2_bound_fields(self):
        bound = theorem2_lower_bound(256, k=4)
        assert bound.iterations == 1 + (256 - 4 + 1) // 2
        assert bound.total_bits > 0
        assert bound.amortized_lower_bound > 1

    def test_theorem2_rejects_tiny_patterns(self):
        with pytest.raises(ValueError):
            theorem2_lower_bound(100, k=2)

    def test_theorem4_bound_grows_like_sqrt(self):
        bounds = {
            n: theorem4_lower_bound(n, k=6).amortized_lower_bound
            for n in (1024, 4096, 16384, 65536)
        }
        sizes = sorted(bounds)
        exponent = growth_exponent(sizes, [bounds[n] for n in sizes])
        # sqrt(n) / log n: the log-log slope sits a bit below 0.5 at these sizes.
        assert 0.25 < exponent < 0.6

    def test_theorem4_bound_fields(self):
        bound = theorem4_lower_bound(400, k=6)
        assert bound.t == 20
        assert bound.bits_per_visit > 0
        assert bound.total_changes > 0

    def test_theorem4_rejects_small_k(self):
        with pytest.raises(ValueError):
            theorem4_lower_bound(400, k=5)

    def test_theorem2_much_larger_than_theorem4(self):
        n = 4096
        t2 = theorem2_lower_bound(n, k=3).amortized_lower_bound
        t4 = theorem4_lower_bound(n, k=6).amortized_lower_bound
        # The near-linear bound dominates the sqrt bound by a large margin.
        assert t2 > 100 * t4 > 0


class TestTables:
    def test_format_table_alignment(self):
        table = format_table(["n", "value"], [[16, 1.25], [1024, 0.5]])
        lines = table.splitlines()
        assert lines[0].startswith("n")
        assert len(lines) == 4
        assert "1024" in lines[3]

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_write_csv(self, tmp_path):
        path = write_csv(tmp_path / "out" / "table.csv", ["a", "b"], [[1, 2], [3, 4]])
        content = path.read_text().strip().splitlines()
        assert content[0] == "a,b"
        assert content[2] == "3,4"


class TestCampaignStoreLoading:
    """Reading campaign ResultStore JSONL directly (no CSV intermediary)."""

    def test_load_recorded_fixture(self):
        records = load_results_jsonl(FIXTURE_STORE)
        assert len(records) == 4
        assert all(record["status"] == "ok" for record in records)
        assert {record["spec"]["n"] for record in records} == {8, 10}

    def test_accepts_file_or_directory(self):
        via_dir = load_results_jsonl(FIXTURE_STORE)
        via_file = load_results_jsonl(FIXTURE_STORE / "results.jsonl")
        assert via_dir == via_file

    def test_missing_store_is_empty(self, tmp_path):
        assert load_results_jsonl(tmp_path / "nope") == []

    def test_fixture_table_round_trip(self):
        """The recorded store renders to the recorded expected table, byte for byte."""
        headers, rows = campaign_table(
            FIXTURE_STORE,
            ["n", "seed", "total_changes", "amortized_round_complexity",
             "triangle_matches_oracle"],
        )
        rendered = format_table(headers, rows) + "\n"
        expected = (FIXTURE_STORE / "expected_table.txt").read_text()
        assert rendered == expected

    def test_round_trip_through_result_store(self, tmp_path):
        """Records appended via ResultStore come back identical through the loader."""
        from repro.experiments import ResultStore

        store = ResultStore(tmp_path / "store")
        records = load_results_jsonl(FIXTURE_STORE)
        for record in records:
            store.append(record)
        assert load_results_jsonl(store.root) == records
        assert latest_ok_records(load_results_jsonl(store.root)) == latest_ok_records(records)

    def test_latest_record_wins(self):
        records = [
            {"cell_id": "a", "status": "error", "metrics": {}},
            {"cell_id": "a", "status": "ok", "metrics": {"x": 1.0}},
            {"cell_id": "b", "status": "error", "metrics": {}},
        ]
        latest = latest_ok_records(records)
        assert len(latest) == 1 and latest[0]["metrics"] == {"x": 1.0}

    def test_torn_final_line_is_skipped(self, tmp_path):
        store_dir = tmp_path / "store"
        store_dir.mkdir()
        good = '{"cell_id": "a", "status": "ok", "metrics": {}}'
        (store_dir / "results.jsonl").write_text(good + '\n{"cell_id": "b", "stat')
        records = load_results_jsonl(store_dir)
        assert [r["cell_id"] for r in records] == ["a"]

    def test_line_torn_inside_a_multibyte_character_is_skipped(self, tmp_path):
        # A SIGKILLed worker can tear its append anywhere -- including between
        # the bytes of one UTF-8 character.  The intact records must survive.
        store_dir = tmp_path / "store"
        store_dir.mkdir()
        good = '{"cell_id": "a", "status": "ok", "metrics": {}}'.encode()
        torn = '{"cell_id": "b", "note": "π≈3'.encode()[:-2]  # mid-character
        (store_dir / "results.jsonl").write_bytes(good + b"\n" + torn)
        records = load_results_jsonl(store_dir)
        assert [r["cell_id"] for r in records] == ["a"]

    def test_dotted_column_lookup(self):
        headers, rows = campaign_table(
            FIXTURE_STORE,
            ["spec.adversary_params.inserts_per_round", "n"],
            headers=["ins/round", "n"],
        )
        assert headers == ["ins/round", "n"]
        assert all(row[0] == 2 for row in rows)
