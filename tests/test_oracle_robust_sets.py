"""Tests for the reference (centralized) robust-set computations.

The scenarios are tiny and hand-computed from the definitions in the paper
(Appendix A for R^{v,2}, Figure 2 for T^{v,2}, Figure 3 for R^{v,3}).
"""

from repro.oracle.robust_sets import (
    adjacency,
    khop_edges,
    robust_three_hop,
    robust_two_hop,
    triangle_pattern_set,
)


def times_of(edges_with_times):
    return {edge: t for edge, t in edges_with_times}


class TestAdjacencyAndKHop:
    def test_adjacency(self):
        adj = adjacency([(0, 1), (1, 2)])
        assert adj[1] == {0, 2}
        assert adj[0] == {1}

    def test_khop_edges_radius_one_is_incident_edges(self):
        edges = [(0, 1), (1, 2), (2, 3)]
        assert khop_edges(edges, 0, 1) == frozenset({(0, 1)})

    def test_khop_edges_radius_two_touches_neighbors(self):
        edges = [(0, 1), (1, 2), (2, 3), (3, 4)]
        # Edges touching 0 or its neighbor 1: (0,1) and (1,2).  The edge (2,3)
        # touches only nodes at distance 2 and is therefore excluded.
        assert khop_edges(edges, 0, 2) == frozenset({(0, 1), (1, 2)})

    def test_khop_edges_radius_three(self):
        edges = [(0, 1), (1, 2), (2, 3), (3, 4)]
        assert khop_edges(edges, 0, 3) == frozenset({(0, 1), (1, 2), (2, 3)})

    def test_khop_edges_isolated_node(self):
        assert khop_edges([(1, 2)], 0, 3) == frozenset()


class TestRobustTwoHop:
    def test_incident_edges_always_robust(self):
        edges = [(0, 1)]
        times = times_of([((0, 1), 5)])
        assert robust_two_hop(edges, times, 0) == frozenset({(0, 1)})

    def test_far_edge_newer_than_connection_is_robust(self):
        # 0 - 1 inserted at round 1, far edge 1 - 2 at round 5: robust for 0.
        edges = [(0, 1), (1, 2)]
        times = times_of([((0, 1), 1), ((1, 2), 5)])
        assert (1, 2) in robust_two_hop(edges, times, 0)

    def test_far_edge_older_than_connection_is_not_robust(self):
        edges = [(0, 1), (1, 2)]
        times = times_of([((0, 1), 5), ((1, 2), 1)])
        assert (1, 2) not in robust_two_hop(edges, times, 0)

    def test_robust_via_either_endpoint(self):
        # Triangle where the far edge is older than one connection but newer
        # than the other: still robust (via the older connection).
        edges = [(0, 1), (0, 2), (1, 2)]
        times = times_of([((0, 1), 10), ((0, 2), 2), ((1, 2), 5)])
        assert (1, 2) in robust_two_hop(edges, times, 0)

    def test_distance_two_only(self):
        # An edge at distance 2 (not touching a neighbor) is never included.
        edges = [(0, 1), (1, 2), (2, 3)]
        times = times_of([((0, 1), 1), ((1, 2), 2), ((2, 3), 9)])
        assert (2, 3) not in robust_two_hop(edges, times, 0)


class TestTrianglePatternSet:
    def test_includes_robust_two_hop(self):
        edges = [(0, 1), (1, 2)]
        times = times_of([((0, 1), 1), ((1, 2), 5)])
        assert triangle_pattern_set(edges, times, 0) >= robust_two_hop(edges, times, 0)

    def test_pattern_b_old_far_edge_in_triangle(self):
        # Far edge older than both connections, all three present: pattern (b).
        edges = [(0, 1), (0, 2), (1, 2)]
        times = times_of([((0, 1), 10), ((0, 2), 8), ((1, 2), 1)])
        T = triangle_pattern_set(edges, times, 0)
        assert (1, 2) in T
        # ... but it is not in the plain robust 2-hop set.
        assert (1, 2) not in robust_two_hop(edges, times, 0)

    def test_old_far_edge_without_second_connection_excluded(self):
        # Same ages but node 0 is connected to only one endpoint: not pattern
        # (b), and not pattern (a) either.
        edges = [(0, 1), (1, 2)]
        times = times_of([((0, 1), 10), ((1, 2), 1)])
        assert (1, 2) not in triangle_pattern_set(edges, times, 0)

    def test_every_triangle_far_edge_is_in_pattern_set(self):
        # Regardless of the time ordering, the far edge of a triangle must be
        # in T^{v,2} (this is what makes triangle membership listing work).
        import itertools

        edges = [(0, 1), (0, 2), (1, 2)]
        for perm in itertools.permutations([1, 2, 3]):
            times = times_of(
                [((0, 1), perm[0]), ((0, 2), perm[1]), ((1, 2), perm[2])]
            )
            assert (1, 2) in triangle_pattern_set(edges, times, 0), perm


class TestRobustThreeHop:
    def test_contains_robust_two_hop(self):
        edges = [(0, 1), (1, 2), (2, 3)]
        times = times_of([((0, 1), 1), ((1, 2), 3), ((2, 3), 5)])
        assert robust_three_hop(edges, times, 0) >= robust_two_hop(edges, times, 0)

    def test_three_hop_pattern_b(self):
        # Path 0 - 1 - 2 - 3 where the farthest edge is newest: included.
        edges = [(0, 1), (1, 2), (2, 3)]
        times = times_of([((0, 1), 1), ((1, 2), 3), ((2, 3), 5)])
        assert (2, 3) in robust_three_hop(edges, times, 0)

    def test_three_hop_pattern_b_requires_newest_far_edge(self):
        # Farthest edge older than the middle edge: excluded.
        edges = [(0, 1), (1, 2), (2, 3)]
        times = times_of([((0, 1), 1), ((1, 2), 5), ((2, 3), 3)])
        assert (2, 3) not in robust_three_hop(edges, times, 0)

    def test_three_hop_requires_simple_path(self):
        # A "3-path" that revisits v is not a witness.
        edges = [(0, 1), (1, 2), (0, 2)]
        times = times_of([((0, 1), 1), ((1, 2), 2), ((0, 2), 3)])
        r3 = robust_three_hop(edges, times, 0)
        # (0, 2) is incident so included; (1, 2) is robust 2-hop; nothing else.
        assert r3 == frozenset({(0, 1), (0, 2), (1, 2)})

    def test_multiple_witnessing_paths(self):
        # Two disjoint 2-hop routes to the same far edge: still included.
        edges = [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]
        times = times_of(
            [((0, 1), 1), ((0, 2), 2), ((1, 3), 3), ((2, 3), 4), ((3, 4), 9)]
        )
        assert (3, 4) in robust_three_hop(edges, times, 0)
