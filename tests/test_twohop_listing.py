"""Tests for the Lemma 1 baseline (full 2-hop neighborhood listing)."""

import pytest

from repro.adversary import RandomChurnAdversary, ScriptedAdversary
from repro.core import (
    HMembershipQuery,
    QueryResult,
    TriangleQuery,
    TwoHopListingNode,
    TwoHopQuery,
)
from repro.core.membership import PATTERNS
from repro.oracle import khop_edges

from conftest import run_schedule, run_simulation


def assert_full_two_hop(result):
    """The node's knowledge must equal the full 2-hop neighborhood E^{v,2}."""
    network = result.network
    for v, node in result.nodes.items():
        expected = khop_edges(network.edges, v, 2)
        assert node.known_edges() == expected, (
            f"node {v}: missing {sorted(expected - node.known_edges())}, "
            f"extra {sorted(node.known_edges() - expected)}"
        )


class TestBasics:
    def test_learns_full_neighborhood_of_new_neighbor(self):
        # Node 1 already has neighbors 2, 3; when 0 connects it must learn them all,
        # including the OLD edges (which the robust structures deliberately skip).
        result, _ = run_schedule(
            TwoHopListingNode,
            [([(1, 2), (1, 3)], []), None, ([(0, 1)], [])],
            n=6,
        )
        node0 = result.nodes[0]
        assert node0.query(TwoHopQuery(1, 2)) is QueryResult.TRUE
        assert node0.query(TwoHopQuery(1, 3)) is QueryResult.TRUE
        assert_full_two_hop(result)

    def test_incremental_updates_after_snapshot(self):
        result, _ = run_schedule(
            TwoHopListingNode,
            [([(0, 1)], []), None, ([(1, 2)], []), None, ([(1, 3)], []), ([], [(1, 2)])],
            n=6,
        )
        node0 = result.nodes[0]
        assert node0.query(TwoHopQuery(1, 3)) is QueryResult.TRUE
        assert node0.query(TwoHopQuery(1, 2)) is QueryResult.FALSE
        assert_full_two_hop(result)

    def test_losing_a_neighbor_forgets_its_neighborhood(self):
        result, _ = run_schedule(
            TwoHopListingNode,
            [([(1, 2), (1, 3)], []), None, ([(0, 1)], []), None, ([], [(0, 1)])],
            n=6,
        )
        assert result.nodes[0].query(TwoHopQuery(1, 2)) is QueryResult.FALSE
        assert_full_two_hop(result)

    def test_triangle_and_pattern_queries(self):
        result, _ = run_schedule(
            TwoHopListingNode,
            [([(0, 1), (0, 2), (1, 2), (1, 3)], [])],
            n=6,
        )
        node0 = result.nodes[0]
        assert node0.query(TriangleQuery({0, 1, 2})) is QueryResult.TRUE
        # P3 membership: 0 is the middle of the path 1 - 0 - 2.
        query = HMembershipQuery(PATTERNS["P3"], (1, 0, 2))
        assert node0.query(query) is QueryResult.TRUE
        missing = HMembershipQuery(PATTERNS["P4"], (3, 1, 0, 4))
        assert node0.query(missing) is QueryResult.FALSE

    def test_rejects_unknown_query(self):
        node = TwoHopListingNode(0, 4)
        with pytest.raises(TypeError):
            node.query(1.5)

    def test_chunking_respects_bandwidth(self):
        """Snapshot chunks must fit the default O(log n) budget even for larger n."""
        result, _ = run_simulation(
            TwoHopListingNode,
            RandomChurnAdversary(40, num_rounds=30, inserts_per_round=2, deletes_per_round=1, seed=0),
            n=40,
        )
        # strict bandwidth is the default: reaching here means no violation.
        assert result.bandwidth.num_violations == 0


class TestAgainstOracleUnderChurn:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_full_two_hop_neighborhood(self, seed):
        result, _ = run_simulation(
            TwoHopListingNode,
            RandomChurnAdversary(
                14, num_rounds=80, inserts_per_round=3, deletes_per_round=2, seed=seed
            ),
            n=14,
        )
        assert_full_two_hop(result)

    def test_amortized_cost_grows_with_n(self):
        """Lemma 1 pays Theta(n / log n): the cost per change grows with n.

        A growing star forces ever larger neighborhood snapshots; with the
        adversary waiting for stabilization between insertions (as the
        amortized measure allows), the per-change cost must grow markedly with
        ``n`` -- the qualitative separation from the robust structures, whose
        amortized complexity stays constant (checked in their own tests).
        """
        from repro.adversary import WAIT_FOR_STABILITY, ScheduleAdversary
        from repro.simulator import RoundChanges

        def star_schedule(n):
            for i in range(1, n):
                yield RoundChanges.inserts([(0, i)])
                yield WAIT_FOR_STABILITY

        costs = {}
        for n in (16, 64):
            result, _ = run_simulation(
                TwoHopListingNode, ScheduleAdversary(star_schedule(n)), n=n
            )
            costs[n] = result.amortized_round_complexity
        assert costs[64] > 2 * costs[16]
