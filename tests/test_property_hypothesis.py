"""Property-based tests (hypothesis): random schedules against the oracle.

These tests generate arbitrary legal insertion/deletion schedules (and whole
random experiment cells, via :mod:`strategies`) and check the paper's
invariants on every one of them:

* Theorem 7 -- the robust 2-hop structure equals ``R^{v,2}`` once drained;
* Theorem 1 -- the triangle structure equals ``T^{v,2}`` once drained, and
  never believes in a triangle that does not exist while it claims consistency;
* Theorem 6 -- the robust 3-hop structure satisfies its sandwich once drained;
* the simulator's amortized accounting never exceeds the number of rounds;
* the dense, sparse, sharded and columnar engines produce bit-identical round
  records, traces, metrics and final node state on arbitrary cells -- with and
  without fault models and telemetry (the differential harness of
  :mod:`repro.verification`).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adversary import ScriptedAdversary
from repro.core import RobustThreeHopNode, RobustTwoHopNode, TriangleMembershipNode
from repro.oracle import (
    khop_edges,
    robust_three_hop,
    robust_two_hop,
    triangle_pattern_set,
    triangles_containing,
)
from repro.simulator import RoundChanges, SimulationRunner
from repro.verification import run_differential

from strategies import churn_schedules, experiment_specs

N_NODES = 8


def schedules(max_rounds: int = 14, max_events_per_round: int = 3):
    """The shared schedule strategy, pinned to this module's network size."""
    return churn_schedules(
        n=N_NODES, max_rounds=max_rounds, max_events_per_round=max_events_per_round
    )


def run_to_quiescence(factory, rounds):
    runner = SimulationRunner(
        n=N_NODES,
        algorithm_factory=factory,
        adversary=ScriptedAdversary(rounds),
    )
    return runner.run()


HYP_SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestRobustTwoHopProperties:
    @settings(**HYP_SETTINGS)
    @given(rounds=schedules())
    def test_equals_robust_set_after_drain(self, rounds):
        result = run_to_quiescence(RobustTwoHopNode, rounds)
        times = result.network.insertion_times()
        for v, node in result.nodes.items():
            assert node.known_edges() == robust_two_hop(result.network.edges, times, v)

    @settings(**HYP_SETTINGS)
    @given(rounds=schedules())
    def test_amortized_bound(self, rounds):
        result = run_to_quiescence(RobustTwoHopNode, rounds)
        if result.metrics.total_changes:
            assert result.metrics.max_running_amortized_complexity() <= 1.0 + 1e-9


class TestTriangleProperties:
    @settings(**HYP_SETTINGS)
    @given(rounds=schedules())
    def test_equals_pattern_set_and_triangles_after_drain(self, rounds):
        result = run_to_quiescence(TriangleMembershipNode, rounds)
        network = result.network
        times = network.insertion_times()
        for v, node in result.nodes.items():
            assert node.known_edges() == triangle_pattern_set(network.edges, times, v)
            assert node.known_triangles() == triangles_containing(network.edges, v)

    @settings(**HYP_SETTINGS)
    @given(rounds=schedules(max_rounds=10))
    def test_consistent_nodes_never_invent_triangles_mid_run(self, rounds):
        """Checked at every round: TRUE answers from consistent nodes are real."""
        violations = []

        def validator(round_index, network, nodes):
            for v, node in nodes.items():
                if not node.is_consistent():
                    continue
                for tri in node.known_triangles():
                    a, b, c = sorted(tri)
                    if not (
                        network.has_edge(a, b)
                        and network.has_edge(a, c)
                        and network.has_edge(b, c)
                    ):
                        violations.append((round_index, v, (a, b, c)))

        runner = SimulationRunner(
            n=N_NODES,
            algorithm_factory=TriangleMembershipNode,
            adversary=ScriptedAdversary(rounds),
            validators=[validator],
        )
        runner.run()
        assert not violations


class TestRobustThreeHopProperties:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
    @given(rounds=schedules(max_rounds=10))
    def test_sandwich_after_drain(self, rounds):
        result = run_to_quiescence(RobustThreeHopNode, rounds)
        network = result.network
        times = network.insertion_times()
        for v, node in result.nodes.items():
            known = node.known_edges()
            assert robust_three_hop(network.edges, times, v) <= known
            assert known <= khop_edges(network.edges, v, 3)


class TestMetricsProperties:
    @settings(**HYP_SETTINGS)
    @given(rounds=schedules())
    def test_inconsistent_rounds_never_exceed_rounds_executed(self, rounds):
        result = run_to_quiescence(RobustTwoHopNode, rounds)
        assert result.metrics.inconsistent_rounds <= result.metrics.rounds_executed
        assert result.metrics.total_changes == sum(len(i) + len(d) for i, d in rounds)


class TestEngineDifferentialProperties:
    """Random cells through the differential harness: all four engines must agree."""

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(spec=experiment_specs())
    def test_dense_sparse_sharded_identical(self, spec):
        report = run_differential(
            spec, modes=("dense", "sparse", "sharded"), auto_checks=True
        )
        assert report.ok, report.describe()

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(spec=experiment_specs())
    def test_dense_sparse_columnar_identical(self, spec):
        report = run_differential(
            spec, modes=("dense", "sparse", "columnar"), auto_checks=True
        )
        assert report.ok, report.describe()

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(spec=experiment_specs(with_faults=True), telemetry=st.booleans())
    def test_all_modes_faults_telemetry_identical(self, spec, telemetry):
        """The full matrix: four engines x (maybe) a fault model x telemetry.

        Fingerprint identity must hold with the telemetry singleton enabled
        (which also disables the columnar quiet-round fast path, covering
        both of its round shapes) exactly as with it off.
        """
        from repro.obs import TELEMETRY

        modes = ("dense", "sparse", "sharded", "columnar")
        if telemetry:
            TELEMETRY.enable()
        try:
            report = run_differential(spec, modes=modes)
        finally:
            if telemetry:
                TELEMETRY.disable()
        assert report.ok, report.describe()
