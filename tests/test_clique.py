"""Tests for k-clique membership listing (Corollary 1)."""

import itertools

import pytest

from repro.adversary import RandomChurnAdversary, ScriptedAdversary
from repro.core import CliqueMembershipNode, CliqueQuery, QueryResult, TriangleQuery
from repro.oracle import cliques_containing
from repro.workloads import planted_clique_churn

from conftest import run_schedule, run_simulation


def clique_edges(nodes):
    return [tuple(sorted(pair)) for pair in itertools.combinations(sorted(nodes), 2)]


class TestSmallCliques:
    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_clique_membership_after_growth(self, k):
        members = list(range(k))
        schedule = [([edge], []) for edge in clique_edges(members)]
        result, _ = run_schedule(CliqueMembershipNode, schedule, n=k + 2)
        for v in members:
            assert result.nodes[v].query(CliqueQuery(members)) is QueryResult.TRUE

    def test_missing_edge_breaks_clique(self):
        members = [0, 1, 2, 3]
        edges = clique_edges(members)[:-1]  # leave one edge out
        schedule = [([edge], []) for edge in edges]
        result, _ = run_schedule(CliqueMembershipNode, schedule, n=6)
        for v in members:
            assert result.nodes[v].query(CliqueQuery(members)) is QueryResult.FALSE

    def test_clique_destroyed_by_single_deletion(self):
        members = [0, 1, 2, 3]
        schedule = [(clique_edges(members), []), None, ([], [(2, 3)])]
        result, _ = run_schedule(CliqueMembershipNode, schedule, n=6)
        for v in members:
            assert result.nodes[v].query(CliqueQuery(members)) is QueryResult.FALSE
        # The triangles not using the deleted edge survive.
        assert result.nodes[0].query(TriangleQuery({0, 1, 2})) is QueryResult.TRUE

    def test_query_must_contain_node(self):
        result, _ = run_schedule(CliqueMembershipNode, [(clique_edges([0, 1, 2]), [])], n=6)
        with pytest.raises(ValueError):
            result.nodes[5].query(CliqueQuery({0, 1, 2}))

    def test_triangle_queries_still_work(self):
        result, _ = run_schedule(CliqueMembershipNode, [(clique_edges([0, 1, 2]), [])], n=5)
        assert result.nodes[0].query(TriangleQuery({0, 1, 2})) is QueryResult.TRUE


class TestEnumerationHelpers:
    def test_known_cliques_matches_oracle(self):
        members = [0, 1, 2, 3]
        schedule = [(clique_edges(members), []), ([(0, 4), (1, 4)], [])]
        result, _ = run_schedule(CliqueMembershipNode, schedule, n=6)
        network = result.network
        for v in range(5):
            for k in (3, 4):
                assert result.nodes[v].known_cliques(k) == cliques_containing(
                    network.edges, v, k
                ), f"node {v}, k={k}"

    def test_known_cliques_rejects_small_k(self):
        node = CliqueMembershipNode(0, 4)
        with pytest.raises(ValueError):
            node.known_cliques(2)


class TestPlantedCliquesUnderChurn:
    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_planted_cliques_are_reported_by_all_members(self, k):
        adversary, plants = planted_clique_churn(
            12, k, num_plants=2, noise_edges_per_round=1, seed=k
        )
        # Stop right after the last plant is fully inserted: run the schedule
        # only up to the point where the final clique is alive.  Easier: replay
        # the full schedule but check against the oracle at the end for
        # whichever cliques are present in the final graph.
        result, oracle = run_simulation(CliqueMembershipNode, adversary, n=12)
        network = result.network
        for v in range(12):
            expected = cliques_containing(network.edges, v, k)
            got = result.nodes[v].known_cliques(k)
            assert got == expected, f"node {v}: {got} != {expected}"

    def test_membership_queries_match_oracle_under_churn(self):
        result, oracle = run_simulation(
            CliqueMembershipNode,
            RandomChurnAdversary(14, num_rounds=150, inserts_per_round=4, deletes_per_round=2, seed=3),
            n=14,
        )
        network = result.network
        # Check every 4-subset containing node 0 among its neighborhood.
        node0 = result.nodes[0]
        neighbors = sorted(node0.adj)
        for combo in itertools.combinations(neighbors[:8], 3):
            candidate = frozenset(combo) | {0}
            expected = QueryResult.of(oracle.is_clique(candidate))
            assert node0.query(CliqueQuery(candidate)) is expected

    def test_amortized_complexity_is_constant(self):
        adversary, _ = planted_clique_churn(16, 4, num_plants=4, seed=1)
        result, _ = run_simulation(CliqueMembershipNode, adversary, n=16)
        assert result.metrics.max_running_amortized_complexity() <= 3.0 + 1e-9
