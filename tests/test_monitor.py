"""Tests for the high-level DynamicGraphMonitor API."""

import pytest

from repro import DynamicGraphMonitor, MonitorAnswer
from repro.core import QueryResult, TriangleMembershipNode
from repro.oracle import triangles_containing


class TestMonitorAnswer:
    def test_from_result(self):
        assert MonitorAnswer.from_result(QueryResult.TRUE) == MonitorAnswer(True, True)
        assert MonitorAnswer.from_result(QueryResult.FALSE) == MonitorAnswer(False, True)
        indefinite = MonitorAnswer.from_result(QueryResult.INCONSISTENT)
        assert indefinite.value is None and not indefinite.definite

    def test_truthiness(self):
        assert MonitorAnswer(True, True)
        assert not MonitorAnswer(False, True)
        assert not MonitorAnswer(None, False)


class TestConstruction:
    def test_named_structures(self):
        for name in ("robust2hop", "triangle", "clique", "robust3hop", "cycles", "twohop"):
            monitor = DynamicGraphMonitor(6, structure=name)
            assert monitor.structure_name == name

    def test_custom_factory(self):
        monitor = DynamicGraphMonitor(6, structure=TriangleMembershipNode)
        assert monitor.structure_name == "TriangleMembershipNode"

    def test_unknown_structure_rejected(self):
        with pytest.raises(ValueError):
            DynamicGraphMonitor(6, structure="magic")

    def test_serial_engine_modes_accepted(self):
        for mode in ("dense", "sparse", "columnar"):
            monitor = DynamicGraphMonitor(6, engine_mode=mode)
            assert monitor.engine_mode == mode

    def test_sharded_engine_rejected_at_construction(self):
        with pytest.raises(ValueError, match="sharded"):
            DynamicGraphMonitor(6, engine_mode="sharded")

    def test_is_a_serving_monitor(self):
        from repro.serve import ServingMonitor

        assert issubclass(DynamicGraphMonitor, ServingMonitor)


class TestTriangleAndCliqueQueries:
    def test_triangle_lifecycle(self):
        monitor = DynamicGraphMonitor(8, structure="clique")
        monitor.update(insert=[(0, 1), (1, 2)])
        monitor.update(insert=[(0, 2)])
        monitor.settle()
        assert monitor.all_consistent
        assert monitor.is_triangle(0, 1, 2).value is True
        assert monitor.is_triangle(0, 1, 3).value is False
        monitor.update(delete=[(1, 2)])
        monitor.settle()
        assert monitor.is_triangle(0, 1, 2).value is False

    def test_answers_can_be_indefinite_mid_propagation(self):
        monitor = DynamicGraphMonitor(8, structure="clique")
        monitor.update(insert=[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (0, 4)])
        # Right after a burst some node is still propagating.
        answers = [monitor.is_triangle(0, 1, 2, ask=v) for v in (0, 1, 2)]
        assert any(not a.definite for a in answers)
        monitor.settle()
        assert monitor.is_triangle(0, 1, 2).definite

    def test_clique_queries(self):
        monitor = DynamicGraphMonitor(8, structure="clique")
        edges = [(a, b) for a in range(4) for b in range(a + 1, 4)]
        for edge in edges:
            monitor.update(insert=[edge])
        monitor.settle()
        assert monitor.is_clique([0, 1, 2, 3]).value is True
        assert monitor.cliques_of(0, 4) == {frozenset({0, 1, 2, 3})}

    def test_enumeration_matches_oracle(self):
        monitor = DynamicGraphMonitor(10, structure="triangle")
        import numpy as np

        rng = np.random.default_rng(5)
        present = set()
        for _ in range(60):
            u, w = rng.integers(0, 10, size=2)
            if u == w:
                continue
            edge = (min(int(u), int(w)), max(int(u), int(w)))
            if edge in present:
                monitor.update(delete=[edge])
                present.discard(edge)
            else:
                monitor.update(insert=[edge])
                present.add(edge)
        monitor.settle()
        for v in range(10):
            assert monitor.triangles_of(v) == triangles_containing(monitor.edges, v)

    def test_enumeration_requires_capable_structure(self):
        monitor = DynamicGraphMonitor(6, structure="robust2hop")
        with pytest.raises(TypeError):
            monitor.triangles_of(0)
        with pytest.raises(TypeError):
            monitor.cliques_of(0, 3)


class TestCycleQueries:
    def test_collective_cycle_listing(self):
        monitor = DynamicGraphMonitor(8, structure="cycles")
        for edge in [(0, 1), (1, 2), (2, 3), (0, 3)]:
            monitor.update(insert=[edge])
        monitor.settle()
        assert monitor.list_cycle([0, 1, 2, 3]).value is True
        assert monitor.list_cycle([0, 1, 2, 4]).value is False
        assert monitor.is_cycle((0, 1, 2, 3)).definite

    def test_list_cycle_requires_capable_structure(self):
        # Regression: this used to surface as a bare AttributeError from
        # getattr(node, "knows_cycle_set") instead of the clear TypeError the
        # other capability-gated helpers raise.
        monitor = DynamicGraphMonitor(8, structure="robust2hop")
        with pytest.raises(TypeError, match="cycle-listing"):
            monitor.list_cycle([0, 1, 2, 3])

    def test_cycles_of_enumeration(self):
        monitor = DynamicGraphMonitor(8, structure="cycles")
        for edge in [(0, 1), (1, 2), (2, 3), (0, 3)]:
            monitor.update(insert=[edge])
        monitor.settle()
        found = set()
        for v in range(4):
            found |= monitor.cycles_of(v, 4)
        assert frozenset({0, 1, 2, 3}) in found


class TestBookkeeping:
    def test_edges_and_metrics(self):
        monitor = DynamicGraphMonitor(6, structure="robust2hop")
        monitor.update(insert=[(0, 1)])
        monitor.update(insert=[(1, 2)], delete=[(0, 1)])
        monitor.settle()
        assert monitor.edges == frozenset({(1, 2)})
        assert monitor.has_edge(1, 2) and not monitor.has_edge(0, 1)
        summary = monitor.metrics_summary()
        assert summary["total_changes"] == 3
        assert 0 <= monitor.amortized_round_complexity <= 1.0

    def test_fresh_monitor_is_consistent(self):
        monitor = DynamicGraphMonitor(4)
        assert monitor.all_consistent
        assert monitor.is_node_consistent(0)

    def test_knows_edge_query(self):
        monitor = DynamicGraphMonitor(6, structure="robust2hop")
        monitor.update(insert=[(0, 1)])
        monitor.update(insert=[(1, 2)])
        monitor.settle()
        assert monitor.knows_edge(0, 1, 2).value is True
        assert monitor.knows_edge(0, 2, 3).value is False


class TestEngineIdentity:
    """The same update stream must be bit-identical across serial engines."""

    STREAM = [
        {"insert": [(0, 1), (1, 2), (0, 2), (3, 4)]},
        {"insert": [(2, 3)], "delete": [(3, 4)]},
        {},
        {"insert": [(4, 5), (3, 5), (3, 4)]},
        {"delete": [(0, 2)]},
        {},
        {"insert": [(0, 2)]},
    ]

    def _drive(self, mode):
        monitor = DynamicGraphMonitor(8, structure="triangle", engine_mode=mode)
        answers = []
        for batch in self.STREAM:
            monitor.update(**batch)
            answers.append(
                [monitor.is_triangle(0, 1, 2, ask=v) for v in range(3)]
            )
        monitor.settle()
        answers.append([monitor.is_triangle(3, 4, 5, ask=v) for v in (3, 4, 5)])
        return answers, monitor.metrics_summary(), monitor.state_fingerprint()

    def test_dense_sparse_columnar_identical(self):
        reference = self._drive("dense")
        for mode in ("sparse", "columnar"):
            assert self._drive(mode) == reference
