"""Tests for the structured trace-event layer.

The tracer rides the existing telemetry spans: every ``TELEMETRY.span``
context doubles as a trace slice when a :class:`TraceBuffer` is attached,
and stays a plain timer (one attribute check) when it is not.  These tests
pin the ring-buffer semantics, the JSONL interchange format (including the
sink-style torn-line tolerance), the Chrome trace-event export, and the
PR-6 invariant extended to tracing: a traced run is bit-identical to a
plain run across all four engine modes.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments import ExperimentSpec, execute_cell
from repro.obs import (
    TELEMETRY,
    TRACE_SUFFIX,
    TraceBuffer,
    build_chrome_trace,
    chrome_trace,
    load_trace_dir,
    read_trace_jsonl,
    write_trace_jsonl,
)

ENGINE_CONFIGS = [
    pytest.param({"engine_mode": "dense"}, id="dense"),
    pytest.param({"engine_mode": "sparse"}, id="sparse"),
    pytest.param({"engine_mode": "columnar"}, id="columnar"),
    pytest.param({"engine": "sharded", "num_workers": 2}, id="sharded"),
]


def _anchored(capacity=16, **kwargs) -> TraceBuffer:
    """A buffer with a deterministic wall-clock anchor for exact ts maths."""
    buffer = TraceBuffer(capacity, **kwargs)
    buffer.wall0 = 1000.0
    buffer.perf0 = 0.0
    return buffer


class TestTraceBuffer:
    def test_events_carry_wall_clock_and_duration(self):
        buffer = _anchored(cell_id="c1", engine_mode="dense")
        buffer.add("engine.round", 1.0, 3.5, round_index=7)
        (event,) = buffer.events()
        assert event["name"] == "engine.round"
        assert event["ts"] == pytest.approx(1001.0)
        assert event["dur_s"] == pytest.approx(2.5)
        assert event["round"] == 7
        assert event["mode"] == "dense"

    def test_mode_and_worker_default_to_buffer_attributes(self):
        buffer = _anchored(engine_mode="sparse", worker=2)
        buffer.add("a", 0.0, 1.0)
        buffer.add("b", 0.0, 1.0, mode="sharded", worker=0)
        events = buffer.events()
        assert (events[0]["mode"], events[0]["worker"]) == ("sparse", 2)
        assert (events[1]["mode"], events[1]["worker"]) == ("sharded", 0)

    def test_negative_duration_clamped_to_zero(self):
        buffer = _anchored()
        buffer.add("x", 5.0, 4.0)
        assert buffer.events()[0]["dur_s"] == 0.0

    def test_ring_bounds_and_dropped_counter(self):
        buffer = _anchored(capacity=4)
        for i in range(10):
            buffer.add(f"e{i}", float(i), float(i) + 0.5)
        events = buffer.events()
        assert len(events) == 4
        assert [e["name"] for e in events] == ["e6", "e7", "e8", "e9"]
        assert buffer.dropped == 6

    def test_dict_round_trip_preserves_wall_clock(self):
        buffer = _anchored(cell_id="cell-a", engine_mode="dense")
        buffer.add("engine.round", 1.0, 2.0, round_index=3)
        clone = TraceBuffer.from_dict(json.loads(json.dumps(buffer.to_dict())))
        assert clone.events() == buffer.events()
        assert clone.cell_id == "cell-a"

    def test_extend_from_dict_keeps_remote_wall_clock(self):
        remote = _anchored(worker=1)
        remote.add("engine.worker.compute", 2.0, 3.0)
        local = _anchored()
        local.wall0 = 2000.0  # a different clock frame than the remote
        absorbed = local.extend_from_dict(remote.to_dict())
        assert absorbed == 1
        (event,) = local.events()
        assert event["ts"] == pytest.approx(1002.0)
        assert event["worker"] == 1

    def test_extend_accumulates_dropped(self):
        remote = _anchored(capacity=1)
        remote.add("a", 0.0, 1.0)
        remote.add("b", 0.0, 1.0)
        local = _anchored()
        local.extend_from_dict(remote.to_dict())
        assert local.dropped == 1


class TestTraceJsonl:
    def test_write_read_round_trip(self, tmp_path):
        buffer = _anchored(cell_id="cell-a")
        for i in range(3):
            buffer.add("engine.round", float(i), float(i) + 0.25, round_index=i)
        path = tmp_path / f"cell-a{TRACE_SUFFIX}"
        assert write_trace_jsonl(path, buffer) == 3
        events = read_trace_jsonl(path)
        assert events == buffer.events()

    def test_reader_tolerates_torn_and_junk_lines(self, tmp_path):
        buffer = _anchored()
        buffer.add("engine.round", 0.0, 1.0)
        path = tmp_path / f"x{TRACE_SUFFIX}"
        write_trace_jsonl(path, buffer)
        with path.open("a") as handle:
            handle.write("[1, 2]\n")  # valid JSON, wrong shape
            handle.write('{"ts": 1.0}\n')  # missing name
            handle.write('{"name": "torn", "ts"')  # torn mid-write
        assert len(read_trace_jsonl(path)) == 1

    def test_load_trace_dir_maps_stems_to_events(self, tmp_path):
        for cell in ("cell-a", "cell-b"):
            buffer = _anchored(cell_id=cell)
            buffer.add("engine.round", 0.0, 1.0)
            write_trace_jsonl(tmp_path / f"{cell}{TRACE_SUFFIX}", buffer)
        traces = load_trace_dir(tmp_path)
        assert sorted(traces) == ["cell-a", "cell-b"]
        assert all(len(events) == 1 for events in traces.values())


class TestChromeExport:
    def test_chrome_trace_shape(self):
        coordinator = _anchored(cell_id="c")
        coordinator.add("engine.round", 1.0, 2.0, mode="sharded")
        worker = _anchored(worker=0)
        worker.add("engine.worker.compute", 1.2, 1.8)
        doc = chrome_trace(
            {"c": coordinator.events(), "c-worker": worker.events()}
        )
        assert doc["displayTimeUnit"] == "ms"
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert len(complete) == 2
        assert meta, "expected process/thread metadata events"
        assert all(e["ts"] >= 0 for e in complete)
        assert all(e["dur"] >= 0 for e in complete)
        # Worker events land on tid worker+1, coordinator events on tid 0.
        tids = {e["name"]: e["tid"] for e in complete}
        assert tids["engine.round"] == 0
        assert tids["engine.worker.compute"] == 1
        assert {e["cat"] for e in complete} == {"engine"}

    def test_build_chrome_trace_errors_name_the_path(self, tmp_path):
        with pytest.raises(FileNotFoundError, match=str(tmp_path / "nope")):
            build_chrome_trace(tmp_path / "nope")
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(ValueError, match=str(empty)):
            build_chrome_trace(empty)


class TestSpanIntegration:
    def teardown_method(self):
        TELEMETRY.disable()

    def test_span_emits_trace_slice_when_tracer_attached(self):
        tracer = TraceBuffer(16)
        TELEMETRY.enable(tracer=tracer)
        with TELEMETRY.span("engine.test"):
            pass
        TELEMETRY.disable()
        (event,) = tracer.events()
        assert event["name"] == "engine.test"
        assert event["dur_s"] >= 0.0

    def test_disable_detaches_tracer(self):
        TELEMETRY.enable(tracer=TraceBuffer(4))
        TELEMETRY.disable()
        assert TELEMETRY.tracer is None

    def test_span_without_tracer_adds_nothing(self):
        tracer = TraceBuffer(4)
        TELEMETRY.enable()
        with TELEMETRY.span("engine.test"):
            pass
        TELEMETRY.disable()
        assert tracer.events() == []


def _spec(**overrides) -> ExperimentSpec:
    base = {
        "algorithm": "triangle",
        "adversary": "churn",
        "n": 12,
        "rounds": 25,
        "seed": 5,
        "adversary_params": {"inserts_per_round": 2, "deletes_per_round": 1},
    }
    base.update(overrides)
    return ExperimentSpec.from_dict(base)


def _essence(record):
    return {
        key: value
        for key, value in record.items()
        if key
        not in (
            "duration_s",
            "finished_at",
            "telemetry_path",
            "profile_path",
            "telemetry",
            "trace_events",
            "trace_events_dropped",
            "trace_events_path",
        )
    }


class TestTracingBitIdentity:
    @pytest.mark.parametrize("config", ENGINE_CONFIGS)
    def test_tracing_does_not_perturb_results(self, config, tmp_path):
        spec = _spec(**config)
        plain_record, plain_trace = execute_cell(spec)
        traced_record, traced_trace = execute_cell(
            spec, telemetry_dir=tmp_path, trace_events=True
        )
        assert plain_record["status"] == "ok"
        assert _essence(traced_record) == _essence(plain_record)
        assert traced_trace == plain_trace
        assert (
            traced_record["state_fingerprint"] == plain_record["state_fingerprint"]
        )
        # The traced run actually produced engine slices on disk.
        events = read_trace_jsonl(traced_record["trace_events_path"])
        assert traced_record["trace_events"] == len(events) > 0
        assert any(e["name"] == "engine.round" for e in events)
