"""Setup shim for environments without the `wheel` package.

All project metadata lives in pyproject.toml; this file only exists so that
``pip install -e . --no-use-pep517`` (the legacy editable-install path) works
on offline machines whose setuptools cannot build PEP 660 editable wheels.
"""

from setuptools import setup

setup()
