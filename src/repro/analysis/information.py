"""Re-computation of the information-theoretic lower bounds (Theorems 2 and 4).

The lower bounds of the paper are counting arguments: the adversary forces a
certain number of bits to cross a constant number of ``O(log n)``-bit links,
so the number of rounds in which the data structures cannot yet be consistent
is at least (bits) / (links * log n), and dividing by the number of topology
changes gives the amortized bound.  These functions evaluate the *exact*
quantities appearing in the proofs (binomial-coefficient entropies, change
counts) rather than only their asymptotic forms, so the benchmark harness can
print concrete numbers next to the measured behaviour of the baseline
algorithms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

__all__ = [
    "Theorem2Bound",
    "Theorem4Bound",
    "log2_binomial",
    "theorem2_lower_bound",
    "theorem4_lower_bound",
]


def log2_binomial(n: int, k: int) -> float:
    """``log2(n choose k)`` computed via lgamma (exact enough for counting bounds)."""
    if k < 0 or k > n:
        return 0.0
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    ) / math.log(2)


@dataclass(frozen=True)
class Theorem2Bound:
    """The Theorem 2 counting bound for membership listing of a non-clique H."""

    n: int
    k: int
    iterations: int
    total_bits: float
    total_changes: int
    link_capacity_bits: float
    inconsistent_rounds_lower_bound: float
    amortized_lower_bound: float


def theorem2_lower_bound(n: int, k: int, *, bandwidth_factor: int = 1) -> Theorem2Bound:
    """Evaluate the Theorem 2 counting argument for an ``n``-node network.

    The adversary runs ``t = 1 + (n - k + 1) / 2`` iterations.  When the
    ``ℓ``-th fresh node attaches, distinguishing which of the
    ``C(n - k + 1, ℓ - 1)`` possible H-occurrences it completes requires
    ``log2 C(n - k + 1, ℓ - 1)`` bits to cross the at most ``k - 2`` edges that
    exist at that moment, each of capacity ``O(log n)`` bits per round.

    Returns the total bits, the implied number of inconsistent rounds, and the
    amortized lower bound (inconsistent rounds / topology changes).
    """
    if k < 3:
        raise ValueError("patterns have at least 3 vertices")
    m = n - k + 1
    iterations = 1 + m // 2
    total_bits = sum(log2_binomial(m, ell - 1) for ell in range(1, iterations + 1))
    # Each iteration performs at most 2 * (k - 2) changes (attach like a, detach,
    # attach like b), i.e. O(k n) = O(n) changes overall.
    total_changes = iterations * 2 * max(1, k - 2)
    link_capacity = bandwidth_factor * max(1.0, math.log2(max(2, n)))
    # Communication happens on at most k - 2 = O(1) edges at a time.
    concurrent_links = max(1, k - 2)
    inconsistent_rounds = total_bits / (concurrent_links * link_capacity)
    amortized = inconsistent_rounds / total_changes
    return Theorem2Bound(
        n=n,
        k=k,
        iterations=iterations,
        total_bits=total_bits,
        total_changes=total_changes,
        link_capacity_bits=link_capacity,
        inconsistent_rounds_lower_bound=inconsistent_rounds,
        amortized_lower_bound=amortized,
    )


@dataclass(frozen=True)
class Theorem4Bound:
    """The Theorem 4 counting bound for k-cycle listing, k >= 6."""

    n: int
    k: int
    t: int
    D: int
    bits_per_visit: float
    total_bits: float
    total_changes: int
    link_capacity_bits: float
    inconsistent_rounds_lower_bound: float
    amortized_lower_bound: float


def theorem4_lower_bound(n: int, k: int = 6, *, bandwidth_factor: int = 1) -> Theorem4Bound:
    """Evaluate the Theorem 4 counting argument.

    With ``t = D + γ ≈ sqrt(n)`` components of ``D`` leaves each, every visit
    between two components forces at least
    ``log2 C(D, 2D/3) - log2 C(5D/6, D/2)`` bits (the reduction in the number
    of possible leaf configurations of one of the two components) across the
    two bridging edges.  Summing the per-iteration bound ``Ω(ℓ D)`` over the
    ``t`` iterations gives total communication ``Ω(t^2 D)``, while only
    ``O(t^2 + t D)`` topology changes occur.
    """
    if k < 6:
        raise ValueError("Theorem 4 applies to k >= 6")
    gamma = math.ceil(k / 2) - 1
    t = int(math.isqrt(n))
    D = max(3, t - gamma)
    bits_per_visit = max(
        0.0, log2_binomial(D, (2 * D) // 3) - log2_binomial((5 * D) // 6, D // 2)
    )
    # Every iteration ℓ contributes at least (ℓ - 1)/2 * bits_per_visit bits
    # (the 2(I_1 + ... + I_{ℓ-1}) >= (ℓ-1) Ω(D) step of the proof).
    total_bits = sum((ell - 1) / 2 * bits_per_visit for ell in range(1, t + 1))
    # Phase I: ~t(2D/3 + D + γ) changes; phase II: 4 changes per visit.
    phase1_changes = t * ((2 * D) // 3 + D + max(0, gamma - 2))
    phase2_changes = 4 * (t * (t - 1) // 2)
    total_changes = phase1_changes + phase2_changes
    link_capacity = bandwidth_factor * max(1.0, math.log2(max(2, n)))
    # Communication happens on only two edges at a time.
    inconsistent_rounds = total_bits / (2 * link_capacity)
    amortized = inconsistent_rounds / total_changes if total_changes else 0.0
    return Theorem4Bound(
        n=n,
        k=k,
        t=t,
        D=D,
        bits_per_visit=bits_per_visit,
        total_bits=total_bits,
        total_changes=total_changes,
        link_capacity_bits=link_capacity,
        inconsistent_rounds_lower_bound=inconsistent_rounds,
        amortized_lower_bound=amortized,
    )
