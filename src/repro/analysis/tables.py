"""Plain-text and CSV result tables, fed straight from campaign result stores.

The paper has no empirical tables, so the harness prints its own: one table
per experiment, with the paper's claimed bound next to the measured values.
These helpers keep the formatting consistent across all benches and
EXPERIMENTS.md.

Benchmark results live in :class:`~repro.experiments.store.ResultStore`
directories (JSONL records plus traces); :func:`load_results_jsonl` and
:func:`campaign_table` read those records directly -- no CSV intermediary --
so any stored campaign can be rendered as a table after the fact.  (This
module reads the JSONL format itself rather than importing the store, which
depends on these formatting helpers.)
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "format_table",
    "write_csv",
    "format_float",
    "load_results_jsonl",
    "latest_ok_records",
    "record_lookup",
    "campaign_table",
]


def format_float(value, precision: int = 4) -> str:
    """Format numbers compactly for table cells (ints stay ints)."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e6 or abs(value) < 1e-3:
            return f"{value:.{precision}g}"
        return f"{value:.{precision}g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render an aligned plain-text table.

    Args:
        headers: column names.
        rows: row values (any objects; floats are formatted compactly).

    Returns:
        The table as a single string, including a separator line under the
        header.
    """
    rendered_rows: List[List[str]] = [[format_float(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match header length")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# Campaign result-store (JSONL) loading
# --------------------------------------------------------------------- #
def load_results_jsonl(path: str | Path) -> List[Dict[str, Any]]:
    """Load the per-cell records of a campaign result store, oldest first.

    ``path`` may be the store's root directory or the ``results.jsonl`` file
    itself.  Mirrors the store's own tolerance rules: blank and undecodable
    lines (torn final appends) are skipped, as are records without a
    ``cell_id``.  The file is split at the *byte* level because a worker
    killed mid-write can tear a line inside a multi-byte UTF-8 sequence --
    decoding the whole file at once would raise and take every intact
    record down with the torn tail.
    """
    path = Path(path)
    if path.is_dir():
        path = path / "results.jsonl"
    if not path.exists():
        return []
    records: List[Dict[str, Any]] = []
    for raw in path.read_bytes().split(b"\n"):
        if not raw.strip():
            continue
        try:
            record = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            continue
        if isinstance(record, dict) and "cell_id" in record:
            records.append(record)
    return records


def latest_ok_records(records: Iterable[Mapping[str, Any]]) -> List[Dict[str, Any]]:
    """The latest record per cell id, kept only when its status is ``"ok"``.

    Later lines win, and a cell whose *latest* record is an error is dropped
    entirely (matching the resume semantics of
    :class:`~repro.experiments.store.ResultStore`: such a cell is considered
    incomplete and will be re-run).
    """
    latest: Dict[str, Dict[str, Any]] = {}
    for record in records:
        latest[record["cell_id"]] = dict(record)
    return [r for r in latest.values() if r.get("status") == "ok"]


def record_lookup(record: Mapping[str, Any], dotted: str) -> Any:
    """Resolve a column name into a record: spec fields, then metrics, then
    top-level record keys, then dotted paths (``spec.adversary_params.k``,
    ``metrics.total_changes``).

    The top-level fallback surfaces bookkeeping the campaign runner stamps
    next to the metrics -- ``duration_s``, ``status``, ``finished_at`` -- in
    tables without a dotted path.  Shared with
    :class:`repro.experiments.store.ResultStore` aggregation, so
    column/grouping semantics are identical everywhere.
    """
    if "." in dotted:
        node: Any = record
        for part in dotted.split("."):
            if not isinstance(node, Mapping) or part not in node:
                return None
            node = node[part]
        return node
    spec = record.get("spec", {})
    if dotted in spec:
        return spec[dotted]
    metrics = record.get("metrics", {})
    if dotted in metrics:
        return metrics[dotted]
    return record.get(dotted)


def campaign_table(
    store_path: str | Path,
    columns: Sequence[str],
    *,
    headers: Optional[Sequence[str]] = None,
) -> Tuple[List[str], List[List[Any]]]:
    """Build ``(headers, rows)`` straight from a stored campaign's JSONL.

    Args:
        store_path: result-store directory (or its ``results.jsonl``).
        columns: per-row lookups -- spec fields, metric names, or dotted
            paths into the raw record.
        headers: column titles; defaults to the column lookups themselves.

    Returns a pair ready for :func:`format_table` / :func:`write_csv`, one
    row per completed cell in stored (campaign expansion) order.
    """
    records = latest_ok_records(load_results_jsonl(store_path))
    rows = [[record_lookup(record, column) for column in columns] for record in records]
    return list(headers if headers is not None else columns), rows


def write_csv(path: str | Path, headers: Sequence[str], rows: Iterable[Sequence]) -> Path:
    """Write the same table as CSV and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(list(row))
    return path
