"""Plain-text and CSV result tables for the benchmark harness.

The paper has no empirical tables, so the harness prints its own: one table
per experiment, with the paper's claimed bound next to the measured values.
These helpers keep the formatting consistent across all benches and
EXPERIMENTS.md.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, List, Sequence

__all__ = ["format_table", "write_csv", "format_float"]


def format_float(value, precision: int = 4) -> str:
    """Format numbers compactly for table cells (ints stay ints)."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e6 or abs(value) < 1e-3:
            return f"{value:.{precision}g}"
        return f"{value:.{precision}g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render an aligned plain-text table.

    Args:
        headers: column names.
        rows: row values (any objects; floats are formatted compactly).

    Returns:
        The table as a single string, including a separator line under the
        header.
    """
    rendered_rows: List[List[str]] = [[format_float(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match header length")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def write_csv(path: str | Path, headers: Sequence[str], rows: Iterable[Sequence]) -> Path:
    """Write the same table as CSV and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(list(row))
    return path
