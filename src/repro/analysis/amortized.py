"""Analysis of measured amortized complexities against the paper's bounds.

The upper-bound theorems claim *constant* amortized round complexity; the
lower-bound theorems claim growth like ``n / log n`` or ``sqrt(n) / log n``.
This module provides small, dependency-light tools to check a series of
measurements against those shapes:

* :func:`is_bounded_by_constant` -- every measurement below a threshold.
* :func:`growth_exponent` -- least-squares log-log slope of a curve.
* :func:`fit_scaled_model` -- best multiplicative fit of a measurement series
  against a reference model (``n/log n``, ``sqrt(n)/log n``, constant) and the
  relative residual of that fit.
* :func:`compare_models` -- which of several models explains the data best.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Sequence, Tuple

import numpy as np

__all__ = [
    "MODELS",
    "FitResult",
    "is_bounded_by_constant",
    "growth_exponent",
    "fit_scaled_model",
    "compare_models",
]

#: Reference growth models, mapping a size ``n`` to the model's value.
MODELS: Dict[str, Callable[[float], float]] = {
    "constant": lambda n: 1.0,
    "log_n": lambda n: math.log2(max(2.0, n)),
    "sqrt_n_over_log_n": lambda n: math.sqrt(n) / math.log2(max(2.0, n)),
    "n_over_log_n": lambda n: n / math.log2(max(2.0, n)),
    "linear": lambda n: float(n),
}


@dataclass(frozen=True)
class FitResult:
    """Result of fitting measurements against a scaled reference model."""

    model: str
    scale: float
    relative_residual: float

    def predict(self, n: float) -> float:
        return self.scale * MODELS[self.model](n)


def is_bounded_by_constant(values: Sequence[float], bound: float) -> bool:
    """Whether every measured value is at most ``bound``."""
    return all(v <= bound for v in values)


def growth_exponent(sizes: Sequence[float], values: Sequence[float]) -> float:
    """Least-squares slope of ``log(values)`` against ``log(sizes)``.

    A slope near 0 indicates constant behaviour, near 0.5 square-root growth,
    near 1 linear growth.  Zero values are clamped to a small epsilon so that
    a flat all-zero series reports slope 0.
    """
    if len(sizes) != len(values) or len(sizes) < 2:
        raise ValueError("need at least two (size, value) pairs")
    xs = np.log(np.asarray(sizes, dtype=float))
    ys = np.log(np.maximum(np.asarray(values, dtype=float), 1e-12))
    slope, _intercept = np.polyfit(xs, ys, 1)
    return float(slope)


def fit_scaled_model(
    sizes: Sequence[float], values: Sequence[float], model: str
) -> FitResult:
    """Best least-squares multiplicative fit of ``values ≈ c * model(sizes)``.

    Returns the scale ``c`` and the relative RMS residual
    ``||values - c*model|| / ||values||``.
    """
    if model not in MODELS:
        raise KeyError(f"unknown model {model!r}; choose from {sorted(MODELS)}")
    reference = np.asarray([MODELS[model](n) for n in sizes], dtype=float)
    measured = np.asarray(values, dtype=float)
    denom = float(reference @ reference)
    scale = float(measured @ reference) / denom if denom > 0 else 0.0
    residual = measured - scale * reference
    norm = float(np.linalg.norm(measured))
    relative = float(np.linalg.norm(residual)) / norm if norm > 0 else 0.0
    return FitResult(model=model, scale=scale, relative_residual=relative)


def compare_models(
    sizes: Sequence[float],
    values: Sequence[float],
    models: Sequence[str] = ("constant", "sqrt_n_over_log_n", "n_over_log_n"),
) -> Mapping[str, FitResult]:
    """Fit several models and return them keyed by name (best = lowest residual)."""
    return {model: fit_scaled_model(sizes, values, model) for model in models}
