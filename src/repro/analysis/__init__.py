"""Analysis utilities: amortized-complexity fits, counting bounds, result tables."""

from .amortized import (
    MODELS,
    FitResult,
    compare_models,
    fit_scaled_model,
    growth_exponent,
    is_bounded_by_constant,
)
from .information import (
    Theorem2Bound,
    Theorem4Bound,
    log2_binomial,
    theorem2_lower_bound,
    theorem4_lower_bound,
)
from .tables import (
    campaign_table,
    format_float,
    format_table,
    latest_ok_records,
    load_results_jsonl,
    write_csv,
)

__all__ = [
    "MODELS",
    "FitResult",
    "Theorem2Bound",
    "Theorem4Bound",
    "campaign_table",
    "compare_models",
    "fit_scaled_model",
    "format_float",
    "format_table",
    "growth_exponent",
    "is_bounded_by_constant",
    "latest_ok_records",
    "load_results_jsonl",
    "log2_binomial",
    "theorem2_lower_bound",
    "theorem4_lower_bound",
    "write_csv",
]
