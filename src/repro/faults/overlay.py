"""Topology-fault overlay: masks the adversary's graph down to the physical one.

The adversary of the model edits a *logical* graph -- the topology that would
exist if nothing were failing.  Topology faults (crashes, regional outages,
partitions) mask parts of that graph: edges incident to a down node and edges
severed by a partition do not physically exist, and reappear when the node
recovers or the cut heals.

:class:`FaultOverlayAdversary` implements the masking as an adversary
wrapper, which keeps the engines almost fault-agnostic: the wrapped inner
adversary runs against a private logical :class:`DynamicNetwork`, and per
round the overlay emits the *delta between the current physical graph and
the desired (masked) one* as an ordinary :class:`RoundChanges` batch.
Consequences, all deliberate:

* A crashed node *receives its edge-delete indications* -- the network tears
  the links, exactly like every other topology change in the model.  There
  is no fail-silent state below the topology layer.
* Recorded traces (and therefore the differential harness and the sharded
  engine's coordinator) see the **physical** schedule, so all three engines
  replay the identical graph without knowing faults exist.
* The fuzzer's scripted twins re-derive the physical schedule from the
  *logical* one: ``materialize_trace`` regenerates the logical schedule and
  the spec's fault fields rebuild the same overlay on top.

Masking is recomputed from the full logical edge set every round (not
incrementally) so the physical graph is a pure function of (logical graph,
round, seed) -- the overlay cannot drift even across recover/heal races.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Set, Tuple

from ..simulator.adversary import Adversary, AdversaryView
from ..simulator.events import Edge, RoundChanges
from ..simulator.network import DynamicNetwork
from .models import FaultPlan

__all__ = ["FaultOverlayAdversary"]


class FaultOverlayAdversary(Adversary):
    """Wraps an adversary, masking its logical schedule with topology faults.

    Args:
        inner: the logical adversary (any registry adversary, including
            trace replay and the fuzzer).
        n: network size.
        plan: the run's :class:`~repro.faults.models.FaultPlan`; must carry a
            model with ``affects_topology`` (pure-loss models do not need an
            overlay and should not pay for one).
    """

    def __init__(self, inner: Adversary, n: int, plan: FaultPlan) -> None:
        if not plan.affects_topology:
            raise ValueError(
                f"fault model {plan.name!r} does not affect topology; "
                "wire it through the engines only"
            )
        self._inner = inner
        self._n = int(n)
        self._plan = plan
        self._logical = DynamicNetwork(n)
        self._down_prev: FrozenSet[int] = frozenset()

    @property
    def is_done(self) -> bool:
        return self._inner.is_done

    @property
    def inner(self) -> Adversary:
        """The wrapped logical adversary (exposed for introspection/tests)."""
        return self._inner

    def changes_for_round(self, view: AdversaryView) -> Optional[RoundChanges]:
        round_index = view.round_index
        # The inner adversary observes the *logical* graph it is editing, not
        # the fault-masked physical one -- its schedule must be independent
        # of the fault model so the same seed yields the same logical trace
        # with faults on or off.
        logical_view = AdversaryView(
            round_index=round_index,
            n=self._n,
            edges=self._logical.edges,
            all_consistent=view.all_consistent,
            total_changes=self._logical.total_changes,
        )
        changes = self._inner.changes_for_round(logical_view)
        if changes is None:
            return None
        self._logical.apply_changes(round_index, changes)

        model = self._plan.model
        down = model.down_nodes(round_index)
        down_incident = self._logical.edges_incident(down)
        desired: Set[Edge] = set()
        masked = 0
        for edge in self._logical.edges:
            if edge in down_incident or model.cuts_edge(round_index, *edge):
                masked += 1
            else:
                desired.add(edge)
        self._plan.note_topology_round(masked_edges=masked, down_nodes=len(down))

        # Amnesia: nodes leaving the down set this round restart blank.  The
        # plan records them; the engines rebuild the instances right after
        # applying this round's changes, so the fresh node sees its
        # re-insertion indications.
        recovered = self._down_prev - down
        if model.amnesia and recovered:
            self._plan.record_resets(round_index, sorted(recovered))
        self._down_prev = down

        current = view.edges
        insert: Tuple[Edge, ...] = tuple(sorted(desired - current))
        delete: Tuple[Edge, ...] = tuple(sorted(current - desired))
        return RoundChanges.of(insert=insert, delete=delete)
