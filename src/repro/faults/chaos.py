"""Chaos adversaries: cells that attack the *harness* instead of the graph.

These registry adversaries exist to exercise the campaign runner's worker
supervision (Level 2 of the fault work): a cell that SIGKILLs its own worker
a configurable number of times, and a cell that stalls long enough to trip
the per-cell timeout.  They behave like ordinary adversaries from the spec's
point of view -- after the chaos budget is exhausted they delegate to a real
inner adversary, so a retried cell eventually *succeeds* and the
retry-then-ok path is testable end to end.  A kill budget larger than the
retry budget turns the cell into a poison cell and exercises quarantine.

Determinism note: the kill counter lives in a file (``kill_file``) because
the process executing the cell is destroyed by the kill -- the count must
survive it.  Attempts are sequential (the supervisor retries one at a time),
so a read-then-append counter is race-free.
"""

from __future__ import annotations

import os
import signal
import time
from pathlib import Path
from typing import Dict

from ..simulator.adversary import Adversary

__all__ = ["build_chaos_kill", "build_chaos_sleep", "CHAOS_ADVERSARIES"]


def _attempts_so_far(path: Path) -> int:
    try:
        return len(path.read_bytes().splitlines())
    except FileNotFoundError:
        return 0


def _mark_attempt(path: Path) -> None:
    # Append + fsync before the kill so the attempt is durably counted even
    # though the process dies microseconds later.
    with open(path, "ab") as handle:
        handle.write(b"x\n")
        handle.flush()
        os.fsync(handle.fileno())


def _build_inner(n: int, rounds, seed: int, params: Dict) -> Adversary:
    # Imported lazily: the registry imports this module, so a module-level
    # import would be circular.
    from ..experiments.registry import build_adversary

    inner = params.pop("inner", "churn")
    inner_params = params.pop("inner_params", None)
    if inner_params is None:
        inner_params = {"inserts_per_round": 2, "deletes_per_round": 1}
    if params:
        raise ValueError(f"unknown chaos adversary params: {sorted(params)}")
    return build_adversary(inner, n=n, rounds=rounds, seed=seed, params=inner_params)


def build_chaos_kill(n: int, rounds, seed: int, params: Dict) -> Adversary:
    """A cell that SIGKILLs its own worker ``times`` times, then succeeds.

    Params:
        kill_file: counter file path (required); one line per kill so far.
        times: number of attempts to kill before behaving normally (default 1).
        inner / inner_params: the adversary to delegate to once exhausted.
    """
    params = dict(params)
    kill_file = params.pop("kill_file", None)
    times = int(params.pop("times", 1))
    if kill_file is None:
        raise ValueError("chaos_kill requires a 'kill_file' param (counter path)")
    if times < 0:
        raise ValueError(f"chaos_kill 'times' must be >= 0, got {times}")
    path = Path(kill_file)
    if _attempts_so_far(path) < times:
        _mark_attempt(path)
        os.kill(os.getpid(), signal.SIGKILL)
    return _build_inner(n, rounds, seed, params)


def build_chaos_sleep(n: int, rounds, seed: int, params: Dict) -> Adversary:
    """A cell that stalls ``sleep_s`` seconds at build time, then proceeds.

    With a ``skip_file`` param the stall happens only while the file has
    fewer than ``times`` lines (default: always stall), so a timed-out cell
    can succeed on retry.
    """
    params = dict(params)
    sleep_s = params.pop("sleep_s", None)
    skip_file = params.pop("skip_file", None)
    times = int(params.pop("times", 1))
    if sleep_s is None:
        raise ValueError("chaos_sleep requires a 'sleep_s' param (seconds)")
    stall = True
    if skip_file is not None:
        path = Path(skip_file)
        stall = _attempts_so_far(path) < times
        if stall:
            _mark_attempt(path)
    if stall:
        time.sleep(float(sleep_s))
    return _build_inner(n, rounds, seed, params)


#: Builders the experiments registry installs under these adversary names.
CHAOS_ADVERSARIES = {
    "chaos_kill": build_chaos_kill,
    "chaos_sleep": build_chaos_sleep,
}
