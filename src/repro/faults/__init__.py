"""Fault injection: seeded deterministic failure models + chaos adversaries.

Level 1 of the robustness layer (see :mod:`repro.faults.models` and
:mod:`repro.faults.overlay`): message loss, node crash/recover, correlated
regional outages and partition/heal cycles, all pure functions of the spec
seed so every engine mode realizes the identical fault schedule.  Level 2
support (:mod:`repro.faults.chaos`): adversaries that kill or stall their own
campaign worker, for exercising the runner's supervision.
"""

from .chaos import CHAOS_ADVERSARIES, build_chaos_kill, build_chaos_sleep
from .models import (
    FAULT_NONE,
    FAULTS,
    CrashRecover,
    FaultModel,
    FaultPlan,
    GilbertElliottLoss,
    PartitionCycle,
    RegionalOutage,
    UniformLoss,
    build_fault_plan,
    register_fault,
)
from .overlay import FaultOverlayAdversary

__all__ = [
    "FAULT_NONE",
    "FAULTS",
    "CHAOS_ADVERSARIES",
    "CrashRecover",
    "FaultModel",
    "FaultOverlayAdversary",
    "FaultPlan",
    "GilbertElliottLoss",
    "PartitionCycle",
    "RegionalOutage",
    "UniformLoss",
    "build_chaos_kill",
    "build_chaos_sleep",
    "build_fault_plan",
    "register_fault",
]
