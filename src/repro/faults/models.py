"""Seeded, deterministic fault models.

A :class:`FaultModel` describes *environmental* failures layered on top of the
adversary's topology schedule: lossy links, crashing nodes, correlated
regional outages and partition/heal cycles.  Every model is a pure function
of ``(seed, round, ...)`` -- no hidden RNG state that depends on call order --
so the same spec produces bit-identical fault schedules under the dense,
sparse and sharded engines, and a scripted replay of a fuzzed schedule
re-derives exactly the physical topology the original run saw.

Two fault surfaces exist:

* **delivery faults** (``affects_delivery``): the engine consults
  :meth:`FaultModel.drops_message` for every non-silent envelope *after*
  bandwidth charging and send accounting, *before* inbox insertion.  A
  dropped message is sent-but-lost: it costs bandwidth and shows up in
  ``num_envelopes``/``bits_sent`` exactly like a delivered one, so the
  per-round records stay engine-independent.
* **topology faults** (``affects_topology``): the
  :class:`~repro.faults.overlay.FaultOverlayAdversary` masks the adversary's
  *logical* graph down to the *physical* graph the algorithm runs on --
  edges incident to down nodes and edges cut by a partition disappear, and
  reappear on recovery/heal.  Crashed nodes receive their edge-delete
  indications (the network tears the links; the model has no fail-silent
  notion below the topology layer).

The :class:`FaultPlan` is the per-run handle shared by the overlay, the
engines and the drain loop: it carries the model, the amnesia reset schedule,
the fault statistics, and the drain-freeze latch (fault activity stops when
the drain phase starts, so lossy cells still converge; pass
``during_drain=true`` to keep faulting through the drain).
"""

from __future__ import annotations

from hashlib import blake2b
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

__all__ = [
    "FaultModel",
    "UniformLoss",
    "GilbertElliottLoss",
    "CrashRecover",
    "RegionalOutage",
    "PartitionCycle",
    "FaultPlan",
    "FAULTS",
    "FAULT_NONE",
    "register_fault",
    "build_fault_plan",
]

#: Spec value meaning "no fault model"; kept out of the registry so campaign
#: grids can sweep ``sorted(FAULTS)`` without a no-op cell sneaking in.
FAULT_NONE = "none"


def _digest(*parts) -> int:
    """A 64-bit digest of the given parts (stable across processes/platforms).

    The builtin ``hash()`` is salted per process, so every fault decision
    goes through blake2b instead: same seed, same round, same answer, in the
    coordinator and in every sharded worker.
    """
    h = blake2b(digest_size=8)
    for part in parts:
        h.update(str(part).encode("ascii"))
        h.update(b"\x1f")
    return int.from_bytes(h.digest(), "big")


def _unit(*parts) -> float:
    """A deterministic draw in ``[0, 1)`` keyed by the given parts."""
    return _digest(*parts) / 2**64


class FaultModel:
    """Base class: a no-fault model; subclasses override the hooks they use.

    Args:
        n: network size.
        seed: the spec seed; every decision is keyed by it.
    """

    #: Registry name (set per subclass; used to key the digest stream so two
    #: models with the same seed make independent decisions).
    name = "base"
    #: Whether the model masks edges (consulted via the overlay adversary).
    affects_topology = False
    #: Whether the model drops messages (consulted in the engines' send loop).
    affects_delivery = False
    #: Whether recovering nodes lose their local state (amnesia variant).
    amnesia = False

    def __init__(self, n: int, seed: int) -> None:
        if n <= 0:
            raise ValueError("fault model needs a positive network size")
        self.n = int(n)
        self.seed = int(seed)

    # -- delivery surface ---------------------------------------------- #
    def drops_message(self, round_index: int, sender: int, target: int) -> bool:
        """Whether the envelope ``sender -> target`` is lost this round."""
        return False

    # -- topology surface ---------------------------------------------- #
    def down_nodes(self, round_index: int) -> FrozenSet[int]:
        """Nodes that are crashed (all incident edges masked) this round."""
        return frozenset()

    def cuts_edge(self, round_index: int, u: int, v: int) -> bool:
        """Whether the (undirected) edge ``{u, v}`` is severed this round."""
        return False


class UniformLoss(FaultModel):
    """Independent per-message loss: each envelope is dropped w.p. ``p``."""

    name = "uniform_loss"
    affects_delivery = True

    def __init__(self, n: int, seed: int, *, p: float = 0.05) -> None:
        super().__init__(n, seed)
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"loss probability must be in [0, 1], got {p}")
        self.p = float(p)

    def drops_message(self, round_index: int, sender: int, target: int) -> bool:
        if self.p <= 0.0:
            return False
        return _unit(self.seed, self.name, round_index, sender, target) < self.p


class GilbertElliottLoss(FaultModel):
    """Bursty loss: a two-state Gilbert-Elliott chain per directed link.

    Each link is *good* or *bad*; per round it enters the bad state w.p.
    ``p_enter`` and leaves it w.p. ``p_exit``.  Messages are dropped w.p.
    ``loss_bad`` while bad (``loss_good`` while good, default 0).  The chain
    is advanced lazily with a monotone per-link cursor, but the state at any
    round is a pure function of ``(seed, link, round)`` -- the walk from
    round 1 -- so the call pattern (which differs between engines) cannot
    change the answers.
    """

    name = "burst_loss"
    affects_delivery = True

    def __init__(
        self,
        n: int,
        seed: int,
        *,
        p_enter: float = 0.05,
        p_exit: float = 0.3,
        loss_good: float = 0.0,
        loss_bad: float = 0.9,
    ) -> None:
        super().__init__(n, seed)
        for label, value in (
            ("p_enter", p_enter),
            ("p_exit", p_exit),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{label} must be in [0, 1], got {value}")
        self.p_enter = float(p_enter)
        self.p_exit = float(p_exit)
        self.loss_good = float(loss_good)
        self.loss_bad = float(loss_bad)
        # Per-link chain cursor: (u, v) -> (last advanced round, in bad state).
        self._chain: Dict[Tuple[int, int], Tuple[int, bool]] = {}

    def _bad(self, round_index: int, u: int, v: int) -> bool:
        last, bad = self._chain.get((u, v), (0, False))
        if round_index < last:
            # Out-of-order query (never happens in a forward run); replay the
            # walk from the start so the answer stays call-order independent.
            last, bad = 0, False
        for r in range(last + 1, round_index + 1):
            if bad:
                bad = _unit(self.seed, self.name, "exit", u, v, r) >= self.p_exit
            else:
                bad = _unit(self.seed, self.name, "enter", u, v, r) < self.p_enter
        self._chain[(u, v)] = (round_index, bad)
        return bad

    def drops_message(self, round_index: int, sender: int, target: int) -> bool:
        p = self.loss_bad if self._bad(round_index, sender, target) else self.loss_good
        if p <= 0.0:
            return False
        return _unit(self.seed, self.name, "drop", round_index, sender, target) < p


class CrashRecover(FaultModel):
    """Independent node crash/recover cycles.

    Rounds are grouped into epochs of ``cycle`` rounds.  Per (node, epoch),
    the node crashes w.p. ``crash_p`` and stays down for ``downtime``
    consecutive rounds at a seeded offset inside the epoch.  With
    ``amnesia=True`` a recovering node comes back with a **fresh** algorithm
    instance (its local state is lost); otherwise it is a clean stop/resume
    and only its edges flapped.
    """

    name = "crash"
    affects_topology = True

    def __init__(
        self,
        n: int,
        seed: int,
        *,
        crash_p: float = 0.2,
        cycle: int = 8,
        downtime: int = 3,
        amnesia: bool = False,
    ) -> None:
        super().__init__(n, seed)
        if not 0.0 <= crash_p <= 1.0:
            raise ValueError(f"crash_p must be in [0, 1], got {crash_p}")
        if cycle < 1 or downtime < 1 or downtime > cycle:
            raise ValueError(
                f"need 1 <= downtime <= cycle, got cycle={cycle} downtime={downtime}"
            )
        self.crash_p = float(crash_p)
        self.cycle = int(cycle)
        self.downtime = int(downtime)
        self.amnesia = bool(amnesia)

    def _is_down(self, round_index: int, v: int) -> bool:
        if round_index < 1:
            return False
        epoch, offset = divmod(round_index - 1, self.cycle)
        if _unit(self.seed, self.name, "crash", v, epoch) >= self.crash_p:
            return False
        slots = self.cycle - self.downtime + 1
        start = _digest(self.seed, self.name, "start", v, epoch) % slots
        return start <= offset < start + self.downtime

    def down_nodes(self, round_index: int) -> FrozenSet[int]:
        return frozenset(
            v for v in range(self.n) if self._is_down(round_index, v)
        )


class RegionalOutage(FaultModel):
    """Correlated failures: contiguous node regions crash together.

    The node range is split into ``regions`` contiguous blocks; per
    (region, epoch) the whole block goes down w.p. ``outage_p`` for
    ``downtime`` rounds, modelling a rack/zone losing power rather than
    independent node failures.
    """

    name = "regional"
    affects_topology = True

    def __init__(
        self,
        n: int,
        seed: int,
        *,
        regions: int = 3,
        outage_p: float = 0.25,
        cycle: int = 10,
        downtime: int = 4,
        amnesia: bool = False,
    ) -> None:
        super().__init__(n, seed)
        if regions < 1 or regions > n:
            raise ValueError(f"need 1 <= regions <= n, got {regions}")
        if not 0.0 <= outage_p <= 1.0:
            raise ValueError(f"outage_p must be in [0, 1], got {outage_p}")
        if cycle < 1 or downtime < 1 or downtime > cycle:
            raise ValueError(
                f"need 1 <= downtime <= cycle, got cycle={cycle} downtime={downtime}"
            )
        self.regions = int(regions)
        self.outage_p = float(outage_p)
        self.cycle = int(cycle)
        self.downtime = int(downtime)
        self.amnesia = bool(amnesia)

    def _region_of(self, v: int) -> int:
        # Same contiguous balanced split as shard_nodes: the first
        # (n % regions) regions get one extra node.  regions <= n, so the
        # base block size is always >= 1.
        base, extra = divmod(self.n, self.regions)
        if v < (base + 1) * extra:
            return v // (base + 1)
        return extra + (v - (base + 1) * extra) // base

    def _region_down(self, round_index: int, region: int) -> bool:
        if round_index < 1:
            return False
        epoch, offset = divmod(round_index - 1, self.cycle)
        if _unit(self.seed, self.name, "outage", region, epoch) >= self.outage_p:
            return False
        slots = self.cycle - self.downtime + 1
        start = _digest(self.seed, self.name, "start", region, epoch) % slots
        return start <= offset < start + self.downtime

    def down_nodes(self, round_index: int) -> FrozenSet[int]:
        downs = [
            g for g in range(self.regions) if self._region_down(round_index, g)
        ]
        if not downs:
            return frozenset()
        down_set = set(downs)
        return frozenset(
            v for v in range(self.n) if self._region_of(v) in down_set
        )


class PartitionCycle(FaultModel):
    """Partition/heal cycles: the network splits in two, then heals.

    Every ``period`` rounds a new cycle starts: for the first ``split``
    rounds every edge crossing a seeded 2-coloring of the nodes is severed
    (the coloring is re-drawn per cycle, so different cuts are exercised);
    for the remaining rounds the cut heals and the masked edges reappear.
    """

    name = "partition"
    affects_topology = True

    def __init__(
        self, n: int, seed: int, *, period: int = 10, split: int = 4
    ) -> None:
        super().__init__(n, seed)
        if period < 1 or split < 0 or split > period:
            raise ValueError(
                f"need 0 <= split <= period, got period={period} split={split}"
            )
        self.period = int(period)
        self.split = int(split)

    def _side(self, cycle: int, v: int) -> int:
        return _digest(self.seed, self.name, "side", cycle, v) & 1

    def cuts_edge(self, round_index: int, u: int, v: int) -> bool:
        if round_index < 1 or self.split == 0:
            return False
        cycle, offset = divmod(round_index - 1, self.period)
        if offset >= self.split:
            return False
        return self._side(cycle, u) != self._side(cycle, v)


class FaultPlan:
    """The per-run fault handle shared by overlay, engines and drain loop.

    One plan is built per cell/run from the spec's ``faults``/``fault_params``
    fields.  It owns the model, the amnesia reset schedule (recorded by the
    overlay, consumed by the engines), the fault statistics (merged into the
    cell metrics as ``fault_*`` keys), and the drain-freeze latch.

    The ``algorithm_factory`` attribute is set by whoever wires the plan into
    a run (:class:`~repro.simulator.runner.SimulationRunner` or the sharded
    engine); the engines call :meth:`fresh_node` through it to rebuild
    amnesiac nodes.
    """

    def __init__(self, model: FaultModel, *, during_drain: bool = False) -> None:
        self.model = model
        self.name = model.name
        self.during_drain = bool(during_drain)
        self.algorithm_factory: Optional[Callable] = None
        self.stats: Dict[str, int] = {
            "fault_messages_dropped": 0,
            "fault_node_resets": 0,
            "fault_masked_edges": 0,
            "fault_down_node_rounds": 0,
        }
        self._resets_by_round: Dict[int, Tuple[int, ...]] = {}
        self._draining = False

    # -- surfaces ------------------------------------------------------ #
    @property
    def affects_topology(self) -> bool:
        return self.model.affects_topology

    @property
    def affects_delivery(self) -> bool:
        return self.model.affects_delivery

    # -- delivery ------------------------------------------------------ #
    def message_dropped(self, round_index: int, sender: int, target: int) -> bool:
        """Engine hook: whether this envelope is lost (and count it if so)."""
        if self._draining:
            return False
        if self.model.drops_message(round_index, sender, target):
            self.stats["fault_messages_dropped"] += 1
            return True
        return False

    # -- amnesia resets ------------------------------------------------ #
    def record_resets(self, round_index: int, nodes: Sequence[int]) -> None:
        """Overlay hook: these nodes recover with fresh state this round."""
        if nodes:
            self._resets_by_round[round_index] = tuple(nodes)
            self.stats["fault_node_resets"] += len(nodes)

    def resets_for_round(self, round_index: int) -> Tuple[int, ...]:
        """Engine hook: node ids to rebuild right after the topology stage."""
        return self._resets_by_round.get(round_index, ())

    def fresh_node(self, v: int, n: int):
        """Build a blank algorithm instance for a recovering amnesiac node."""
        if self.algorithm_factory is None:
            raise RuntimeError(
                "fault plan has no algorithm_factory; it was never wired into a run"
            )
        return self.algorithm_factory(v, n)

    # -- topology accounting (overlay hook) ---------------------------- #
    def note_topology_round(self, *, masked_edges: int, down_nodes: int) -> None:
        self.stats["fault_masked_edges"] += masked_edges
        self.stats["fault_down_node_rounds"] += down_nodes

    # -- drain freeze --------------------------------------------------- #
    def enter_drain(self) -> None:
        """Freeze fault activity for the drain phase (unless opted in).

        Drain rounds never consult the adversary, so topology faults freeze
        on their own; message loss would keep firing and can livelock a
        self-stabilizing protocol that is re-sending the same lost update
        forever, so it is latched off here.  ``during_drain=true`` keeps the
        loss on (for experiments that *want* to observe non-convergence).
        """
        if not self.during_drain:
            self._draining = True


#: Registered fault model builders, keyed by spec/CLI name.
FAULTS: Dict[str, Callable[..., FaultModel]] = {}


def register_fault(name: str, builder: Callable[..., FaultModel]) -> None:
    """Register a fault model builder under ``name`` (spec ``faults`` value)."""
    if name == FAULT_NONE:
        raise ValueError(f"{FAULT_NONE!r} is reserved for 'no faults'")
    if name in FAULTS:
        raise ValueError(f"fault model {name!r} already registered")
    FAULTS[name] = builder


for _cls in (UniformLoss, GilbertElliottLoss, CrashRecover, RegionalOutage, PartitionCycle):
    register_fault(_cls.name, _cls)


def build_fault_plan(
    name: str, *, n: int, seed: int, params: Optional[Dict] = None
) -> Optional[FaultPlan]:
    """Build the :class:`FaultPlan` for a spec's fault axis (``None`` if off).

    ``params`` are the spec's ``fault_params``; the plan-level
    ``during_drain`` knob lives there too, every other key is forwarded to
    the model builder.  Unknown names/params surface as ``ValueError`` so the
    CLI reports them as usage errors.
    """
    if name == FAULT_NONE:
        return None
    builder = FAULTS.get(name)
    if builder is None:
        raise ValueError(
            f"unknown fault model {name!r}; choose from "
            f"{FAULT_NONE}, {', '.join(sorted(FAULTS))}"
        )
    kwargs = dict(params or {})
    during_drain = bool(kwargs.pop("during_drain", False))
    try:
        model = builder(n, seed, **kwargs)
    except TypeError as exc:
        raise ValueError(f"bad fault_params for {name!r}: {exc}") from exc
    return FaultPlan(model, during_drain=during_drain)
