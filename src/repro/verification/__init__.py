"""Differential verification: cross-engine identity plus a rich checks registry.

The reproduction's correctness story has two legs:

* **Checks** (:mod:`repro.verification.checks`) -- first-class
  :class:`~repro.verification.checks.Check` objects comparing the distributed
  nodes' state against the centralized oracle, with per-round hooks and
  structured :class:`~repro.verification.checks.CheckFailure` reports.  The
  :data:`~repro.verification.checks.CHECKS` registry is shared with the
  experiment-campaign subsystem and the CLI.
* **Differential runs** (:mod:`repro.verification.differential`) -- executing
  the same :class:`~repro.experiments.spec.ExperimentSpec` under the dense,
  sparse and sharded engines and asserting bit-identity of round records,
  traces, summary metrics and final node state, with structured
  :class:`~repro.verification.differential.Divergence` reports (first
  divergent round, node, field).

``repro-dynamic-subgraphs verify --spec sweep.json`` drives both over a whole
campaign grid, guaranteeing every registered check executes at least once.
"""

from .checks import (
    CHECKS,
    Check,
    CheckFailure,
    CheckOutcome,
    CheckSession,
    FunctionCheck,
    ResultCheck,
    applicable_checks,
    register_check,
)

#: Names provided by :mod:`repro.verification.differential`, loaded lazily
#: (PEP 562).  The differential harness imports :mod:`repro.experiments`,
#: which itself imports :mod:`repro.verification.checks` for the shared
#: registry; deferring the differential import keeps that cycle open.
_DIFFERENTIAL_EXPORTS = frozenset(
    {
        "DEFAULT_MODES",
        "CellVerification",
        "DifferentialReport",
        "Divergence",
        "ModeRun",
        "VerificationSummary",
        "normalize_cell",
        "run_differential",
        "run_reference",
        "verify_campaign",
    }
)


def __getattr__(name: str):
    if name in _DIFFERENTIAL_EXPORTS:
        from . import differential

        return getattr(differential, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "CHECKS",
    "Check",
    "CheckFailure",
    "CheckOutcome",
    "CheckSession",
    "CellVerification",
    "DEFAULT_MODES",
    "DifferentialReport",
    "Divergence",
    "FunctionCheck",
    "ModeRun",
    "ResultCheck",
    "VerificationSummary",
    "applicable_checks",
    "normalize_cell",
    "register_check",
    "run_differential",
    "run_reference",
    "verify_campaign",
]
