"""First-class result checks with structured failure reports.

The checks registry used by experiment campaigns and the CLI used to be a
plain mapping of names to ``fn(result) -> metrics`` callables.  This module
promotes it to first-class :class:`Check` objects that additionally

* know which algorithms / adversaries they apply to (so the spec layer can
  reject nonsensical combinations up front and the ``verify`` command can
  auto-select every applicable check for a cell),
* may install a **per-round hook** (run inside the simulation as a
  :data:`~repro.simulator.runner.RoundValidator`), not just an end-of-run
  evaluation,
* report violations as structured :class:`CheckFailure` records (which check,
  which round, which node, which field) instead of a bare 0.0 metric, and
* carry a small self-contained **coverage cell** -- a spec dict exercising the
  check -- which the differential verifier uses to guarantee that every
  registered check executes at least once per ``verify`` run.

Every check is oracle-backed: it compares the distributed nodes' final (or
per-round) state against the centralized ground truth of :mod:`repro.oracle`.
Queries go through the incremental
:class:`~repro.oracle.ground_truth.GroundTruthOracle`: end-of-run checks
build one oracle over the final network (one shared adjacency instead of a
rebuild per query), and per-round hooks get a session-owned oracle that is
fed each round's delta, so with the sparse engine's active set a quiet round
costs O(1) and a busy round costs O(changes), not O(n).  The metric names of
the pre-existing checks (``triangle_matches_oracle``, ``coverage_*``,
``believes_deleted_edge`` ...) are preserved bit-for-bit, so stored campaign
results and benchmark tables are unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple
from weakref import WeakKeyDictionary

from ..adversary import CycleLowerBoundAdversary, ThreePathLowerBoundAdversary
from ..core.queries import QueryResult, TriangleQuery
from ..oracle import GroundTruthOracle, cycles_of_length
from ..simulator import DynamicNetwork
from ..simulator.adversary import AdversaryView
from ..simulator.runner import SimulationResult
from ..simulator.trace import TopologyTrace

__all__ = [
    "CHECKS",
    "Check",
    "CheckFailure",
    "CheckOutcome",
    "CheckSession",
    "FunctionCheck",
    "ResultCheck",
    "applicable_checks",
    "first_divergent_round",
    "register_check",
]

#: The legacy check surface: ``check(result) -> metrics``.  Still accepted by
#: :func:`register_check`; plain callables are wrapped in :class:`FunctionCheck`.
ResultCheck = Callable[[SimulationResult], Dict[str, float]]

#: Cap on stored failures per check per run, so a badly corrupted result does
#: not produce an unbounded report.
MAX_FAILURES = 16

#: One ground-truth oracle per final network, shared by every end-of-run
#: check of a run (several checks grade the same result, and each would
#: otherwise rebuild the same adjacency and re-answer the same queries).
#: Keyed weakly so oracles die with their networks; invalidated whenever the
#: network advanced or was mutated (the corrupted-fixture tests do both).
_NETWORK_ORACLES: "WeakKeyDictionary[Any, Tuple[Tuple[int, int], GroundTruthOracle]]" = (
    WeakKeyDictionary()
)


def oracle_for(network: DynamicNetwork) -> GroundTruthOracle:
    """The shared end-of-run oracle for ``network``'s current state."""
    state = (network.round_index, network.total_changes)
    cached = _NETWORK_ORACLES.get(network)
    if cached is not None and cached[0] == state:
        return cached[1]
    oracle = GroundTruthOracle.from_network(network)
    _NETWORK_ORACLES[network] = (state, oracle)
    return oracle


@dataclass(frozen=True)
class CheckFailure:
    """One structured check violation.

    Attributes:
        check: name of the check that found the violation.
        field: what diverged (e.g. ``known_triangles``, ``sandwich_upper``).
        round_index: the round of the violation (``None`` for end-of-run).
        node: the offending node id (``None`` for global violations).
        expected: short description of the oracle's value.
        actual: short description of the node's value.
    """

    check: str
    field: str
    round_index: Optional[int] = None
    node: Optional[int] = None
    expected: str = ""
    actual: str = ""

    def describe(self) -> str:
        where = []
        if self.round_index is not None:
            where.append(f"round {self.round_index}")
        if self.node is not None:
            where.append(f"node {self.node}")
        location = f" at {', '.join(where)}" if where else ""
        detail = ""
        if self.expected or self.actual:
            detail = f" (expected {self.expected!s}, got {self.actual!s})"
        return f"[{self.check}] {self.field}{location}{detail}"


@dataclass
class CheckOutcome:
    """The full result of one check on one finished simulation."""

    check: str
    metrics: Dict[str, float] = field(default_factory=dict)
    failures: List[CheckFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        if self.ok:
            return f"[{self.check}] ok"
        return "\n".join(f.describe() for f in self.failures)


def _shorten(values, limit: int = 6) -> str:
    """Render a small, deterministic sample of a collection for reports."""
    try:
        items = sorted(values, key=repr)
    except TypeError:  # pragma: no cover - defensive
        items = list(values)
    sample = ", ".join(repr(x) for x in items[:limit])
    suffix = ", ..." if len(items) > limit else ""
    return f"{{{sample}{suffix}}} ({len(items)} items)"


class Check:
    """Base class of all registered checks.

    Subclasses set the class attributes and implement :meth:`collect` (and
    optionally :meth:`check_round` with ``has_round_hook = True``).

    Attributes:
        name: registry name (also the CLI / spec token).
        description: one-line summary for ``--help`` and the README table.
        algorithms: registry names of the algorithms the check understands,
            or ``None`` for any algorithm.
        adversaries: adversary names the check requires, or ``None`` for any.
        requires_drain: whether the check is only meaningful on a drained
            (all-consistent) final state.
        has_round_hook: whether :meth:`check_round` should run as a per-round
            validator during the simulation.
    """

    name: str = ""
    description: str = ""
    algorithms: Optional[frozenset] = None
    adversaries: Optional[frozenset] = None
    requires_drain: bool = True
    has_round_hook: bool = False

    # ------------------------------------------------------------------ #
    # Applicability
    # ------------------------------------------------------------------ #
    def applies_to(self, spec: Any) -> bool:
        """Whether this check can run on the given :class:`ExperimentSpec`."""
        if self.algorithms is not None and spec.algorithm not in self.algorithms:
            return False
        if self.adversaries is not None and spec.adversary not in self.adversaries:
            return False
        if self.requires_drain and not spec.drain:
            return False
        return True

    def coverage_cell(self) -> Optional[Dict[str, Any]]:
        """A small spec dict exercising this check (for verify coverage runs)."""
        return None

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def check_round(
        self,
        round_index: int,
        network: DynamicNetwork,
        nodes: Mapping[int, Any],
        spec: Any,
        oracle: Optional[GroundTruthOracle] = None,
        state: Optional[Dict[str, Any]] = None,
    ) -> List[CheckFailure]:
        """Per-round hook; only called when ``has_round_hook`` is set.

        ``oracle`` is the session's incremental ground-truth oracle, already
        fed this round's delta; ``state`` is a per-run scratch dict the hook
        may use to stay activity-proportional (e.g. remembering previously
        found violations so only nodes whose state or truth changed need
        re-examination).  Both are ``None`` when a hook is driven outside a
        :class:`CheckSession`.
        """
        return []

    def collect(
        self, result: SimulationResult, spec: Any
    ) -> Tuple[Dict[str, float], List[CheckFailure]]:
        """End-of-run evaluation: return ``(metrics, failures)``."""
        raise NotImplementedError

    def evaluate(self, result: SimulationResult, spec: Any = None) -> CheckOutcome:
        """Run the end-of-run evaluation and package the outcome."""
        metrics, failures = self.collect(result, spec)
        return CheckOutcome(check=self.name, metrics=dict(metrics), failures=list(failures))

    def __call__(self, result: SimulationResult) -> Dict[str, float]:
        """Legacy surface: ``check(result) -> metrics``."""
        return self.evaluate(result).metrics

    def _failure(self, field_name: str, **kwargs: Any) -> CheckFailure:
        return CheckFailure(check=self.name, field=field_name, **kwargs)


class FunctionCheck(Check):
    """Adapter wrapping a legacy ``fn(result) -> metrics`` callable.

    The wrapped function cannot produce structured failures; any zero-valued
    ``*_matches_*`` style conventions it uses remain its own business.  Used
    by :func:`register_check` so existing user code keeps working -- which is
    also why no drain constraint is imposed (the legacy registry had none).
    """

    requires_drain = False

    def __init__(self, name: str, fn: ResultCheck) -> None:
        self.name = name
        self.description = (fn.__doc__ or "").strip().splitlines()[0] if fn.__doc__ else ""
        self._fn = fn

    def collect(self, result, spec):
        return dict(self._fn(result)), []


class CheckSession:
    """Per-run binding of a check to a spec, collecting round-hook failures.

    :class:`Check` instances in the registry are shared singletons; a session
    gives one simulation run its own failure accumulator so concurrent or
    repeated runs never observe each other's violations.
    """

    def __init__(self, check: Check, spec: Any = None) -> None:
        self.check = check
        self.spec = spec
        self.round_failures: List[CheckFailure] = []
        #: Incremental oracle fed once per round (created lazily on the first
        #: hook call, when the network's size is known).
        self.oracle: Optional[GroundTruthOracle] = None
        #: Per-run scratch space for activity-proportional hooks.
        self.round_state: Dict[str, Any] = {}

    @property
    def name(self) -> str:
        return self.check.name

    def validator(self) -> Optional[Callable]:
        """The per-round :data:`RoundValidator` hook, or ``None``."""
        if not self.check.has_round_hook:
            return None

        def hook(round_index: int, network: DynamicNetwork, nodes: Mapping[int, Any]) -> None:
            budget = MAX_FAILURES - len(self.round_failures)
            if budget <= 0:
                return
            if self.oracle is None:
                self.oracle = GroundTruthOracle(network.n)
            self.oracle.observe(network)
            failures = self.check.check_round(
                round_index, network, nodes, self.spec, self.oracle, self.round_state
            )
            self.round_failures.extend(failures[:budget])

        return hook

    def finish(self, result: SimulationResult) -> CheckOutcome:
        """End-of-run evaluation merged with the collected round failures."""
        outcome = self.check.evaluate(result, self.spec)
        if self.check.has_round_hook:
            outcome.failures = self.round_failures + outcome.failures
            outcome.metrics[f"{self.name}_violations"] = float(len(self.round_failures))
        return outcome


# --------------------------------------------------------------------- #
# Generic checks
# --------------------------------------------------------------------- #
class AllConsistentCheck(Check):
    name = "consistent"
    description = "every node declares a consistent data structure at the end of the run"
    requires_drain = True

    def collect(self, result, spec):
        bad = [v for v, node in result.nodes.items() if not node.is_consistent()]
        failures = [
            self._failure("is_consistent", node=v, expected="True", actual="False")
            for v in bad[:MAX_FAILURES]
        ]
        return {"all_consistent": 1.0 if not bad else 0.0}, failures

    def coverage_cell(self):
        return {
            "algorithm": "robust2hop",
            "adversary": "churn",
            "n": 10,
            "rounds": 25,
            "adversary_params": {"inserts_per_round": 2, "deletes_per_round": 1},
        }


class CoverageCheck(Check):
    """Robust-set coverage ratios of the final graph (workload characterisation)."""

    name = "coverage"
    description = "robust-set coverage ratios (|R|/|E|) of the final graph"
    requires_drain = False

    def collect(self, result, spec):
        network = result.network
        edges = network.edges
        failures: List[CheckFailure] = []
        # Build the time map edge by edge so a network whose bookkeeping lost
        # an insertion time is reported as a failure instead of crashing.
        times: Dict[Any, int] = {}
        for edge in sorted(edges):
            t = network.insertion_time(*edge)
            if t < 0:
                if len(failures) < MAX_FAILURES:
                    failures.append(
                        self._failure(
                            "insertion_times",
                            expected=f"a true insertion time for edge {edge}",
                            actual="missing",
                        )
                    )
            else:
                times[edge] = t
        if failures:
            # The robust sets are undefined without true insertion times; do
            # not grade ratios against a corrupt time map.
            return {}, failures
        oracle = oracle_for(network)
        ratios: Dict[str, list] = {"r2_e2": [], "t2_e2": [], "r3_e3": []}
        for v in range(network.n):
            e2 = oracle.khop_edges(v, 2)
            e3 = oracle.khop_edges(v, 3)
            if e2:
                ratios["r2_e2"].append(len(oracle.robust_two_hop(v)) / len(e2))
                ratios["t2_e2"].append(len(oracle.triangle_pattern_set(v)) / len(e2))
            if e3:
                ratios["r3_e3"].append(len(oracle.robust_three_hop(v)) / len(e3))
        metrics = {
            f"coverage_{key}": sum(vals) / len(vals)
            for key, vals in ratios.items()
            if vals
        }
        return metrics, failures

    def coverage_cell(self):
        return {
            "algorithm": "null",
            "adversary": "churn",
            "n": 10,
            "rounds": 20,
            "adversary_params": {"inserts_per_round": 2, "deletes_per_round": 1},
        }


# --------------------------------------------------------------------- #
# Oracle-backed checks, one per shipped structure
# --------------------------------------------------------------------- #
class RobustTwoHopOracleCheck(Check):
    name = "robust2hop_oracle"
    description = "known edge set equals the oracle's R^{v,2} on the drained final graph"
    algorithms = frozenset({"robust2hop"})

    def collect(self, result, spec):
        oracle = oracle_for(result.network)
        failures: List[CheckFailure] = []
        for v, node in result.nodes.items():
            expected = oracle.robust_two_hop(v)
            actual = node.known_edges()
            if actual != expected and len(failures) < MAX_FAILURES:
                failures.append(
                    self._failure(
                        "known_edges",
                        node=v,
                        expected=_shorten(expected),
                        actual=_shorten(actual),
                    )
                )
        return {"robust2hop_matches_oracle": 1.0 if not failures else 0.0}, failures

    def coverage_cell(self):
        return {
            "algorithm": "robust2hop",
            "adversary": "churn",
            "n": 10,
            "rounds": 30,
            "adversary_params": {"inserts_per_round": 3, "deletes_per_round": 2},
        }


class RobustThreeHopOracleCheck(Check):
    name = "robust3hop_oracle"
    description = "the Theorem 6 sandwich R^{v,3} subseteq known subseteq E^{v,3} holds"
    algorithms = frozenset({"robust3hop", "cycles"})

    def collect(self, result, spec):
        oracle = oracle_for(result.network)
        failures: List[CheckFailure] = []
        for v, node in result.nodes.items():
            known = node.known_edges()
            lower = oracle.robust_three_hop(v)
            upper = oracle.khop_edges(v, 3)
            if not lower <= known and len(failures) < MAX_FAILURES:
                failures.append(
                    self._failure(
                        "sandwich_lower",
                        node=v,
                        expected=f"known superset of R^{{v,3}}",
                        actual=f"missing {_shorten(lower - known)}",
                    )
                )
            if not known <= upper and len(failures) < MAX_FAILURES:
                failures.append(
                    self._failure(
                        "sandwich_upper",
                        node=v,
                        expected=f"known subset of E^{{v,3}}",
                        actual=f"extra {_shorten(known - upper)}",
                    )
                )
        return {"robust3hop_sandwich": 1.0 if not failures else 0.0}, failures

    def coverage_cell(self):
        return {
            "algorithm": "robust3hop",
            "adversary": "churn",
            "n": 10,
            "rounds": 25,
            "adversary_params": {"inserts_per_round": 3, "deletes_per_round": 2},
        }


class TwoHopOracleCheck(Check):
    name = "twohop_oracle"
    description = "the Lemma 1 structure lists exactly the 2-hop neighborhood after drain"
    algorithms = frozenset({"twohop"})

    def collect(self, result, spec):
        oracle = oracle_for(result.network)
        failures: List[CheckFailure] = []
        for v, node in result.nodes.items():
            expected = oracle.khop_edges(v, 2)
            actual = node.known_edges()
            if actual != expected and len(failures) < MAX_FAILURES:
                failures.append(
                    self._failure(
                        "known_edges",
                        node=v,
                        expected=_shorten(expected),
                        actual=_shorten(actual),
                    )
                )
        return {"twohop_matches_oracle": 1.0 if not failures else 0.0}, failures

    def coverage_cell(self):
        return {
            "algorithm": "twohop",
            "adversary": "growing",
            "n": 10,
            "adversary_params": {"num_edges": 14},
        }


class TriangleOracleCheck(Check):
    # Exact oracle equality holds for the full Theorem 1 structure only; the
    # triangle_nohints ablation is *designed* to miss triangles (graded by
    # triangle_recall instead), so it is deliberately not listed here.
    name = "triangle_oracle"
    description = "every node's triangle list equals the centralized ground truth"
    algorithms = frozenset({"triangle", "clique"})

    def collect(self, result, spec):
        oracle = oracle_for(result.network)
        failures: List[CheckFailure] = []
        for v, node in result.nodes.items():
            expected = oracle.triangles_containing(v)
            actual = node.known_triangles()
            if actual != expected and len(failures) < MAX_FAILURES:
                failures.append(
                    self._failure(
                        "known_triangles",
                        node=v,
                        expected=_shorten(expected),
                        actual=_shorten(actual),
                    )
                )
        return {"triangle_matches_oracle": 1.0 if not failures else 0.0}, failures

    def coverage_cell(self):
        return {
            "algorithm": "triangle",
            "adversary": "churn",
            "n": 10,
            "rounds": 30,
            "adversary_params": {"inserts_per_round": 3, "deletes_per_round": 2},
        }


class CliqueOracleCheck(Check):
    name = "clique_oracle"
    description = "every node's k-clique list equals the centralized ground truth"
    algorithms = frozenset({"clique"})

    def collect(self, result, spec):
        oracle = oracle_for(result.network)
        k = 3
        if spec is not None:
            # Mirror the planted_clique builder's default (k=4) so a spec
            # omitting k is graded against the clique size actually planted.
            default_k = 4 if spec.adversary == "planted_clique" else 3
            k = int(spec.adversary_params.get("k", default_k))
        failures: List[CheckFailure] = []
        for v, node in result.nodes.items():
            expected = oracle.cliques_containing(v, k)
            actual = node.known_cliques(k)
            if actual != expected and len(failures) < MAX_FAILURES:
                failures.append(
                    self._failure(
                        f"known_cliques(k={k})",
                        node=v,
                        expected=_shorten(expected),
                        actual=_shorten(actual),
                    )
                )
        return {"clique_matches_oracle": 1.0 if not failures else 0.0}, failures

    def coverage_cell(self):
        return {
            "algorithm": "clique",
            "adversary": "planted_clique",
            "n": 12,
            "adversary_params": {"k": 3, "num_plants": 2, "noise_edges_per_round": 1},
        }


class CycleCoverCheck(Check):
    name = "cycle_cover"
    description = "every k-cycle of the final graph is listed by at least one member"
    algorithms = frozenset({"cycles"})

    def collect(self, result, spec):
        k = 4
        if spec is not None:
            k = int(spec.adversary_params.get("k", 4))
        network = result.network
        cycles = oracle_for(network).cycles_of_length(k)
        failures: List[CheckFailure] = []
        listed = 0
        for cycle in sorted(cycles, key=sorted):
            if any(
                result.nodes[v].is_consistent() and result.nodes[v].knows_cycle_set(cycle)
                for v in cycle
            ):
                listed += 1
            elif len(failures) < MAX_FAILURES:
                failures.append(
                    self._failure(
                        f"cycle_listing(k={k})",
                        expected=f"some member of {sorted(cycle)} lists the cycle",
                        actual="no consistent member does",
                    )
                )
        cover = listed / len(cycles) if cycles else 1.0
        return (
            {"cycle_cover": cover, "cycles_in_final_graph": float(len(cycles))},
            failures,
        )

    def coverage_cell(self):
        return {
            "algorithm": "cycles",
            "adversary": "planted_cycle",
            "n": 10,
            "seed": 1,
            "adversary_params": {"k": 4, "num_plants": 2, "teardown": False},
        }


class MembershipOracleCheck(Check):
    """Three-valued membership answers against the ground truth.

    For every node ``v`` and every true triangle through ``v``, the
    membership query must answer TRUE; for the (deterministically sampled)
    neighbor pairs of ``v`` that do *not* close a triangle, it must answer
    FALSE.  Applies to any algorithm answering
    :class:`~repro.core.queries.TriangleQuery` (the membership cast of
    Theorem 1 / Corollary 1 / Lemma 1).
    """

    name = "membership_oracle"
    description = "TriangleQuery membership answers match the centralized oracle"
    algorithms = frozenset({"triangle", "clique", "twohop"})
    #: How many non-occurrences to sample per node.
    negative_samples = 4

    def collect(self, result, spec):
        network = result.network
        oracle = oracle_for(network)
        failures: List[CheckFailure] = []
        queries = 0
        for v, node in result.nodes.items():
            if not node.is_consistent():
                continue
            truth = oracle.triangles_containing(v)
            for tri in sorted(truth, key=sorted):
                queries += 1
                answer = node.query(TriangleQuery(tri))
                if answer is not QueryResult.TRUE and len(failures) < MAX_FAILURES:
                    failures.append(
                        self._failure(
                            "membership_true",
                            node=v,
                            expected=f"TRUE for triangle {sorted(tri)}",
                            actual=answer.value,
                        )
                    )
            neighbors = sorted(
                u for u in range(network.n) if u != v and network.has_edge(v, u)
            )
            sampled = 0
            for a, b in combinations(neighbors, 2):
                if sampled >= self.negative_samples:
                    break
                if frozenset({v, a, b}) in truth:
                    continue
                sampled += 1
                queries += 1
                answer = node.query(TriangleQuery({v, a, b}))
                if answer is not QueryResult.FALSE and len(failures) < MAX_FAILURES:
                    failures.append(
                        self._failure(
                            "membership_false",
                            node=v,
                            expected=f"FALSE for non-triangle {sorted({v, a, b})}",
                            actual=answer.value,
                        )
                    )
        return (
            {
                "membership_matches_oracle": 1.0 if not failures else 0.0,
                "membership_queries": float(queries),
            },
            failures,
        )

    def coverage_cell(self):
        return {
            "algorithm": "clique",
            "adversary": "churn",
            "n": 10,
            "rounds": 25,
            "adversary_params": {"inserts_per_round": 3, "deletes_per_round": 2},
        }


class TriangleRecallCheck(Check):
    """Membership recall and precision vs the oracle (used by the ablation study).

    Recall (``triangle_recall``) may legitimately be below 1 for ablated
    structures; *precision* violations -- a consistent node believing in a
    triangle that does not exist -- are reported as failures.
    """

    name = "triangle_recall"
    description = "fraction of true triangles each node knows (ablation metric)"
    algorithms = frozenset({"triangle", "clique", "triangle_nohints"})

    def collect(self, result, spec):
        oracle = oracle_for(result.network)
        expected = 0
        found = 0
        failures: List[CheckFailure] = []
        for v, node in result.nodes.items():
            truth = oracle.triangles_containing(v)
            known = node.known_triangles()
            expected += len(truth)
            found += len(truth & known)
            if node.is_consistent():
                for ghost in sorted(known - truth, key=sorted):
                    if len(failures) < MAX_FAILURES:
                        failures.append(
                            self._failure(
                                "known_triangles_precision",
                                node=v,
                                expected=f"no belief in nonexistent {sorted(ghost)}",
                                actual="believed",
                            )
                        )
        recall = (found / expected) if expected else 1.0
        return (
            {
                "triangle_recall": recall,
                "triangle_recall_found": float(found),
                "triangle_recall_expected": float(expected),
            },
            failures,
        )

    def coverage_cell(self):
        return {
            "algorithm": "triangle",
            "adversary": "churn",
            "n": 10,
            "rounds": 25,
            "adversary_params": {"inserts_per_round": 3, "deletes_per_round": 2},
        }


class NoGhostTrianglesCheck(Check):
    """Per-round soundness: consistent nodes never invent triangles.

    This is the mid-run discipline of Theorem 1 (TRUE answers from consistent
    nodes are always real), enforced after *every* round via the round hook
    rather than only on the drained final state.

    The hook is activity-proportional: a node's ghost set can only change
    when its own state changed (it was in the engine's active set) or when
    the truth of its claimed triangles changed.  For the normal case -- a
    claimed triangle *containing* the claimer -- all three edges lie within
    one hop of it, so the 1-hop dirty ball of this round's changes (read off
    the session oracle) covers every truth flip; everybody else's verdict
    from the previous round is carried forward in the session state, and a
    quiet round costs O(1) instead of O(n).  Claims on triangles *not*
    containing the claimer (only a buggy algorithm produces them) can be
    broken by a change anywhere, so they are tracked separately and
    re-evaluated every round -- the map is normally empty.  The reported
    failure list is rebuilt in sorted node order, making it identical
    whether or not the engine reported activity, and the ghost predicate is
    the same edge-existence test :meth:`collect` uses on the final state.
    """

    name = "no_ghost_triangles"
    description = "consistent nodes never list a triangle absent from the true graph"
    algorithms = frozenset({"triangle", "clique"})
    requires_drain = False
    has_round_hook = True

    def _ghosts(self, network, nodes) -> List[Tuple[int, frozenset]]:
        out = []
        for v, node in nodes.items():
            if not node.is_consistent():
                continue
            for tri in node.known_triangles():
                a, b, c = sorted(tri)
                if not (
                    network.has_edge(a, b)
                    and network.has_edge(a, c)
                    and network.has_edge(b, c)
                ):
                    out.append((v, tri))
        return out

    def check_round(self, round_index, network, nodes, spec, oracle=None, state=None):
        if state is None:
            state = {}
        near_ghosts: Dict[int, List[frozenset]] = state.setdefault("near_ghosts", {})
        far_claims: Dict[int, List[frozenset]] = state.setdefault("far_claims", {})
        active = getattr(nodes, "active_ids", None)
        if oracle is None or active is None:
            candidates = list(nodes)
        else:
            candidates = set(active) | oracle.last_changed_ball(1)

        def is_real(tri) -> bool:
            if oracle is not None:
                return oracle.is_triangle(tri)
            a, b, c = sorted(tri)
            return (
                network.has_edge(a, b)
                and network.has_edge(a, c)
                and network.has_edge(b, c)
            )

        for v in candidates:
            node = nodes[v]
            near: List[frozenset] = []
            far: List[frozenset] = []
            if node.is_consistent():
                for tri in node.known_triangles():
                    if v in tri:
                        if not is_real(tri):
                            near.append(tri)
                    else:
                        far.append(tri)
            if near:
                near_ghosts[v] = sorted(near, key=sorted)
            else:
                near_ghosts.pop(v, None)
            if far:
                far_claims[v] = sorted(far, key=sorted)
            else:
                far_claims.pop(v, None)

        ghost_map: Dict[int, List[frozenset]] = dict(near_ghosts)
        for v, tris in far_claims.items():
            broken = [tri for tri in tris if not is_real(tri)]
            if broken:
                ghost_map[v] = sorted(ghost_map.get(v, []) + broken, key=sorted)
        return [
            self._failure(
                "known_triangles",
                round_index=round_index,
                node=v,
                expected=f"no belief in nonexistent {sorted(tri)}",
                actual="believed while consistent",
            )
            for v in sorted(ghost_map)
            for tri in ghost_map[v]
        ]

    def collect(self, result, spec):
        ghosts = self._ghosts(result.network, result.nodes)
        failures = [
            self._failure(
                "known_triangles",
                node=v,
                expected=f"no belief in nonexistent {sorted(tri)}",
                actual="believed while consistent",
            )
            for v, tri in ghosts[:MAX_FAILURES]
        ]
        return {"ghost_triangles": float(len(ghosts))}, failures

    def coverage_cell(self):
        return {
            "algorithm": "triangle",
            "adversary": "churn",
            "n": 10,
            "rounds": 25,
            "adversary_params": {"inserts_per_round": 3, "deletes_per_round": 2},
        }


# --------------------------------------------------------------------- #
# The Section 1.3 flickering-triangle verdict
# --------------------------------------------------------------------- #
class FlickerGhostCheck(Check):
    """The Section 1.3 verdict: does node ``v`` still believe the deleted far edge?

    The triangle geometry (``v``, ``u``, ``w``) is read from the spec's
    ``adversary_params``, so relocated gadgets are graded at their actual
    nodes; without a spec the default geometry (``v=0``, far edge ``{1, 2}``)
    is assumed.  A run whose final graph does not carry the gadget's signature
    (edges ``{v,u}`` and ``{v,w}`` present, ``{u,w}`` deleted) is reported as
    a structured geometry failure rather than grading the wrong node.
    """

    name = "flicker_ghost"
    description = "whether node v still believes the deleted far edge of the flicker gadget"
    algorithms = frozenset(
        {"naive", "robust2hop", "triangle", "clique", "robust3hop", "twohop", "cycles"}
    )
    adversaries = frozenset({"flicker"})

    def collect(self, result, spec):
        v, u, w = 0, 1, 2
        if spec is not None:
            params = spec.adversary_params
            v = int(params.get("v", 0))
            u = int(params.get("u", 1))
            w = int(params.get("w", 2))
        network = result.network
        failures: List[CheckFailure] = []
        if not (network.has_edge(v, u) and network.has_edge(v, w)) or network.has_edge(u, w):
            failures.append(
                self._failure(
                    "geometry",
                    expected=(
                        f"flicker gadget signature: edges {{{v},{u}}} and {{{v},{w}}} "
                        f"present, {{{u},{w}}} deleted"
                    ),
                    actual=f"final graph edges {_shorten(network.edges)}",
                )
            )
            return {"believes_deleted_edge": 0.0, "node_v_consistent": 0.0}, failures
        node_v = result.nodes[v]
        if not node_v.is_consistent():
            failures.append(
                self._failure(
                    "node_v_consistent",
                    node=v,
                    expected="consistent after the settle rounds",
                    actual="inconsistent",
                )
            )
        return (
            {
                "believes_deleted_edge": 1.0 if node_v.knows_edge(u, w) else 0.0,
                "node_v_consistent": 1.0 if node_v.is_consistent() else 0.0,
            },
            failures,
        )

    def coverage_cell(self):
        return {"algorithm": "robust2hop", "adversary": "flicker", "n": 9}


# --------------------------------------------------------------------- #
# Structural validations of the lower-bound constructions (E8 / E9)
# --------------------------------------------------------------------- #
def first_divergent_round(rounds_a: Sequence, rounds_b: Sequence) -> int:
    """1-based index of the first differing entry of two per-round sequences.

    When one sequence is a strict prefix of the other, the first round past
    the shorter one is reported.  Shared by the trace-grading checks and the
    differential harness so divergence and check-failure reports agree on
    round numbering.
    """
    return next(
        (i + 1 for i, (a, b) in enumerate(zip(rounds_a, rounds_b)) if a != b),
        min(len(rounds_a), len(rounds_b)) + 1,
    )


def _trace_divergence(check: Check, recorded, replayed: TopologyTrace) -> List[CheckFailure]:
    """Grade a recorded trace against the independently replayed schedule.

    Returns one ``trace`` failure naming the first divergent round when the
    engine's recorded schedule does not match the construction's, and nothing
    when they agree (or no trace was recorded).
    """
    if recorded is None or recorded.rounds == replayed.rounds:
        return []
    return [
        check._failure(
            "trace",
            round_index=first_divergent_round(recorded.rounds, replayed.rounds),
            expected="the construction's deterministic schedule",
            actual="the recorded trace diverges",
        )
    ]


def _drive_structural(adversary, n: int):
    """Drive an adversary standalone over a bare network, one round at a time.

    Mirrors a run under the null workload algorithm (always consistent), which
    is how the lower-bound constructions are executed in campaigns: yields
    ``(changes, network)`` after applying each round's batch.
    """
    network = DynamicNetwork(n)
    while not adversary.is_done:
        view = AdversaryView.from_network(network, network.round_index + 1, True)
        changes = adversary.changes_for_round(view)
        if changes is None:
            break
        network.apply_changes(network.round_index + 1, changes)
        yield changes, network


class Theorem4VisitsCheck(Check):
    """Structural validation of the Figure 4 construction (experiment E8).

    Re-drives the (deterministic) adversary, sampling the number of k-cycles
    each component visit creates through shared leaves; the proof's pigeonhole
    argument requires at least ``D/3`` per visit.  When the result carries a
    recorded trace, the re-driven schedule is compared against it, so a cell
    whose engine run diverged from the construction is reported too.
    """

    name = "theorem4_visits"
    description = "each Figure 4 component visit creates >= D/3 k-cycles"
    algorithms = frozenset({"null"})
    adversaries = frozenset({"theorem4"})
    requires_drain = False
    #: Sample at most this many visits (matching the E8 harness).
    max_samples = 6

    def _build(self, spec):
        params = dict(spec.adversary_params)
        k = int(params.pop("k", 6))
        return CycleLowerBoundAdversary(spec.n, k, seed=spec.seed, **params)

    def collect(self, result, spec):
        if spec is None:
            raise ValueError(f"{self.name} needs the experiment spec to rebuild the adversary")
        adversary = self._build(spec)
        replayed = TopologyTrace(n=spec.n)
        visit_cycle_counts: List[int] = []
        bridged = False
        for changes, network in _drive_structural(adversary, spec.n):
            replayed.append(changes)
            if (
                changes.insertions
                and adversary.connection_events
                and len(changes.insertions) <= 2
            ):
                bridged = True
            elif bridged and changes.deletions:
                bridged = False
            if bridged and len(visit_cycle_counts) < self.max_samples:
                visit_cycle_counts.append(len(cycles_of_length(network.edges, adversary.k)))
                bridged = False
        failures = self._grade(result, replayed, visit_cycle_counts, adversary)
        required = adversary.D // 3
        return (
            {
                "theorem4_components": float(adversary.t),
                "theorem4_D": float(adversary.D),
                "theorem4_attached": float(adversary.attached_count),
                "theorem4_min_cycles_per_visit": float(
                    min(visit_cycle_counts) if visit_cycle_counts else 0
                ),
                "theorem4_required_cycles": float(required),
                "theorem4_visits_sampled": float(len(visit_cycle_counts)),
            },
            failures,
        )

    def _grade(self, result, replayed, per_visit, adversary) -> List[CheckFailure]:
        failures: List[CheckFailure] = []
        required = adversary.D // 3
        if not per_visit:
            failures.append(
                self._failure(
                    "visits_sampled",
                    expected="at least one sampled component visit",
                    actual="none",
                )
            )
        for i, count in enumerate(per_visit):
            if count < required and len(failures) < MAX_FAILURES:
                failures.append(
                    self._failure(
                        "cycles_per_visit",
                        round_index=None,
                        expected=f">= D/3 = {required} (visit {i})",
                        actual=str(count),
                    )
                )
        failures.extend(_trace_divergence(self, result.trace, replayed))
        return failures

    def coverage_cell(self):
        return {
            "algorithm": "null",
            "adversary": "theorem4",
            "n": 81,
            "adversary_params": {"k": 6, "num_components": 2},
        }


class ThreePathVisitsCheck(Check):
    """Structural validation of the Remark 1 construction (experiment E9)."""

    name = "threepath_visits"
    description = "each Remark 1 hub visit creates >= D/3 three-paths"
    algorithms = frozenset({"null"})
    adversaries = frozenset({"threepath"})
    requires_drain = False
    max_samples = 6

    def collect(self, result, spec):
        if spec is None:
            raise ValueError(f"{self.name} needs the experiment spec to rebuild the adversary")
        adversary = ThreePathLowerBoundAdversary(
            spec.n, seed=spec.seed, **dict(spec.adversary_params)
        )
        replayed = TopologyTrace(n=spec.n)
        per_visit: List[int] = []
        for changes, network in _drive_structural(adversary, spec.n):
            replayed.append(changes)
            if (
                changes.insertions
                and adversary.connection_events
                and len(per_visit) < self.max_samples
            ):
                ell, m = adversary.connection_events[len(per_visit)]
                per_visit.append(len(adversary.shared_leaf_indices(ell, m)))
        failures: List[CheckFailure] = []
        required = adversary.D // 3
        if not per_visit:
            failures.append(
                self._failure(
                    "visits_sampled",
                    expected="at least one sampled hub visit",
                    actual="none",
                )
            )
        for i, count in enumerate(per_visit):
            if count < required and len(failures) < MAX_FAILURES:
                failures.append(
                    self._failure(
                        "threepaths_per_visit",
                        expected=f">= D/3 = {required} (visit {i})",
                        actual=str(count),
                    )
                )
        failures.extend(_trace_divergence(self, result.trace, replayed))
        return (
            {
                "threepath_components": float(adversary.t),
                "threepath_D": float(adversary.D),
                "threepath_attached": float(adversary.attached_count),
                "threepath_min_per_visit": float(min(per_visit) if per_visit else 0),
                "threepath_required": float(required),
                "threepath_visits_sampled": float(len(per_visit)),
            },
            failures,
        )

    def coverage_cell(self):
        # n = 49 gives D = 6 leaves per hub, the smallest D whose floor(2D/3)
        # attachment still pigeonholes a D/3 overlap between two hubs.
        return {
            "algorithm": "null",
            "adversary": "threepath",
            "n": 49,
            "adversary_params": {"num_components": 2},
        }


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #
CHECKS: Dict[str, Check] = {
    check.name: check
    for check in (
        AllConsistentCheck(),
        CoverageCheck(),
        TriangleOracleCheck(),
        CliqueOracleCheck(),
        RobustTwoHopOracleCheck(),
        RobustThreeHopOracleCheck(),
        TwoHopOracleCheck(),
        CycleCoverCheck(),
        MembershipOracleCheck(),
        TriangleRecallCheck(),
        NoGhostTrianglesCheck(),
        FlickerGhostCheck(),
        Theorem4VisitsCheck(),
        ThreePathVisitsCheck(),
    )
}


def register_check(name: str, check: Check | ResultCheck) -> None:
    """Register an extra check under ``name``.

    Accepts either a :class:`Check` instance or a legacy
    ``fn(result) -> metrics`` callable (wrapped in :class:`FunctionCheck`).
    """
    if isinstance(check, Check):
        if not check.name:
            check.name = name
        CHECKS[name] = check
    else:
        CHECKS[name] = FunctionCheck(name, check)


def applicable_checks(spec: Any) -> List[str]:
    """Names of every registered check that can run on ``spec``, sorted."""
    return sorted(name for name, check in CHECKS.items() if check.applies_to(spec))
