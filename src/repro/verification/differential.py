"""Cross-engine differential verification of experiment cells.

The repo ships four round schedulers -- the dense reference engine, the
activity-proportional sparse engine, the multi-process sharded engine, and
the vectorized columnar engine -- that are required to be **bit-identical**:
same
:class:`~repro.simulator.metrics.RoundRecord` stream, same realized topology
trace, same summary metrics, and same final per-node state.  This module
turns that requirement into an executable check:

* :func:`run_differential` executes one
  :class:`~repro.experiments.spec.ExperimentSpec` under two or more engine
  modes and compares everything, producing structured
  :class:`Divergence` records (first divergent round, node, field) instead of
  a bare assertion.  The spec's checks (plus, optionally, every applicable
  registered check) run on the serial reference and their structured
  failures are folded into the report.
* :func:`verify_campaign` applies the differential harness to every unique
  cell of a :class:`~repro.experiments.spec.CampaignSpec` (engine axes are
  normalized away first -- verifying the same cell once per engine mode would
  be redundant) and then runs **coverage cells** for any registered check the
  campaign grid did not exercise, so a verify run always executes the whole
  checks registry.

Final-state identity uses
:meth:`~repro.simulator.node.NodeAlgorithm.state_fingerprint` digests, which
the sharded engine gathers from its workers without shipping node objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..experiments.registry import ALGORITHMS, build_adversary
from ..experiments.spec import CampaignSpec, ExperimentSpec
from ..faults.models import FAULT_NONE, build_fault_plan
from ..faults.overlay import FaultOverlayAdversary
from ..obs.telemetry import TELEMETRY
from ..simulator.bandwidth import BandwidthPolicy
from ..simulator.metrics import RoundRecord
from ..simulator.parallel import ShardedRoundEngine
from ..simulator.runner import SimulationRunner, drive_engine
from ..simulator.trace import TopologyTrace, TraceRecordingAdversary
from .checks import (
    CHECKS,
    CheckFailure,
    CheckOutcome,
    CheckSession,
    applicable_checks,
    first_divergent_round,
)

__all__ = [
    "DEFAULT_MODES",
    "Divergence",
    "DifferentialReport",
    "ModeRun",
    "CellVerification",
    "VerificationSummary",
    "normalize_cell",
    "run_differential",
    "run_reference",
    "verify_campaign",
]

#: The engine modes a differential run compares by default.
DEFAULT_MODES: Tuple[str, ...] = ("dense", "sparse", "sharded", "columnar")

#: Modes executed in-process through :func:`run_reference`.
_SERIAL_MODES = ("dense", "sparse", "columnar")

#: RoundRecord fields compared per round, in report order.
_RECORD_FIELDS = (
    "round_index",
    "num_changes",
    "num_inconsistent_nodes",
    "num_envelopes",
    "bits_sent",
)

#: Cap on reported divergences per comparison kind.
_MAX_DIVERGENCES = 8


@dataclass(frozen=True)
class Divergence:
    """One structured difference between two engine runs of the same spec."""

    kind: str  # "rounds" | "round_record" | "trace" | "final_state" | "network" | "summary"
    mode_a: str
    mode_b: str
    field: str
    round_index: Optional[int] = None
    node: Optional[int] = None
    expected: str = ""
    actual: str = ""

    def describe(self) -> str:
        where = []
        if self.round_index is not None:
            where.append(f"round {self.round_index}")
        if self.node is not None:
            where.append(f"node {self.node}")
        location = f" at {', '.join(where)}" if where else ""
        return (
            f"{self.kind}:{self.field}{location}: "
            f"{self.mode_a}={self.expected} vs {self.mode_b}={self.actual}"
        )


@dataclass
class ModeRun:
    """Everything one engine run exposes for comparison."""

    mode: str
    records: List[RoundRecord]
    trace: Optional[TopologyTrace]
    fingerprints: Dict[int, str]
    edges: frozenset
    summary: Dict[str, float]


@dataclass
class DifferentialReport:
    """The outcome of one differential run of a spec across engine modes."""

    spec: ExperimentSpec
    modes: Tuple[str, ...]
    divergences: List[Divergence] = field(default_factory=list)
    check_outcomes: Dict[str, CheckOutcome] = field(default_factory=dict)
    summaries: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def check_failures(self) -> List[CheckFailure]:
        return [f for outcome in self.check_outcomes.values() for f in outcome.failures]

    @property
    def executed_checks(self) -> Tuple[str, ...]:
        return tuple(sorted(self.check_outcomes))

    @property
    def ok(self) -> bool:
        return not self.divergences and not self.check_failures

    @property
    def first_divergence(self) -> Optional[Divergence]:
        return self.divergences[0] if self.divergences else None

    def describe(self) -> str:
        lines = [f"cell {self.spec.cell_id} across {'/'.join(self.modes)}:"]
        if self.ok:
            lines.append(f"  ok ({len(self.check_outcomes)} checks, no divergence)")
        for div in self.divergences:
            lines.append(f"  DIVERGENCE {div.describe()}")
        for failure in self.check_failures:
            lines.append(f"  CHECK FAILURE {failure.describe()}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "cell_id": self.spec.cell_id,
            "spec": self.spec.to_dict(),
            "modes": list(self.modes),
            "ok": self.ok,
            "divergences": [vars(d) for d in self.divergences],
            "checks": {
                name: {
                    "metrics": outcome.metrics,
                    "failures": [vars(f) for f in outcome.failures],
                }
                for name, outcome in self.check_outcomes.items()
            },
            "summaries": self.summaries,
        }


# --------------------------------------------------------------------- #
# Executing one spec under one engine mode
# --------------------------------------------------------------------- #
def _build_cell_adversary(spec: ExperimentSpec):
    return build_adversary(
        spec.adversary,
        n=spec.n,
        rounds=spec.rounds,
        seed=spec.seed,
        params=spec.adversary_params,
    )


def run_reference(
    spec: ExperimentSpec,
    *,
    engine_mode: str = "sparse",
    checks: Sequence[str] = (),
    record_trace: bool = True,
    adversary=None,
):
    """Run one cell on the serial engine with full introspection.

    Returns ``(result, outcomes)`` where ``result`` is the
    :class:`~repro.simulator.runner.SimulationResult` (with a recorded trace
    unless ``record_trace`` is disabled) and ``outcomes`` maps check names to
    their :class:`CheckOutcome`, including per-round hook failures.  This is
    the reference leg of the differential harness and the canonical way for
    tests to obtain a result plus structured check verdicts.  ``adversary``
    accepts a prebuilt (unconsumed) instance for callers that already built
    one -- e.g. to validate parameters up front -- so the schedule is not
    constructed twice.
    """
    sessions = [CheckSession(CHECKS[name], spec) for name in checks]
    validators = [v for v in (s.validator() for s in sessions) if v is not None]
    runner = SimulationRunner(
        n=spec.n,
        algorithm_factory=ALGORITHMS[spec.algorithm],
        adversary=adversary if adversary is not None else _build_cell_adversary(spec),
        bandwidth_factor=spec.bandwidth_factor,
        strict_bandwidth=spec.strict_bandwidth,
        record_trace=record_trace,
        validators=validators,
        engine_mode=engine_mode,
        faults=build_fault_plan(
            spec.faults, n=spec.n, seed=spec.seed, params=spec.fault_params
        ),
    )
    result = runner.run(num_rounds=spec.rounds, drain=spec.drain)
    outcomes = {s.name: s.finish(result) for s in sessions}
    return result, outcomes


def _summary_of(metrics, bandwidth, n: int, num_edges: int) -> Dict[str, float]:
    out = dict(metrics.summary())
    for key, value in bandwidth.summary(n).items():
        out[f"bandwidth_{key}"] = float(value)
    out["final_edges"] = float(num_edges)
    return out


def _run_mode(
    spec: ExperimentSpec, mode: str, checks: Sequence[str]
) -> Tuple[ModeRun, Dict[str, CheckOutcome]]:
    if mode in _SERIAL_MODES:
        result, outcomes = run_reference(spec, engine_mode=mode, checks=checks)
        fingerprints = {v: algo.state_fingerprint() for v, algo in result.nodes.items()}
        summary = _summary_of(
            result.metrics, result.bandwidth, spec.n, result.network.num_edges
        )
        if result.faults is not None:
            # Fault statistics (drops, resets, masked edges) join the gated
            # summary: every engine mode must realize the identical fault
            # schedule, not just identical records.
            summary.update(
                {key: float(v) for key, v in result.faults.stats.items()}
            )
        run = ModeRun(
            mode=mode,
            records=list(result.metrics.rounds),
            trace=result.trace,
            fingerprints=fingerprints,
            edges=result.network.edges,
            summary=summary,
        )
        return run, outcomes
    if mode != "sharded":
        raise ValueError(f"unknown differential mode {mode!r}; choose from {DEFAULT_MODES}")

    plan = build_fault_plan(
        spec.faults, n=spec.n, seed=spec.seed, params=spec.fault_params
    )
    inner = _build_cell_adversary(spec)
    if plan is not None and plan.affects_topology:
        # Trace recording wraps *outside* the overlay so the recorded trace
        # is the physical post-fault schedule -- comparable 1:1 with the
        # serial engines' traces.
        inner = FaultOverlayAdversary(inner, spec.n, plan)
    adversary = TraceRecordingAdversary(inner, spec.n)
    bandwidth = BandwidthPolicy(factor=spec.bandwidth_factor, strict=spec.strict_bandwidth)
    with ShardedRoundEngine(
        spec.n,
        ALGORITHMS[spec.algorithm],
        num_workers=spec.num_workers,
        bandwidth=bandwidth,
        mode="sparse",
        faults=plan,
    ) as engine:
        drive_engine(engine, adversary, num_rounds=spec.rounds, drain=spec.drain)
        fingerprints = engine.state_fingerprints()
        summary = _summary_of(engine.metrics, bandwidth, spec.n, engine.network.num_edges)
        if plan is not None:
            summary.update({key: float(v) for key, v in plan.stats.items()})
        run = ModeRun(
            mode=mode,
            records=list(engine.metrics.rounds),
            trace=adversary.trace,
            fingerprints=fingerprints,
            edges=engine.network.edges,
            summary=summary,
        )
    return run, {}


# --------------------------------------------------------------------- #
# Comparison
# --------------------------------------------------------------------- #
def _compare(reference: ModeRun, other: ModeRun) -> List[Divergence]:
    divergences: List[Divergence] = []

    def add(kind: str, field_name: str, **kwargs: Any) -> None:
        if len(divergences) < _MAX_DIVERGENCES * 4:
            divergences.append(
                Divergence(
                    kind=kind,
                    mode_a=reference.mode,
                    mode_b=other.mode,
                    field=field_name,
                    **kwargs,
                )
            )

    if len(reference.records) != len(other.records):
        add(
            "rounds",
            "rounds_executed",
            expected=str(len(reference.records)),
            actual=str(len(other.records)),
        )
    reported = 0
    for ref_rec, other_rec in zip(reference.records, other.records):
        if ref_rec == other_rec:
            continue
        for field_name in _RECORD_FIELDS:
            a, b = getattr(ref_rec, field_name), getattr(other_rec, field_name)
            if a != b:
                add(
                    "round_record",
                    field_name,
                    round_index=ref_rec.round_index,
                    expected=str(a),
                    actual=str(b),
                )
        reported += 1
        if reported >= _MAX_DIVERGENCES:
            break

    if reference.trace is not None and other.trace is not None:
        if reference.trace.rounds != other.trace.rounds:
            add(
                "trace",
                "realized_schedule",
                round_index=first_divergent_round(
                    reference.trace.rounds, other.trace.rounds
                ),
                expected=f"{reference.trace.num_rounds} recorded rounds",
                actual=f"{other.trace.num_rounds} recorded rounds",
            )

    if reference.edges != other.edges:
        missing = reference.edges - other.edges
        extra = other.edges - reference.edges
        add(
            "network",
            "edges",
            expected=f"{len(reference.edges)} edges",
            actual=f"missing {sorted(missing)[:4]}, extra {sorted(extra)[:4]}",
        )

    mismatched = [
        v
        for v in sorted(reference.fingerprints)
        if other.fingerprints.get(v) != reference.fingerprints[v]
    ]
    for v in mismatched[:_MAX_DIVERGENCES]:
        add(
            "final_state",
            "state_fingerprint",
            node=v,
            expected=reference.fingerprints[v][:12],
            actual=str(other.fingerprints.get(v, "<missing>"))[:12],
        )

    for key in sorted(set(reference.summary) | set(other.summary)):
        a, b = reference.summary.get(key), other.summary.get(key)
        if a != b:
            add("summary", key, expected=str(a), actual=str(b))
    return divergences


def run_differential(
    spec: ExperimentSpec,
    *,
    modes: Sequence[str] = DEFAULT_MODES,
    checks: Optional[Sequence[str]] = None,
    auto_checks: bool = False,
) -> DifferentialReport:
    """Run ``spec`` under every mode in ``modes`` and compare the runs.

    Args:
        spec: the cell to verify; its ``engine`` / ``engine_mode`` fields are
            ignored (the modes argument decides what runs).
        modes: two or more of ``"dense"``, ``"sparse"``, ``"sharded"``,
            ``"columnar"``.  The first *serial* mode acts as the reference
            leg and is the one the checks run on (checks need direct access
            to node instances).
        checks: check names to run; defaults to ``spec.checks``.
        auto_checks: select every applicable registered check instead.

    Returns:
        The :class:`DifferentialReport` with structured divergences, check
        outcomes and per-mode summaries.
    """
    modes = tuple(modes)
    if len(modes) < 2:
        raise ValueError("differential verification needs at least two modes")
    if len(set(modes)) != len(modes):
        raise ValueError(f"duplicate modes in {modes}")
    if auto_checks:
        # Result checks grade against fault-free semantics (reliable
        # delivery, no state loss), so auto-selection skips fault cells --
        # bit-identity across engines remains fully gated, and explicitly
        # requested checks are still honored.
        check_names: Sequence[str] = (
            () if spec.faults != FAULT_NONE else applicable_checks(spec)
        )
    else:
        check_names = tuple(spec.checks if checks is None else checks)
    serial_modes = [m for m in modes if m in _SERIAL_MODES]
    check_mode = serial_modes[0] if serial_modes else None

    runs: Dict[str, ModeRun] = {}
    outcomes: Dict[str, CheckOutcome] = {}
    for mode in modes:
        with TELEMETRY.span(f"differential.run.{mode}"):
            run, mode_outcomes = _run_mode(
                spec, mode, check_names if mode == check_mode else ()
            )
        runs[mode] = run
        outcomes.update(mode_outcomes)

    reference = runs[modes[0]]
    divergences: List[Divergence] = []
    with TELEMETRY.span("differential.compare"):
        for mode in modes[1:]:
            divergences.extend(_compare(reference, runs[mode]))
    if TELEMETRY.enabled:
        TELEMETRY.count("differential.cells")
        if divergences:
            TELEMETRY.count("differential.divergent_cells")
    return DifferentialReport(
        spec=spec,
        modes=modes,
        divergences=divergences,
        check_outcomes=outcomes,
        summaries={mode: run.summary for mode, run in runs.items()},
    )


# --------------------------------------------------------------------- #
# Campaign-level verification
# --------------------------------------------------------------------- #
def normalize_cell(spec: ExperimentSpec) -> ExperimentSpec:
    """Strip engine-selection axes from a cell for differential verification.

    The harness decides which engines run, so two campaign cells differing
    only in ``engine`` / ``engine_mode`` / ``record_trace`` verify as one.
    The ``checks`` field is cleared too: the verifier auto-selects every
    applicable registered check.
    """
    data = spec.to_dict()
    data.update(engine="serial", engine_mode="sparse", record_trace=True, checks=[])
    return ExperimentSpec.from_dict(data)


@dataclass
class CellVerification:
    """One verified cell within a campaign verification run."""

    spec: ExperimentSpec
    report: DifferentialReport
    coverage: bool = False  # True for cells synthesized to cover a check

    @property
    def ok(self) -> bool:
        return self.report.ok


@dataclass
class VerificationSummary:
    """The outcome of verifying a whole campaign spec."""

    campaign: str
    modes: Tuple[str, ...]
    cells: List[CellVerification] = field(default_factory=list)

    @property
    def executed_checks(self) -> List[str]:
        executed: Set[str] = set()
        for cell in self.cells:
            executed.update(cell.report.executed_checks)
        return sorted(executed)

    @property
    def skipped_checks(self) -> List[str]:
        return sorted(set(CHECKS) - set(self.executed_checks))

    @property
    def failed_cells(self) -> List[CellVerification]:
        return [cell for cell in self.cells if not cell.ok]

    @property
    def num_divergences(self) -> int:
        return sum(len(cell.report.divergences) for cell in self.cells)

    @property
    def num_check_failures(self) -> int:
        return sum(len(cell.report.check_failures) for cell in self.cells)

    @property
    def ok(self) -> bool:
        return not self.failed_cells

    def to_dict(self) -> Dict[str, Any]:
        return {
            "campaign": self.campaign,
            "modes": list(self.modes),
            "ok": self.ok,
            "executed_checks": self.executed_checks,
            "skipped_checks": self.skipped_checks,
            "cells": [
                {"coverage": cell.coverage, **cell.report.to_dict()} for cell in self.cells
            ],
        }


def verify_campaign(
    campaign: CampaignSpec,
    *,
    modes: Sequence[str] = DEFAULT_MODES,
    include_coverage: bool = True,
    limit: Optional[int] = None,
    progress: Optional[Callable[[CellVerification, int, int], None]] = None,
) -> VerificationSummary:
    """Differentially verify every unique cell of a campaign spec.

    Cells are normalized (engine axes stripped) and deduplicated first; each
    unique cell runs under every requested mode with every applicable check.
    With ``include_coverage`` (the default), registered checks that no
    campaign cell exercises are afterwards executed on their own coverage
    cells, so the whole checks registry runs on every verify invocation.
    """
    summary = VerificationSummary(campaign=campaign.name, modes=tuple(modes))
    unique: Dict[str, ExperimentSpec] = {}
    for cell in campaign.expand():
        normalized = normalize_cell(cell)
        unique.setdefault(normalized.cell_id, normalized)
    cells = list(unique.values())
    if limit is not None:
        cells = cells[:limit]

    coverage_cells: List[ExperimentSpec] = []
    if include_coverage:
        planned_executed: Set[str] = set()
        for cell in cells:
            planned_executed.update(applicable_checks(cell))
        planned_ids = {cell.cell_id for cell in cells}
        for name in sorted(CHECKS):
            # Every appended coverage cell runs all its applicable checks, so
            # re-test coverage after each one: a single triangle cell can
            # cover several registry entries with one differential run.
            if name in planned_executed:
                continue
            base = CHECKS[name].coverage_cell()
            if base is None:
                continue
            cov = normalize_cell(ExperimentSpec.from_dict(base))
            if cov.cell_id in planned_ids:
                continue
            planned_ids.add(cov.cell_id)
            planned_executed.update(applicable_checks(cov))
            coverage_cells.append(cov)

    total = len(cells) + len(coverage_cells)
    done = 0
    for spec, is_coverage in [(c, False) for c in cells] + [
        (c, True) for c in coverage_cells
    ]:
        report = run_differential(spec, modes=modes, auto_checks=True)
        cell = CellVerification(spec=spec, report=report, coverage=is_coverage)
        summary.cells.append(cell)
        done += 1
        if progress is not None:
            progress(cell, done, total)
    return summary
