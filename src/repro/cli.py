"""Command-line interface: single runs, experiment campaigns, verification.

Installed as the ``repro-dynamic-subgraphs`` console script.  Three modes:

* the default mode runs one algorithm/adversary combination and prints its
  metrics -- a thin layer over
  :class:`~repro.simulator.runner.SimulationRunner`::

      repro-dynamic-subgraphs --algorithm triangle --adversary churn --nodes 40 --rounds 300

  ``--checks name1,name2`` (or ``--checks auto``) additionally runs the named
  result checks and reports their metrics and structured failures.

* the ``campaign`` subcommand expands a declarative JSON sweep spec and runs
  it across a worker pool (see :mod:`repro.experiments`), persisting per-cell
  results and traces and printing the aggregate table::

      repro-dynamic-subgraphs campaign --spec sweep.json --jobs 4

* the ``verify`` subcommand differentially verifies every unique cell of a
  sweep spec across the dense, sparse, sharded and columnar engines, running
  every applicable registered check and reporting structured divergences::

      repro-dynamic-subgraphs verify --spec sweep.json

* the ``fuzz`` subcommand generates seeded adversarial schedules, runs each
  through the differential harness with every applicable check, ddmin-shrinks
  new failures to minimal scripted reproducers and banks them in a corpus
  (see :mod:`repro.fuzz`)::

      repro-dynamic-subgraphs fuzz --budget 200 --seed 7 --shrink --corpus fuzz-out
      repro-dynamic-subgraphs fuzz --replay --corpus tests/data/fuzz_corpus

* the ``telemetry`` subcommand renders the telemetry snapshots a campaign
  collected (``campaign --telemetry``) as a merged hotspot report -- span
  cumulative times, histogram percentiles, counters -- optionally as JSON::

      repro-dynamic-subgraphs telemetry report --store campaigns/sweep
      repro-dynamic-subgraphs telemetry report --store campaigns/sweep --json report.json

* the ``serve`` subcommand runs the serving stack (:mod:`repro.serve`) over an
  event source -- a registered adversary, a recorded trace, or an external
  JSONL link-event log -- with standing subscriptions loaded from a JSON spec,
  printing every fired notification and the serving report::

      repro-dynamic-subgraphs serve --source log --log churn.jsonl --nodes 50 \\
          --structure triangle --subscriptions subs.json

Every subcommand takes ``--log-level`` to tune the ``repro.*`` logging
hierarchy (the library itself never prints; diagnostics go through
:mod:`logging`).

All modes resolve algorithm and adversary names through the shared
registries of :mod:`repro.experiments.registry`, so every implemented
adversary -- including the flickering-triangle construction, the Remark 1
three-path lower bound, recorded-trace replay and the schedule fuzzer -- is
reachable from the command line.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

from .analysis.tables import format_table
from .core.membership import PATTERNS
from .experiments import (
    ADVERSARIES,
    ALGORITHMS,
    PROFILERS,
    CampaignRunner,
    CampaignSpec,
    ExperimentSpec,
    ResultStore,
    build_adversary,
)
from .obs import DEFAULT_THRESHOLD, LOG_LEVELS, CampaignProgress, configure_logging
from .simulator import ENGINE_MODES
from .verification import CHECKS

__all__ = [
    "main",
    "build_parser",
    "build_campaign_parser",
    "build_verify_parser",
    "build_fuzz_parser",
    "build_telemetry_parser",
    "build_serve_parser",
    "campaign_main",
    "verify_main",
    "fuzz_main",
    "telemetry_main",
    "serve_main",
]


def _add_log_level(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--log-level`` flag to a (sub)parser."""
    parser.add_argument(
        "--log-level",
        choices=LOG_LEVELS,
        default="warning",
        help="threshold for the 'repro.*' logging hierarchy on stderr",
    )


def build_parser() -> argparse.ArgumentParser:
    """The single-run argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-dynamic-subgraphs",
        description="Run a highly-dynamic-network simulation and report amortized complexity. "
        "Use the 'campaign' subcommand to run a declarative sweep spec instead.",
    )
    parser.add_argument("--algorithm", choices=sorted(ALGORITHMS), default="triangle")
    parser.add_argument(
        "--adversary",
        choices=sorted(ADVERSARIES),
        default="churn",
        help="churn: uniform random churn; p2p: heavy-tailed sessions; "
        "batch: one-shot random graph; flicker: the Section 1.3 flickering triangle; "
        "theorem2/theorem4/threepath: the lower-bound constructions; "
        "scripted: replay a recorded trace (--trace); "
        "planted_clique/planted_cycle/growing: canned workload generators",
    )
    parser.add_argument("--nodes", type=int, default=30)
    parser.add_argument("--rounds", type=int, default=200)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--engine",
        choices=sorted(ENGINE_MODES),
        default="sparse",
        help="round scheduler: 'sparse' only visits active nodes (default), "
        "'dense' visits every node every round, 'columnar' batches message "
        "routing over struct-of-arrays buffers; all produce identical results",
    )
    parser.add_argument("--inserts-per-round", type=int, default=2)
    parser.add_argument("--deletes-per-round", type=int, default=1)
    parser.add_argument(
        "--pattern", choices=sorted(PATTERNS), default="P3", help="pattern for --adversary theorem2"
    )
    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        help="trace JSON to replay (required for --adversary scripted)",
    )
    parser.add_argument(
        "--save-trace",
        type=Path,
        default=None,
        help="record the realized schedule and write it to this file "
        "(replayable later via --adversary scripted --trace FILE)",
    )
    parser.add_argument(
        "--bandwidth-factor", type=int, default=8, help="per-link budget = factor * ceil(log2 n) bits"
    )
    parser.add_argument(
        "--loose-bandwidth",
        action="store_true",
        help="record bandwidth violations instead of raising (needed for the naive baselines)",
    )
    parser.add_argument(
        "--checks",
        default=None,
        metavar="NAME[,NAME...]",
        help="result checks to run after the simulation (see the registry: "
        f"{', '.join(sorted(CHECKS))}); 'auto' selects every applicable check",
    )
    _add_log_level(parser)
    return parser


def _adversary_params(args: argparse.Namespace) -> Dict:
    """Translate single-run flags into registry builder params."""
    if args.adversary == "churn":
        return {
            "inserts_per_round": args.inserts_per_round,
            "deletes_per_round": args.deletes_per_round,
        }
    if args.adversary == "theorem2":
        return {"pattern": args.pattern}
    if args.adversary == "scripted":
        if args.trace is None:
            raise SystemExit("--adversary scripted requires --trace FILE")
        return {"trace_path": str(args.trace)}
    return {}


def _run_single(args: argparse.Namespace) -> int:
    from .verification import applicable_checks, run_reference

    configure_logging(args.log_level)
    try:
        spec = ExperimentSpec(
            algorithm=args.algorithm,
            adversary=args.adversary,
            n=args.nodes,
            rounds=args.rounds,
            seed=args.seed,
            adversary_params=_adversary_params(args),
            bandwidth_factor=args.bandwidth_factor,
            strict_bandwidth=not args.loose_bandwidth,
            engine_mode=args.engine,
        )
        if args.checks is None:
            check_names: List[str] = []
        elif args.checks.strip() == "auto":
            check_names = applicable_checks(spec)
        else:
            check_names = [part.strip() for part in args.checks.split(",") if part.strip()]
            # Rebuilding the spec with the checks attached funnels name and
            # applicability validation through ExperimentSpec itself -- one
            # validation path, one message format.
            spec = ExperimentSpec.from_dict({**spec.to_dict(), "checks": check_names})
        # Construct the adversary up front so bad parameters (undersized n,
        # missing trace file) surface as usage errors; the unconsumed
        # instance is handed to the run below.
        adversary = build_adversary(
            args.adversary,
            n=spec.n,
            rounds=spec.rounds,
            seed=spec.seed,
            params=spec.adversary_params,
        )
    except (ValueError, OSError) as exc:
        # Exit 2 is reserved for usage errors (bad flags, bad spec inputs);
        # failures *during* the simulation surface as tracebacks.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result, outcomes = run_reference(
        spec,
        engine_mode=args.engine,
        checks=check_names,
        record_trace=args.save_trace is not None,
        adversary=adversary,
    )
    if args.save_trace is not None:
        result.trace.save(args.save_trace)
        print(f"trace written to {args.save_trace}")
    summary = result.summary()
    for outcome in outcomes.values():
        summary.update(outcome.metrics)
    print(
        format_table(
            ["metric", "value"],
            sorted(summary.items()),
        )
    )
    failures = [f for outcome in outcomes.values() for f in outcome.failures]
    if failures:
        print(f"\n{len(failures)} check failure(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure.describe()}", file=sys.stderr)
        return 1
    if check_names:
        print(f"checks passed: {', '.join(check_names)}")
    return 0


# --------------------------------------------------------------------- #
# campaign subcommand
# --------------------------------------------------------------------- #
def build_campaign_parser() -> argparse.ArgumentParser:
    """The ``campaign`` subcommand parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-dynamic-subgraphs campaign",
        description="Expand a declarative sweep spec (JSON) and run it across a worker pool, "
        "persisting per-cell JSONL results + traces and printing the aggregate table. "
        "Re-running the same spec skips cells that already have stored results.",
    )
    parser.add_argument("--spec", type=Path, required=True, help="campaign spec JSON file")
    parser.add_argument("--jobs", type=int, default=1, help="worker processes (1 = inline)")
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="result-store directory (default: campaigns/<campaign name>)",
    )
    parser.add_argument(
        "--no-resume",
        action="store_true",
        help="re-run every cell even if the store already has its result",
    )
    parser.add_argument(
        "--group-by",
        default="algorithm,adversary,n",
        help="comma-separated spec fields for the aggregate table grouping",
    )
    parser.add_argument(
        "--metrics",
        default="amortized_round_complexity,duration_s",
        help="comma-separated metric names to aggregate "
        "(mean/p50/p95/p99 per group; bare record keys like duration_s work too)",
    )
    parser.add_argument(
        "--list", action="store_true", dest="list_cells", help="print the expanded cells and exit"
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        default=None,
        help="collect per-cell telemetry snapshots into <store>/telemetry/ "
        "(defaults to the spec's own 'telemetry' settings)",
    )
    parser.add_argument(
        "--no-telemetry",
        action="store_false",
        dest="telemetry",
        help="force telemetry off even if the spec enables it",
    )
    parser.add_argument(
        "--telemetry-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="snapshot cadence (default: the spec's interval_s, else 1s)",
    )
    parser.add_argument(
        "--trace-events",
        action="store_true",
        default=None,
        help="collect stage-level trace events per cell into "
        "<store>/telemetry/<cell_id>.trace.jsonl (implies --telemetry; "
        "export with 'telemetry trace'; defaults to the spec's "
        "telemetry.trace setting)",
    )
    parser.add_argument(
        "--no-trace-events",
        action="store_false",
        dest="trace_events",
        help="force trace-event collection off even if the spec enables it",
    )
    parser.add_argument(
        "--profile",
        choices=PROFILERS,
        default=None,
        help="run every cell under a profiler; pstats dumps land in <store>/profiles/",
    )
    parser.add_argument(
        "--no-progress",
        action="store_true",
        help="suppress the live per-cell progress rendering on stderr",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="retry a cell up to N times after an infrastructure failure "
        "(worker death, timeout); a cell that exhausts its retries is "
        "recorded as quarantined instead of hanging the campaign",
    )
    parser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per cell attempt; past it the worker is "
        "killed and the cell retried (or quarantined)",
    )
    parser.add_argument(
        "--retry-backoff",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="base delay before re-dispatching a failed cell, doubled per "
        "attempt with deterministic jitter (default: 1s)",
    )
    parser.add_argument(
        "--allow-quarantined",
        action="store_true",
        help="exit 0 even when cells were quarantined, as long as every "
        "other cell succeeded (the quarantined ids are still printed)",
    )
    _add_log_level(parser)
    return parser


def campaign_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``campaign`` subcommand."""
    args = build_campaign_parser().parse_args(argv)
    configure_logging(args.log_level)
    try:
        campaign = CampaignSpec.load(args.spec)
        cells = campaign.expand()
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.list_cells:
        for cell in cells:
            print(cell.cell_id)
        return 0

    out = args.out if args.out is not None else Path("campaigns") / campaign.name
    store = ResultStore(out)
    try:
        runner = CampaignRunner(
            campaign,
            store,
            jobs=args.jobs,
            telemetry=args.telemetry,
            telemetry_interval_s=args.telemetry_interval,
            trace_events=args.trace_events,
            profile=args.profile,
            max_retries=args.retries,
            cell_timeout_s=args.cell_timeout,
            retry_backoff_s=args.retry_backoff,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    # Live progress renders on stderr so stdout stays clean for the
    # summary/aggregate tables (pipeable, diffable).
    live = None if args.no_progress else CampaignProgress(len(cells))

    print(f"campaign {campaign.name!r}: {len(cells)} cells -> {out}")
    report = runner.run(
        resume=not args.no_resume,
        progress=live.cell_finished if live is not None else None,
        on_start=live.cell_started if live is not None else None,
    )
    if live is not None:
        live.close()
    quarantined = report.quarantined
    print(
        f"ran {report.num_run} cells, skipped {report.num_skipped} already-complete, "
        f"{len(report.failed)} failed"
        + (f" ({len(quarantined)} quarantined)" if quarantined else "")
    )
    if any(report.counters.values()):
        supervision = ", ".join(
            f"{name.split('.', 1)[1]}={value}"
            for name, value in sorted(report.counters.items())
            if value
        )
        print(f"supervision: {supervision}")
    group_by = [part.strip() for part in args.group_by.split(",") if part.strip()]
    metrics = [part.strip() for part in args.metrics.split(",") if part.strip()]
    print(store.format_aggregate(group_by=group_by, metrics=metrics))
    if quarantined:
        ids = ", ".join(record["cell_id"] for record in quarantined[:5])
        print(f"\nquarantined cell(s): {ids}", file=sys.stderr)
    hard_failures = [r for r in report.failed if r.get("status") != "quarantined"]
    if hard_failures or (quarantined and not args.allow_quarantined):
        first = (hard_failures or quarantined)[0]
        print(f"\nfirst failure ({first['cell_id']}):\n{first['error']}", file=sys.stderr)
        return 1
    # Check violations do not error a cell (its metrics are still valid data)
    # but they do fail the campaign: every campaign run is a correctness gate.
    check_failed = [
        record for record in report.records if record["metrics"].get("check_failures")
    ]
    if check_failed:
        cells = ", ".join(record["cell_id"] for record in check_failed[:5])
        print(
            f"\n{len(check_failed)} cell(s) with check failures (e.g. {cells}); "
            "run the 'verify' subcommand for the structured report",
            file=sys.stderr,
        )
        return 1
    return 0


# --------------------------------------------------------------------- #
# verify subcommand
# --------------------------------------------------------------------- #
def build_verify_parser() -> argparse.ArgumentParser:
    """The ``verify`` subcommand parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-dynamic-subgraphs verify",
        description="Differentially verify a sweep spec: run every unique cell under "
        "two or more engine modes, assert bit-identity of round records, traces, "
        "metrics and final node state, and execute every applicable registered "
        "check. Checks not exercised by the spec run on their own coverage cells, "
        "so a verify run executes the whole checks registry.",
    )
    parser.add_argument("--spec", type=Path, required=True, help="campaign spec JSON file")
    parser.add_argument(
        "--modes",
        default="dense,sparse,sharded,columnar",
        help="comma-separated engine modes to compare "
        "(default: dense,sparse,sharded,columnar)",
    )
    parser.add_argument(
        "--limit", type=int, default=None, help="verify at most this many unique cells"
    )
    parser.add_argument(
        "--no-coverage",
        action="store_true",
        help="skip the coverage cells for checks the spec does not exercise",
    )
    parser.add_argument(
        "--require-all-checks",
        action="store_true",
        help="fail (exit 1) if any registered check was never executed",
    )
    parser.add_argument(
        "--report",
        type=Path,
        default=None,
        help="write the full structured verification report to this JSON file",
    )
    _add_log_level(parser)
    return parser


def verify_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``verify`` subcommand."""
    from .verification import DEFAULT_MODES, verify_campaign

    args = build_verify_parser().parse_args(argv)
    configure_logging(args.log_level)
    modes = tuple(part.strip() for part in args.modes.split(",") if part.strip())
    try:
        campaign = CampaignSpec.load(args.spec)
        if any(mode not in DEFAULT_MODES for mode in modes):
            raise ValueError(
                f"unknown mode in {modes}; choose from {', '.join(DEFAULT_MODES)}"
            )
        if len(modes) < 2:
            raise ValueError("verify needs at least two engine modes to compare")
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    def progress(cell, done, total):
        label = " [coverage]" if cell.coverage else ""
        checks = ",".join(cell.report.executed_checks) or "-"
        verdict = "ok" if cell.ok else "FAIL"
        print(f"[{done}/{total}] {cell.spec.cell_id}{label}: {verdict} (checks: {checks})")
        if not cell.ok:
            print(cell.report.describe(), file=sys.stderr)

    print(f"verify {campaign.name!r} across {'/'.join(modes)}")
    try:
        summary = verify_campaign(
            campaign,
            modes=modes,
            include_coverage=not args.no_coverage,
            limit=args.limit,
            progress=progress,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.report is not None:
        args.report.write_text(json.dumps(summary.to_dict(), indent=2) + "\n")
        print(f"report written to {args.report}")
    print(
        f"{len(summary.cells)} cells verified: {summary.num_divergences} divergences, "
        f"{summary.num_check_failures} check failures"
    )
    print(f"checks executed: {', '.join(summary.executed_checks) or '-'}")
    if summary.skipped_checks:
        print(f"checks skipped: {', '.join(summary.skipped_checks)}")
    if not summary.ok:
        return 1
    if args.require_all_checks and summary.skipped_checks:
        print("error: some registered checks were never executed", file=sys.stderr)
        return 1
    return 0


# --------------------------------------------------------------------- #
# fuzz subcommand
# --------------------------------------------------------------------- #
def build_fuzz_parser() -> argparse.ArgumentParser:
    """The ``fuzz`` subcommand parser (exposed for testing)."""
    from .fuzz.generators import PROFILES
    from .fuzz.injected import INJECTED_BUGS

    parser = argparse.ArgumentParser(
        prog="repro-dynamic-subgraphs fuzz",
        description="Generate seeded adversarial schedules (churn bursts, flicker-gadget "
        "splices, node isolation, delete/re-insert interleavings), run each through the "
        "cross-engine differential harness with every applicable check, ddmin-shrink new "
        "failures to minimal scripted reproducers, and bank them in a JSONL corpus. "
        "With --replay, re-run every corpus reproducer instead and fail if any behaves "
        "differently than recorded.",
    )
    parser.add_argument("--budget", type=int, default=50, help="number of schedules to try")
    parser.add_argument("--seed", type=int, default=0, help="base seed of the schedule stream")
    parser.add_argument(
        "--shrink",
        action="store_true",
        help="ddmin-minimize the first failure of each new failure class",
    )
    parser.add_argument(
        "--corpus",
        type=Path,
        default=None,
        help="corpus directory: minimized reproducers are appended here "
        "(and replayed from here with --replay)",
    )
    parser.add_argument(
        "--replay",
        action="store_true",
        help="replay every corpus entry instead of fuzzing (requires --corpus)",
    )
    parser.add_argument(
        "--algorithms",
        default="triangle,robust2hop,robust3hop,twohop",
        metavar="NAME[,NAME...]",
        help="round-robin pool of algorithms under test",
    )
    parser.add_argument("--nodes", type=int, default=8, help="network size of every fuzz cell")
    parser.add_argument(
        "--schedule-rounds", type=int, default=30, help="rounds per generated schedule"
    )
    parser.add_argument(
        "--profile",
        choices=sorted(PROFILES),
        default="mixed",
        help="phase mix of the schedule generator",
    )
    parser.add_argument(
        "--modes",
        default="dense,sparse",
        help="comma-separated engine modes each cell is compared across "
        "(default: dense,sparse; add sharded/columnar for full coverage). "
        "--replay ignores this: each corpus entry replays under the modes "
        "it was recorded with",
    )
    parser.add_argument(
        "--faults",
        default="",
        help="comma-separated fault-model axis cycled across cells "
        "(e.g. 'none,uniform_loss,crash'); empty fuzzes fault-free",
    )
    parser.add_argument(
        "--inject-bug",
        choices=sorted(INJECTED_BUGS),
        default=None,
        help="swap a registry algorithm for a deliberately broken variant "
        "(an injected-bug build, for exercising the pipeline end to end)",
    )
    parser.add_argument(
        "--max-shrink-candidates",
        type=int,
        default=1500,
        help="differential-run budget per shrink session",
    )
    parser.add_argument(
        "--report",
        type=Path,
        default=None,
        help="write the full structured fuzz report to this JSON file",
    )
    parser.add_argument(
        "--telemetry-out",
        type=Path,
        default=None,
        metavar="FILE",
        help="stream fuzz telemetry heartbeats (schedules/sec, failures banked, "
        "current signature) to this JSONL file",
    )
    _add_log_level(parser)
    return parser


def fuzz_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``fuzz`` subcommand."""
    from .fuzz.corpus import CorpusStore
    from .fuzz.driver import FuzzConfig, run_fuzz
    from .fuzz.injected import inject_bug
    from .verification import DEFAULT_MODES

    args = build_fuzz_parser().parse_args(argv)
    configure_logging(args.log_level)
    modes = tuple(part.strip() for part in args.modes.split(",") if part.strip())
    algorithms = tuple(part.strip() for part in args.algorithms.split(",") if part.strip())
    config = None
    try:
        if args.replay:
            if args.corpus is None:
                raise ValueError("--replay needs --corpus DIR to replay from")
            # Replay ignores the fuzzing knobs (each entry carries its own
            # modes/size), so they are deliberately not validated here.
        else:
            if any(mode not in DEFAULT_MODES for mode in modes):
                raise ValueError(
                    f"unknown mode in {modes}; choose from {', '.join(DEFAULT_MODES)}"
                )
            unknown = [a for a in algorithms if a not in ALGORITHMS]
            if unknown:
                raise ValueError(
                    f"unknown algorithms {unknown}; choose from {sorted(ALGORITHMS)}"
                )
            config = FuzzConfig(
                budget=args.budget,
                seed=args.seed,
                algorithms=algorithms,
                n=args.nodes,
                schedule_rounds=args.schedule_rounds,
                profile=args.profile,
                modes=modes,
                shrink=args.shrink,
                max_shrink_candidates=args.max_shrink_candidates,
                faults=tuple(
                    part.strip() for part in args.faults.split(",") if part.strip()
                ),
            )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    restore = None
    if args.inject_bug is not None:
        restore = inject_bug(args.inject_bug)
        print(
            f"NOTE: injected bug {args.inject_bug!r} is active -- this build is "
            "intentionally broken",
            file=sys.stderr,
        )
    telemetry_on = args.telemetry_out is not None
    if telemetry_on:
        from .obs import TELEMETRY, TelemetrySink

        TELEMETRY.enable(sink=TelemetrySink(args.telemetry_out), label="fuzz")
    try:
        corpus = CorpusStore(args.corpus) if args.corpus is not None else None

        if args.replay:
            try:
                entries = corpus.entries()
            except ValueError as exc:
                # A parseable-but-invalid line is a botched hand-edit; the
                # store raises and the CLI reports it like any bad input.
                print(f"error: {exc}", file=sys.stderr)
                return 2
            if not entries:
                # An empty replay must not pass vacuously: a typo'd path or a
                # corrupted corpus file would silently disable the CI gate.
                print(
                    f"error: no corpus entries found under {args.corpus} "
                    f"(expected {CorpusStore.CORPUS_FILE})",
                    file=sys.stderr,
                )
                return 2
            outcomes = corpus.replay_all(
                progress=lambda outcome, done, total: print(
                    f"[{done}/{total}] {outcome.describe()}"
                )
            )
            bad = [o for o in outcomes if not o.ok]
            if args.report is not None:
                args.report.write_text(
                    json.dumps(
                        {
                            "ok": not bad,
                            "outcomes": [
                                {
                                    "entry_id": o.entry.entry_id,
                                    "algorithm": o.entry.algorithm,
                                    "expect": o.entry.expect,
                                    "ok": o.ok,
                                    "observed": o.observed.to_dict(),
                                    "detail": o.detail,
                                }
                                for o in outcomes
                            ],
                        },
                        indent=2,
                    )
                    + "\n"
                )
                print(f"report written to {args.report}")
            print(
                f"replayed {len(outcomes)} corpus entries: "
                f"{len(outcomes) - len(bad)} ok, {len(bad)} stale/failing"
            )
            return 1 if bad else 0

        def progress(record, done, total):
            verdict = "ok" if record["ok"] else "FAIL"
            print(f"[{done}/{total}] {record['cell_id']}: {verdict}")

        print(
            f"fuzz: budget {config.budget}, seed {config.seed}, n={config.n}, "
            f"{config.schedule_rounds} rounds/schedule, profile {config.profile}, "
            f"modes {'/'.join(config.modes)}"
        )
        report = run_fuzz(config, corpus=corpus, progress=progress)
        if args.report is not None:
            args.report.write_text(json.dumps(report.to_dict(), indent=2) + "\n")
            print(f"report written to {args.report}")
        print(
            f"{report.num_cells} schedules fuzzed: {report.num_failing} failing "
            f"({len(report.failure_classes)} distinct failure classes)"
        )
        for failure in report.failures:
            print(f"\n{failure.describe()}", file=sys.stderr)
        shrunk = next((f for f in report.failures if f.shrink is not None), None)
        if shrunk is not None:
            print("\nminimized reproducer (scripted trace):", file=sys.stderr)
            print(json.dumps(shrunk.reproducer.to_dict(), indent=2), file=sys.stderr)
        return 0 if report.ok else 1
    finally:
        if telemetry_on:
            from .obs import TELEMETRY

            TELEMETRY.disable()
        if restore is not None:
            restore()


# --------------------------------------------------------------------- #
# telemetry subcommand
# --------------------------------------------------------------------- #
def build_telemetry_parser() -> argparse.ArgumentParser:
    """The ``telemetry`` subcommand parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-dynamic-subgraphs telemetry",
        description="Inspect the telemetry a campaign collected. "
        "'report' merges every cell's final snapshot into one hotspot table: "
        "span cumulative times (sorted hottest first), histogram percentiles "
        "and counters, across engines (coordinator and shard workers), "
        "oracle, monitor and fuzz driver. "
        "'trace' merges the per-cell trace-event JSONL files into one Chrome "
        "trace-event JSON, loadable in Perfetto (https://ui.perfetto.dev) or "
        "chrome://tracing. "
        "'diff' compares two perf documents (hotspot reports, BENCH_*.json "
        "files, or result-store directories) under per-metric tolerance "
        "thresholds and exits 1 on regression.",
    )
    parser.add_argument(
        "command",
        choices=("report", "trace", "diff"),
        help="'report': merged hotspot report; 'trace': Chrome trace-event "
        "export; 'diff': perf-regression comparison",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="for 'diff': BASELINE and CANDIDATE perf documents (JSON files "
        "or result-store directories)",
    )
    parser.add_argument(
        "--store",
        type=Path,
        default=None,
        help="campaign result-store directory (its telemetry/ subdirectory is "
        "read), or a directory of telemetry JSONL files directly "
        "(required for 'report' and 'trace')",
    )
    parser.add_argument(
        "--top", type=int, default=20, help="number of hotspot rows to show ('report')"
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        dest="json_out",
        help="additionally write the merged report as machine-readable JSON",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="output path for 'trace' (default: <store>/trace.json)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="global relative tolerance for 'diff' (default: %(default)s; "
        "e.g. 0.25 lets a timing grow 25%% before failing)",
    )
    parser.add_argument(
        "--metric",
        action="append",
        default=[],
        metavar="NAME=THRESHOLD",
        help="per-metric tolerance override for 'diff' (repeatable)",
    )
    parser.add_argument(
        "--min-value",
        type=float,
        default=1e-6,
        metavar="FLOOR",
        help="skip metric pairs where both sides are below FLOOR "
        "(near-zero timings are pure jitter; default: %(default)s)",
    )
    parser.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but exit 0 anyway ('diff')",
    )
    parser.add_argument(
        "--history",
        type=Path,
        default=None,
        metavar="JSONL",
        help="append the candidate's extracted rows to this BENCH_history.jsonl "
        "trajectory after diffing",
    )
    _add_log_level(parser)
    return parser


def _telemetry_root(store: Optional[Path]) -> Path | int:
    """Resolve ``--store`` to the snapshot directory, or an exit code."""
    if store is None:
        print("error: --store is required for this command", file=sys.stderr)
        return 2
    root = store
    if (root / ResultStore.TELEMETRY_DIR).is_dir():
        root = root / ResultStore.TELEMETRY_DIR
    if not root.is_dir():
        print(f"error: no telemetry directory at {root}", file=sys.stderr)
        return 2
    return root


def _telemetry_report(args) -> int:
    from .obs import build_report, format_report

    root = _telemetry_root(args.store)
    if isinstance(root, int):
        return root
    report = build_report(root, top=args.top)
    if not report["cells"]:
        print(
            f"error: no telemetry snapshots under {root} "
            "(was the campaign run with --telemetry?)",
            file=sys.stderr,
        )
        return 2
    print(format_report(report))
    if args.json_out is not None:
        args.json_out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"json report written to {args.json_out}")
    return 0


def _telemetry_trace(args) -> int:
    from .obs import build_chrome_trace

    root = _telemetry_root(args.store)
    if isinstance(root, int):
        return root
    try:
        trace = build_chrome_trace(root)
    except (FileNotFoundError, ValueError) as exc:
        print(
            f"error: {exc} (was the campaign run with --trace-events?)",
            file=sys.stderr,
        )
        return 2
    out = args.out if args.out is not None else root / "trace.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(trace) + "\n")
    slices = sum(1 for e in trace["traceEvents"] if e.get("ph") == "X")
    print(
        f"chrome trace written to {out} ({slices} slices); "
        "load it at https://ui.perfetto.dev or chrome://tracing"
    )
    return 0


def _telemetry_diff(args) -> int:
    from .obs import append_history, diff_rows, extract_rows, format_diff, load_perf_document

    if len(args.paths) != 2:
        print(
            "error: 'telemetry diff' needs exactly two paths: BASELINE CANDIDATE",
            file=sys.stderr,
        )
        return 2
    per_metric = {}
    for override in args.metric:
        name, sep, value = override.partition("=")
        if not sep or not name:
            print(
                f"error: --metric expects NAME=THRESHOLD, got {override!r}",
                file=sys.stderr,
            )
            return 2
        try:
            per_metric[name] = float(value)
        except ValueError:
            print(
                f"error: --metric threshold must be a number, got {value!r}",
                file=sys.stderr,
            )
            return 2
    baseline_path, candidate_path = args.paths
    docs = []
    for path in (baseline_path, candidate_path):
        try:
            doc = load_perf_document(path)
        except (FileNotFoundError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        rows = extract_rows(doc)
        if not rows:
            print(f"error: no comparable perf rows in {path}", file=sys.stderr)
            return 2
        docs.append((doc, rows))
    (baseline_doc, baseline_rows), (candidate_doc, candidate_rows) = docs
    report = diff_rows(
        baseline_rows,
        candidate_rows,
        threshold=args.threshold,
        per_metric=per_metric,
        min_value=args.min_value,
        baseline_name=str(baseline_path),
        candidate_name=str(candidate_path),
    )
    if report.compared == 0:
        print(
            f"error: no overlapping perf rows between {baseline_path} and "
            f"{candidate_path} (nothing to compare)",
            file=sys.stderr,
        )
        return 2
    print(format_diff(report))
    if args.history is not None:
        append_history(args.history, candidate_doc, source=str(candidate_path))
        print(f"history appended to {args.history}")
    if report.failed and not args.warn_only:
        return 1
    return 0


def telemetry_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``telemetry`` subcommand."""
    # intermixed: lets flags appear between/before the positional paths
    # ("telemetry diff --warn-only BASE CAND" and "... BASE CAND --warn-only"
    # both parse), which plain parse_args rejects for a nargs="*" positional.
    args = build_telemetry_parser().parse_intermixed_args(argv)
    configure_logging(args.log_level)
    if args.command == "report":
        return _telemetry_report(args)
    if args.command == "trace":
        return _telemetry_trace(args)
    return _telemetry_diff(args)


# --------------------------------------------------------------------- #
# serve subcommand
# --------------------------------------------------------------------- #
def build_serve_parser() -> argparse.ArgumentParser:
    """The ``serve`` subcommand parser (exposed for testing)."""
    from .serve import EVENT_SOURCES
    from .serve.core import STRUCTURES
    from .serve.subscriptions import DEFAULT_SETTLE_STREAK

    parser = argparse.ArgumentParser(
        prog="repro-dynamic-subgraphs serve",
        description="Run the serving stack over an event source: ingest one batch "
        "per round into a monitored graph, re-evaluate the standing subscriptions "
        "whose dirty region was touched, print every fired notification and the "
        "serving report (throughput, evaluations, state fingerprint).",
    )
    parser.add_argument(
        "--source",
        choices=EVENT_SOURCES,
        default="adversary",
        help="where batches come from: a registered adversary (--adversary), a "
        "recorded trace (--trace), or an external JSONL link-event log (--log)",
    )
    parser.add_argument("--nodes", type=int, default=30)
    parser.add_argument(
        "--structure",
        choices=sorted(STRUCTURES),
        default="triangle",
        help="the data structure every node runs",
    )
    parser.add_argument(
        "--engine",
        choices=[mode for mode in sorted(ENGINE_MODES) if mode != "sharded"],
        default="sparse",
        help="serial round scheduler (the process-parallel 'sharded' engine "
        "cannot serve in-process queries and is rejected)",
    )
    parser.add_argument(
        "--subscriptions",
        type=Path,
        default=None,
        metavar="FILE",
        help="JSON list of standing-query specs, each "
        '{"kind": "edge"|"triangle"|"clique"|"cycle", ...params, "id": optional}',
    )
    parser.add_argument(
        "--adversary",
        choices=sorted(ADVERSARIES),
        default="churn",
        help="schedule generator for --source adversary",
    )
    parser.add_argument("--rounds", type=int, default=200, help="batch cap for --source adversary")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--trace", type=Path, default=None, help="trace JSON to replay (--source trace)"
    )
    parser.add_argument(
        "--log", type=Path, default=None, help="JSONL link-event log to ingest (--source log)"
    )
    parser.add_argument(
        "--round-duration",
        type=float,
        default=1.0,
        help="seconds of log time per served round (--source log)",
    )
    parser.add_argument(
        "--max-quiet-gap",
        type=int,
        default=None,
        help="clamp quiet-round gaps between log buckets (--source log)",
    )
    parser.add_argument(
        "--settle-rounds",
        type=int,
        default=10,
        help="quiet rounds served after the source drains, letting in-flight "
        "changes reach their subscriptions",
    )
    parser.add_argument(
        "--settle-streak",
        type=int,
        default=DEFAULT_SETTLE_STREAK,
        help="consecutive definite answers after which a touched subscription "
        "goes quiet",
    )
    parser.add_argument(
        "--bandwidth-factor", type=int, default=8, help="per-link budget = factor * ceil(log2 n) bits"
    )
    parser.add_argument(
        "--report",
        type=Path,
        default=None,
        metavar="FILE",
        help="write the full serving report (including the firing log) as JSON",
    )
    parser.add_argument(
        "--telemetry-out",
        type=Path,
        default=None,
        metavar="FILE",
        help="stream telemetry snapshots (ingest spans and counters, "
        "answer-latency percentiles, subscription counters) to this JSONL file",
    )
    parser.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        metavar="FILE",
        help="record trace events (ingest spans, per-evaluation answer "
        "latency) to FILE, one JSON event per line; name it *.trace.jsonl "
        "and point 'telemetry trace --store' at its directory to export a "
        "Chrome/Perfetto timeline",
    )
    _add_log_level(parser)
    return parser


def serve_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``serve`` subcommand."""
    from .serve import (
        AdversaryEventSource,
        LogConversionError,
        LogEventSource,
        MonitorService,
        TraceEventSource,
    )

    args = build_serve_parser().parse_args(argv)
    configure_logging(args.log_level)
    try:
        service = MonitorService(
            args.nodes,
            args.structure,
            engine_mode=args.engine,
            settle_streak=args.settle_streak,
            bandwidth_factor=args.bandwidth_factor,
        )
        if args.subscriptions is not None:
            specs = json.loads(args.subscriptions.read_text())
            if not isinstance(specs, list):
                raise ValueError(
                    f"{args.subscriptions} must hold a JSON list of subscription specs"
                )
            service.registry.register_all(specs)
        if args.source == "adversary":
            adversary = build_adversary(
                args.adversary, n=args.nodes, rounds=args.rounds, seed=args.seed
            )
            source = AdversaryEventSource(adversary, rounds=args.rounds)
        elif args.source == "trace":
            if args.trace is None:
                raise ValueError("--source trace requires --trace FILE")
            source = TraceEventSource.load(args.trace)
        else:
            if args.log is None:
                raise ValueError("--source log requires --log FILE")
            source = LogEventSource(
                args.log,
                n=args.nodes,
                round_duration=args.round_duration,
                max_quiet_gap=args.max_quiet_gap,
            )
            print(
                "log normalized: "
                + ", ".join(f"{k}={v}" for k, v in sorted(source.stats.items()))
            )
    except (OSError, ValueError, KeyError, TypeError, LogConversionError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    telemetry_on = args.telemetry_out is not None or args.trace_out is not None
    tracer = None
    if telemetry_on:
        from .obs import TELEMETRY, TelemetrySink, TraceBuffer

        sink = (
            TelemetrySink(args.telemetry_out)
            if args.telemetry_out is not None
            else None
        )
        if args.trace_out is not None:
            tracer = TraceBuffer(cell_id="serve", engine_mode=args.engine)
        TELEMETRY.enable(sink=sink, label="serve", tracer=tracer)
    try:
        report = service.run(
            source,
            max_batches=args.rounds,
            settle_rounds=args.settle_rounds,
            on_notification=lambda note: print(
                f"round {note.round_index:>5}  {note.subscription_id} ({note.kind}): "
                f"{note.old} -> {note.new}"
            ),
        )
    finally:
        if telemetry_on:
            from .obs import TELEMETRY

            TELEMETRY.disable()
            if args.telemetry_out is not None:
                print(f"telemetry written to {args.telemetry_out}")
            if tracer is not None:
                from .obs import write_trace_jsonl

                written = write_trace_jsonl(args.trace_out, tracer)
                print(f"trace events written to {args.trace_out} ({written} events)")
    summary = report.to_dict()
    summary.pop("firings")
    print(format_table(["metric", "value"], sorted(summary.items())))
    if args.report is not None:
        args.report.write_text(json.dumps(report.to_dict(), indent=2) + "\n")
        print(f"report written to {args.report}")
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "campaign":
        return campaign_main(argv[1:])
    if argv and argv[0] == "verify":
        return verify_main(argv[1:])
    if argv and argv[0] == "fuzz":
        return fuzz_main(argv[1:])
    if argv and argv[0] == "telemetry":
        return telemetry_main(argv[1:])
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    args = build_parser().parse_args(argv)
    return _run_single(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
