"""Command-line interface: run a quick simulation and print its metrics.

Installed as the ``repro-dynamic-subgraphs`` console script.  It is a thin
convenience layer over :class:`~repro.simulator.runner.SimulationRunner` for
kicking the tyres of an algorithm/adversary combination without writing code::

    repro-dynamic-subgraphs --algorithm triangle --adversary churn --nodes 40 --rounds 300
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from .adversary import (
    BatchInsertAdversary,
    HeavyTailedChurnAdversary,
    MembershipLowerBoundAdversary,
    RandomChurnAdversary,
)
from .analysis.tables import format_table
from .core import (
    CliqueMembershipNode,
    CycleListingNode,
    NaiveForwardingNode,
    RobustThreeHopNode,
    RobustTwoHopNode,
    TriangleMembershipNode,
    TwoHopListingNode,
)
from .core.membership import PATTERNS
from .simulator import SimulationRunner

__all__ = ["main", "build_parser"]

ALGORITHMS: Dict[str, Callable] = {
    "robust2hop": RobustTwoHopNode,
    "triangle": TriangleMembershipNode,
    "clique": CliqueMembershipNode,
    "robust3hop": RobustThreeHopNode,
    "cycles": CycleListingNode,
    "twohop": TwoHopListingNode,
    "naive": NaiveForwardingNode,
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-dynamic-subgraphs",
        description="Run a highly-dynamic-network simulation and report amortized complexity.",
    )
    parser.add_argument("--algorithm", choices=sorted(ALGORITHMS), default="triangle")
    parser.add_argument(
        "--adversary",
        choices=["churn", "p2p", "batch", "theorem2"],
        default="churn",
        help="churn: uniform random churn; p2p: heavy-tailed sessions; "
        "batch: one-shot random graph; theorem2: the membership lower-bound adversary",
    )
    parser.add_argument("--nodes", type=int, default=30)
    parser.add_argument("--rounds", type=int, default=200)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--inserts-per-round", type=int, default=2)
    parser.add_argument("--deletes-per-round", type=int, default=1)
    parser.add_argument(
        "--pattern", choices=sorted(PATTERNS), default="P3", help="pattern for --adversary theorem2"
    )
    parser.add_argument(
        "--bandwidth-factor", type=int, default=8, help="per-link budget = factor * ceil(log2 n) bits"
    )
    parser.add_argument(
        "--loose-bandwidth",
        action="store_true",
        help="record bandwidth violations instead of raising (needed for the naive baselines)",
    )
    return parser


def _build_adversary(args: argparse.Namespace):
    if args.adversary == "churn":
        return RandomChurnAdversary(
            args.nodes,
            num_rounds=args.rounds,
            inserts_per_round=args.inserts_per_round,
            deletes_per_round=args.deletes_per_round,
            seed=args.seed,
        )
    if args.adversary == "p2p":
        return HeavyTailedChurnAdversary(args.nodes, num_rounds=args.rounds, seed=args.seed)
    if args.adversary == "batch":
        return BatchInsertAdversary.random_graph(
            args.nodes, num_edges=3 * args.nodes, seed=args.seed
        )
    if args.adversary == "theorem2":
        return MembershipLowerBoundAdversary(args.nodes, PATTERNS[args.pattern])
    raise ValueError(f"unknown adversary {args.adversary!r}")


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    adversary = _build_adversary(args)
    runner = SimulationRunner(
        n=args.nodes,
        algorithm_factory=ALGORITHMS[args.algorithm],
        adversary=adversary,
        bandwidth_factor=args.bandwidth_factor,
        strict_bandwidth=not args.loose_bandwidth,
    )
    result = runner.run(num_rounds=args.rounds)
    summary = result.summary()
    print(
        format_table(
            ["metric", "value"],
            sorted(summary.items()),
        )
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
