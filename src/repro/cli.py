"""Command-line interface: single runs and experiment campaigns.

Installed as the ``repro-dynamic-subgraphs`` console script.  Two modes:

* the default mode runs one algorithm/adversary combination and prints its
  metrics -- a thin layer over
  :class:`~repro.simulator.runner.SimulationRunner`::

      repro-dynamic-subgraphs --algorithm triangle --adversary churn --nodes 40 --rounds 300

* the ``campaign`` subcommand expands a declarative JSON sweep spec and runs
  it across a worker pool (see :mod:`repro.experiments`), persisting per-cell
  results and traces and printing the aggregate table::

      repro-dynamic-subgraphs campaign --spec sweep.json --jobs 4

Both modes resolve algorithm and adversary names through the shared
registries of :mod:`repro.experiments.registry`, so every implemented
adversary -- including the flickering-triangle construction, the Remark 1
three-path lower bound and recorded-trace replay -- is reachable from the
command line.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, List, Optional

from .analysis.tables import format_table
from .core.membership import PATTERNS
from .experiments import (
    ADVERSARIES,
    ALGORITHMS,
    CampaignRunner,
    CampaignSpec,
    ResultStore,
    build_adversary,
)
from .simulator import ENGINE_MODES, SimulationRunner

__all__ = ["main", "build_parser", "build_campaign_parser", "campaign_main"]


def build_parser() -> argparse.ArgumentParser:
    """The single-run argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-dynamic-subgraphs",
        description="Run a highly-dynamic-network simulation and report amortized complexity. "
        "Use the 'campaign' subcommand to run a declarative sweep spec instead.",
    )
    parser.add_argument("--algorithm", choices=sorted(ALGORITHMS), default="triangle")
    parser.add_argument(
        "--adversary",
        choices=sorted(ADVERSARIES),
        default="churn",
        help="churn: uniform random churn; p2p: heavy-tailed sessions; "
        "batch: one-shot random graph; flicker: the Section 1.3 flickering triangle; "
        "theorem2/theorem4/threepath: the lower-bound constructions; "
        "scripted: replay a recorded trace (--trace); "
        "planted_clique/planted_cycle/growing: canned workload generators",
    )
    parser.add_argument("--nodes", type=int, default=30)
    parser.add_argument("--rounds", type=int, default=200)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--engine",
        choices=sorted(ENGINE_MODES),
        default="sparse",
        help="round scheduler: 'sparse' only visits active nodes (default), "
        "'dense' visits every node every round; both produce identical results",
    )
    parser.add_argument("--inserts-per-round", type=int, default=2)
    parser.add_argument("--deletes-per-round", type=int, default=1)
    parser.add_argument(
        "--pattern", choices=sorted(PATTERNS), default="P3", help="pattern for --adversary theorem2"
    )
    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        help="trace JSON to replay (required for --adversary scripted)",
    )
    parser.add_argument(
        "--save-trace",
        type=Path,
        default=None,
        help="record the realized schedule and write it to this file "
        "(replayable later via --adversary scripted --trace FILE)",
    )
    parser.add_argument(
        "--bandwidth-factor", type=int, default=8, help="per-link budget = factor * ceil(log2 n) bits"
    )
    parser.add_argument(
        "--loose-bandwidth",
        action="store_true",
        help="record bandwidth violations instead of raising (needed for the naive baselines)",
    )
    return parser


def _adversary_params(args: argparse.Namespace) -> Dict:
    """Translate single-run flags into registry builder params."""
    if args.adversary == "churn":
        return {
            "inserts_per_round": args.inserts_per_round,
            "deletes_per_round": args.deletes_per_round,
        }
    if args.adversary == "theorem2":
        return {"pattern": args.pattern}
    if args.adversary == "scripted":
        if args.trace is None:
            raise SystemExit("--adversary scripted requires --trace FILE")
        return {"trace_path": str(args.trace)}
    return {}


def _run_single(args: argparse.Namespace) -> int:
    try:
        adversary = build_adversary(
            args.adversary,
            n=args.nodes,
            rounds=args.rounds,
            seed=args.seed,
            params=_adversary_params(args),
        )
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    runner = SimulationRunner(
        n=args.nodes,
        algorithm_factory=ALGORITHMS[args.algorithm],
        adversary=adversary,
        bandwidth_factor=args.bandwidth_factor,
        strict_bandwidth=not args.loose_bandwidth,
        record_trace=args.save_trace is not None,
        engine_mode=args.engine,
    )
    result = runner.run(num_rounds=args.rounds)
    if args.save_trace is not None:
        result.trace.save(args.save_trace)
        print(f"trace written to {args.save_trace}")
    summary = result.summary()
    print(
        format_table(
            ["metric", "value"],
            sorted(summary.items()),
        )
    )
    return 0


# --------------------------------------------------------------------- #
# campaign subcommand
# --------------------------------------------------------------------- #
def build_campaign_parser() -> argparse.ArgumentParser:
    """The ``campaign`` subcommand parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-dynamic-subgraphs campaign",
        description="Expand a declarative sweep spec (JSON) and run it across a worker pool, "
        "persisting per-cell JSONL results + traces and printing the aggregate table. "
        "Re-running the same spec skips cells that already have stored results.",
    )
    parser.add_argument("--spec", type=Path, required=True, help="campaign spec JSON file")
    parser.add_argument("--jobs", type=int, default=1, help="worker processes (1 = inline)")
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="result-store directory (default: campaigns/<campaign name>)",
    )
    parser.add_argument(
        "--no-resume",
        action="store_true",
        help="re-run every cell even if the store already has its result",
    )
    parser.add_argument(
        "--group-by",
        default="algorithm,adversary,n",
        help="comma-separated spec fields for the aggregate table grouping",
    )
    parser.add_argument(
        "--metrics",
        default="amortized_round_complexity",
        help="comma-separated metric names to aggregate (mean and p95 per group)",
    )
    parser.add_argument(
        "--list", action="store_true", dest="list_cells", help="print the expanded cells and exit"
    )
    return parser


def campaign_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``campaign`` subcommand."""
    args = build_campaign_parser().parse_args(argv)
    try:
        campaign = CampaignSpec.load(args.spec)
        cells = campaign.expand()
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.list_cells:
        for cell in cells:
            print(cell.cell_id)
        return 0

    out = args.out if args.out is not None else Path("campaigns") / campaign.name
    store = ResultStore(out)
    runner = CampaignRunner(campaign, store, jobs=args.jobs)

    def progress(record, done, total):
        status = record["status"]
        print(f"[{done}/{total}] {record['cell_id']}: {status} ({record['duration_s']:.2f}s)")

    print(f"campaign {campaign.name!r}: {len(cells)} cells -> {out}")
    report = runner.run(resume=not args.no_resume, progress=progress)
    print(
        f"ran {report.num_run} cells, skipped {report.num_skipped} already-complete, "
        f"{len(report.failed)} failed"
    )
    group_by = [part.strip() for part in args.group_by.split(",") if part.strip()]
    metrics = [part.strip() for part in args.metrics.split(",") if part.strip()]
    print(store.format_aggregate(group_by=group_by, metrics=metrics))
    if report.failed:
        first = report.failed[0]
        print(f"\nfirst failure ({first['cell_id']}):\n{first['error']}", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "campaign":
        return campaign_main(argv[1:])
    args = build_parser().parse_args(argv)
    return _run_single(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
