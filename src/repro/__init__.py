"""repro -- a reproduction of *Finding Subgraphs in Highly Dynamic Networks* (SPAA 2021).

The library has five layers:

* :mod:`repro.simulator` -- the highly dynamic network model: synchronous
  rounds, adversarial edge insertions/deletions, ``O(log n)``-bit per-link
  messages, local-only queries and amortized-complexity accounting.
* :mod:`repro.core` -- the paper's distributed dynamic data structures:
  robust 2-hop / 3-hop neighborhoods, triangle and k-clique membership
  listing, 4-cycle and 5-cycle listing, plus the baselines they are compared
  against.
* :mod:`repro.adversary` -- workload generators, from random and heavy-tailed
  churn to the exact adversarial constructions of the lower-bound proofs.
* :mod:`repro.oracle` -- a centralized ground-truth oracle used to verify the
  distributed algorithms.
* :mod:`repro.analysis` / :mod:`repro.workloads` -- measurement analysis,
  counting bounds and canned workloads for the benchmark harness.
* :mod:`repro.obs` -- opt-in observability: the process-local telemetry
  registry (counters / histograms / spans), JSONL snapshot sinks, hotspot
  reports and live campaign progress rendering.

Quickstart::

    from repro import SimulationRunner, TriangleMembershipNode, RandomChurnAdversary
    from repro.core import TriangleQuery, QueryResult

    runner = SimulationRunner(
        n=30,
        algorithm_factory=TriangleMembershipNode,
        adversary=RandomChurnAdversary(30, num_rounds=200, seed=1),
    )
    result = runner.run()
    print("amortized round complexity:", result.amortized_round_complexity)
"""

from .adversary import (
    BatchInsertAdversary,
    CycleLowerBoundAdversary,
    FlickerTriangleAdversary,
    HeavyTailedChurnAdversary,
    MembershipLowerBoundAdversary,
    RandomChurnAdversary,
    ScriptedAdversary,
    ThreePathLowerBoundAdversary,
)
from .core import (
    CliqueMembershipNode,
    CliqueQuery,
    CycleListingNode,
    CycleQuery,
    EdgeQuery,
    FullBroadcastNode,
    NaiveForwardingNode,
    QueryResult,
    RobustThreeHopNode,
    RobustTwoHopNode,
    TriangleMembershipNode,
    TriangleQuery,
    TwoHopListingNode,
    TwoHopQuery,
)
from .monitor import DynamicGraphMonitor, MonitorAnswer
from .obs import TELEMETRY, CampaignProgress, Histogram, Telemetry, TelemetrySink
from .oracle import GroundTruthOracle
from .serve import (
    AnswerChanged,
    EventSource,
    LogConverter,
    LogEventSource,
    MonitorService,
    ServingMonitor,
    ServingReport,
    SubscriptionRegistry,
    TraceEventSource,
)
from .simulator import (
    DynamicNetwork,
    MetricsCollector,
    RoundChanges,
    RoundEngine,
    SimulationResult,
    SimulationRunner,
)

__version__ = "1.0.0"

__all__ = [
    "AnswerChanged",
    "BatchInsertAdversary",
    "CampaignProgress",
    "CliqueMembershipNode",
    "CliqueQuery",
    "CycleListingNode",
    "CycleLowerBoundAdversary",
    "CycleQuery",
    "DynamicGraphMonitor",
    "DynamicNetwork",
    "EdgeQuery",
    "EventSource",
    "FlickerTriangleAdversary",
    "FullBroadcastNode",
    "GroundTruthOracle",
    "HeavyTailedChurnAdversary",
    "Histogram",
    "LogConverter",
    "LogEventSource",
    "MembershipLowerBoundAdversary",
    "MetricsCollector",
    "MonitorAnswer",
    "MonitorService",
    "NaiveForwardingNode",
    "QueryResult",
    "RandomChurnAdversary",
    "RobustThreeHopNode",
    "RobustTwoHopNode",
    "RoundChanges",
    "RoundEngine",
    "ScriptedAdversary",
    "ServingMonitor",
    "ServingReport",
    "SimulationResult",
    "SimulationRunner",
    "SubscriptionRegistry",
    "TELEMETRY",
    "Telemetry",
    "TelemetrySink",
    "ThreePathLowerBoundAdversary",
    "TraceEventSource",
    "TriangleMembershipNode",
    "TriangleQuery",
    "TwoHopListingNode",
    "TwoHopQuery",
    "__version__",
]
