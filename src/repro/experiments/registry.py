"""Named registries binding experiment specs to runnable objects.

A spec file refers to algorithms, adversaries and end-of-run checks by name;
this module owns the three registries that resolve those names:

* :data:`ALGORITHMS` -- node-algorithm factories (``factory(node_id, n)``),
  every structure of :mod:`repro.core` plus the :class:`NullWorkloadNode`
  baseline that realizes a workload without running any algorithm.
* :data:`ADVERSARIES` -- adversary builders ``builder(n, rounds, seed,
  params)`` covering every implemented adversary and the canned workload
  generators of :mod:`repro.workloads`.
* :data:`CHECKS` -- the first-class result checks of
  :mod:`repro.verification.checks` (re-exported here for convenience):
  oracle-backed validators with per-round hooks and structured failure
  reports, whose metrics merge into each cell's record.

The CLI shares these registries, so anything expressible on the command line
is expressible in a campaign spec and vice versa.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Sequence

from ..adversary import (
    WAIT_FOR_STABILITY,
    BatchInsertAdversary,
    CycleLowerBoundAdversary,
    FlickerTriangleAdversary,
    HeavyTailedChurnAdversary,
    MembershipLowerBoundAdversary,
    RandomChurnAdversary,
    ScheduleAdversary,
    ThreePathLowerBoundAdversary,
)
from ..core import (
    CliqueMembershipNode,
    CycleListingNode,
    FullBroadcastNode,
    HintFreeTriangleNode,
    NaiveForwardingNode,
    RobustThreeHopNode,
    RobustTwoHopNode,
    TriangleMembershipNode,
    TwoHopListingNode,
)
from ..core.membership import PATTERNS
from ..faults.chaos import CHAOS_ADVERSARIES
from ..fuzz.generators import build_fuzz_adversary
from ..simulator import Adversary, Envelope, NodeAlgorithm, RoundChanges
from ..simulator.trace import TopologyTrace, TraceReplayAdversary
from ..verification.checks import CHECKS, ResultCheck, register_check
from ..workloads import (
    growing_random_graph,
    planted_clique_churn,
    planted_cycle_churn,
)

__all__ = [
    "ALGORITHMS",
    "ADVERSARIES",
    "CHECKS",
    "NullWorkloadNode",
    "build_adversary",
    "register_adversary",
    "register_algorithm",
    "register_check",
]

#: An adversary builder: ``builder(n, rounds, seed, params)``.  ``rounds`` is
#: the spec's round budget (may be ``None`` for finite-schedule adversaries)
#: and ``params`` the adversary-specific keyword arguments from the spec.
AdversaryBuilder = Callable[[int, Any, int, Dict[str, Any]], Adversary]


class NullWorkloadNode(NodeAlgorithm):
    """A do-nothing algorithm used to realize a workload on the bare network.

    Always consistent, never sends a message: running it through the engine
    materialises exactly the adversary's schedule in the ground-truth network,
    which is what workload-characterisation experiments (e.g. robust-set
    coverage) need.
    """

    def on_topology_change(self, round_index, inserted, deleted) -> None:
        pass

    def compose_messages(self, round_index) -> Dict[int, Envelope]:
        return {}

    def on_messages(self, round_index, received) -> None:
        pass

    def is_consistent(self) -> bool:
        return True

    def is_quiescent(self) -> bool:
        return True

    def query(self, query: Any) -> Any:
        return None


ALGORITHMS: Dict[str, Callable] = {
    "robust2hop": RobustTwoHopNode,
    "triangle": TriangleMembershipNode,
    "clique": CliqueMembershipNode,
    "robust3hop": RobustThreeHopNode,
    "cycles": CycleListingNode,
    "twohop": TwoHopListingNode,
    "naive": NaiveForwardingNode,
    "broadcast": FullBroadcastNode,
    "triangle_nohints": HintFreeTriangleNode,
    "null": NullWorkloadNode,
}


# --------------------------------------------------------------------- #
# Adversary builders
# --------------------------------------------------------------------- #
def _round_budget(rounds, params: Dict[str, Any], default: int = 200) -> int:
    """Resolve the round budget for adversaries that need one up front."""
    if "num_rounds" in params:
        return int(params.pop("num_rounds"))
    if rounds is not None:
        return int(rounds)
    return default


def _build_churn(n, rounds, seed, params):
    return RandomChurnAdversary(n, _round_budget(rounds, params), seed=seed, **params)


def _build_p2p(n, rounds, seed, params):
    return HeavyTailedChurnAdversary(n, _round_budget(rounds, params), seed=seed, **params)


def _build_batch(n, rounds, seed, params):
    num_edges = int(params.pop("num_edges", 3 * n))
    return BatchInsertAdversary.random_graph(n, num_edges, seed=seed, **params)


def _build_theorem2(n, rounds, seed, params):
    pattern = params.pop("pattern", "P3")
    if pattern not in PATTERNS:
        raise ValueError(f"unknown pattern {pattern!r}; choose from {sorted(PATTERNS)}")
    return MembershipLowerBoundAdversary(n, PATTERNS[pattern], **params)


def _build_theorem4(n, rounds, seed, params):
    return CycleLowerBoundAdversary(n, params.pop("k", 6), seed=seed, **params)


def _build_threepath(n, rounds, seed, params):
    return ThreePathLowerBoundAdversary(n, seed=seed, **params)


def _build_flicker(n, rounds, seed, params):
    if "n" in params:
        raise ValueError(
            "the flicker adversary takes its node count from the spec's n; "
            "remove 'n' from adversary_params"
        )
    # The background edges are the cell's only randomness: wire the spec seed
    # in (overridable) so multi-seed sweeps realize distinct graphs.
    params.setdefault("background_seed", seed)
    adversary = FlickerTriangleAdversary(n=n, **params)
    needed = 1 + max(
        (adversary.v, adversary.u, adversary.w)
        + tuple(params.get("filler_u", (3, 4)))
        + tuple(params.get("filler_w", (5, 6, 7, 8)))
    )
    if n < needed:
        raise ValueError(f"flicker adversary touches node ids up to {needed - 1}; need n >= {needed}")
    return adversary


def _build_scripted(n, rounds, seed, params):
    if "trace_path" in params:
        trace = TopologyTrace.load(params.pop("trace_path"))
    elif "trace" in params:
        trace = TopologyTrace.from_dict(params.pop("trace"))
    else:
        raise ValueError("scripted adversary needs 'trace_path' or an inline 'trace' dict")
    if params:
        raise ValueError(f"unexpected scripted params: {sorted(params)}")
    if trace.n > n:
        raise ValueError(f"trace was recorded for n={trace.n} but the spec has n={n}")
    # TraceReplayAdversary additionally rejects schedules referencing node
    # ids outside the trace's own declared range -- replay is strict, never
    # silently dropping (or smuggling in) changes the recording could not
    # have produced.  The shrinker's node-renaming pass relies on this.
    return TraceReplayAdversary(trace)


def _build_planted_clique(n, rounds, seed, params):
    k = int(params.pop("k", 4))
    num_plants = int(params.pop("num_plants", 3))
    adversary, _ = planted_clique_churn(n, k, num_plants, seed=seed, **params)
    return adversary


def _build_planted_cycle(n, rounds, seed, params):
    k = int(params.pop("k", 4))
    num_plants = int(params.pop("num_plants", 3))
    adversary, _ = planted_cycle_churn(n, k, num_plants, seed=seed, **params)
    return adversary


def _build_growing(n, rounds, seed, params):
    num_edges = int(params.pop("num_edges", 2 * n))
    return growing_random_graph(n, num_edges, seed=seed, **params)


def _build_growing_star(n, rounds, seed, params):
    """A star grown one leaf per phase, waiting for stability in between.

    The Lemma 1 worst case (experiment E7): every insertion at the hub forces
    a fresh neighborhood snapshot towards the new leaf.
    """
    center = int(params.pop("center", 0))
    if params:
        raise ValueError(f"unexpected growing_star params: {sorted(params)}")

    def schedule():
        for leaf in range(n):
            if leaf == center:
                continue
            yield RoundChanges.inserts([(center, leaf)])
            yield WAIT_FOR_STABILITY

    return ScheduleAdversary(schedule())


ADVERSARIES: Dict[str, AdversaryBuilder] = {
    "churn": _build_churn,
    "p2p": _build_p2p,
    "batch": _build_batch,
    "theorem2": _build_theorem2,
    "theorem4": _build_theorem4,
    "threepath": _build_threepath,
    "flicker": _build_flicker,
    "scripted": _build_scripted,
    "planted_clique": _build_planted_clique,
    "planted_cycle": _build_planted_cycle,
    "growing": _build_growing,
    "growing_star": _build_growing_star,
    # Seeded adversarial schedule fuzzing (repro.fuzz): deterministic given
    # (n, rounds, seed, params), so fuzz cells sweep and verify like any
    # other experiment -- a "seed" grid axis is a fuzzing campaign.
    "fuzz": build_fuzz_adversary,
    # Chaos adversaries (repro.faults.chaos): cells that SIGKILL or stall
    # their own campaign worker to exercise the runner's supervision, then
    # delegate to a real inner adversary.
    **CHAOS_ADVERSARIES,
}


def build_adversary(
    name: str,
    *,
    n: int,
    rounds=None,
    seed: int = 0,
    params: Mapping[str, Any] | None = None,
) -> Adversary:
    """Instantiate a registered adversary for one experiment cell."""
    if name not in ADVERSARIES:
        raise ValueError(f"unknown adversary {name!r}; choose from {sorted(ADVERSARIES)}")
    try:
        return ADVERSARIES[name](n, rounds, seed, dict(params or {}))
    except TypeError as exc:
        raise ValueError(f"bad parameters for adversary {name!r}: {exc}") from exc


# --------------------------------------------------------------------- #
# End-of-run checks
# --------------------------------------------------------------------- #
# The checks registry lives in :mod:`repro.verification.checks` (first-class
# Check objects with per-round hooks and structured failure reports); CHECKS,
# ResultCheck and register_check are re-exported above for compatibility.


# --------------------------------------------------------------------- #
# Extension hooks
# --------------------------------------------------------------------- #
def register_algorithm(name: str, factory: Callable) -> None:
    """Register an extra algorithm factory under ``name``."""
    ALGORITHMS[name] = factory


def register_adversary(name: str, builder: AdversaryBuilder) -> None:
    """Register an extra adversary builder under ``name``."""
    ADVERSARIES[name] = builder
