"""Parallel execution of an expanded experiment campaign.

:func:`run_cell` executes one :class:`~repro.experiments.spec.ExperimentSpec`
(serial or sharded engine) and returns its metrics plus the realized
:class:`~repro.simulator.trace.TopologyTrace`.  :class:`CampaignRunner`
expands a :class:`~repro.experiments.spec.CampaignSpec`, shards the pending
cells across persistent worker processes (the same process-and-pipe idiom as
:class:`~repro.simulator.parallel.ShardedRoundEngine`, reusing its
:func:`~repro.simulator.parallel.shard_nodes` partitioner) and streams every
finished cell straight into a :class:`~repro.experiments.store.ResultStore`.

Because records are persisted as they land, a campaign can be interrupted at
any point and re-run: cells whose id already has an ``ok`` record are skipped
(resume), while failed cells are retried.
"""

from __future__ import annotations

import cProfile
import hashlib
import json
import logging
import multiprocessing as mp
import time
import traceback
import warnings
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..obs.sink import TelemetrySink
from ..obs.telemetry import TELEMETRY
from ..simulator.bandwidth import BandwidthPolicy
from ..simulator.parallel import ShardedRoundEngine, shard_nodes
from ..simulator.runner import drive_engine
from ..simulator.trace import TopologyTrace, TraceRecordingAdversary
from .registry import ALGORITHMS, build_adversary
from .spec import CampaignSpec, ExperimentSpec
from .store import ResultStore

__all__ = ["run_cell", "execute_cell", "CampaignReport", "CampaignRunner", "PROFILERS"]

logger = logging.getLogger(__name__)

#: Progress callback: ``progress(record, finished_count, total_count)``.
ProgressCallback = Callable[[Dict[str, Any], int, int], None]

#: Per-cell start callback: ``on_start(cell_id)``.
StartCallback = Callable[[str], None]

#: Supported per-cell profiler backends.
PROFILERS = ("cprofile",)


def _combined_fingerprint(fingerprints: Dict[int, str]) -> str:
    """One digest over every node's final state fingerprint."""
    payload = json.dumps(sorted((int(v), fp) for v, fp in fingerprints.items()))
    return hashlib.sha1(payload.encode()).hexdigest()


def run_cell(spec: ExperimentSpec) -> Tuple[Dict[str, float], Optional[TopologyTrace]]:
    """Execute one cell and return ``(metrics, trace)``.

    The metrics dict merges the simulator's summary (amortized complexity,
    bandwidth accounting), the final edge count, and the outputs of the
    spec's end-of-run checks.  Checks are the first-class objects of
    :mod:`repro.verification.checks`: any check with a per-round hook is
    installed as a round validator, and every check is evaluated with the
    spec in hand (so e.g. relocated flicker gadgets or parameterised clique
    sizes are graded correctly).  ``trace`` is the realized schedule when
    ``spec.record_trace`` is set (always recorded, even for randomised
    adversaries, so any cell can be replayed bit-for-bit later).
    """
    metrics, trace, _ = _run_cell_full(spec)
    return metrics, trace


def _run_cell_full(
    spec: ExperimentSpec,
) -> Tuple[Dict[str, float], Optional[TopologyTrace], str]:
    """:func:`run_cell` plus the combined final state fingerprint.

    The fingerprint digests every node's
    :meth:`~repro.simulator.node.NodeAlgorithm.state_fingerprint`; campaign
    records persist it so later differential tooling (and the resume
    validator) can compare stored runs without re-running them.
    """
    adversary = build_adversary(
        spec.adversary,
        n=spec.n,
        rounds=spec.rounds,
        seed=spec.seed,
        params=spec.adversary_params,
    )
    if spec.engine == "sharded":
        return _run_sharded(spec, adversary)

    # Deferred import: repro.verification.differential itself imports this
    # package, so binding it at call time keeps initialization acyclic.
    from ..verification.differential import run_reference

    result, outcomes = run_reference(
        spec,
        engine_mode=spec.engine_mode,
        checks=spec.checks,
        record_trace=spec.record_trace,
        adversary=adversary,
    )
    metrics = result.summary()
    metrics["final_edges"] = float(result.network.num_edges)
    for outcome in outcomes.values():
        metrics.update(outcome.metrics)
    if spec.checks:
        # Campaign records are float-only; the structured failures themselves
        # are the verify subcommand's domain, but their count rides along so
        # the campaign CLI can gate on it.
        metrics["check_failures"] = float(
            sum(len(outcome.failures) for outcome in outcomes.values())
        )
    fingerprint = _combined_fingerprint(
        {v: algo.state_fingerprint() for v, algo in result.nodes.items()}
    )
    return metrics, result.trace, fingerprint


def _run_sharded(
    spec, adversary
) -> Tuple[Dict[str, float], Optional[TopologyTrace], str]:
    if spec.record_trace:
        adversary = TraceRecordingAdversary(adversary, spec.n)
    bandwidth = BandwidthPolicy(factor=spec.bandwidth_factor, strict=spec.strict_bandwidth)
    with ShardedRoundEngine(
        spec.n,
        ALGORITHMS[spec.algorithm],
        num_workers=spec.num_workers,
        bandwidth=bandwidth,
        mode=spec.engine_mode,
    ) as engine:
        drive_engine(engine, adversary, num_rounds=spec.rounds, drain=spec.drain)
        metrics = dict(engine.metrics.summary())
        for key, value in engine.bandwidth.summary(spec.n).items():
            metrics[f"bandwidth_{key}"] = float(value)
        metrics["final_edges"] = float(engine.network.num_edges)
        fingerprint = _combined_fingerprint(engine.state_fingerprints())
    trace = adversary.trace if isinstance(adversary, TraceRecordingAdversary) else None
    return metrics, trace, fingerprint


def execute_cell(
    spec: ExperimentSpec,
    *,
    telemetry_dir: Optional[str | Path] = None,
    telemetry_interval_s: float = 1.0,
    profile: Optional[str] = None,
    profile_dir: Optional[str | Path] = None,
) -> Tuple[Dict[str, Any], Optional[Dict[str, Any]]]:
    """Run one cell defensively, returning ``(record, trace_dict)``.

    Never raises: failures become ``status == "error"`` records carrying the
    traceback, so one bad cell cannot take down a whole campaign (the resume
    pass will retry it).

    With ``telemetry_dir``, the process-wide :data:`~repro.obs.telemetry.TELEMETRY`
    singleton is enabled for the duration of the cell and streams periodic
    snapshots to ``<telemetry_dir>/<cell_id>.jsonl``.  Telemetry collection is
    read-only bookkeeping: the produced record, trace and state fingerprint
    are bit-identical with and without it (pinned by the test-suite).  With
    ``profile="cprofile"``, the cell additionally runs under :mod:`cProfile`
    and the pstats dump lands in ``<profile_dir>/<cell_id>.pstats``.
    """
    if profile is not None and profile not in PROFILERS:
        raise ValueError(f"unknown profiler {profile!r}; choose from {PROFILERS}")
    start = time.perf_counter()
    telemetry_path: Optional[Path] = None
    if telemetry_dir is not None:
        telemetry_path = Path(telemetry_dir) / f"{spec.cell_id}.jsonl"
        TELEMETRY.enable(
            sink=TelemetrySink(telemetry_path, interval_s=telemetry_interval_s),
            label=spec.cell_id,
        )
    profiler = cProfile.Profile() if profile == "cprofile" else None
    if profiler is not None:
        profiler.enable()
    try:
        metrics, trace, fingerprint = _run_cell_full(spec)
        status, error = "ok", None
    except Exception:  # noqa: BLE001 - the traceback is the payload
        metrics, trace, fingerprint = {}, None, None
        status, error = "error", traceback.format_exc()
    finally:
        if profiler is not None:
            profiler.disable()
        if telemetry_path is not None:
            TELEMETRY.disable()
    record: Dict[str, Any] = {
        "cell_id": spec.cell_id,
        "spec": spec.to_dict(),
        "spec_hash": spec.spec_hash,
        "status": status,
        "metrics": metrics,
        "state_fingerprint": fingerprint,
        "error": error,
        "duration_s": round(time.perf_counter() - start, 6),
        "finished_at": time.time(),
    }
    if telemetry_path is not None:
        record["telemetry_path"] = str(telemetry_path)
    if profiler is not None:
        dest = Path(profile_dir if profile_dir is not None else ".") / f"{spec.cell_id}.pstats"
        dest.parent.mkdir(parents=True, exist_ok=True)
        profiler.dump_stats(str(dest))
        record["profile_path"] = str(dest)
    return record, (trace.to_dict() if trace is not None else None)


def _campaign_worker(
    conn,
    spec_dicts: List[Dict[str, Any]],
    obs: Optional[Mapping[str, Any]] = None,
) -> None:
    """Worker process: run a shard of cells, streaming each result back.

    ``obs`` carries the runner's observability settings (telemetry/profiler
    directories and cadence) as a plain picklable dict.  A ``("start",
    cell_id, None)`` message precedes every cell so the coordinator can
    render live progress (which cells are running right now, not just which
    finished).
    """
    obs = dict(obs or {})
    try:
        for spec_dict in spec_dicts:
            spec = ExperimentSpec.from_dict(spec_dict)
            conn.send(("start", spec.cell_id, None))
            record, trace_dict = execute_cell(spec, **obs)
            conn.send(("cell", record, trace_dict))
        conn.send(("done", None, None))
    finally:
        conn.close()


@dataclass
class CampaignReport:
    """What a campaign run did: new records, skipped cells, failures."""

    campaign: str
    records: List[Dict[str, Any]] = field(default_factory=list)
    skipped_ids: List[str] = field(default_factory=list)

    @property
    def num_run(self) -> int:
        return len(self.records)

    @property
    def num_skipped(self) -> int:
        return len(self.skipped_ids)

    @property
    def failed(self) -> List[Dict[str, Any]]:
        return [r for r in self.records if r.get("status") != "ok"]


class CampaignRunner:
    """Expands a campaign and drives its cells through a worker pool.

    Args:
        campaign: the declarative sweep description.
        store: result store (or a directory path to create one in).
        jobs: number of worker processes; ``1`` runs cells inline.
        start_method: multiprocessing start method for the workers.  When the
            requested method is unavailable on this platform the runner falls
            back to ``spawn`` (the worker target and its arguments are
            spawn-safe: a module-level function fed plain spec dicts), and
            only runs inline when no start method is available at all.  The
            workers are *not* daemonic, so cells using the sharded engine can
            spawn their own shard processes.
        telemetry: collect per-cell telemetry snapshots into the store's
            ``telemetry/`` directory.  ``None`` (the default) defers to the
            campaign spec's ``telemetry`` settings; ``True``/``False`` force
            it on or off for this run.
        telemetry_interval_s: snapshot cadence in seconds; ``None`` defers to
            the campaign spec (which itself defaults to 1 second).
        profile: per-cell profiler backend (one of :data:`PROFILERS`); pstats
            dumps land in the store's ``profiles/`` directory.
    """

    def __init__(
        self,
        campaign: CampaignSpec,
        store: ResultStore | str | Path,
        *,
        jobs: int = 1,
        start_method: str = "fork",
        telemetry: Optional[bool] = None,
        telemetry_interval_s: Optional[float] = None,
        profile: Optional[str] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be positive")
        if profile is not None and profile not in PROFILERS:
            raise ValueError(f"unknown profiler {profile!r}; choose from {PROFILERS}")
        self.campaign = campaign
        self.store = store if isinstance(store, ResultStore) else ResultStore(store)
        self.jobs = jobs
        self.start_method = start_method
        self.telemetry = telemetry
        self.telemetry_interval_s = telemetry_interval_s
        self.profile = profile

    def _obs_settings(self) -> Dict[str, Any]:
        """The ``execute_cell`` observability kwargs for this run.

        Runner arguments win; the campaign spec's ``telemetry`` mapping is the
        fallback, so a spec file can turn collection on for every run of the
        campaign without CLI flags.
        """
        spec_cfg = self.campaign.telemetry or {}
        enabled = self.telemetry
        if enabled is None:
            enabled = bool(spec_cfg.get("enabled", False))
        interval = self.telemetry_interval_s
        if interval is None:
            interval = float(spec_cfg.get("interval_s", 1.0))
        obs: Dict[str, Any] = {}
        if enabled:
            obs["telemetry_dir"] = str(self.store.telemetry_root)
            obs["telemetry_interval_s"] = interval
        if self.profile is not None:
            obs["profile"] = self.profile
            obs["profile_dir"] = str(self.store.profiles_root)
        return obs

    def resolved_start_method(self) -> Optional[str]:
        """The start method the worker pool will actually use.

        The requested method when the platform supports it, else ``spawn``
        (available everywhere Python ships multiprocessing workers), else
        ``None`` -- the signal to run cells inline.
        """
        available = mp.get_all_start_methods()
        if self.start_method in available:
            return self.start_method
        if "spawn" in available:
            return "spawn"
        return None

    def run(
        self,
        *,
        resume: bool = True,
        progress: Optional[ProgressCallback] = None,
        on_start: Optional[StartCallback] = None,
    ) -> CampaignReport:
        """Run every pending cell; returns the :class:`CampaignReport`.

        With ``resume`` (the default), cells whose id already has an ``ok``
        record in the store are skipped -- but only after the stored record's
        full ``spec_hash`` is validated against the cell about to be skipped.
        A truncated-id collision, a tampered store, or a record predating
        spec-hash stamping fails that validation; such cells warn loudly and
        re-run instead of being silently trusted.  Pass ``resume=False`` to
        re-run the full grid regardless of stored results.

        ``on_start(cell_id)`` fires when a cell begins executing (in the
        worker-pool path, when its start event arrives) and ``progress``
        when it finishes -- together they drive live progress displays.
        """
        cells = self.campaign.expand()
        latest = self.store.latest() if resume else {}
        completed = set()
        for cell in cells:
            record = latest.get(cell.cell_id)
            if record is None or record.get("status") != "ok":
                continue
            stored_hash = record.get("spec_hash")
            if stored_hash == cell.spec_hash:
                completed.add(cell.cell_id)
            else:
                message = (
                    f"stored result for cell {cell.cell_id} has spec hash "
                    f"{stored_hash!r} but the campaign's cell hashes to "
                    f"{cell.spec_hash!r}; NOT resuming from it -- the cell "
                    "will re-run"
                )
                warnings.warn(message, RuntimeWarning, stacklevel=2)
                logger.warning(message)
        pending = [cell for cell in cells if cell.cell_id not in completed]
        report = CampaignReport(
            campaign=self.campaign.name,
            skipped_ids=[c.cell_id for c in cells if c.cell_id in completed],
        )
        if not pending:
            return report

        obs = self._obs_settings()
        start_method = self.resolved_start_method()
        inline = self.jobs == 1 or len(pending) == 1 or start_method is None
        if inline:
            for spec in pending:
                if on_start is not None:
                    on_start(spec.cell_id)
                record, trace_dict = execute_cell(spec, **obs)
                self._persist(record, trace_dict)
                report.records.append(record)
                if progress is not None:
                    progress(record, len(report.records), len(pending))
            return report

        shards = shard_nodes(len(pending), self.jobs)
        ctx = mp.get_context(start_method)
        conns, procs = [], []
        for shard in shards:
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_campaign_worker,
                args=(child_conn, [pending[i].to_dict() for i in shard], obs),
            )
            proc.start()
            child_conn.close()
            conns.append(parent_conn)
            procs.append(proc)
        try:
            open_conns = set(conns)
            while open_conns:
                for conn in connection_wait(list(open_conns)):
                    try:
                        kind, record, trace_dict = conn.recv()
                    except EOFError:
                        open_conns.discard(conn)
                        continue
                    if kind == "done":
                        open_conns.discard(conn)
                        continue
                    if kind == "start":
                        if on_start is not None:
                            on_start(record)  # payload is the cell id
                        continue
                    self._persist(record, trace_dict)
                    report.records.append(record)
                    if progress is not None:
                        progress(record, len(report.records), len(pending))
        finally:
            for proc in procs:
                proc.join(timeout=30)
                if proc.is_alive():  # pragma: no cover - defensive
                    proc.terminate()
            for conn in conns:
                conn.close()

        # A worker that died mid-shard (OOM-kill, segfault) streams nothing
        # for its remaining cells; surface those as failures instead of
        # silently under-reporting the campaign.
        delivered = {record["cell_id"] for record in report.records}
        exit_codes = [proc.exitcode for proc in procs]
        for spec in pending:
            if spec.cell_id in delivered:
                continue
            record = {
                "cell_id": spec.cell_id,
                "spec": spec.to_dict(),
                "status": "error",
                "metrics": {},
                "error": "worker process died before running this cell "
                f"(worker exit codes: {exit_codes})",
                "duration_s": 0.0,
                "finished_at": time.time(),
            }
            self._persist(record, None)
            report.records.append(record)
            if progress is not None:
                progress(record, len(report.records), len(pending))
        return report

    def _persist(self, record: Dict[str, Any], trace_dict: Optional[Dict[str, Any]]) -> None:
        if trace_dict is not None:
            path = self.store.save_trace(record["cell_id"], trace_dict)
            record["trace_path"] = str(path.relative_to(self.store.root))
        else:
            record["trace_path"] = None
        self.store.append(record)
