"""Parallel execution of an expanded experiment campaign.

:func:`run_cell` executes one :class:`~repro.experiments.spec.ExperimentSpec`
(serial or sharded engine) and returns its metrics plus the realized
:class:`~repro.simulator.trace.TopologyTrace`.  :class:`CampaignRunner`
expands a :class:`~repro.experiments.spec.CampaignSpec`, dispatches the
pending cells one at a time to persistent worker processes (the same
process-and-pipe idiom as
:class:`~repro.simulator.parallel.ShardedRoundEngine`) and streams every
finished cell straight into a :class:`~repro.experiments.store.ResultStore`.

The dispatch pool is *supervised*: a worker that dies mid-cell (OOM kill,
segfault, ``kill -9``) is detected the moment its pipe closes, the cell is
retried with exponential backoff (when retries are configured) and the
worker is respawned; a cell that exceeds its wall-clock timeout has its
worker killed and is treated the same way.  A cell that keeps failing is
*quarantined* -- recorded with ``status == "quarantined"`` -- so a campaign
always completes and reports every cell instead of hanging or dying with
the worker.

Because records are persisted as they land, a campaign can be interrupted at
any point and re-run: cells whose id already has an ``ok`` record are skipped
(resume), while failed and quarantined cells are retried.
"""

from __future__ import annotations

import cProfile
import hashlib
import json
import logging
import multiprocessing as mp
import threading
import time
import traceback
import warnings
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..faults.models import build_fault_plan
from ..obs.sink import TelemetrySink, write_supervision_snapshot
from ..obs.report import load_final_snapshot, merge_snapshots
from ..obs.telemetry import TELEMETRY
from ..obs.tracing import DEFAULT_TRACE_CAPACITY, TraceBuffer, write_trace_jsonl
from ..simulator.bandwidth import BandwidthPolicy
from ..simulator.parallel import ShardedRoundEngine
from ..simulator.runner import drive_engine
from ..simulator.trace import TopologyTrace, TraceRecordingAdversary
from .registry import ALGORITHMS, build_adversary
from .spec import CampaignSpec, ExperimentSpec
from .store import ResultStore

__all__ = ["run_cell", "execute_cell", "CampaignReport", "CampaignRunner", "PROFILERS"]

logger = logging.getLogger(__name__)

#: Progress callback: ``progress(record, finished_count, total_count)``.
ProgressCallback = Callable[[Dict[str, Any], int, int], None]

#: Per-cell start callback: ``on_start(cell_id)``.
StartCallback = Callable[[str], None]

#: Supported per-cell profiler backends.
PROFILERS = ("cprofile",)


def _combined_fingerprint(fingerprints: Dict[int, str]) -> str:
    """One digest over every node's final state fingerprint."""
    payload = json.dumps(sorted((int(v), fp) for v, fp in fingerprints.items()))
    return hashlib.sha1(payload.encode()).hexdigest()


def run_cell(spec: ExperimentSpec) -> Tuple[Dict[str, float], Optional[TopologyTrace]]:
    """Execute one cell and return ``(metrics, trace)``.

    The metrics dict merges the simulator's summary (amortized complexity,
    bandwidth accounting), the final edge count, and the outputs of the
    spec's end-of-run checks.  Checks are the first-class objects of
    :mod:`repro.verification.checks`: any check with a per-round hook is
    installed as a round validator, and every check is evaluated with the
    spec in hand (so e.g. relocated flicker gadgets or parameterised clique
    sizes are graded correctly).  ``trace`` is the realized schedule when
    ``spec.record_trace`` is set (always recorded, even for randomised
    adversaries, so any cell can be replayed bit-for-bit later).
    """
    metrics, trace, _ = _run_cell_full(spec)
    return metrics, trace


def _run_cell_full(
    spec: ExperimentSpec,
) -> Tuple[Dict[str, float], Optional[TopologyTrace], str]:
    """:func:`run_cell` plus the combined final state fingerprint.

    The fingerprint digests every node's
    :meth:`~repro.simulator.node.NodeAlgorithm.state_fingerprint`; campaign
    records persist it so later differential tooling (and the resume
    validator) can compare stored runs without re-running them.
    """
    adversary = build_adversary(
        spec.adversary,
        n=spec.n,
        rounds=spec.rounds,
        seed=spec.seed,
        params=spec.adversary_params,
    )
    if spec.engine == "sharded":
        return _run_sharded(spec, adversary)

    # Deferred import: repro.verification.differential itself imports this
    # package, so binding it at call time keeps initialization acyclic.
    from ..verification.differential import run_reference

    result, outcomes = run_reference(
        spec,
        engine_mode=spec.engine_mode,
        checks=spec.checks,
        record_trace=spec.record_trace,
        adversary=adversary,
    )
    metrics = result.summary()
    metrics["final_edges"] = float(result.network.num_edges)
    if result.faults is not None:
        # Fault schedules are pure functions of (seed, model, round, ids), so
        # these counts are part of the cell's deterministic signature: the
        # differential harness gates them bit-identical across engines.
        metrics.update({key: float(v) for key, v in result.faults.stats.items()})
    for outcome in outcomes.values():
        metrics.update(outcome.metrics)
    if spec.checks:
        # Campaign records are float-only; the structured failures themselves
        # are the verify subcommand's domain, but their count rides along so
        # the campaign CLI can gate on it.
        metrics["check_failures"] = float(
            sum(len(outcome.failures) for outcome in outcomes.values())
        )
    fingerprint = _combined_fingerprint(
        {v: algo.state_fingerprint() for v, algo in result.nodes.items()}
    )
    return metrics, result.trace, fingerprint


def _run_sharded(
    spec, adversary
) -> Tuple[Dict[str, float], Optional[TopologyTrace], str]:
    faults = build_fault_plan(
        spec.faults, n=spec.n, seed=spec.seed, params=spec.fault_params
    )
    if faults is not None and faults.affects_topology:
        # Same wrap order as SimulationRunner: the overlay masks the logical
        # schedule, and trace recording (below) wraps *outside* it so the
        # recorded trace is the physical post-fault schedule.
        from ..faults.overlay import FaultOverlayAdversary

        adversary = FaultOverlayAdversary(adversary, spec.n, faults)
    if spec.record_trace:
        adversary = TraceRecordingAdversary(adversary, spec.n)
    bandwidth = BandwidthPolicy(factor=spec.bandwidth_factor, strict=spec.strict_bandwidth)
    with ShardedRoundEngine(
        spec.n,
        ALGORITHMS[spec.algorithm],
        num_workers=spec.num_workers,
        bandwidth=bandwidth,
        mode=spec.engine_mode,
        faults=faults,
    ) as engine:
        drive_engine(engine, adversary, num_rounds=spec.rounds, drain=spec.drain)
        metrics = dict(engine.metrics.summary())
        for key, value in engine.bandwidth.summary(spec.n).items():
            metrics[f"bandwidth_{key}"] = float(value)
        metrics["final_edges"] = float(engine.network.num_edges)
        if faults is not None:
            metrics.update({key: float(v) for key, v in faults.stats.items()})
        fingerprint = _combined_fingerprint(engine.state_fingerprints())
    trace = adversary.trace if isinstance(adversary, TraceRecordingAdversary) else None
    return metrics, trace, fingerprint


def execute_cell(
    spec: ExperimentSpec,
    *,
    telemetry_dir: Optional[str | Path] = None,
    telemetry_interval_s: float = 1.0,
    trace_events: bool = False,
    trace_capacity: int = DEFAULT_TRACE_CAPACITY,
    profile: Optional[str] = None,
    profile_dir: Optional[str | Path] = None,
) -> Tuple[Dict[str, Any], Optional[Dict[str, Any]]]:
    """Run one cell defensively, returning ``(record, trace_dict)``.

    Never raises: failures become ``status == "error"`` records carrying the
    traceback, so one bad cell cannot take down a whole campaign (the resume
    pass will retry it).

    With ``telemetry_dir``, the process-wide :data:`~repro.obs.telemetry.TELEMETRY`
    singleton is enabled for the duration of the cell and streams periodic
    snapshots to ``<telemetry_dir>/<cell_id>.jsonl``; the final snapshot also
    rides back on the record (``record["telemetry"]``) so campaign workers
    ship their telemetry to the coordinator over the existing result pipe.
    With ``trace_events`` additionally set, stage-level trace events are
    collected into a bounded ring (including sharded-engine worker events,
    merged at engine shutdown) and written to
    ``<telemetry_dir>/<cell_id>.trace.jsonl`` for ``telemetry trace`` export.
    Telemetry and tracing are read-only bookkeeping: the produced record,
    trace and state fingerprint are bit-identical with and without them
    (pinned by the test-suite).  With ``profile="cprofile"``, the cell
    additionally runs under :mod:`cProfile` and the pstats dump lands in
    ``<profile_dir>/<cell_id>.pstats``.
    """
    if profile is not None and profile not in PROFILERS:
        raise ValueError(f"unknown profiler {profile!r}; choose from {PROFILERS}")
    start = time.perf_counter()
    telemetry_path: Optional[Path] = None
    tracer: Optional[TraceBuffer] = None
    if telemetry_dir is not None:
        telemetry_path = Path(telemetry_dir) / f"{spec.cell_id}.jsonl"
        if trace_events:
            tracer = TraceBuffer(
                trace_capacity, cell_id=spec.cell_id, engine_mode=spec.engine_mode
            )
        TELEMETRY.enable(
            sink=TelemetrySink(telemetry_path, interval_s=telemetry_interval_s),
            label=spec.cell_id,
            tracer=tracer,
        )
    profiler = cProfile.Profile() if profile == "cprofile" else None
    if profiler is not None:
        profiler.enable()
    try:
        metrics, trace, fingerprint = _run_cell_full(spec)
        status, error = "ok", None
    except Exception:  # noqa: BLE001 - the traceback is the payload
        metrics, trace, fingerprint = {}, None, None
        status, error = "error", traceback.format_exc()
    finally:
        if profiler is not None:
            profiler.disable()
        if telemetry_path is not None:
            TELEMETRY.disable()
    record: Dict[str, Any] = {
        "cell_id": spec.cell_id,
        "spec": spec.to_dict(),
        "spec_hash": spec.spec_hash,
        "status": status,
        "metrics": metrics,
        "state_fingerprint": fingerprint,
        "error": error,
        "duration_s": round(time.perf_counter() - start, 6),
        "finished_at": time.time(),
    }
    if telemetry_path is not None:
        record["telemetry_path"] = str(telemetry_path)
        # Ship the final snapshot on the record itself: campaign workers send
        # records over the result pipe, so the coordinator gets every cell's
        # telemetry without re-reading worker-written files.  (disable()
        # already flushed the identical final line through the sink.)
        record["telemetry"] = load_final_snapshot(telemetry_path)
    if tracer is not None:
        trace_path = Path(telemetry_dir) / f"{spec.cell_id}.trace.jsonl"
        record["trace_events"] = write_trace_jsonl(trace_path, tracer)
        record["trace_events_dropped"] = tracer.dropped
        record["trace_events_path"] = str(trace_path)
    if profiler is not None:
        dest = Path(profile_dir if profile_dir is not None else ".") / f"{spec.cell_id}.pstats"
        dest.parent.mkdir(parents=True, exist_ok=True)
        profiler.dump_stats(str(dest))
        record["profile_path"] = str(dest)
    return record, (trace.to_dict() if trace is not None else None)


def _heartbeat_loop(conn, lock, cell_id: str, interval_s: float, stop) -> None:
    """Worker-side liveness beacon: ``("hb", cell_id, ts)`` while a cell runs.

    Runs on a daemon thread so a cell stalled in pure-Python code still
    beats; a coordinator watching the pipe can therefore tell a *slow* cell
    (beating, let the timeout decide) from a *dead* worker (pipe closed).
    """
    while not stop.wait(interval_s):
        try:
            with lock:
                conn.send(("hb", cell_id, time.time()))
        except OSError:  # coordinator went away; the worker is about to exit
            return


def _campaign_worker(
    conn,
    obs: Optional[Mapping[str, Any]] = None,
    heartbeat_interval_s: Optional[float] = None,
) -> None:
    """Worker process: run cells streamed over the pipe, one at a time.

    The coordinator sends ``("run", spec_dict)`` messages and finally
    ``("stop",)``; the worker answers each cell with ``("start", cell_id,
    None)`` (so live progress can show what is running), optional ``("hb",
    cell_id, ts)`` heartbeats, and ``("cell", record, trace_dict)``.  ``obs``
    carries the runner's observability settings (telemetry/profiler
    directories and cadence) as a plain picklable dict.  Dispatching one
    cell per message -- instead of pre-splitting the grid into static
    shards -- is what makes supervision possible: a dead or killed worker
    takes down exactly the cell it was running, and the rest of the grid
    reflows onto the surviving (or respawned) workers.
    """
    obs = dict(obs or {})
    lock = threading.Lock()  # heartbeats and results share one pipe
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                break
            if message[0] == "stop":
                try:
                    conn.send(("done", None, None))
                except OSError:  # coordinator already hung up; that's fine
                    pass
                break
            spec = ExperimentSpec.from_dict(message[1])
            with lock:
                conn.send(("start", spec.cell_id, None))
            stop_beat = heartbeat = None
            if heartbeat_interval_s:
                stop_beat = threading.Event()
                heartbeat = threading.Thread(
                    target=_heartbeat_loop,
                    args=(conn, lock, spec.cell_id, heartbeat_interval_s, stop_beat),
                    daemon=True,
                )
                heartbeat.start()
            try:
                record, trace_dict = execute_cell(spec, **obs)
            finally:
                if stop_beat is not None:
                    stop_beat.set()
                    heartbeat.join()
            with lock:
                conn.send(("cell", record, trace_dict))
    finally:
        conn.close()


def _retry_jitter(cell_id: str, attempt: int) -> float:
    """Deterministic backoff jitter factor in ``[1.0, 2.0)``.

    Seeded from (cell id, attempt) via blake2b -- never ``random`` -- so a
    re-run of the same failing campaign reproduces the same retry timeline.
    """
    digest = hashlib.blake2b(
        f"{cell_id}\x1f{attempt}".encode(), digest_size=8
    ).digest()
    return 1.0 + int.from_bytes(digest, "big") / 2**64


@dataclass
class _Worker:
    """Coordinator-side handle for one pool process."""

    proc: Any
    conn: Any
    spec: Optional[ExperimentSpec] = None  # cell in flight, if any
    attempt: int = 0  # prior failures of that cell
    deadline: Optional[float] = None  # monotonic wall-clock cutoff
    last_heartbeat: Optional[float] = None

    @property
    def busy(self) -> bool:
        return self.spec is not None


@dataclass
class CampaignReport:
    """What a campaign run did: new records, skipped cells, failures.

    ``counters`` carries the supervision tallies of the run (retries,
    timeouts, worker deaths, quarantined cells, heartbeats observed); all
    zero for an undisturbed campaign.
    """

    campaign: str
    records: List[Dict[str, Any]] = field(default_factory=list)
    skipped_ids: List[str] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    #: Merged final telemetry of every cell that ran with collection on
    #: (worker-shipped snapshots folded coordinator-side); None otherwise.
    telemetry: Optional[Dict[str, Any]] = None

    @property
    def num_run(self) -> int:
        return len(self.records)

    @property
    def num_skipped(self) -> int:
        return len(self.skipped_ids)

    @property
    def failed(self) -> List[Dict[str, Any]]:
        return [r for r in self.records if r.get("status") != "ok"]

    @property
    def quarantined(self) -> List[Dict[str, Any]]:
        """Cells that exhausted their retry budget (a subset of ``failed``)."""
        return [r for r in self.records if r.get("status") == "quarantined"]


class CampaignRunner:
    """Expands a campaign and drives its cells through a worker pool.

    Args:
        campaign: the declarative sweep description.
        store: result store (or a directory path to create one in).
        jobs: number of worker processes; ``1`` runs cells inline.
        start_method: multiprocessing start method for the workers.  When the
            requested method is unavailable on this platform the runner falls
            back to ``spawn`` (the worker target and its arguments are
            spawn-safe: a module-level function fed plain spec dicts), and
            only runs inline when no start method is available at all.  The
            workers are *not* daemonic, so cells using the sharded engine can
            spawn their own shard processes.
        telemetry: collect per-cell telemetry snapshots into the store's
            ``telemetry/`` directory.  ``None`` (the default) defers to the
            campaign spec's ``telemetry`` settings; ``True``/``False`` force
            it on or off for this run.
        telemetry_interval_s: snapshot cadence in seconds; ``None`` defers to
            the campaign spec (which itself defaults to 1 second).
        trace_events: additionally collect stage-level trace events per cell
            (a bounded ring written to ``<cell_id>.trace.jsonl`` next to the
            snapshots, exportable with ``telemetry trace``).  Implies
            telemetry; ``None`` defers to the spec's ``telemetry["trace"]``.
        profile: per-cell profiler backend (one of :data:`PROFILERS`); pstats
            dumps land in the store's ``profiles/`` directory.
        max_retries: how many times an *infrastructure* failure (worker
            death, per-cell timeout) is retried before the cell is recorded
            as ``quarantined``.  Deterministic in-cell exceptions are never
            retried within a run -- re-running the same spec would raise the
            same error -- but remain retryable across runs via resume.  The
            default ``0`` preserves the historical behaviour: a dead
            worker's cell is recorded as an ``error`` immediately.
        cell_timeout_s: wall-clock budget per cell attempt; a worker past
            its deadline is killed and the cell handled like a worker death.
            ``None`` (default) disables timeouts.
        retry_backoff_s: base delay before re-dispatching a failed cell;
            attempt ``k`` waits ``retry_backoff_s * 2**k`` scaled by a
            deterministic per-(cell, attempt) jitter in ``[1, 2)``.
        heartbeat_interval_s: cadence of worker liveness beacons.  ``None``
            enables 1-second heartbeats whenever supervision is active
            (retries or timeouts configured) and disables them otherwise;
            pass an explicit value to force either way.
    """

    def __init__(
        self,
        campaign: CampaignSpec,
        store: ResultStore | str | Path,
        *,
        jobs: int = 1,
        start_method: str = "fork",
        telemetry: Optional[bool] = None,
        telemetry_interval_s: Optional[float] = None,
        trace_events: Optional[bool] = None,
        profile: Optional[str] = None,
        max_retries: int = 0,
        cell_timeout_s: Optional[float] = None,
        retry_backoff_s: float = 0.0,
        heartbeat_interval_s: Optional[float] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be positive")
        if profile is not None and profile not in PROFILERS:
            raise ValueError(f"unknown profiler {profile!r}; choose from {PROFILERS}")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if cell_timeout_s is not None and cell_timeout_s <= 0:
            raise ValueError("cell_timeout_s must be positive")
        if retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be non-negative")
        if heartbeat_interval_s is not None and heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be positive")
        self.campaign = campaign
        self.store = store if isinstance(store, ResultStore) else ResultStore(store)
        self.jobs = jobs
        self.start_method = start_method
        self.telemetry = telemetry
        self.telemetry_interval_s = telemetry_interval_s
        self.trace_events = trace_events
        self.profile = profile
        self.max_retries = max_retries
        self.cell_timeout_s = cell_timeout_s
        self.retry_backoff_s = retry_backoff_s
        self.heartbeat_interval_s = heartbeat_interval_s

    @property
    def supervised(self) -> bool:
        """Whether this run needs the supervising pool even for one job."""
        return self.cell_timeout_s is not None or self.max_retries > 0

    def _obs_settings(self) -> Dict[str, Any]:
        """The ``execute_cell`` observability kwargs for this run.

        Runner arguments win; the campaign spec's ``telemetry`` mapping is the
        fallback, so a spec file can turn collection on for every run of the
        campaign without CLI flags.
        """
        spec_cfg = self.campaign.telemetry or {}
        enabled = self.telemetry
        if enabled is None:
            enabled = bool(spec_cfg.get("enabled", False))
        interval = self.telemetry_interval_s
        if interval is None:
            interval = float(spec_cfg.get("interval_s", 1.0))
        trace = self.trace_events
        if trace is None:
            trace = bool(spec_cfg.get("trace", False))
        # Trace events ride the telemetry registry, so asking for them
        # implies collection even when the spec left telemetry off.
        if trace:
            enabled = True
        obs: Dict[str, Any] = {}
        if enabled:
            obs["telemetry_dir"] = str(self.store.telemetry_root)
            obs["telemetry_interval_s"] = interval
            if trace:
                obs["trace_events"] = True
                obs["trace_capacity"] = int(
                    spec_cfg.get("trace_capacity", DEFAULT_TRACE_CAPACITY)
                )
        if self.profile is not None:
            obs["profile"] = self.profile
            obs["profile_dir"] = str(self.store.profiles_root)
        return obs

    def resolved_start_method(self) -> Optional[str]:
        """The start method the worker pool will actually use.

        The requested method when the platform supports it, else ``spawn``
        (available everywhere Python ships multiprocessing workers), else
        ``None`` -- the signal to run cells inline.
        """
        available = mp.get_all_start_methods()
        if self.start_method in available:
            return self.start_method
        if "spawn" in available:
            return "spawn"
        return None

    def run(
        self,
        *,
        resume: bool = True,
        progress: Optional[ProgressCallback] = None,
        on_start: Optional[StartCallback] = None,
    ) -> CampaignReport:
        """Run every pending cell; returns the :class:`CampaignReport`.

        With ``resume`` (the default), cells whose id already has an ``ok``
        record in the store are skipped -- but only after the stored record's
        full ``spec_hash`` is validated against the cell about to be skipped.
        A truncated-id collision, a tampered store, or a record predating
        spec-hash stamping fails that validation; such cells warn loudly and
        re-run instead of being silently trusted.  Pass ``resume=False`` to
        re-run the full grid regardless of stored results.

        ``on_start(cell_id)`` fires when a cell begins executing (in the
        worker-pool path, when its start event arrives) and ``progress``
        when it finishes -- together they drive live progress displays.
        """
        cells = self.campaign.expand()
        latest = self.store.latest() if resume else {}
        completed = set()
        for cell in cells:
            record = latest.get(cell.cell_id)
            if record is None or record.get("status") != "ok":
                continue
            stored_hash = record.get("spec_hash")
            if stored_hash == cell.spec_hash:
                completed.add(cell.cell_id)
            else:
                message = (
                    f"stored result for cell {cell.cell_id} has spec hash "
                    f"{stored_hash!r} but the campaign's cell hashes to "
                    f"{cell.spec_hash!r}; NOT resuming from it -- the cell "
                    "will re-run"
                )
                warnings.warn(message, RuntimeWarning, stacklevel=2)
                logger.warning(message)
        pending = [cell for cell in cells if cell.cell_id not in completed]
        report = CampaignReport(
            campaign=self.campaign.name,
            skipped_ids=[c.cell_id for c in cells if c.cell_id in completed],
        )
        if not pending:
            return report

        obs = self._obs_settings()
        start_method = self.resolved_start_method()
        # Supervision (timeouts, retry-on-death) needs the cell in a separate
        # process, so it forces the pool even for one job / one cell; without
        # it those cases run inline as before.  No start method at all always
        # degrades to inline -- an unsupervised campaign beats no campaign.
        inline = start_method is None or (
            (self.jobs == 1 or len(pending) == 1) and not self.supervised
        )
        if inline:
            for spec in pending:
                if on_start is not None:
                    on_start(spec.cell_id)
                record, trace_dict = execute_cell(spec, **obs)
                self._persist(record, trace_dict)
                report.records.append(record)
                if progress is not None:
                    progress(record, len(report.records), len(pending))
            self._attach_telemetry(report)
            return report

        self._run_pool(
            pending,
            report,
            obs=obs,
            start_method=start_method,
            progress=progress,
            on_start=on_start,
        )
        self._attach_telemetry(report)
        return report

    # ------------------------------------------------------------------ #
    # Supervised worker pool
    # ------------------------------------------------------------------ #
    def _run_pool(
        self,
        pending: List[ExperimentSpec],
        report: CampaignReport,
        *,
        obs: Dict[str, Any],
        start_method: str,
        progress: Optional[ProgressCallback],
        on_start: Optional[StartCallback],
    ) -> None:
        """Drive ``pending`` through a supervised dynamic-dispatch pool.

        Cells are handed to workers one at a time; the coordinator watches
        the pipes (a closed pipe *is* the death certificate -- no polling
        delay for ``kill -9``), enforces per-cell deadlines, re-queues
        retryable failures with backoff, respawns dead workers while work
        remains, and falls back to running leftovers inline if the pool
        collapses entirely.  Every cell therefore ends in exactly one final
        record: ``ok``, ``error`` or ``quarantined``.
        """
        started = time.monotonic()
        heartbeat = self.heartbeat_interval_s
        if heartbeat is None and self.supervised:
            heartbeat = 1.0
        counters = {
            "campaign.retries": 0,
            "campaign.timeouts": 0,
            "campaign.worker_deaths": 0,
            "campaign.quarantined": 0,
            "campaign.heartbeats": 0,
        }
        queue: deque = deque((spec, 0) for spec in pending)  # (spec, failures)
        retries: List[Tuple[float, int, ExperimentSpec]] = []  # (ready_at, failures, spec)
        outstanding = len(pending)
        total = len(pending)
        ctx = mp.get_context(start_method)
        workers: List[_Worker] = []

        def finalize(record: Dict[str, Any], trace_dict: Optional[Dict[str, Any]]) -> None:
            nonlocal outstanding
            self._persist(record, trace_dict)
            report.records.append(record)
            outstanding -= 1
            if progress is not None:
                progress(record, len(report.records), total)

        def fail_attempt(spec: ExperimentSpec, failures: int, error: str) -> None:
            """One infrastructure failure: schedule a retry or finalize."""
            failures += 1
            now = time.monotonic()
            if failures <= self.max_retries:
                counters["campaign.retries"] += 1
                delay = (
                    self.retry_backoff_s
                    * (2 ** (failures - 1))
                    * _retry_jitter(spec.cell_id, failures)
                )
                logger.warning(
                    "cell %s attempt %d failed (%s); retrying in %.2fs",
                    spec.cell_id, failures, error, delay,
                )
                # Persist the failed attempt so the store holds the full
                # history; only the final outcome lands in report.records.
                self._persist(
                    {
                        "cell_id": spec.cell_id,
                        "spec": spec.to_dict(),
                        "spec_hash": spec.spec_hash,
                        "status": "error",
                        "attempt": failures,
                        "metrics": {},
                        "state_fingerprint": None,
                        "error": error,
                        "duration_s": 0.0,
                        "finished_at": time.time(),
                    },
                    None,
                )
                retries.append((now + delay, failures, spec))
                return
            if self.max_retries > 0:
                counters["campaign.quarantined"] += 1
                status = "quarantined"
                error = (
                    f"quarantined after {failures} failed attempt(s); "
                    f"last error: {error}"
                )
            else:
                status = "error"
            finalize(
                {
                    "cell_id": spec.cell_id,
                    "spec": spec.to_dict(),
                    "spec_hash": spec.spec_hash,
                    "status": status,
                    "attempt": failures,
                    "metrics": {},
                    "state_fingerprint": None,
                    "error": error,
                    "duration_s": 0.0,
                    "finished_at": time.time(),
                },
                None,
            )

        def spawn_worker() -> Optional[_Worker]:
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_campaign_worker, args=(child_conn, obs, heartbeat)
            )
            try:
                proc.start()
            except OSError as exc:  # pragma: no cover - resource exhaustion
                logger.warning("could not spawn campaign worker: %s", exc)
                parent_conn.close()
                child_conn.close()
                return None
            child_conn.close()
            return _Worker(proc=proc, conn=parent_conn)

        def retire(worker: _Worker) -> None:
            workers.remove(worker)
            worker.conn.close()
            worker.proc.join(timeout=5)
            if worker.proc.is_alive():  # pragma: no cover - defensive
                worker.proc.kill()
                worker.proc.join(timeout=5)

        def worker_died(worker: _Worker) -> None:
            counters["campaign.worker_deaths"] += 1
            spec, failures = worker.spec, worker.attempt
            worker.proc.join(timeout=5)
            exitcode = worker.proc.exitcode
            retire(worker)
            if spec is not None:
                fail_attempt(
                    spec,
                    failures,
                    "worker process died while running this cell "
                    f"(exit code {exitcode})",
                )

        try:
            while outstanding > 0:
                now = time.monotonic()
                for entry in [e for e in retries if e[0] <= now]:
                    retries.remove(entry)
                    queue.append((entry[2], entry[1]))
                # Keep the pool sized to the remaining work -- including
                # cells waiting out their retry backoff, which still need a
                # worker soon -- replacing dead workers; a failed spawn with
                # no survivors collapses to inline execution below.
                busy = sum(1 for w in workers if w.busy)
                while len(workers) < min(self.jobs, busy + len(queue) + len(retries)):
                    worker = spawn_worker()
                    if worker is None:
                        break
                    workers.append(worker)
                if not workers:
                    break  # pool collapsed; leftovers run inline below
                for worker in workers:
                    if worker.busy or not queue:
                        continue
                    spec, failures = queue.popleft()
                    try:
                        worker.conn.send(("run", spec.to_dict()))
                    except OSError:
                        queue.appendleft((spec, failures))
                        worker_died(worker)
                        break
                    worker.spec, worker.attempt = spec, failures
                    worker.deadline = (
                        now + self.cell_timeout_s
                        if self.cell_timeout_s is not None
                        else None
                    )
                    worker.last_heartbeat = now

                deadlines = [w.deadline for w in workers if w.busy and w.deadline]
                wakeups = deadlines + [ready_at for ready_at, _, _ in retries]
                timeout = max(0.0, min(wakeups) - time.monotonic()) if wakeups else None
                if not any(w.busy for w in workers) and queue:
                    continue  # dispatch the freshly queued retries first
                for conn in connection_wait([w.conn for w in workers], timeout):
                    worker = next(w for w in workers if w.conn is conn)
                    try:
                        kind, payload, extra = conn.recv()
                    except EOFError:
                        worker_died(worker)
                        continue
                    if kind == "start":
                        if on_start is not None:
                            on_start(payload)  # payload is the cell id
                    elif kind == "hb":
                        counters["campaign.heartbeats"] += 1
                        worker.last_heartbeat = time.monotonic()
                    elif kind == "cell":
                        worker.spec = None
                        worker.deadline = None
                        # In-cell exceptions are deterministic -- retrying
                        # the same spec raises the same error -- so only
                        # infrastructure failures consume the retry budget.
                        finalize(payload, extra)
                now = time.monotonic()
                for worker in [w for w in workers if w.busy and w.deadline]:
                    if now < worker.deadline:
                        continue
                    counters["campaign.timeouts"] += 1
                    spec, failures = worker.spec, worker.attempt
                    worker.spec = None  # the kill below must not double-count
                    worker.proc.kill()
                    retire(worker)
                    fail_attempt(
                        spec,
                        failures,
                        f"cell exceeded its {self.cell_timeout_s}s wall-clock "
                        "timeout; worker killed",
                    )
        finally:
            for worker in list(workers):
                try:
                    worker.conn.send(("stop",))
                except OSError:
                    pass
                retire(worker)

        if outstanding > 0:
            # Pool collapse (could not spawn a single worker): degrade to
            # inline execution so the campaign still completes and reports.
            logger.warning(
                "worker pool collapsed; running %d remaining cell(s) inline",
                outstanding,
            )
            leftovers = [spec for spec, _ in queue]
            leftovers += [spec for _, _, spec in sorted(retries, key=lambda e: e[0])]
            for spec in leftovers:
                if on_start is not None:
                    on_start(spec.cell_id)
                record, trace_dict = execute_cell(spec, **obs)
                finalize(record, trace_dict)

        report.counters = counters
        if any(counters.values()):
            # Snapshot-format supervision counters land next to the per-cell
            # telemetry files, so `telemetry report` folds them in.  Written
            # only when something happened: an undisturbed campaign leaves
            # the telemetry directory exactly as before.
            write_supervision_snapshot(
                self.store.telemetry_root / "_campaign.jsonl",
                label="_campaign",
                counters=counters,
                elapsed_s=time.monotonic() - started,
            )

    @staticmethod
    def _attach_telemetry(report: CampaignReport) -> None:
        """Fold the worker-shipped per-cell snapshots into one report-level
        telemetry dict (counters/spans sum, histograms merge, gauges
        last-wins) -- the campaign-pool half of cross-process collection."""
        snapshots = [
            r["telemetry"] for r in report.records if isinstance(r.get("telemetry"), dict)
        ]
        if snapshots:
            report.telemetry = merge_snapshots(snapshots)

    def _persist(self, record: Dict[str, Any], trace_dict: Optional[Dict[str, Any]]) -> None:
        if trace_dict is not None:
            path = self.store.save_trace(record["cell_id"], trace_dict)
            record["trace_path"] = str(path.relative_to(self.store.root))
        else:
            record["trace_path"] = None
        # The shipped telemetry snapshot stays in-memory only (merged into
        # the report): the store already holds the identical final line as
        # telemetry/<cell_id>.jsonl, so keep results.jsonl lean.
        snapshot = record.pop("telemetry", None)
        self.store.append(record)
        if snapshot is not None:
            record["telemetry"] = snapshot
