"""Declarative experiment and campaign specifications.

An :class:`ExperimentSpec` describes one simulation cell -- algorithm,
adversary (with parameters), network size, round budget, seed, bandwidth
policy, engine and end-of-run checks -- as plain data that round-trips
through ``dict``/JSON.  A :class:`CampaignSpec` describes a whole sweep: a
``base`` cell plus a ``grid`` of axes whose cartesian product (times the
``seeds`` list) expands into the concrete cells.

Grid axes come in two flavours::

    {"grid": {"n": [16, 32, 64],                      # a spec field
              "adversary_params.inserts_per_round": [1, 3],   # dotted path
              "workload": [                            # a named patch axis
                  {"adversary": "churn",
                   "adversary_params": {"inserts_per_round": 3}},
                  {"adversary": "p2p"}]}}

A dotted key writes into a nested dict field; an axis whose values are dicts
(and whose name is not a spec field) applies each dict as a patch, letting one
axis vary several coupled fields at once (e.g. adversary *and* its params).

Every cell has a deterministic :attr:`~ExperimentSpec.cell_id` derived from
its canonical JSON form, which the result store uses for resume: re-running a
campaign skips cells whose id already has a stored result.
"""

from __future__ import annotations

import hashlib
import json
from copy import deepcopy
from dataclasses import asdict, dataclass, field, fields
from itertools import product
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..faults.models import FAULT_NONE, build_fault_plan
from ..simulator.rounds import ENGINE_MODES
from .registry import ADVERSARIES, ALGORITHMS, CHECKS

__all__ = ["ExperimentSpec", "CampaignSpec"]

_ENGINES = ("serial", "sharded")


@dataclass
class ExperimentSpec:
    """One simulation cell, as plain declarative data.

    Attributes:
        algorithm: registry name of the node algorithm (see
            :data:`~repro.experiments.registry.ALGORITHMS`).
        adversary: registry name of the adversary / workload generator.
        n: number of nodes.
        rounds: adversary-round budget; ``None`` runs until the adversary's
            finite schedule is exhausted.
        seed: RNG seed handed to the adversary builder.
        adversary_params: extra keyword arguments for the adversary builder.
        bandwidth_factor: hidden constant of the ``O(log n)`` per-link budget.
        strict_bandwidth: whether exceeding the budget raises.
        drain: whether to run quiet rounds until all nodes are consistent
            after the adversary finishes.
        engine: ``"serial"`` (:class:`~repro.simulator.runner.SimulationRunner`)
            or ``"sharded"`` (:class:`~repro.simulator.parallel.ShardedRoundEngine`).
        engine_mode: round-scheduling mode, ``"sparse"`` (default;
            activity-proportional, only active nodes are visited),
            ``"dense"`` (every node every round) or ``"columnar"``
            (activity-proportional plus batched struct-of-arrays message
            routing; serial engine only).  All modes produce bit-identical
            metrics and traces, so this axis is safe to sweep for
            performance studies.
        num_workers: shard-process count for the sharded engine.
        record_trace: record the realized schedule for exact replay.
        checks: names of end-of-run checks (see
            :data:`~repro.experiments.registry.CHECKS`); serial engine only.
        faults: fault-model name (see :data:`~repro.faults.models.FAULTS`) or
            ``"none"``.  A sweepable axis like any other: the model's
            schedule is a pure function of this spec's seed, so every engine
            mode realizes identical faults.
        fault_params: keyword arguments for the fault-model builder, plus the
            plan-level ``during_drain`` knob.
    """

    algorithm: str = "triangle"
    adversary: str = "churn"
    n: int = 16
    rounds: Optional[int] = None
    seed: int = 0
    adversary_params: Dict[str, Any] = field(default_factory=dict)
    bandwidth_factor: int = 8
    strict_bandwidth: bool = True
    drain: bool = True
    engine: str = "serial"
    engine_mode: str = "sparse"
    num_workers: int = 2
    record_trace: bool = True
    checks: Tuple[str, ...] = ()
    faults: str = FAULT_NONE
    fault_params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.checks = tuple(self.checks)
        self.adversary_params = dict(self.adversary_params)
        self.fault_params = dict(self.fault_params)
        if self.faults == FAULT_NONE and self.fault_params:
            raise ValueError(
                "fault_params given but faults is 'none'; set a fault model"
            )
        # Validate the fault axis eagerly (name and params) by building a
        # throwaway plan, so a typo'd model or parameter fails at spec time
        # with a usage error instead of mid-campaign.
        build_fault_plan(
            self.faults, n=max(self.n, 2), seed=self.seed, params=self.fault_params
        )
        if self.algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {self.algorithm!r}; choose from {sorted(ALGORITHMS)}"
            )
        if self.adversary not in ADVERSARIES:
            raise ValueError(
                f"unknown adversary {self.adversary!r}; choose from {sorted(ADVERSARIES)}"
            )
        if self.engine not in _ENGINES:
            raise ValueError(f"engine must be one of {_ENGINES}, got {self.engine!r}")
        if self.engine_mode not in ENGINE_MODES:
            raise ValueError(
                f"engine_mode must be one of {ENGINE_MODES}, got {self.engine_mode!r}"
            )
        if self.engine == "sharded" and self.engine_mode == "columnar":
            raise ValueError(
                "engine_mode='columnar' requires engine='serial': the columnar "
                "engine batches across the whole node population and has no "
                "sharded counterpart"
            )
        if self.n < 2:
            raise ValueError("n must be at least 2")
        if self.rounds is not None and self.rounds < 0:
            raise ValueError("rounds must be non-negative")
        if self.num_workers < 1:
            raise ValueError("num_workers must be positive")
        unknown_checks = [c for c in self.checks if c not in CHECKS]
        if unknown_checks:
            raise ValueError(
                f"unknown checks {unknown_checks}; choose from {sorted(CHECKS)}"
            )
        if self.checks and self.engine != "serial":
            raise ValueError(
                "end-of-run checks need access to the node instances and are "
                "only supported with engine='serial'"
            )
        # Reject inapplicable checks at spec-validation time rather than
        # mid-campaign: a check that only understands certain algorithms or
        # adversaries (or needs a drained final state) should fail here, with
        # a message naming the constraint.
        for name in self.checks:
            check = CHECKS[name]
            algorithms = getattr(check, "algorithms", None)
            if algorithms is not None and self.algorithm not in algorithms:
                raise ValueError(
                    f"check {name!r} does not apply to algorithm {self.algorithm!r} "
                    f"(supported: {sorted(algorithms)})"
                )
            adversaries = getattr(check, "adversaries", None)
            if adversaries is not None and self.adversary not in adversaries:
                raise ValueError(
                    f"check {name!r} does not apply to adversary {self.adversary!r} "
                    f"(supported: {sorted(adversaries)})"
                )
            if getattr(check, "requires_drain", False) and not self.drain:
                raise ValueError(
                    f"check {name!r} grades the drained final state; it cannot run "
                    "with drain=False"
                )
            # The attribute checks above exist for their specific messages; a
            # check may further narrow applicability by overriding
            # applies_to, which stays authoritative.
            applies_to = getattr(check, "applies_to", None)
            if applies_to is not None and not applies_to(self):
                raise ValueError(
                    f"check {name!r} does not apply to this spec "
                    f"(algorithm {self.algorithm!r}, adversary {self.adversary!r})"
                )

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (JSON-ready; tuples become lists).

        The fault fields are emitted only when a fault model is set: the
        canonical form (and therefore :attr:`spec_hash` and
        :attr:`cell_id`) of every pre-existing faultless spec is unchanged,
        so stored results keep resuming.
        """
        out = asdict(self)
        out["checks"] = list(self.checks)
        if self.faults == FAULT_NONE:
            del out["faults"]
            del out["fault_params"]
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        """Build a spec from a dict, rejecting unknown keys."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown ExperimentSpec fields {sorted(unknown)}; known: {sorted(known)}"
            )
        return cls(**deepcopy(dict(data)))

    @property
    def spec_hash(self) -> str:
        """The full SHA-1 digest of the canonical JSON form of this cell.

        :attr:`cell_id` embeds a 10-hex-digit truncation of this digest for
        readability; result records store the full hash so campaign resume
        can prove a stored result really belongs to the cell it is about to
        skip (truncated ids can collide across very large or long-lived
        stores, and hand-edited stores can lie).
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha1(canonical.encode()).hexdigest()

    @property
    def cell_id(self) -> str:
        """A deterministic, human-scannable id for this cell.

        The readable prefix names the headline axes; the hash suffix covers
        every field, so two specs differing anywhere get different ids.
        """
        fault = "" if self.faults == FAULT_NONE else f"-{self.faults}"
        return (
            f"{self.algorithm}-{self.adversary}{fault}-n{self.n}-s{self.seed}-"
            f"{self.spec_hash[:10]}"
        )


def _apply_path(cell: Dict[str, Any], dotted: str, value: Any) -> None:
    """Set ``cell[a][b]... = value`` for a dotted key ``a.b...``."""
    head, _, rest = dotted.partition(".")
    if not rest:
        cell[head] = deepcopy(value)
        return
    sub = cell.setdefault(head, {})
    if not isinstance(sub, dict):
        raise ValueError(f"grid key {dotted!r} indexes into non-dict field {head!r}")
    _apply_path(sub, rest, value)


@dataclass
class CampaignSpec:
    """A named sweep: base cell + grid axes + seeds.

    Attributes:
        name: campaign name (used for the default results directory).
        base: default :class:`ExperimentSpec` fields shared by every cell.
        grid: axis name -> list of values (see module docstring for the three
            axis flavours).  Axes expand as a cartesian product in insertion
            order.
        seeds: seeds to replicate every grid point with; ignored when the
            grid itself has a ``"seed"`` axis.
        description: free-text note stored alongside the spec.
        telemetry: observability defaults for campaign runs of this spec:
            ``{"enabled": true}`` collects per-cell telemetry snapshots into
            the result store's ``telemetry/`` directory; ``"interval_s"``
            tunes the snapshot cadence.  Campaign-level configuration only --
            it deliberately lives here and not on :class:`ExperimentSpec`,
            whose hash defines cell identity: telemetry must never change
            which cells exist or resume from stored results.
    """

    name: str
    base: Dict[str, Any] = field(default_factory=dict)
    grid: Dict[str, List[Any]] = field(default_factory=dict)
    seeds: List[int] = field(default_factory=lambda: [0])
    description: str = ""
    telemetry: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("campaign name must be non-empty")
        for axis, values in self.grid.items():
            if not isinstance(values, Sequence) or isinstance(values, (str, bytes)):
                raise ValueError(f"grid axis {axis!r} must map to a list of values")
            if not values:
                raise ValueError(f"grid axis {axis!r} has no values")
        if not self.seeds:
            raise ValueError("seeds must be non-empty (use [0] for a single run)")
        if not isinstance(self.telemetry, Mapping):
            raise ValueError("telemetry must be a mapping (e.g. {\"enabled\": true})")
        self.telemetry = dict(self.telemetry)
        unknown = set(self.telemetry) - {"enabled", "interval_s", "trace", "trace_capacity"}
        if unknown:
            raise ValueError(
                f"unknown telemetry keys {sorted(unknown)}; "
                "known: enabled, interval_s, trace, trace_capacity"
            )
        if "interval_s" in self.telemetry and float(self.telemetry["interval_s"]) < 0:
            raise ValueError("telemetry interval_s must be non-negative")
        if "trace_capacity" in self.telemetry and int(self.telemetry["trace_capacity"]) < 1:
            raise ValueError("telemetry trace_capacity must be a positive integer")

    # ------------------------------------------------------------------ #
    # Expansion
    # ------------------------------------------------------------------ #
    def expand(self) -> List[ExperimentSpec]:
        """Expand the grid (times seeds) into concrete cells.

        Returns the cells in deterministic order: the cartesian product walks
        the axes in insertion order, with the seed axis last.
        """
        spec_fields = {f.name for f in fields(ExperimentSpec)}
        axes = list(self.grid.items())
        implicit_seed = "seed" not in self.grid
        if implicit_seed:
            axes.append(("seed", list(self.seeds)))
        cells: List[ExperimentSpec] = []
        seen: Dict[str, int] = {}
        for combo in product(*(values for _, values in axes)):
            assignments = list(zip(axes, combo))
            if implicit_seed:
                # The implicit seed applies first so a patch axis can pin its
                # own seed (e.g. one RNG stream per named workload).
                assignments = [assignments[-1]] + assignments[:-1]
            cell = deepcopy(self.base)
            for (axis, _), value in assignments:
                if axis in spec_fields or "." in axis:
                    _apply_path(cell, axis, value)
                elif isinstance(value, Mapping):
                    for key, sub_value in value.items():
                        _apply_path(cell, key, sub_value)
                else:
                    raise ValueError(
                        f"grid axis {axis!r} is not an ExperimentSpec field, so its "
                        f"values must be dict patches; got {value!r}"
                    )
            spec = ExperimentSpec.from_dict(cell)
            if spec.cell_id in seen:
                raise ValueError(
                    f"grid expansion produced duplicate cell {spec.cell_id} "
                    f"(combination #{seen[spec.cell_id]} and #{len(cells)})"
                )
            seen[spec.cell_id] = len(cells)
            cells.append(spec)
        return cells

    @property
    def num_cells(self) -> int:
        """Number of cells the grid expands to (without materialising specs)."""
        size = 1
        for values in self.grid.values():
            size *= len(values)
        if "seed" not in self.grid:
            size *= len(self.seeds)
        return size

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        out = {
            "name": self.name,
            "description": self.description,
            "base": deepcopy(self.base),
            "grid": deepcopy(self.grid),
            "seeds": list(self.seeds),
        }
        if self.telemetry:
            out["telemetry"] = deepcopy(self.telemetry)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown CampaignSpec fields {sorted(unknown)}; known: {sorted(known)}"
            )
        return cls(**deepcopy(dict(data)))

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "CampaignSpec":
        """Load a campaign spec from a JSON file."""
        try:
            return cls.from_json(Path(path).read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path} is not valid JSON: {exc}") from exc
