"""Persistent storage and aggregation of campaign results.

A :class:`ResultStore` owns one directory::

    <root>/
      results.jsonl     # one record per finished cell, appended as cells land
      traces/<id>.json  # the realized topology trace of each cell

Records are appended (and flushed) the moment a cell finishes, so a campaign
killed half-way leaves a valid store behind; :meth:`ResultStore.records`
tolerates a torn final line.  Resume works off :meth:`completed_ids`: the
campaign runner skips any cell whose id already has an ``ok`` record.

The aggregation helpers reduce the per-cell metrics to per-group statistics
(mean / p50 / p95 / p99 across seeds, by default) and render them through
:func:`repro.analysis.tables.format_table`.  When telemetry or profiling is
enabled for a campaign, the per-cell artifacts land next to the results::

      telemetry/<id>.jsonl   # periodic cumulative telemetry snapshots
      profiles/<id>.pstats   # cProfile dump (with --profile cprofile)
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..analysis.tables import format_table, load_results_jsonl, record_lookup
from ..simulator.trace import TopologyTrace

__all__ = ["ResultStore", "percentile"]


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return float(ordered[lo])
    frac = rank - lo
    return float(ordered[lo] * (1 - frac) + ordered[hi] * frac)


#: ``spec.n``-style dotted-path resolution, shared with the analysis tables
#: (bare names try spec fields first, then metrics).
_lookup = record_lookup


class ResultStore:
    """JSONL-backed store of per-cell campaign results and traces."""

    RESULTS_FILE = "results.jsonl"
    TRACES_DIR = "traces"
    TELEMETRY_DIR = "telemetry"
    PROFILES_DIR = "profiles"

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.results_path = self.root / self.RESULTS_FILE
        self.traces_root = self.root / self.TRACES_DIR
        self.telemetry_root = self.root / self.TELEMETRY_DIR
        self.profiles_root = self.root / self.PROFILES_DIR

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def append(self, record: Mapping[str, Any]) -> None:
        """Append one cell record, creating the store on first write.

        The line is flushed before returning so a later crash cannot lose it.
        """
        if "cell_id" not in record:
            raise ValueError("record must carry a 'cell_id'")
        self.root.mkdir(parents=True, exist_ok=True)
        repair = False
        if self.results_path.exists():
            with self.results_path.open("rb") as handle:
                handle.seek(0, 2)
                if handle.tell() > 0:
                    handle.seek(-1, 2)
                    repair = handle.read(1) != b"\n"
        with self.results_path.open("a") as handle:
            if repair:  # a previous append was torn; start a fresh line
                handle.write("\n")
            handle.write(json.dumps(dict(record), sort_keys=True) + "\n")
            handle.flush()

    def save_trace(self, cell_id: str, trace: TopologyTrace | Mapping[str, Any]) -> Path:
        """Persist a cell's realized topology trace; returns the file path.

        The write is atomic (temp file + ``os.replace``): the supervised
        worker pool kills writers mid-dump on purpose, and a torn trace where
        a complete one used to be would poison replay.  ``sort_keys`` keeps
        re-saves of the same trace byte-identical across runs.
        """
        self.traces_root.mkdir(parents=True, exist_ok=True)
        data = trace.to_dict() if isinstance(trace, TopologyTrace) else dict(trace)
        path = self.trace_path(cell_id)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            tmp.write_text(json.dumps(data, sort_keys=True))
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        return path

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def records(self) -> List[Dict[str, Any]]:
        """All stored records, oldest first.

        Undecodable lines are skipped: appends are flushed line-by-line, so a
        corrupt line can only be a torn (interrupted) append, and dropping it
        simply makes the resume pass re-run that cell.  Delegates to
        :func:`repro.analysis.tables.load_results_jsonl`, the single JSONL
        reader shared with the analysis layer.
        """
        return load_results_jsonl(self.results_path)

    def latest(self) -> Dict[str, Dict[str, Any]]:
        """The most recent record per cell id (later lines win)."""
        latest: Dict[str, Dict[str, Any]] = {}
        for record in self.records():
            latest[record["cell_id"]] = record
        return latest

    def completed_ids(self) -> Set[str]:
        """Cell ids whose latest record finished with ``status == "ok"``."""
        return {
            cell_id
            for cell_id, record in self.latest().items()
            if record.get("status") == "ok"
        }

    def trace_path(self, cell_id: str) -> Path:
        return self.traces_root / f"{cell_id}.json"

    def telemetry_path(self, cell_id: str) -> Path:
        """Where a cell's telemetry snapshots (JSONL) live, when collected."""
        return self.telemetry_root / f"{cell_id}.jsonl"

    def profile_path(self, cell_id: str) -> Path:
        """Where a cell's cProfile pstats dump lives, when profiling ran."""
        return self.profiles_root / f"{cell_id}.pstats"

    def load_trace(self, cell_id: str) -> TopologyTrace:
        """Load the recorded trace of a completed cell."""
        path = self.trace_path(cell_id)
        if not path.exists():
            raise FileNotFoundError(f"no trace stored for cell {cell_id}")
        return TopologyTrace.from_dict(json.loads(path.read_text()))

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #
    def aggregate(
        self,
        *,
        group_by: Sequence[str] = ("algorithm", "adversary", "n"),
        metrics: Sequence[str] = ("amortized_round_complexity",),
        records: Optional[Iterable[Mapping[str, Any]]] = None,
    ) -> Tuple[List[str], List[List[Any]]]:
        """Reduce per-cell metrics to per-group mean / percentile statistics.

        Args:
            group_by: spec fields (dotted paths allowed) defining the groups;
                by default one group per (algorithm, adversary, n) -- i.e.
                seeds are the replicates being averaged.
            metrics: metric names to aggregate (dotted paths allowed; bare
                names also resolve top-level record keys such as
                ``duration_s``).
            records: records to aggregate; defaults to the latest ``ok``
                record of every stored cell.

        Returns:
            ``(headers, rows)`` ready for
            :func:`~repro.analysis.tables.format_table`, sorted by group key.
            Each metric contributes mean / p50 / p95 / p99 columns plus a
            ``n <metric>`` column reporting how many of the group's cells
            actually carried the metric: records with a missing or ``None``
            value are excluded from the statistics, and hiding that would let
            the ``cells`` column overstate the coverage of a heterogeneous
            group.
        """
        if records is None:
            records = [r for r in self.latest().values() if r.get("status") == "ok"]
        groups: Dict[Tuple, List[Mapping[str, Any]]] = {}
        for record in records:
            key = tuple(_lookup(record, field) for field in group_by)
            groups.setdefault(key, []).append(record)
        headers = list(group_by) + ["cells"]
        for metric in metrics:
            headers += [
                f"mean {metric}",
                f"p50 {metric}",
                f"p95 {metric}",
                f"p99 {metric}",
                f"n {metric}",
            ]
        rows: List[List[Any]] = []
        def sort_key(key: Tuple) -> Tuple:
            # numbers sort numerically, everything else lexically, mixed
            # columns sort numbers first (so n=8 < n=16 < n=128)
            return tuple(
                (0, float(part), "")
                if isinstance(part, (int, float)) and not isinstance(part, bool)
                else (1, 0.0, str(part))
                for part in key
            )

        for key in sorted(groups, key=sort_key):
            members = groups[key]
            row: List[Any] = list(key) + [len(members)]
            for metric in metrics:
                values = [
                    float(v)
                    for v in (_lookup(r, metric) for r in members)
                    if v is not None
                ]
                if values:
                    row += [
                        sum(values) / len(values),
                        percentile(values, 50),
                        percentile(values, 95),
                        percentile(values, 99),
                        len(values),
                    ]
                else:
                    row += ["-", "-", "-", "-", 0]
            rows.append(row)
        return headers, rows

    def format_aggregate(self, **kwargs: Any) -> str:
        """Render :meth:`aggregate` as an aligned plain-text table."""
        headers, rows = self.aggregate(**kwargs)
        return format_table(headers, rows)
