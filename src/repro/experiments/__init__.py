"""Experiment campaigns: declarative specs, a parallel sweep runner, storage.

This subsystem turns "one benchmark script per theorem" into "one spec entry
per scenario":

* :mod:`repro.experiments.spec` -- :class:`ExperimentSpec` (one cell) and
  :class:`CampaignSpec` (a sweep with grid expansion), JSON round-trippable.
* :mod:`repro.experiments.registry` -- named registries of algorithms,
  adversaries / workload generators and end-of-run checks shared with the CLI.
* :mod:`repro.experiments.campaign` -- :func:`run_cell` and
  :class:`CampaignRunner`, which executes the expanded grid across a
  multiprocessing worker pool with per-cell trace recording and resume.
* :mod:`repro.experiments.store` -- the JSONL :class:`ResultStore` with
  mean / p95 aggregation feeding the analysis tables.

Quickstart::

    from repro.experiments import CampaignSpec, CampaignRunner, ResultStore

    campaign = CampaignSpec(
        name="triangle-sweep",
        base={"algorithm": "triangle", "adversary": "churn", "rounds": 150,
              "checks": ["triangle_oracle"]},
        grid={"n": [16, 32, 64]},
        seeds=[0, 1],
    )
    report = CampaignRunner(campaign, "results/triangle-sweep", jobs=4).run()
    print(ResultStore("results/triangle-sweep").format_aggregate())
"""

from .campaign import PROFILERS, CampaignReport, CampaignRunner, execute_cell, run_cell
from .registry import (
    ADVERSARIES,
    ALGORITHMS,
    CHECKS,
    NullWorkloadNode,
    build_adversary,
    register_adversary,
    register_algorithm,
    register_check,
)
from .spec import CampaignSpec, ExperimentSpec
from .store import ResultStore, percentile

__all__ = [
    "ADVERSARIES",
    "ALGORITHMS",
    "CHECKS",
    "CampaignReport",
    "CampaignRunner",
    "CampaignSpec",
    "ExperimentSpec",
    "NullWorkloadNode",
    "PROFILERS",
    "ResultStore",
    "build_adversary",
    "execute_cell",
    "percentile",
    "register_adversary",
    "register_algorithm",
    "register_check",
    "run_cell",
]
