"""Full 2-hop neighborhood listing in O(n / log n) amortized rounds (Lemma 1).

Corollary 2 of the paper shows that maintaining the *entire* 2-hop
neighborhood (equivalently, membership listing of the 3-vertex path) requires
``Ω(n / log n)`` amortized rounds.  Lemma 1 (Appendix B) gives the matching
upper bound: every node keeps one update queue per neighbor; incident edge
changes are enqueued on every queue, and every edge insertion additionally
enqueues a full snapshot of the endpoint's neighborhood -- an ``n``-bit string
chopped into ``Θ(n / log n)`` chunks -- on the queue towards the other
endpoint.  One item per queue is sent each round, so the queues drain in
parallel and the amortized cost is dominated by the snapshot length.

This algorithm is the **baseline** for two experiments:

* E6 -- running it against the Theorem 2 adversary exhibits the near-linear
  amortized cost that the lower bound proves unavoidable for non-clique
  membership listing;
* E7 -- its amortized complexity under insertion-heavy churn scales like
  ``n / log n``, matching Lemma 1.

It also answers triangle and H-membership queries (for patterns of radius 1
around the queried node), since full 2-hop knowledge subsumes the temporal
patterns of the fast algorithms; what it cannot do is stay consistent cheaply.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, FrozenSet, Mapping, Optional, Sequence, Set, Tuple, Union

from ..simulator.events import Edge, canonical_edge
from ..simulator.messages import (
    EdgeEventMessage,
    EdgeOp,
    Envelope,
    PatternMark,
    SnapshotChunkMessage,
    id_bits,
)
from ..simulator.node import NodeAlgorithm
from .membership import HMembershipQuery
from .queries import EdgeQuery, QueryResult, TriangleQuery, TwoHopQuery

__all__ = ["TwoHopListingNode"]


@dataclass
class _EventItem:
    """A pending incremental update about one of this node's incident edges."""

    edge: Edge
    op: EdgeOp


@dataclass
class _ChunkItem:
    """A pending chunk of a neighborhood snapshot."""

    message: SnapshotChunkMessage


_QueueItem = Union[_EventItem, _ChunkItem]


class TwoHopListingNode(NodeAlgorithm):
    """Per-node algorithm of Lemma 1 (full 2-hop neighborhood listing).

    Query interface: :class:`~repro.core.queries.TwoHopQuery`,
    :class:`~repro.core.queries.EdgeQuery`,
    :class:`~repro.core.queries.TriangleQuery` and
    :class:`~repro.core.membership.HMembershipQuery`.

    Args:
        node_id: this node's identifier.
        n: number of nodes.
        chunk_bits: payload bits per snapshot chunk.  The default of
            ``4 * ceil(log2 n)`` keeps each chunk (plus its bookkeeping
            identifiers and control bits) within the default bandwidth budget
            of ``8 * ceil(log2 n)`` bits.
    """

    def __init__(self, node_id: int, n: int, *, chunk_bits: Optional[int] = None) -> None:
        super().__init__(node_id, n)
        self.chunk_bits = chunk_bits if chunk_bits is not None else 4 * id_bits(n)
        if self.chunk_bits <= 0:
            raise ValueError("chunk_bits must be positive")
        #: Current neighbors.
        self.adj: Set[int] = set()
        #: For each neighbor, its neighborhood as far as we know it.
        self.view: Dict[int, Set[int]] = {}
        #: One FIFO update queue per current neighbor.
        self.out_queues: Dict[int, Deque[_QueueItem]] = {}
        #: Snapshot epoch counter (so receivers can recognise chunk batches).
        self._epoch = 0
        self.consistent: bool = True
        self._queues_empty_at_send: bool = True

    # ------------------------------------------------------------------ #
    # Round hooks
    # ------------------------------------------------------------------ #
    def on_topology_change(
        self, round_index: int, inserted: Sequence[int], deleted: Sequence[int]
    ) -> None:
        for u in deleted:
            self.adj.discard(u)
            self.view.pop(u, None)
            self.out_queues.pop(u, None)
            edge = canonical_edge(self.node_id, u)
            for w in self.adj:
                self.out_queues[w].append(_EventItem(edge, EdgeOp.DELETE))
        for u in inserted:
            self.adj.add(u)
            self.view[u] = set()
            self.out_queues[u] = deque()
            edge = canonical_edge(self.node_id, u)
            for w in self.adj:
                if w != u:
                    self.out_queues[w].append(_EventItem(edge, EdgeOp.INSERT))
            # A fresh snapshot of our entire neighborhood goes to the new
            # neighbor, chopped into Theta(log n)-bit chunks.
            self._enqueue_snapshot(u)

    def _enqueue_snapshot(self, target: int) -> None:
        self._epoch += 1
        total_chunks = max(1, math.ceil(self.n / self.chunk_bits))
        neighbors = sorted(self.adj)
        for index in range(total_chunks):
            low = index * self.chunk_bits
            high = min(self.n, (index + 1) * self.chunk_bits)
            members = tuple(w for w in neighbors if low <= w < high)
            self.out_queues[target].append(
                _ChunkItem(
                    SnapshotChunkMessage(
                        owner=self.node_id,
                        epoch=self._epoch,
                        chunk_index=index,
                        total_chunks=total_chunks,
                        members=members,
                        chunk_bits=high - low,
                    )
                )
            )

    def compose_messages(self, round_index: int) -> Dict[int, Envelope]:
        self._queues_empty_at_send = all(not q for q in self.out_queues.values())
        outgoing: Dict[int, Envelope] = {}
        for u in self.adj:
            queue = self.out_queues[u]
            payload = None
            if queue:
                item = queue.popleft()
                if isinstance(item, _EventItem):
                    payload = EdgeEventMessage(item.edge, item.op, PatternMark.A)
                else:
                    payload = item.message
            envelope = Envelope(payload=payload, is_empty=self._queues_empty_at_send)
            if not envelope.is_silent:
                outgoing[u] = envelope
        return outgoing

    def on_messages(self, round_index: int, received: Mapping[int, Envelope]) -> None:
        saw_nonempty_neighbor = False
        for sender, envelope in received.items():
            if not envelope.is_empty:
                saw_nonempty_neighbor = True
            message = envelope.payload
            if message is None:
                continue
            if sender not in self.adj:
                continue
            if isinstance(message, EdgeEventMessage):
                self._apply_event(sender, message)
            elif isinstance(message, SnapshotChunkMessage):
                self._apply_chunk(sender, message)
            else:
                raise TypeError(f"unexpected message type {type(message).__name__}")
        queues_empty = all(not q for q in self.out_queues.values())
        self.consistent = queues_empty and not saw_nonempty_neighbor

    def _apply_event(self, sender: int, message: EdgeEventMessage) -> None:
        edge = message.edge
        if sender not in edge:
            return
        other = edge[0] if edge[1] == sender else edge[1]
        if message.op is EdgeOp.INSERT:
            self.view[sender].add(other)
        else:
            self.view[sender].discard(other)

    def _apply_chunk(self, sender: int, message: SnapshotChunkMessage) -> None:
        if message.owner != sender:
            return
        low = message.chunk_index * self.chunk_bits
        high = low + message.chunk_bits
        view = self.view[sender]
        for w in [w for w in view if low <= w < high]:
            view.discard(w)
        view.update(message.members)

    # ------------------------------------------------------------------ #
    # Query window
    # ------------------------------------------------------------------ #
    def is_consistent(self) -> bool:
        return self.consistent

    def is_quiescent(self) -> bool:
        # All per-neighbor queues drained and a consistent verdict: composing
        # would emit only silent envelopes and an empty receive is a no-op.
        return self.consistent and all(not q for q in self.out_queues.values())

    def knows_edge(self, u: int, w: int) -> bool:
        """Whether the edge ``{u, w}`` exists according to the 2-hop knowledge."""
        edge = canonical_edge(u, w)
        if self.node_id in edge:
            other = edge[0] if edge[1] == self.node_id else edge[1]
            return other in self.adj
        in_view_u = u in self.adj and w in self.view.get(u, ())
        in_view_w = w in self.adj and u in self.view.get(w, ())
        return in_view_u or in_view_w

    def query(self, query: Any) -> QueryResult:
        if isinstance(query, (TwoHopQuery, EdgeQuery)):
            if not self.consistent:
                return QueryResult.INCONSISTENT
            return QueryResult.of(self.knows_edge(query.u, query.w))
        if isinstance(query, TriangleQuery):
            if self.node_id not in query.nodes:
                raise ValueError("triangle queries must contain the queried node")
            if not self.consistent:
                return QueryResult.INCONSISTENT
            u, w = sorted(query.nodes - {self.node_id})
            return QueryResult.of(
                u in self.adj and w in self.adj and self.knows_edge(u, w)
            )
        if isinstance(query, HMembershipQuery):
            if not self.consistent:
                return QueryResult.INCONSISTENT
            return QueryResult.of(
                all(self.knows_edge(a, b) for a, b in query.mapped_edges())
            )
        raise TypeError(
            f"TwoHopListingNode does not answer {type(query).__name__} queries"
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def known_edges(self) -> FrozenSet[Edge]:
        """Every edge of the (believed) 2-hop neighborhood."""
        edges: Set[Edge] = {canonical_edge(self.node_id, u) for u in self.adj}
        for u, members in self.view.items():
            if u not in self.adj:
                continue
            for w in members:
                if w != u:
                    edges.add(canonical_edge(u, w))
        return frozenset(edges)

    def local_state_size(self) -> int:
        return (
            len(self.adj)
            + sum(len(v) for v in self.view.values())
            + sum(len(q) for q in self.out_queues.values())
        )
