"""The robust 3-hop neighborhood data structure (Theorem 6, Figure 3).

4-cycle and 5-cycle listing need knowledge of edges up to three hops away,
but -- as with the 2-hop case -- the *full* 3-hop neighborhood is unaffordable.
The paper defines the **robust 3-hop neighborhood** ``R^{v,3}_i`` by the
temporal edge patterns of Figure 3:

* (a) ``v - u - w`` with ``t_{u,w} >= t_{v,u}`` (the robust 2-hop patterns),
* (b) ``v - u - w - x`` with ``t_{w,x} >= t_{u,w}`` and ``t_{w,x} >= t_{v,u}``
  (the farthest edge of the 3-path is the newest),

plus all edges incident to ``v``.

Theorem 6 maintains (a sandwich around) this set with ``O(1)`` amortized
rounds using a *path-set* mechanism instead of timestamps: node ``v`` stores,
for every known edge ``e``, the set ``P_e`` of paths along which ``e`` was
learned.  A path is added when an insertion announcement travels towards
``v`` (each hop prepends itself and re-broadcasts announcements of at most
two edges), and removed when any edge on it is deleted (deletions are
broadcast with a constant hop counter).  The edge is considered known while
``P_e`` is non-empty.

Consistency uses a two-round rule: besides its own queue being empty and no
neighbor reporting a non-empty queue (``IsEmpty = false``), the node also
requires that no neighbor reported, via ``AreNeighborsEmpty = false``, that
*its* neighbors had non-empty queues in the previous round.  This gives the
correctness guarantee of the paper: when consistent,

``R^{v,2}_i ∪ (R^{v,3}_{i-1} \\ R^{v,2}_{i-1})  ⊆  S̃_v,i  ⊆
E^{v,2}_i ∪ (E^{v,3}_{i-1} \\ E^{v,2}_{i-1})``,

which is exactly what the 4-cycle / 5-cycle listing layer of Theorem 5 needs.

Reproduction notes
------------------
* The paper's step 4 re-enqueues a processed insertion path "if it is an edge
  or a 2-path".  Taken literally for a node's *own* dequeued single-edge item
  this would re-enqueue it forever; we therefore forward only items received
  from a neighbor, which is the propagation the correctness proof uses
  (endpoint -> distance 1 -> distance 2).
* Deletions are forwarded with the literal ``hops <= 1`` rule on receipt
  (reaching distance 3, one hop further than strictly necessary), but a
  node's own dequeued deletion is not re-enqueued.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, FrozenSet, Mapping, Optional, Sequence, Set, Tuple, Union

from ..simulator.events import Edge, canonical_edge
from ..simulator.messages import EdgeDeleteHopMessage, Envelope, PathInsertMessage
from ..simulator.node import NodeAlgorithm
from .queries import EdgeQuery, QueryResult

__all__ = ["RobustThreeHopNode"]

#: A path stored at node ``v``: a tuple of nodes starting at ``v``.
Path = Tuple[int, ...]


@dataclass
class _PathItem:
    """A pending insertion announcement: a path (starting at this node) to broadcast."""

    path: Path


@dataclass
class _DeleteItem:
    """A pending deletion announcement: an edge plus the constant hop counter."""

    edge: Edge
    hops: int


_QueueItem = Union[_PathItem, _DeleteItem]


def _path_edges(path: Path) -> Tuple[Edge, ...]:
    """The consecutive edges of a node path, in canonical form."""
    return tuple(canonical_edge(a, b) for a, b in zip(path, path[1:]))


class RobustThreeHopNode(NodeAlgorithm):
    """Per-node algorithm of Theorem 6 (robust 3-hop neighborhood listing).

    Query interface: :class:`~repro.core.queries.EdgeQuery`, answered TRUE iff
    the edge currently has a non-empty path set.
    """

    #: Maximum number of edges of a path that is re-broadcast.  Received paths
    #: of this length are extended by one hop by the receiver, so stored paths
    #: have at most ``MAX_FORWARD_EDGES + 1`` edges.
    MAX_FORWARD_EDGES = 2

    def __init__(self, node_id: int, n: int) -> None:
        super().__init__(node_id, n)
        #: Current neighbors.
        self.adj: Set[int] = set()
        #: Known edges mapped to the set of paths along which they were learned.
        self.S: Dict[Edge, Set[Path]] = {}
        # Reverse index: traversed edge -> set of (supported edge, path) pairs.
        # Purely a performance structure so deletions do not scan every stored
        # path (the hot loop of large simulations).
        self._traversed_by: Dict[Edge, Set[tuple]] = {}
        #: Pending announcements, drained one per round.
        self.Q: Deque[_QueueItem] = deque()
        #: Consistency flag ``C_v`` (two-round rule).
        self.consistent: bool = True
        self._prev_round_clean: bool = True
        # Whether some neighbor reported a non-empty queue in the previous
        # round; broadcast as AreNeighborsEmpty in the current round.
        self._neighbor_reported_nonempty_prev: bool = False

    # ------------------------------------------------------------------ #
    # Round hooks
    # ------------------------------------------------------------------ #
    def on_topology_change(
        self, round_index: int, inserted: Sequence[int], deleted: Sequence[int]
    ) -> None:
        # Local state updates happen here, at indication time, not when the
        # corresponding announcement reaches the queue head: an incident
        # deletion whose prune were deferred would destroy knowledge that a
        # re-insertion (and the announcements it triggers) rebuilt in between,
        # leaving the node permanently short of ``R^{v,3}``.  The queue only
        # delays what the *neighbors* hear, exactly like the robust 2-hop and
        # triangle structures.
        for u in deleted:
            self.adj.discard(u)
            self._remove_paths_through(canonical_edge(self.node_id, u), first_hop=None)
            self.Q.append(_DeleteItem(canonical_edge(self.node_id, u), hops=0))
        for u in inserted:
            self.adj.add(u)
            self._store_path((self.node_id, u))
            self.Q.append(_PathItem((self.node_id, u)))

    def compose_messages(self, round_index: int) -> Dict[int, Envelope]:
        # Local on purpose: composing with an empty queue must not mutate
        # state (the quiescence contract the sparse engine relies on).
        queue_empty_at_send = not self.Q
        are_neighbors_empty = not self._neighbor_reported_nonempty_prev

        item: Optional[_QueueItem] = self.Q.popleft() if self.Q else None
        payload = None
        if isinstance(item, _PathItem):
            # Purely an announcement: the local store happened at indication
            # time (re-storing here could resurrect an edge deleted since).
            payload = PathInsertMessage(item.path)
        elif isinstance(item, _DeleteItem):
            # Likewise announcement-only; local pruning happened at
            # indication time (hops == 0) or at receive time (hops > 0).
            payload = EdgeDeleteHopMessage(item.edge, item.hops)

        outgoing: Dict[int, Envelope] = {}
        for u in self.adj:
            envelope = Envelope(
                payload=payload,
                is_empty=queue_empty_at_send,
                are_neighbors_empty=are_neighbors_empty,
            )
            if not envelope.is_silent:
                outgoing[u] = envelope
        return outgoing

    def on_messages(self, round_index: int, received: Mapping[int, Envelope]) -> None:
        saw_nonempty_neighbor = False
        saw_nonempty_two_hop = False
        for sender, envelope in received.items():
            if not envelope.is_empty:
                saw_nonempty_neighbor = True
            if envelope.are_neighbors_empty is False:
                saw_nonempty_two_hop = True
            message = envelope.payload
            if message is None:
                continue
            if isinstance(message, PathInsertMessage):
                self._apply_remote_path(sender, message.path)
            elif isinstance(message, EdgeDeleteHopMessage):
                if self.node_id in message.edge:
                    # Our own incident edges are tracked authoritatively from
                    # the topology indications; a (possibly long-delayed)
                    # remote echo about them must not prune knowledge that the
                    # edge's re-insertion has since rebuilt.
                    continue
                self._remove_paths_through(message.edge, first_hop=sender)
                # Deletions are forwarded exactly one hop past the deleted
                # edge's endpoints, which is how far stored paths can reach
                # (see the module docstring's reproduction notes).
                if message.hops == 0:
                    self.Q.append(_DeleteItem(message.edge, message.hops + 1))
            else:
                raise TypeError(f"unexpected message type {type(message).__name__}")

        clean_now = (
            (not self.Q) and (not saw_nonempty_neighbor) and (not saw_nonempty_two_hop)
        )
        self.consistent = clean_now and self._prev_round_clean
        self._prev_round_clean = clean_now
        self._neighbor_reported_nonempty_prev = saw_nonempty_neighbor

    # ------------------------------------------------------------------ #
    # Path-set maintenance
    # ------------------------------------------------------------------ #
    def _store_path(self, path: Path) -> None:
        """Record ``path`` (which starts at this node): every prefix supports its last edge."""
        for idx, edge in enumerate(_path_edges(path), start=2):
            prefix = path[:idx]
            stored = self.S.setdefault(edge, set())
            if prefix in stored:
                continue
            stored.add(prefix)
            entry = (edge, prefix)
            for traversed in _path_edges(prefix):
                self._traversed_by.setdefault(traversed, set()).add(entry)

    def _apply_remote_path(self, sender: int, path: Path) -> None:
        """Handle an insertion announcement received from a neighbor."""
        if path[0] != sender:
            # Announcements always describe a path starting at the sender; a
            # mismatch indicates a corrupted or misrouted message.
            return
        if self.node_id in path:
            # Prepending ourselves would create a non-simple walk; the edges of
            # such a path are already covered by shorter routes.
            return
        extended: Path = (self.node_id,) + tuple(path)
        self._store_path(extended)
        if len(extended) - 1 <= self.MAX_FORWARD_EDGES:
            self.Q.append(_PathItem(extended))

    def _remove_paths_through(self, edge: Edge, first_hop: Optional[int]) -> None:
        """Remove stored paths that traverse ``edge``.

        When ``first_hop`` is given, only paths learned through that neighbor
        (paths whose second node is ``first_hop``) are pruned.  Announcements
        and deletion forwards travel the same per-link FIFO routes, so pruning
        per route keeps knowledge obtained through *other* routes intact when a
        delayed ("stale") deletion of a meanwhile re-inserted edge arrives --
        the re-insertion's announcement follows the stale deletion on the same
        route and restores that route's paths, while other routes are left
        alone.  ``first_hop=None`` (own incident deletions) prunes every path
        through the edge.
        """
        entries = self._traversed_by.get(edge)
        if not entries:
            return
        doomed = [
            (known_edge, path)
            for known_edge, path in entries
            if first_hop is None or path[1] == first_hop
        ]
        for known_edge, path in doomed:
            stored = self.S.get(known_edge)
            if stored is not None:
                stored.discard(path)
                if not stored:
                    del self.S[known_edge]
            entry = (known_edge, path)
            for traversed in _path_edges(path):
                bucket = self._traversed_by.get(traversed)
                if bucket is not None:
                    bucket.discard(entry)
                    if not bucket:
                        del self._traversed_by[traversed]

    # ------------------------------------------------------------------ #
    # Query window
    # ------------------------------------------------------------------ #
    def is_quiescent(self) -> bool:
        # The two-round consistency rule keeps extra state between rounds:
        # besides an empty queue and a consistent verdict, the node must have
        # seen a clean previous round and must not owe its neighbors an
        # AreNeighborsEmpty = false report -- otherwise the next (empty) round
        # would still flip one of these flags and must not be skipped.
        return (
            self.consistent
            and not self.Q
            and self._prev_round_clean
            and not self._neighbor_reported_nonempty_prev
        )

    def is_consistent(self) -> bool:
        return self.consistent

    def query(self, query: Any) -> QueryResult:
        """Answer an :class:`EdgeQuery` about the robust 3-hop neighborhood."""
        if not isinstance(query, EdgeQuery):
            raise TypeError(
                f"RobustThreeHopNode answers EdgeQuery, got {type(query).__name__}"
            )
        if not self.consistent:
            return QueryResult.INCONSISTENT
        return QueryResult.of(self.knows_edge(query.u, query.w))

    def knows_edge(self, u: int, w: int) -> bool:
        """Whether the edge ``{u, w}`` currently has a non-empty path set."""
        edge = canonical_edge(u, w)
        if self.node_id in edge:
            other = edge[0] if edge[1] == self.node_id else edge[1]
            return other in self.adj
        return edge in self.S

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def known_edges(self) -> FrozenSet[Edge]:
        """The edge set ``S̃_v`` (edges with a non-empty path set) plus incident edges."""
        incident = frozenset(canonical_edge(self.node_id, u) for u in self.adj)
        return frozenset(self.S) | incident

    def local_state_size(self) -> int:
        return sum(len(paths) for paths in self.S.values()) + len(self.Q) + len(self.adj)
