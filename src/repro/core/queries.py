"""Query and answer types for the distributed dynamic data structures.

A distributed dynamic data structure must answer queries *without any
communication*: either with a correct ``TRUE`` / ``FALSE`` answer or by
declaring itself ``INCONSISTENT`` while its updating process is in progress.
This module defines the query objects accepted by the node algorithms in
:mod:`repro.core` and the three-valued :class:`QueryResult` they return.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import FrozenSet, Iterable, Tuple

from ..simulator.events import Edge, canonical_edge

__all__ = [
    "QueryResult",
    "EdgeQuery",
    "TriangleQuery",
    "CliqueQuery",
    "CycleQuery",
    "TwoHopQuery",
]


class QueryResult(Enum):
    """Three-valued answer of a distributed dynamic data structure."""

    TRUE = "true"
    FALSE = "false"
    INCONSISTENT = "inconsistent"

    @property
    def is_definite(self) -> bool:
        """Whether the answer is a definite TRUE/FALSE (not INCONSISTENT)."""
        return self is not QueryResult.INCONSISTENT

    @classmethod
    def of(cls, value: bool) -> "QueryResult":
        """Lift a Boolean into a definite answer."""
        return cls.TRUE if value else cls.FALSE


@dataclass(frozen=True)
class EdgeQuery:
    """Does the data structure know the edge ``{u, w}``?

    Used by the robust 2-hop and robust 3-hop neighborhood listings: the
    answer is TRUE if the edge belongs to the robust set the node maintains,
    FALSE if it is certainly not in the relevant ``r``-hop neighborhood, and
    may be either for edges in between (see the individual algorithms for the
    exact guarantee).
    """

    u: int
    w: int

    @property
    def edge(self) -> Edge:
        return canonical_edge(self.u, self.w)


@dataclass(frozen=True)
class TriangleQuery:
    """Is ``{a, b, c}`` a triangle containing the queried node?"""

    nodes: FrozenSet[int]

    def __init__(self, nodes: Iterable[int]) -> None:
        object.__setattr__(self, "nodes", frozenset(nodes))
        if len(self.nodes) != 3:
            raise ValueError(f"a triangle query needs exactly 3 distinct nodes, got {self.nodes}")


@dataclass(frozen=True)
class CliqueQuery:
    """Is the node set a k-clique containing the queried node (k = |nodes|)?"""

    nodes: FrozenSet[int]

    def __init__(self, nodes: Iterable[int]) -> None:
        object.__setattr__(self, "nodes", frozenset(nodes))
        if len(self.nodes) < 3:
            raise ValueError("a clique query needs at least 3 distinct nodes")

    @property
    def k(self) -> int:
        return len(self.nodes)


@dataclass(frozen=True)
class CycleQuery:
    """Is the given cyclically ordered node tuple a cycle in the graph?

    ``cycle`` lists the nodes in cyclic order; the queried edges are the
    consecutive pairs plus the wrap-around pair.  The queried node must be one
    of the entries.  For the 4-cycle / 5-cycle listing problem the guarantee
    is collective: if all nodes of a true cycle are queried, at least one
    answers TRUE or at least one answers INCONSISTENT.
    """

    cycle: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.cycle) < 3:
            raise ValueError("a cycle query needs at least 3 nodes")
        if len(set(self.cycle)) != len(self.cycle):
            raise ValueError(f"cycle nodes must be distinct: {self.cycle}")

    @property
    def k(self) -> int:
        return len(self.cycle)

    @property
    def edges(self) -> Tuple[Edge, ...]:
        """The k edges of the queried cycle, in canonical form."""
        k = len(self.cycle)
        return tuple(
            canonical_edge(self.cycle[i], self.cycle[(i + 1) % k]) for i in range(k)
        )


@dataclass(frozen=True)
class TwoHopQuery:
    """Is the edge ``{u, w}`` part of the queried node's (full) 2-hop neighborhood?

    Used by the Lemma 1 baseline, which maintains the *entire* 2-hop
    neighborhood (and therefore pays the near-linear amortized cost of
    Corollary 2).
    """

    u: int
    w: int

    @property
    def edge(self) -> Edge:
        return canonical_edge(self.u, self.w)
