"""4-cycle and 5-cycle listing (Theorems 3 and 5).

Unlike clique *membership* listing, cycle listing only requires that for every
4-cycle (5-cycle) ``H`` of the graph, **at least one** node of ``H`` answers
TRUE when queried for ``H`` (or at least one node answers INCONSISTENT while
the relevant part of the graph is still being propagated).  The paper shows
this is achievable in ``O(1)`` amortized rounds by querying the robust 3-hop
neighborhood of Theorem 6: for any k-cycle (``k ∈ {4, 5}``), the node ``v``
adjacent (in the cycle) to the edge with the *latest* insertion time has the
entire cycle inside its robust 3-hop neighborhood.

:class:`CycleListingNode` therefore extends
:class:`~repro.core.robust3hop.RobustThreeHopNode` with the cycle query: it
answers TRUE iff every edge of the queried cycle is currently known.  The
correctness guarantee is *collective* and with respect to ``G_{i-1}`` (the
graph one round earlier), because topology changes three hops away inherently
need an extra round to propagate (footnote 2 of the paper).
"""

from __future__ import annotations

from itertools import permutations
from typing import Any, FrozenSet, Iterable, List, Sequence, Set, Tuple

from ..simulator.events import canonical_edge
from .queries import CycleQuery, QueryResult
from .robust3hop import RobustThreeHopNode

__all__ = ["CycleListingNode", "cyclic_orderings"]


def cyclic_orderings(nodes: Iterable[int], anchor: int) -> List[Tuple[int, ...]]:
    """All distinct cyclic orderings of ``nodes`` starting at ``anchor``.

    Two orderings that are rotations of each other are identified by fixing
    the anchor as the first element; reflections are kept (they query the same
    edge set, so duplicates are cheap and the helper stays simple).
    """
    rest = sorted(set(nodes) - {anchor})
    if len(rest) + 1 != len(set(nodes)):
        raise ValueError("anchor must be one of the nodes")
    return [(anchor, *perm) for perm in permutations(rest)]


class CycleListingNode(RobustThreeHopNode):
    """Per-node algorithm of Theorem 5 (4-cycle and 5-cycle listing).

    Query interface: :class:`~repro.core.queries.CycleQuery` (an explicit
    cyclic ordering) in addition to the :class:`~repro.core.queries.EdgeQuery`
    interface of the robust 3-hop structure.  The convenience method
    :meth:`knows_cycle_set` checks all orderings of an unordered node set.
    """

    def query(self, query: Any) -> QueryResult:
        if isinstance(query, CycleQuery):
            if self.node_id not in query.cycle:
                raise ValueError(
                    f"node {self.node_id} was queried for a cycle not containing it: {query.cycle}"
                )
            if not self.consistent:
                return QueryResult.INCONSISTENT
            return QueryResult.of(all(self.knows_edge(*edge) for edge in query.edges))
        return super().query(query)

    # ------------------------------------------------------------------ #
    # Convenience helpers (not part of the formal query interface)
    # ------------------------------------------------------------------ #
    def knows_cycle_set(self, nodes: Iterable[int]) -> bool:
        """Whether some cyclic ordering of ``nodes`` has all its edges known locally."""
        node_set = set(nodes)
        if self.node_id not in node_set:
            raise ValueError("the queried set must contain this node")
        for ordering in cyclic_orderings(node_set, self.node_id):
            k = len(ordering)
            if all(
                self.knows_edge(ordering[i], ordering[(i + 1) % k]) for i in range(k)
            ):
                return True
        return False

    def known_cycles(self, k: int) -> Set[FrozenSet[int]]:
        """Enumerate the k-cycles through this node visible in the local state.

        Only ``k ∈ {4, 5}`` are supported (larger cycles are provably out of
        reach of constant amortized algorithms; Theorem 4).  The enumeration
        walks locally known edges and is intended for examples and tests, not
        for the formal query interface.
        """
        if k not in (4, 5):
            raise ValueError("only 4-cycles and 5-cycles are supported")
        known = self.known_edges()
        adjacency: dict[int, Set[int]] = {}
        for a, b in known:
            adjacency.setdefault(a, set()).add(b)
            adjacency.setdefault(b, set()).add(a)

        cycles: Set[FrozenSet[int]] = set()
        v = self.node_id

        def extend(path: List[int]) -> None:
            if len(path) == k:
                if path[0] in adjacency.get(path[-1], ()):  # closes the cycle
                    cycles.add(frozenset(path))
                return
            for nxt in adjacency.get(path[-1], ()):
                if nxt not in path:
                    extend(path + [nxt])

        extend([v])
        return cycles
