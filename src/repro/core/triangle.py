"""Triangle membership listing (Theorem 1).

Each node ``v`` maintains knowledge of the temporal edge patterns of Figure 2:

* **pattern (a)** -- the robust 2-hop neighborhood: a far edge ``{u, w}`` with
  ``t_{u,w} >= t_{v,u}`` for a currently existing edge ``{v,u}``;
* **pattern (b)** -- a far edge ``{u, w}`` between two current neighbors that
  is *older* than both ``{v, u}`` and ``{v, w}``.

Together with the incident edges these patterns contain every triangle through
``v``, so the data structure answers triangle *membership* queries -- and, by
Corollary 1, k-clique membership queries for every ``k >= 3`` -- in ``O(1)``
amortized rounds.

Pattern (a) is learned exactly as in the robust 2-hop structure of Theorem 7:
every incident edge change is queued and announced (one item per round) to the
neighbors whose connecting edge is not newer than the announced edge.  Pattern
(b) edges cannot be learned that way (their announcement predates the edges
towards ``v``), so the algorithm adds the *mark (b)* hint mechanism of the
paper: when a node learns of an edge between two of its neighbors, it forwards
its own incident edges towards those neighbors, closing exactly the triangles
whose far edge is older than the newly announced edge.  Each announcement
triggers at most two hints per common neighbor, which keeps the amortized
round complexity constant.

Implementation notes (differences from a literal reading of the pseudocode)
----------------------------------------------------------------------------
* Local bookkeeping uses the same **per-endpoint claim** organisation as
  :class:`~repro.core.robust2hop.RobustTwoHopNode` (see that module's
  docstring): a far edge is known while at least one of (i) a pattern-(a)
  claim via an endpoint, or (ii) a pattern-(b) claim provided by the endpoint
  that sent the hint, survives.  This keeps FIFO per-endpoint semantics and
  makes stale deletion announcements harmless.
* Deletion announcements (mark (a) with a delete flag) are broadcast to *all*
  current neighbors rather than timestamp-filtered: a pattern-(b) edge is by
  definition older than the edges towards the node that knows it, so a
  filtered deletion would never reach that node and the dead edge would be
  retained forever.  The number of queue items and the per-message size are
  unchanged.
* The mark-(b) hint is sent towards *both* endpoints of the learned edge (the
  paper sends it only towards the endpoint whose connecting edge is newer).
  This drops the fragile imaginary-timestamp comparison from the hint trigger
  while keeping the count at ``O(1)`` hints per announcement, and makes the
  completeness argument a one-liner: for any triangle, the vertex opposite its
  newest edge receives that edge's announcement and hints its two incident
  edges to the other two vertices -- exactly the edges they might be missing.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import (
    Any,
    Deque,
    Dict,
    FrozenSet,
    Mapping,
    Optional,
    Sequence,
    Set,
    Union,
)

from ..simulator.events import Edge, canonical_edge
from ..simulator.messages import EdgeEventMessage, EdgeOp, Envelope, PatternMark
from ..simulator.node import NodeAlgorithm
from .queries import EdgeQuery, QueryResult, TriangleQuery

__all__ = ["TriangleMembershipNode"]


@dataclass
class _PatternAItem:
    """A pending mark-(a) announcement about an incident edge change."""

    edge: Edge
    op: EdgeOp
    timestamp: int


@dataclass
class _PatternBItem:
    """A pending mark-(b) hint: tell ``target`` about the incident ``edge``."""

    edge: Edge
    target: int


_QueueItem = Union[_PatternAItem, _PatternBItem]


@dataclass
class _Claims:
    """Why a far edge is currently believed to exist.

    ``via``: endpoints whose pattern-(a) announcement certifies the edge.
    ``hinted_by``: endpoints whose pattern-(b) hint certifies the edge.
    """

    via: Set[int]
    hinted_by: Set[int]

    def __bool__(self) -> bool:
        return bool(self.via or self.hinted_by)

    def size(self) -> int:
        return len(self.via) + len(self.hinted_by)


class TriangleMembershipNode(NodeAlgorithm):
    """Per-node algorithm of Theorem 1 (triangle membership listing).

    Query interface:

    * :class:`~repro.core.queries.TriangleQuery` -- is the given 3-set (which
      must contain this node) a triangle of the current graph?
    * :class:`~repro.core.queries.EdgeQuery` -- is the edge in the maintained
      temporal-pattern set ``T^{v,2}_i``?  (Used by tests and by the k-clique
      wrapper of Corollary 1.)
    """

    #: Whether mark-(b) hints are generated.  The ablation study (experiment
    #: E13) disables this to show that the robust 2-hop patterns alone are not
    #: enough for triangle *membership* listing.
    GENERATE_HINTS = True

    def __init__(self, node_id: int, n: int) -> None:
        super().__init__(node_id, n)
        #: Current neighbors mapped to the true insertion time of the edge.
        self.adj: Dict[int, int] = {}
        #: Far edges mapped to the claims that certify them.
        self.S: Dict[Edge, _Claims] = {}
        #: Pending announcements (marks (a) and (b)), drained one per round.
        self.Q: Deque[_QueueItem] = deque()
        #: Consistency flag ``C_v``.
        self.consistent: bool = True

    # ------------------------------------------------------------------ #
    # Round hooks
    # ------------------------------------------------------------------ #
    def on_topology_change(
        self, round_index: int, inserted: Sequence[int], deleted: Sequence[int]
    ) -> None:
        deleted_timestamps: Dict[int, int] = {}
        for u in deleted:
            deleted_timestamps[u] = self.adj.pop(u, -1)
        for u in deleted:
            self._drop_claims_involving(u)
            self.Q.append(
                _PatternAItem(
                    canonical_edge(self.node_id, u), EdgeOp.DELETE, deleted_timestamps[u]
                )
            )
        for u in inserted:
            edge_vu = canonical_edge(self.node_id, u)
            self.adj[u] = round_index
            self.Q.append(_PatternAItem(edge_vu, EdgeOp.INSERT, round_index))

    def compose_messages(self, round_index: int) -> Dict[int, Envelope]:
        # Theorem 1 piggybacks "IsEmpty = was the queue empty at the beginning
        # of the round", i.e. before this round's dequeue.  Reporting emptiness
        # conservatively is what lets a neighbor conclude, one round later,
        # that every hint derived from our queue has reached it.  Kept local
        # so composing with an empty queue is a strict no-op on state (the
        # quiescence contract the sparse engine and the state-fingerprint
        # identity gate rely on).
        queue_empty_at_send = not self.Q
        item: Optional[_QueueItem] = self.Q.popleft() if self.Q else None

        targets_with_payload: Dict[int, EdgeEventMessage] = {}
        if isinstance(item, _PatternAItem):
            for u, t_vu in self.adj.items():
                if item.op is EdgeOp.DELETE or item.timestamp >= t_vu:
                    targets_with_payload[u] = EdgeEventMessage(item.edge, item.op, PatternMark.A)
        elif isinstance(item, _PatternBItem):
            # The hint target may have stopped being a neighbor (or the hinted
            # edge may have been deleted) since the hint was enqueued; in that
            # case the hint is simply dropped.
            other = item.edge[0] if item.edge[1] == self.node_id else item.edge[1]
            if item.target in self.adj and other in self.adj:
                targets_with_payload[item.target] = EdgeEventMessage(
                    item.edge, EdgeOp.INSERT, PatternMark.B
                )

        outgoing: Dict[int, Envelope] = {}
        for u in self.adj:
            envelope = Envelope(
                payload=targets_with_payload.get(u),
                is_empty=queue_empty_at_send,
            )
            if not envelope.is_silent:
                outgoing[u] = envelope
        return outgoing

    def on_messages(self, round_index: int, received: Mapping[int, Envelope]) -> None:
        saw_nonempty_neighbor = False
        for sender, envelope in received.items():
            if not envelope.is_empty:
                saw_nonempty_neighbor = True
            message = envelope.payload
            if message is None:
                continue
            if not isinstance(message, EdgeEventMessage):
                raise TypeError(f"unexpected message type {type(message).__name__}")
            if message.pattern is PatternMark.A:
                self._apply_pattern_a(sender, message.edge, message.op)
            else:
                self._apply_pattern_b(sender, message.edge)
        self.consistent = (not self.Q) and (not saw_nonempty_neighbor)

    # ------------------------------------------------------------------ #
    # Message handlers (shared verbatim by the per-envelope path above and
    # the columnar batched path below -- one implementation, one behavior)
    # ------------------------------------------------------------------ #
    def _apply_pattern_a(self, sender: int, edge: Edge, op: EdgeOp) -> None:
        if sender not in edge:
            # Mark-(a) announcements always concern an edge incident to the sender.
            return
        if self.node_id in edge:
            # Incident edges are tracked authoritatively from the indications,
            # but an announcement of an edge between two of our neighbors from
            # the *other* endpoint never lands here (v is in the edge), so
            # nothing else to do.
            return
        if op is EdgeOp.DELETE:
            claims = self.S.get(edge)
            if claims is not None:
                claims.via.discard(sender)
                claims.hinted_by.discard(sender)
                if not claims:
                    del self.S[edge]
            return
        if sender not in self.adj:
            # The connecting edge disappeared within the round; drop the item.
            return
        # Pattern-(a) claim via the sender.
        claims = self.S.setdefault(edge, _Claims(set(), set()))
        claims.via.add(sender)
        # Mark-(b) hint generation: the announced edge connects two of our
        # neighbors, so each of them might be missing our edge towards the
        # other -- forward both incident edges (at most two O(log n)-bit items).
        if not self.GENERATE_HINTS:
            return
        x, y = edge
        if x in self.adj and y in self.adj:
            self.Q.append(_PatternBItem(canonical_edge(self.node_id, x), target=y))
            self.Q.append(_PatternBItem(canonical_edge(self.node_id, y), target=x))

    def _apply_pattern_b(self, sender: int, edge: Edge) -> None:
        if sender not in edge or self.node_id in edge:
            return
        x, y = edge
        # Only accept the hint if both endpoints of the hinted edge are current
        # neighbors (otherwise the hinted edge is not a Figure 2 pattern for us).
        if x not in self.adj or y not in self.adj:
            return
        claims = self.S.setdefault(edge, _Claims(set(), set()))
        claims.hinted_by.add(sender)

    # ------------------------------------------------------------------ #
    # Columnar port (ColumnarProtocol)
    # ------------------------------------------------------------------ #
    @classmethod
    def columnar_compose(cls, nodes, senders, round_index, buf) -> None:
        """Batched :meth:`compose_messages`: append rows, skip envelopes.

        Mirrors the per-node method exactly: a node with an empty queue would
        compose only silent envelopes, so it contributes no rows; a node with
        a non-empty queue dequeues one item and reaches *every* neighbor with
        ``is_empty=False`` (payload columns ``None`` where the per-node path
        would send a payload-free envelope), in ``adj`` iteration order.
        """
        ap_s = buf.senders.append
        ap_t = buf.targets.append
        ap_e = buf.edges.append
        ap_o = buf.ops.append
        ap_p = buf.patterns.append
        ap_f = buf.empty_flags.append
        rows_before = len(buf.senders)
        payload_rows = 0
        mark_a = PatternMark.A
        mark_b = PatternMark.B
        op_delete = EdgeOp.DELETE
        op_insert = EdgeOp.INSERT
        for v in senders:
            node = nodes[v]
            q = node.Q
            if not q:
                continue
            item = q.popleft()
            adj = node.adj
            if type(item) is _PatternAItem:
                edge, op, ts = item.edge, item.op, item.timestamp
                if op is op_delete:
                    for u in adj:
                        ap_s(v); ap_t(u); ap_e(edge); ap_o(op); ap_p(mark_a); ap_f(False)
                    payload_rows += len(adj)
                else:
                    for u, t_vu in adj.items():
                        ap_s(v); ap_t(u); ap_f(False)
                        if ts >= t_vu:
                            ap_e(edge); ap_o(op); ap_p(mark_a)
                            payload_rows += 1
                        else:
                            ap_e(None); ap_o(None); ap_p(None)
            else:
                edge = item.edge
                other = edge[0] if edge[1] == v else edge[1]
                target = item.target if (item.target in adj and other in adj) else None
                for u in adj:
                    ap_s(v); ap_t(u); ap_f(False)
                    if u == target:
                        ap_e(edge); ap_o(op_insert); ap_p(mark_b)
                        payload_rows += 1
                    else:
                        ap_e(None); ap_o(None); ap_p(None)
        buf.payload_rows += payload_rows
        # Every triangle row carries is_empty=False (the sender's queue was
        # non-empty at send), so every row costs its one control bit.
        buf.flag_rows += len(buf.senders) - rows_before
        buf.payload_flag_rows += payload_rows

    @classmethod
    def columnar_deliver(cls, nodes, round_index, receivers, buf, groups) -> None:
        """Batched :meth:`on_messages` over grouped, non-dropped rows."""
        edges = buf.edges
        flags = buf.empty_flags
        row_senders = buf.senders
        patterns = buf.patterns
        ops = buf.ops
        mark_a = PatternMark.A
        for v in receivers:
            node = nodes[v]
            rows = groups.get(v)
            saw_nonempty = False
            if rows:
                for i in rows:
                    if not flags[i]:
                        saw_nonempty = True
                    edge = edges[i]
                    if edge is None:
                        continue
                    if patterns[i] is mark_a:
                        node._apply_pattern_a(row_senders[i], edge, ops[i])
                    else:
                        node._apply_pattern_b(row_senders[i], edge)
            node.consistent = (not node.Q) and (not saw_nonempty)

    # ------------------------------------------------------------------ #
    # Claim bookkeeping
    # ------------------------------------------------------------------ #
    def _drop_claims_involving(self, endpoint: int) -> None:
        """Drop every claim that relied on the (now deleted) edge towards ``endpoint``."""
        for edge in [e for e in self.S if endpoint in e]:
            claims = self.S[edge]
            # Knowledge announced over the vanished edge can no longer be
            # certified ...
            claims.via.discard(endpoint)
            # ... and a pattern-(b) claim needs *both* endpoints of the far
            # edge to be neighbors, so it is invalidated outright.
            claims.hinted_by.clear()
            if not claims:
                del self.S[edge]

    # ------------------------------------------------------------------ #
    # Query window
    # ------------------------------------------------------------------ #
    def is_consistent(self) -> bool:
        return self.consistent

    def is_quiescent(self) -> bool:
        # Empty queue => only silent envelopes would be composed; consistent
        # => an empty receive leaves the verdict at True.  Skipping is a no-op.
        return self.consistent and not self.Q

    def knows_edge(self, u: int, w: int) -> bool:
        """Whether the edge ``{u, w}`` is currently known (incident or claimed)."""
        edge = canonical_edge(u, w)
        if self.node_id in edge:
            other = edge[0] if edge[1] == self.node_id else edge[1]
            return other in self.adj
        return edge in self.S

    def query(self, query: Any) -> QueryResult:
        """Answer a :class:`TriangleQuery` or an :class:`EdgeQuery`."""
        if isinstance(query, TriangleQuery):
            if self.node_id not in query.nodes:
                raise ValueError(
                    f"node {self.node_id} was queried for a triangle not containing it: {query.nodes}"
                )
            if not self.consistent:
                return QueryResult.INCONSISTENT
            others = sorted(query.nodes - {self.node_id})
            u, w = others
            return QueryResult.of(
                u in self.adj and w in self.adj and self.knows_edge(u, w)
            )
        if isinstance(query, EdgeQuery):
            if not self.consistent:
                return QueryResult.INCONSISTENT
            return QueryResult.of(self.knows_edge(query.u, query.w))
        raise TypeError(
            f"TriangleMembershipNode answers TriangleQuery/EdgeQuery, got {type(query).__name__}"
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def known_edges(self) -> FrozenSet[Edge]:
        """The known edge set (equals ``T^{v,2}_i`` when consistent)."""
        incident = frozenset(canonical_edge(self.node_id, u) for u in self.adj)
        return frozenset(self.S) | incident

    def known_triangles(self) -> Set[FrozenSet[int]]:
        """All triangles through this node according to the local state."""
        triangles: Set[FrozenSet[int]] = set()
        neighbors = sorted(self.adj)
        for i, u in enumerate(neighbors):
            for w in neighbors[i + 1 :]:
                if canonical_edge(u, w) in self.S:
                    triangles.add(frozenset({self.node_id, u, w}))
        return triangles

    def local_state_size(self) -> int:
        return sum(c.size() for c in self.S.values()) + len(self.Q) + len(self.adj)
