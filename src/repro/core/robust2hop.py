"""The robust 2-hop neighborhood data structure (Theorem 7, Appendix A).

A node cannot afford to maintain its entire 2-hop neighborhood (that is
2-hop neighborhood *listing*, which Corollary 2 shows requires a near-linear
amortized number of rounds).  The paper therefore defines the **robust 2-hop
neighborhood** ``R^{v,2}_i``: the edge ``e = {u, w}`` is *(v, i)-robust* if

* ``v`` is one of its endpoints, or
* ``t_e >= t_{v,u}`` and ``{v,u}`` exists in ``G_i``, or
* ``t_e >= t_{v,w}`` and ``{v,w}`` exists in ``G_i``,

where ``t_e`` is the latest round in which ``e`` was inserted.  Theorem 7
shows a deterministic distributed dynamic data structure maintaining exactly
this set with ``O(1)`` amortized round complexity.

Implementation notes (bookkeeping)
----------------------------------
The paper's algorithm keeps, per known edge, a single *imaginary* timestamp
``t'_e`` (the insertion time of the edge over which the announcement arrived)
and prunes edges by comparing imaginary timestamps on deletions.  We keep the
exact same messages and the same pruning *rules*, but organise the local
bookkeeping as **per-endpoint support claims**: node ``v`` records, for every
far edge ``e = {u, w}``, through which of its endpoints it currently knows
the edge.

* an announcement of ``e`` received from endpoint ``s`` (which the sender only
  emits towards neighbors whose connecting edge is not newer than ``e``)
  creates the claim *via s*;
* a deletion announcement of ``e`` received from ``s`` removes the claim
  *via s*;
* the deletion of the incident edge ``{v, s}`` removes every claim *via s*
  (this is the paper's step-2 cleanup: knowledge obtained through a vanished
  edge cannot be trusted anymore);
* the edge is known while at least one claim remains.

Because announcements from one endpoint arrive in FIFO order, a claim always
reflects that endpoint's most recent announcement, which makes the structure
immune to "stale" deletion announcements from one endpoint erasing fresh
knowledge obtained through the other -- the interleaving that a literal
single-timestamp reading mishandles.  When the node reports consistency the
claim set coincides with ``R^{v,2}_i`` (each claim *via s* certifies exactly
``t_e >= t_{v,s}`` with ``{v,s}`` present, and conversely every robust edge
has received its announcement over a continuously-present connecting edge).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, FrozenSet, Mapping, Optional, Sequence, Set

from ..simulator.events import Edge, canonical_edge
from ..simulator.messages import EdgeEventMessage, EdgeOp, Envelope, PatternMark
from ..simulator.node import NodeAlgorithm
from .queries import EdgeQuery, QueryResult

__all__ = ["RobustTwoHopNode"]


@dataclass
class _QueueItem:
    """A pending announcement: an incident edge change plus its timestamp.

    ``timestamp`` is the true insertion time of the edge at enqueue time (for
    deletion items, the insertion time the edge had when it was deleted).  It
    is only used locally to decide which neighbors receive the item and is
    never transmitted.
    """

    edge: Edge
    op: EdgeOp
    timestamp: int


class RobustTwoHopNode(NodeAlgorithm):
    """Per-node algorithm of Theorem 7 (robust 2-hop neighborhood listing).

    Query interface: :class:`~repro.core.queries.EdgeQuery`, answered TRUE iff
    the edge is currently known.  When the node reports consistency, the known
    set equals the robust 2-hop neighborhood ``R^{v,2}_i``.
    """

    def __init__(self, node_id: int, n: int) -> None:
        super().__init__(node_id, n)
        #: Current neighbors and the true insertion time of the connecting edge.
        self.adj: Dict[int, int] = {}
        #: Far edges mapped to the set of endpoints through which they are known.
        self.S: Dict[Edge, Set[int]] = {}
        #: Pending announcements, drained one per round.
        self.Q: Deque[_QueueItem] = deque()
        #: Consistency flag ``C_v``.
        self.consistent: bool = True

    # ------------------------------------------------------------------ #
    # Round hooks
    # ------------------------------------------------------------------ #
    def on_topology_change(
        self, round_index: int, inserted: Sequence[int], deleted: Sequence[int]
    ) -> None:
        deleted_timestamps: Dict[int, int] = {}
        for u in deleted:
            deleted_timestamps[u] = self.adj.pop(u, -1)
        for u in deleted:
            # Step-2 cleanup: knowledge obtained through the vanished edge
            # {v, u} can no longer be certified -- drop every claim via u.
            self._drop_claims_via(u)
            self.Q.append(
                _QueueItem(canonical_edge(self.node_id, u), EdgeOp.DELETE, deleted_timestamps[u])
            )
        for u in inserted:
            self.adj[u] = round_index
            self.Q.append(
                _QueueItem(canonical_edge(self.node_id, u), EdgeOp.INSERT, round_index)
            )

    def compose_messages(self, round_index: int) -> Dict[int, Envelope]:
        payload: Optional[_QueueItem] = self.Q.popleft() if self.Q else None
        # Theorem 7 piggybacks "IsEmpty = is the queue empty *now*", i.e. after
        # the dequeue of this round.  Kept local so composing with an empty
        # queue stays a strict no-op on state (the quiescence contract).
        queue_empty_at_send = not self.Q
        outgoing: Dict[int, Envelope] = {}
        for u, t_vu in self.adj.items():
            message = None
            if payload is not None and payload.timestamp >= t_vu:
                message = EdgeEventMessage(payload.edge, payload.op, PatternMark.A)
            envelope = Envelope(payload=message, is_empty=queue_empty_at_send)
            if not envelope.is_silent:
                outgoing[u] = envelope
        return outgoing

    def on_messages(self, round_index: int, received: Mapping[int, Envelope]) -> None:
        saw_nonempty_neighbor = False
        for sender, envelope in received.items():
            if not envelope.is_empty:
                saw_nonempty_neighbor = True
            message = envelope.payload
            if message is None:
                continue
            if not isinstance(message, EdgeEventMessage):
                raise TypeError(f"unexpected message type {type(message).__name__}")
            self._apply_remote_event(sender, message.edge, message.op)
        # Consistency: the queue must be empty and no neighbor may still have
        # pending items.
        self.consistent = (not self.Q) and (not saw_nonempty_neighbor)

    def _apply_remote_event(self, sender: int, edge: Edge, op: EdgeOp) -> None:
        # Shared verbatim by the per-envelope path above and the columnar
        # batched path below -- one implementation, one behavior.
        if self.node_id in edge:
            # The node's own incident edges are tracked authoritatively from
            # its topology indications; remote echoes are ignored.
            return
        if sender not in edge:
            # Announcements always concern an edge incident to the sender.
            return
        if op is EdgeOp.INSERT:
            if sender not in self.adj:
                # The connecting edge disappeared within this round; without it
                # the announcement certifies nothing and is dropped (the later
                # cleanup / announcements keep the set correct).
                return
            self.S.setdefault(edge, set()).add(sender)
        else:
            self._drop_claim(edge, sender)

    # ------------------------------------------------------------------ #
    # Columnar port (ColumnarProtocol)
    # ------------------------------------------------------------------ #
    @classmethod
    def columnar_compose(cls, nodes, senders, round_index, buf) -> None:
        """Batched :meth:`compose_messages`: append rows, skip envelopes.

        Mirrors the per-node method exactly.  A node with an empty queue is
        silent everywhere and contributes no rows.  Otherwise one item is
        dequeued; Theorem 7 reports "IsEmpty = empty *after* the dequeue", so
        when the queue drains this round only the timestamp-qualifying
        neighbors get a (payload, ``is_empty=True``) row and everyone else
        sees silence, while a still-non-empty queue reaches every neighbor
        with ``is_empty=False`` (payload columns ``None`` for non-qualifying
        neighbors), in ``adj`` iteration order.
        """
        ap_s = buf.senders.append
        ap_t = buf.targets.append
        ap_e = buf.edges.append
        ap_o = buf.ops.append
        ap_p = buf.patterns.append
        ap_f = buf.empty_flags.append
        payload_rows = 0
        flag_rows = 0
        payload_flag_rows = 0
        mark_a = PatternMark.A
        for v in senders:
            node = nodes[v]
            q = node.Q
            if not q:
                continue
            item = q.popleft()
            empty_after = not q
            edge, op, ts = item.edge, item.op, item.timestamp
            if empty_after:
                for u, t_vu in node.adj.items():
                    if ts >= t_vu:
                        ap_s(v); ap_t(u); ap_e(edge); ap_o(op); ap_p(mark_a); ap_f(True)
                        payload_rows += 1
            else:
                for u, t_vu in node.adj.items():
                    ap_s(v); ap_t(u); ap_f(False)
                    flag_rows += 1
                    if ts >= t_vu:
                        ap_e(edge); ap_o(op); ap_p(mark_a)
                        payload_rows += 1
                        payload_flag_rows += 1
                    else:
                        ap_e(None); ap_o(None); ap_p(None)
        buf.payload_rows += payload_rows
        buf.flag_rows += flag_rows
        buf.payload_flag_rows += payload_flag_rows

    @classmethod
    def columnar_deliver(cls, nodes, round_index, receivers, buf, groups) -> None:
        """Batched :meth:`on_messages` over grouped, non-dropped rows."""
        edges = buf.edges
        flags = buf.empty_flags
        row_senders = buf.senders
        ops = buf.ops
        for v in receivers:
            node = nodes[v]
            rows = groups.get(v)
            saw_nonempty = False
            if rows:
                for i in rows:
                    if not flags[i]:
                        saw_nonempty = True
                    edge = edges[i]
                    if edge is None:
                        continue
                    node._apply_remote_event(row_senders[i], edge, ops[i])
            node.consistent = (not node.Q) and (not saw_nonempty)

    # ------------------------------------------------------------------ #
    # Claim bookkeeping
    # ------------------------------------------------------------------ #
    def _drop_claim(self, edge: Edge, endpoint: int) -> None:
        claims = self.S.get(edge)
        if claims is None:
            return
        claims.discard(endpoint)
        if not claims:
            del self.S[edge]

    def _drop_claims_via(self, endpoint: int) -> None:
        for edge in [e for e in self.S if endpoint in e]:
            self._drop_claim(edge, endpoint)

    # ------------------------------------------------------------------ #
    # Query window
    # ------------------------------------------------------------------ #
    def is_consistent(self) -> bool:
        return self.consistent

    def is_quiescent(self) -> bool:
        # With an empty queue the node composes only silent envelopes, and a
        # consistent node's verdict is unchanged by an empty receive -- so
        # skipping its hooks is a no-op until an indication or message arrives.
        return self.consistent and not self.Q

    def knows_edge(self, u: int, w: int) -> bool:
        """Whether the edge ``{u, w}`` is currently known (incident or claimed)."""
        edge = canonical_edge(u, w)
        if self.node_id in edge:
            other = edge[0] if edge[1] == self.node_id else edge[1]
            return other in self.adj
        return edge in self.S

    def query(self, query: Any) -> QueryResult:
        """Answer an :class:`EdgeQuery` about the robust 2-hop neighborhood."""
        if not isinstance(query, EdgeQuery):
            raise TypeError(f"RobustTwoHopNode answers EdgeQuery, got {type(query).__name__}")
        if not self.consistent:
            return QueryResult.INCONSISTENT
        return QueryResult.of(self.knows_edge(query.u, query.w))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def known_edges(self) -> FrozenSet[Edge]:
        """All edges currently known: incident edges plus claimed far edges."""
        incident = frozenset(canonical_edge(self.node_id, u) for u in self.adj)
        return frozenset(self.S) | incident

    def local_state_size(self) -> int:
        return sum(len(c) for c in self.S.values()) + len(self.Q) + len(self.adj)
