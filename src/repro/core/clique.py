"""k-clique membership listing for any k >= 3 (Corollary 1).

Triangle *membership* listing is a very strong guarantee: when consistent,
node ``v`` knows, for every pair of its neighbors, whether the far edge
exists.  For a k-clique ``H`` containing ``v``, every pair ``{a, b}`` of the
other members forms a triangle ``{v, a, b}`` with ``v``, so knowing all
triangles through ``v`` means knowing all edges of ``H``.  Consequently the
triangle data structure of Theorem 1 answers k-clique membership queries for
every ``k >= 3`` with no additional communication -- which is exactly
Corollary 1 of the paper.

:class:`CliqueMembershipNode` is therefore a thin query wrapper around
:class:`~repro.core.triangle.TriangleMembershipNode`.
"""

from __future__ import annotations

from itertools import combinations
from typing import Any, FrozenSet, Iterable, List, Set

from ..simulator.events import canonical_edge
from .queries import CliqueQuery, QueryResult, TriangleQuery
from .triangle import TriangleMembershipNode

__all__ = ["CliqueMembershipNode"]


class CliqueMembershipNode(TriangleMembershipNode):
    """Per-node algorithm of Corollary 1 (k-clique membership listing).

    Query interface: :class:`~repro.core.queries.CliqueQuery` (any ``k >= 3``)
    in addition to everything :class:`TriangleMembershipNode` answers.
    """

    def query(self, query: Any) -> QueryResult:
        if isinstance(query, CliqueQuery):
            if self.node_id not in query.nodes:
                raise ValueError(
                    f"node {self.node_id} was queried for a clique not containing it: {query.nodes}"
                )
            if not self.consistent:
                return QueryResult.INCONSISTENT
            return QueryResult.of(self._knows_clique(query.nodes))
        return super().query(query)

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _knows_clique(self, nodes: FrozenSet[int]) -> bool:
        """Whether every pair of ``nodes`` is an edge according to local state."""
        others = sorted(nodes - {self.node_id})
        # All other members must be neighbors of v ...
        if any(u not in self.adj for u in others):
            return False
        # ... and every pair of them must be a known far edge.
        return all(
            canonical_edge(a, b) in self.S for a, b in combinations(others, 2)
        )

    def known_cliques(self, k: int) -> Set[FrozenSet[int]]:
        """Enumerate all k-cliques through this node according to local state.

        This is a convenience for examples and tests; it is *not* part of the
        query interface (queries are membership checks of a given set).  The
        enumeration is exponential in ``k`` in the worst case, as is the
        output size.
        """
        if k < 3:
            raise ValueError("k must be at least 3")
        cliques: Set[FrozenSet[int]] = set()
        neighbors: List[int] = sorted(self.adj)
        for combo in combinations(neighbors, k - 1):
            candidate = frozenset(combo) | {self.node_id}
            if self._knows_clique(candidate):
                cliques.add(candidate)
        return cliques
