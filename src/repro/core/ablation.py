"""Ablated variants of the paper's data structures, for the design-choice study.

The paper's triangle membership structure (Theorem 1) combines two mechanisms:

* the robust 2-hop neighborhood of Theorem 7 (pattern (a) of Figure 2), and
* the mark-(b) hint mechanism that fills in the far edges which are *older*
  than both incident edges (pattern (b) of Figure 2).

Experiment E13 ("ablation") quantifies what each mechanism buys by running a
variant with the hints switched off against the same workloads:

* :class:`HintFreeTriangleNode` -- Theorem 7's knowledge only.  It maintains
  exactly the robust 2-hop neighborhood, so it *misses* every triangle whose
  far edge predates both of the queried node's incident edges (roughly one
  insertion order in three); the full structure catches them all.

(The complementary ablation -- keeping hints but dropping the insertion-time
bookkeeping -- is the Section 1.3 strawman,
:class:`~repro.core.naive.NaiveForwardingNode`, which is benchmarked by
experiment E10.)
"""

from __future__ import annotations

from .triangle import TriangleMembershipNode

__all__ = ["HintFreeTriangleNode"]


class HintFreeTriangleNode(TriangleMembershipNode):
    """Theorem 1's structure with the mark-(b) hint mechanism disabled.

    Correct for pattern-(a) edges (it is essentially the Theorem 7 structure
    answering triangle queries) but incomplete: far edges older than both
    incident edges are never learned, so triangle membership queries can
    wrongly return FALSE while the node reports consistency.
    """

    GENERATE_HINTS = False
