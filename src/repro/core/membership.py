"""Generic subgraph-membership query machinery (Theorem 2 framing).

Theorem 2 of the paper shows that the only ``k``-vertex graph ``H`` whose
*membership listing* can be maintained with constant amortized rounds is the
``k``-clique: for every other ``H`` the problem requires ``Ω(n / log n)``
amortized rounds.  To exercise that landscape we need a way to talk about an
arbitrary pattern graph ``H`` and about queries of the form "is this labelled
occurrence of ``H`` present in the network?".

* :class:`HPattern` describes the pattern graph on vertices ``0..k-1`` and
  provides the structural helpers the lower-bound adversary needs
  (cliqueness check, a non-adjacent vertex pair, the neighborhoods ``N_a`` and
  ``N_b`` of that pair).
* :class:`HMembershipQuery` maps the pattern vertices to concrete network
  nodes and enumerates the edges the occurrence would need.

The fast algorithms of the paper only answer these queries for cliques (via
:class:`~repro.core.clique.CliqueMembershipNode`); the Lemma 1 baseline
(:class:`~repro.core.twohop_listing.TwoHopListingNode`) answers them for any
pattern of radius 1 around the queried node, at near-linear amortized cost --
which is exactly the trade-off Theorem 2 and Remark 2 describe.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..simulator.events import Edge, canonical_edge

__all__ = ["HPattern", "HMembershipQuery", "PATTERNS"]


@dataclass(frozen=True)
class HPattern:
    """A pattern graph ``H`` on vertices ``0 .. k-1``.

    Attributes:
        name: human-readable name used in benchmark tables.
        k: number of pattern vertices.
        edges: pattern edges in canonical form.
    """

    name: str
    k: int
    edges: FrozenSet[Tuple[int, int]]

    def __post_init__(self) -> None:
        for a, b in self.edges:
            if not (0 <= a < self.k and 0 <= b < self.k) or a >= b:
                raise ValueError(f"invalid pattern edge ({a}, {b}) for k={self.k}")

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edges(cls, name: str, k: int, edges: Iterable[Tuple[int, int]]) -> "HPattern":
        return cls(name=name, k=k, edges=frozenset(canonical_edge(a, b) for a, b in edges))

    @classmethod
    def clique(cls, k: int) -> "HPattern":
        """The k-clique pattern (the only pattern with fast membership listing)."""
        return cls.from_edges(f"K{k}", k, combinations(range(k), 2))

    @classmethod
    def path(cls, k: int) -> "HPattern":
        """The path on ``k`` vertices ``0 - 1 - ... - k-1``."""
        return cls.from_edges(f"P{k}", k, ((i, i + 1) for i in range(k - 1)))

    @classmethod
    def cycle(cls, k: int) -> "HPattern":
        """The cycle on ``k`` vertices."""
        return cls.from_edges(f"C{k}", k, [(i, (i + 1) % k) for i in range(k)])

    @classmethod
    def diamond(cls) -> "HPattern":
        """K4 minus one edge (a 4-vertex non-clique with diameter 2)."""
        return cls.from_edges("diamond", 4, [(0, 1), (0, 2), (0, 3), (1, 2), (2, 3)])

    # ------------------------------------------------------------------ #
    # Structural queries
    # ------------------------------------------------------------------ #
    @property
    def is_clique(self) -> bool:
        """Whether the pattern is the complete graph on ``k`` vertices."""
        return len(self.edges) == self.k * (self.k - 1) // 2

    def degree(self, vertex: int) -> int:
        return sum(1 for e in self.edges if vertex in e)

    def neighbors(self, vertex: int) -> FrozenSet[int]:
        """Pattern neighbors of ``vertex``."""
        out = set()
        for a, b in self.edges:
            if a == vertex:
                out.add(b)
            elif b == vertex:
                out.add(a)
        return frozenset(out)

    def non_adjacent_pair(self) -> Optional[Tuple[int, int]]:
        """A pair of non-adjacent pattern vertices, or ``None`` for cliques.

        This is the pair ``(a, b)`` the Theorem 2 adversary toggles the new
        node's attachment between (connecting it like ``a``, then like ``b``).
        """
        for a, b in combinations(range(self.k), 2):
            if canonical_edge(a, b) not in self.edges:
                return (a, b)
        return None

    def has_edge(self, a: int, b: int) -> bool:
        return canonical_edge(a, b) in self.edges


@dataclass(frozen=True)
class HMembershipQuery:
    """Is the labelled occurrence ``assignment`` of ``pattern`` present?

    ``assignment`` maps pattern vertex ``j`` to the network node
    ``assignment[j]``; the occurrence is present iff every pattern edge maps
    to an existing network edge.  The queried node must be one of the assigned
    nodes (membership listing is about occurrences *containing* the queried
    node).
    """

    pattern: HPattern
    assignment: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.assignment) != self.pattern.k:
            raise ValueError(
                f"assignment must map all {self.pattern.k} pattern vertices, "
                f"got {len(self.assignment)}"
            )
        if len(set(self.assignment)) != len(self.assignment):
            raise ValueError("assignment must be injective")

    def mapped_edges(self) -> List[Edge]:
        """The network edges the occurrence requires."""
        return [
            canonical_edge(self.assignment[a], self.assignment[b])
            for a, b in self.pattern.edges
        ]

    @property
    def nodes(self) -> FrozenSet[int]:
        return frozenset(self.assignment)


#: The pattern zoo used by the benchmark harness and the Theorem 2 experiments.
PATTERNS: Dict[str, HPattern] = {
    "P3": HPattern.path(3),
    "P4": HPattern.path(4),
    "C4": HPattern.cycle(4),
    "C5": HPattern.cycle(5),
    "diamond": HPattern.diamond(),
    "K3": HPattern.clique(3),
    "K4": HPattern.clique(4),
    "K5": HPattern.clique(5),
}
