"""Baseline algorithms that the paper argues against.

Two strawmen appear in the paper's discussion and both are implemented here
so that the benchmarks can demonstrate *why* the robust-neighborhood
machinery is necessary:

* :class:`NaiveForwardingNode` -- the timestamp-free algorithm sketched in
  Section 1.3: every node forwards its incident edge changes to its neighbors
  and keeps whatever it was told.  Under the flickering adversary
  (:mod:`repro.adversary.flicker`) this algorithm reports itself consistent
  while believing in an edge that was deleted, i.e. it is *incorrect* -- which
  experiment E10 reproduces.
* :class:`FullBroadcastNode` -- the unbounded-bandwidth algorithm mentioned at
  the start of Section 2 ("this would be a trivial task if large messages were
  available"): every node sends its entire neighborhood to every neighbor
  after each change.  It is correct (up to one round of staleness) but each
  message carries ``Θ(n)`` bits; running it with a non-strict bandwidth policy
  lets benchmarks report by how much it violates the CONGEST budget.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, FrozenSet, Mapping, Sequence, Set

from ..simulator.events import Edge, canonical_edge
from ..simulator.messages import (
    EdgeEventMessage,
    EdgeOp,
    Envelope,
    PatternMark,
    SnapshotChunkMessage,
)
from ..simulator.node import NodeAlgorithm
from .queries import EdgeQuery, QueryResult, TriangleQuery

__all__ = ["NaiveForwardingNode", "FullBroadcastNode"]


@dataclass
class _PendingEvent:
    edge: Edge
    op: EdgeOp


class NaiveForwardingNode(NodeAlgorithm):
    """The timestamp-free forwarding strawman of Section 1.3.

    Each node queues its incident edge changes and forwards one per round to
    all neighbors; received announcements are applied verbatim.  Without
    timestamps there is no way to notice that a far edge's deletion
    announcement was missed while the connecting edges flickered, so the
    algorithm can stay *wrong forever* while claiming consistency.
    """

    def __init__(self, node_id: int, n: int) -> None:
        super().__init__(node_id, n)
        self.adj: Set[int] = set()
        #: Believed far edges (no timestamps -- that is the flaw).
        self.S: Set[Edge] = set()
        self.Q: Deque[_PendingEvent] = deque()
        self.consistent: bool = True

    def on_topology_change(
        self, round_index: int, inserted: Sequence[int], deleted: Sequence[int]
    ) -> None:
        for u in deleted:
            self.adj.discard(u)
            self.S.discard(canonical_edge(self.node_id, u))
            self.Q.append(_PendingEvent(canonical_edge(self.node_id, u), EdgeOp.DELETE))
        for u in inserted:
            self.adj.add(u)
            self.S.add(canonical_edge(self.node_id, u))
            self.Q.append(_PendingEvent(canonical_edge(self.node_id, u), EdgeOp.INSERT))

    def compose_messages(self, round_index: int) -> Dict[int, Envelope]:
        item = self.Q.popleft() if self.Q else None
        is_empty = not self.Q
        outgoing: Dict[int, Envelope] = {}
        for u in self.adj:
            payload = (
                EdgeEventMessage(item.edge, item.op, PatternMark.A) if item else None
            )
            envelope = Envelope(payload=payload, is_empty=is_empty)
            if not envelope.is_silent:
                outgoing[u] = envelope
        return outgoing

    def on_messages(self, round_index: int, received: Mapping[int, Envelope]) -> None:
        saw_nonempty = False
        for _, envelope in received.items():
            if not envelope.is_empty:
                saw_nonempty = True
            message = envelope.payload
            if message is None or not isinstance(message, EdgeEventMessage):
                continue
            if self.node_id in message.edge:
                continue
            if message.op is EdgeOp.INSERT:
                self.S.add(message.edge)
            else:
                self.S.discard(message.edge)
        self.consistent = (not self.Q) and (not saw_nonempty)

    def is_consistent(self) -> bool:
        return self.consistent

    def is_quiescent(self) -> bool:
        # Same shape as the paper's structures: empty queue and a consistent
        # verdict mean the hooks would be no-ops until new input arrives.
        return self.consistent and not self.Q

    def knows_edge(self, u: int, w: int) -> bool:
        """Whether the edge ``{u, w}`` is believed to exist (incident or heard of)."""
        edge = canonical_edge(u, w)
        if self.node_id in edge:
            other = edge[0] if edge[1] == self.node_id else edge[1]
            return other in self.adj
        return edge in self.S

    def query(self, query: Any) -> QueryResult:
        if isinstance(query, TriangleQuery):
            if not self.consistent:
                return QueryResult.INCONSISTENT
            u, w = sorted(query.nodes - {self.node_id})
            return QueryResult.of(
                u in self.adj and w in self.adj and canonical_edge(u, w) in self.S
            )
        if isinstance(query, EdgeQuery):
            if not self.consistent:
                return QueryResult.INCONSISTENT
            edge = query.edge
            if self.node_id in edge:
                other = edge[0] if edge[1] == self.node_id else edge[1]
                return QueryResult.of(other in self.adj)
            return QueryResult.of(edge in self.S)
        raise TypeError(f"NaiveForwardingNode does not answer {type(query).__name__}")

    def known_edges(self) -> FrozenSet[Edge]:
        return frozenset(self.S)

    def local_state_size(self) -> int:
        return len(self.S) + len(self.Q) + len(self.adj)


class FullBroadcastNode(NodeAlgorithm):
    """The unbounded-bandwidth strawman: ship the whole neighborhood every change.

    After any incident change the node broadcasts its full neighborhood (an
    ``n``-bit snapshot in a single message) to every neighbor.  This keeps the
    2-hop view correct within one round but each message costs ``Θ(n)`` bits;
    it must be run with ``strict_bandwidth=False`` and exists so experiments
    can quantify the bandwidth the fast algorithms avoid.
    """

    def __init__(self, node_id: int, n: int) -> None:
        super().__init__(node_id, n)
        self.adj: Set[int] = set()
        self.view: Dict[int, Set[int]] = {}
        self._dirty = False
        self._epoch = 0

    def on_topology_change(
        self, round_index: int, inserted: Sequence[int], deleted: Sequence[int]
    ) -> None:
        for u in deleted:
            self.adj.discard(u)
            self.view.pop(u, None)
        for u in inserted:
            self.adj.add(u)
            self.view.setdefault(u, set())
        if inserted or deleted:
            self._dirty = True

    def compose_messages(self, round_index: int) -> Dict[int, Envelope]:
        if not self._dirty or not self.adj:
            self._dirty = False
            return {}
        self._dirty = False
        self._epoch += 1
        snapshot = SnapshotChunkMessage(
            owner=self.node_id,
            epoch=self._epoch,
            chunk_index=0,
            total_chunks=1,
            members=tuple(sorted(self.adj)),
            chunk_bits=self.n,
        )
        return {
            u: Envelope(payload=snapshot, is_empty=True) for u in self.adj
        }

    def on_messages(self, round_index: int, received: Mapping[int, Envelope]) -> None:
        for sender, envelope in received.items():
            message = envelope.payload
            if isinstance(message, SnapshotChunkMessage) and sender in self.adj:
                self.view[sender] = set(message.members)

    def is_consistent(self) -> bool:
        # The broadcast baseline never declares inconsistency; its answers are
        # correct up to the one-round staleness inherent to the model.
        return True

    def is_quiescent(self) -> bool:
        # Once the pending snapshot broadcast is out the node has nothing to
        # send and ignores empty receives.
        return not self._dirty

    def query(self, query: Any) -> QueryResult:
        if isinstance(query, (EdgeQuery, TriangleQuery)):
            if isinstance(query, TriangleQuery):
                u, w = sorted(query.nodes - {self.node_id})
            else:
                u, w = query.u, query.w
            edge = canonical_edge(u, w)
            if self.node_id in edge:
                other = edge[0] if edge[1] == self.node_id else edge[1]
                return QueryResult.of(other in self.adj)
            known = (u in self.adj and w in self.view.get(u, ())) or (
                w in self.adj and u in self.view.get(w, ())
            )
            if isinstance(query, TriangleQuery):
                known = known and u in self.adj and w in self.adj
            return QueryResult.of(known)
        raise TypeError(f"FullBroadcastNode does not answer {type(query).__name__}")

    def local_state_size(self) -> int:
        return len(self.adj) + sum(len(v) for v in self.view.values())
