"""The paper's distributed dynamic data structures.

This package contains the algorithmic contributions of *Finding Subgraphs in
Highly Dynamic Networks* (SPAA 2021), implemented as
:class:`~repro.simulator.node.NodeAlgorithm` subclasses:

================================  =============================  =========================
Algorithm                         Paper result                   Amortized rounds
================================  =============================  =========================
:class:`RobustTwoHopNode`         Theorem 7 (Appendix A)         O(1)
:class:`TriangleMembershipNode`   Theorem 1                      O(1)
:class:`CliqueMembershipNode`     Corollary 1 (any k >= 3)       O(1)
:class:`RobustThreeHopNode`       Theorem 6                      O(1)
:class:`CycleListingNode`         Theorems 3/5 (4- and 5-cycles) O(1)
:class:`TwoHopListingNode`        Lemma 1 (Appendix B)           O(n / log n)
:class:`NaiveForwardingNode`      Section 1.3 strawman           O(1) but *incorrect*
:class:`FullBroadcastNode`        Section 2 strawman             O(1) but Θ(n)-bit messages
================================  =============================  =========================

Queries are expressed with the types in :mod:`repro.core.queries` and
:mod:`repro.core.membership`.
"""

from .ablation import HintFreeTriangleNode
from .clique import CliqueMembershipNode
from .cycles import CycleListingNode, cyclic_orderings
from .membership import HMembershipQuery, HPattern, PATTERNS
from .naive import FullBroadcastNode, NaiveForwardingNode
from .queries import (
    CliqueQuery,
    CycleQuery,
    EdgeQuery,
    QueryResult,
    TriangleQuery,
    TwoHopQuery,
)
from .robust2hop import RobustTwoHopNode
from .robust3hop import RobustThreeHopNode
from .triangle import TriangleMembershipNode
from .twohop_listing import TwoHopListingNode

__all__ = [
    "CliqueMembershipNode",
    "CliqueQuery",
    "CycleListingNode",
    "CycleQuery",
    "cyclic_orderings",
    "EdgeQuery",
    "FullBroadcastNode",
    "HintFreeTriangleNode",
    "HMembershipQuery",
    "HPattern",
    "NaiveForwardingNode",
    "PATTERNS",
    "QueryResult",
    "RobustThreeHopNode",
    "RobustTwoHopNode",
    "TriangleMembershipNode",
    "TriangleQuery",
    "TwoHopListingNode",
    "TwoHopQuery",
]
