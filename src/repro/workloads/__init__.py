"""Canned dynamic workloads (planted subgraphs, growth, flip-flop stress tests)."""

from .generators import (
    flip_flop_edges,
    growing_random_graph,
    planted_clique_churn,
    planted_cycle_churn,
)

__all__ = [
    "flip_flop_edges",
    "growing_random_graph",
    "planted_clique_churn",
    "planted_cycle_churn",
]
