"""Canned dynamic workloads shared by examples, tests and benchmarks.

These generators produce explicit topology schedules (as
:class:`~repro.adversary.scripted.ScriptedAdversary` instances) with known
structure -- planted triangles, cliques or cycles that appear and disappear
over time -- so that experiments can ask the data structures about subgraphs
that are guaranteed to exist (or to have existed and been destroyed).
"""

from __future__ import annotations

import math
from itertools import combinations
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from ..adversary.scripted import ScriptedAdversary
from ..simulator.events import Edge, RoundChanges, canonical_edge

__all__ = [
    "planted_clique_churn",
    "planted_cycle_churn",
    "growing_random_graph",
    "flip_flop_edges",
]


def planted_clique_churn(
    n: int,
    k: int,
    num_plants: int,
    *,
    noise_edges_per_round: int = 1,
    seed: int = 0,
) -> Tuple[ScriptedAdversary, List[frozenset]]:
    """A schedule that repeatedly plants and dismantles k-cliques amid noise.

    Each plant picks ``k`` random nodes, inserts the clique edges one round at
    a time (interleaved with random noise insertions/deletions), keeps the
    clique alive for a few rounds and then deletes it edge by edge.

    Returns the adversary and the list of planted cliques (node frozensets) in
    plant order.
    """
    if k > n:
        raise ValueError("k cannot exceed n")
    rng = np.random.default_rng(seed)
    rounds: List[RoundChanges] = []
    plants: List[frozenset] = []
    present: Set[Edge] = set()

    def noise(batch_insert: List[Edge], batch_delete: List[Edge], protected: Set[Edge]) -> None:
        """Add random insertions/deletions that never touch the protected edges."""
        for _ in range(noise_edges_per_round):
            u, w = rng.integers(0, n, size=2)
            if u == w:
                continue
            e = canonical_edge(int(u), int(w))
            if e in protected or e in batch_insert or e in batch_delete:
                continue
            if e in present:
                batch_delete.append(e)
            else:
                batch_insert.append(e)

    for _ in range(num_plants):
        members = sorted(int(x) for x in rng.choice(n, size=k, replace=False))
        plants.append(frozenset(members))
        clique_edges = [canonical_edge(a, b) for a, b in combinations(members, 2)]
        protected = set(clique_edges)
        # Insert the clique edges one per round (skipping noise duplicates).
        for edge in clique_edges:
            inserts: List[Edge] = []
            deletes: List[Edge] = []
            if edge not in present:
                inserts.append(edge)
            noise(inserts, deletes, protected)
            present.update(inserts)
            present.difference_update(deletes)
            rounds.append(RoundChanges.of(insert=inserts, delete=deletes))
        # Let the clique live for a couple of quiet rounds.
        rounds.extend(RoundChanges.empty() for _ in range(3))
        # Tear it down (the clique edges may now be touched again).
        for edge in clique_edges:
            deletes = [edge] if edge in present else []
            inserts = []
            noise(inserts, deletes, {edge})
            present.update(inserts)
            present.difference_update(deletes)
            rounds.append(RoundChanges.of(insert=inserts, delete=deletes))
    rounds.extend(RoundChanges.empty() for _ in range(3))
    return ScriptedAdversary(rounds), plants


def planted_cycle_churn(
    n: int,
    k: int,
    num_plants: int,
    *,
    seed: int = 0,
    teardown: bool = True,
) -> Tuple[ScriptedAdversary, List[Tuple[int, ...]]]:
    """A schedule that plants k-cycles in random edge order.

    Each planted cycle lives for a few quiet rounds; with ``teardown=True``
    (the default) its edges are subsequently removed, otherwise all planted
    cycles remain in the final graph.

    Returns the adversary and the list of planted cycles as node orderings.
    """
    if k > n:
        raise ValueError("k cannot exceed n")
    rng = np.random.default_rng(seed)
    rounds: List[RoundChanges] = []
    plants: List[Tuple[int, ...]] = []
    present: Set[Edge] = set()

    for _ in range(num_plants):
        members = [int(x) for x in rng.choice(n, size=k, replace=False)]
        plants.append(tuple(members))
        cycle_edges = [
            canonical_edge(members[i], members[(i + 1) % k]) for i in range(k)
        ]
        order = list(rng.permutation(len(cycle_edges)))
        for idx in order:
            edge = cycle_edges[idx]
            if edge in present:
                rounds.append(RoundChanges.empty())
            else:
                present.add(edge)
                rounds.append(RoundChanges.inserts([edge]))
        rounds.extend(RoundChanges.empty() for _ in range(3))
        if teardown:
            for edge in cycle_edges:
                if edge in present:
                    present.discard(edge)
                    rounds.append(RoundChanges.deletes([edge]))
    rounds.extend(RoundChanges.empty() for _ in range(3))
    return ScriptedAdversary(rounds), plants


def growing_random_graph(
    n: int, num_edges: int, *, edges_per_round: int = 1, seed: int = 0
) -> ScriptedAdversary:
    """Insert ``num_edges`` distinct random edges, ``edges_per_round`` at a time."""
    rng = np.random.default_rng(seed)
    edges: Set[Edge] = set()
    max_edges = n * (n - 1) // 2
    target = min(num_edges, max_edges)
    while len(edges) < target:
        u, w = rng.integers(0, n, size=2)
        if u != w:
            edges.add(canonical_edge(int(u), int(w)))
    ordered = sorted(edges)
    rounds = [
        RoundChanges.inserts(ordered[i : i + edges_per_round])
        for i in range(0, len(ordered), edges_per_round)
    ]
    return ScriptedAdversary(rounds)


def flip_flop_edges(
    edges: Sequence[Tuple[int, int]], repetitions: int, *, gap_rounds: int = 1
) -> ScriptedAdversary:
    """Insert and delete the same edges repeatedly (a stress test for timestamps).

    Each repetition inserts all ``edges`` (one round), waits ``gap_rounds``
    quiet rounds, deletes them (one round), and waits again.  This exercises
    exactly the delete/re-insert interleavings that make imaginary timestamps
    subtle.
    """
    rounds: List[RoundChanges] = []
    for _ in range(repetitions):
        rounds.append(RoundChanges.inserts(edges))
        rounds.extend(RoundChanges.empty() for _ in range(gap_rounds))
        rounds.append(RoundChanges.deletes(edges))
        rounds.extend(RoundChanges.empty() for _ in range(gap_rounds))
    return ScriptedAdversary(rounds)
