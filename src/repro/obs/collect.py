"""Cross-process telemetry collection: fold worker snapshots into a live registry.

Sharded-engine workers and campaign workers each run their own
:class:`~repro.obs.telemetry.Telemetry` registry (the module singleton is a
*process-local* object; a forked child must never write through the parent's
sink handle).  At shutdown/completion each worker ships its final snapshot —
plus its trace buffer — back over the result pipe it already owns, and the
coordinator folds everything into its own registry with
:func:`merge_snapshot_into`.  Counters and spans sum, fixed-bucket histograms
merge bucket-wise, gauges stay last-wins: the same semantics as
:func:`repro.obs.report.merge_snapshots`, but applied *into* a live registry
instead of across snapshot dicts.

:func:`compute_shard_skew` turns per-worker span totals into the
``engine.shard_skew.<stage>`` gauge family: max-over-mean of per-worker
wall-clock per stage (1.0 = perfectly balanced, 2.0 = the slowest shard did
twice the mean work), the one number that says whether a sharded run is
limited by partitioning rather than by the engine.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, Optional, Sequence

from .telemetry import Histogram, Telemetry

__all__ = [
    "merge_snapshot_into",
    "compute_shard_skew",
    "record_shard_skew",
    "WORKER_SPAN_PREFIX",
]

#: Prefix for spans recorded inside sharded-engine worker processes.
WORKER_SPAN_PREFIX = "engine.worker."


def merge_snapshot_into(telemetry: Telemetry, snapshot: Mapping[str, Any]) -> None:
    """Fold one snapshot dict (another process's final state) into a live
    registry.

    Writes the backing dicts directly — this is a coordinator-side merge of
    already-collected data, not instrumentation, so it bypasses the
    ``enabled`` fast-path guards (callers gate on ``telemetry.enabled``).
    """
    for name, value in snapshot.get("counters", {}).items():
        telemetry.counters[name] = telemetry.counters.get(name, 0) + int(value)

    for name, value in snapshot.get("gauges", {}).items():
        telemetry.gauges[name] = value  # last-wins, same as Telemetry.gauge

    for name, stat in snapshot.get("spans", {}).items():
        count = int(stat["count"])
        total_s = float(stat["total_s"])
        max_s = float(stat["max_s"])
        existing = telemetry.spans.get(name)
        if existing is None:
            telemetry.spans[name] = [count, total_s, max_s]
        else:
            existing[0] += count
            existing[1] += total_s
            if max_s > existing[2]:
                existing[2] = max_s

    for name, data in snapshot.get("histograms", {}).items():
        incoming = Histogram.from_dict(data)
        existing = telemetry.histograms.get(name)
        if existing is None:
            telemetry.histograms[name] = incoming
        else:
            existing.merge(incoming)


def compute_shard_skew(
    snapshots: Sequence[Mapping[str, Any]],
    *,
    prefix: str = WORKER_SPAN_PREFIX,
) -> Dict[str, float]:
    """Per-stage skew across worker snapshots: ``max(total_s) / mean(total_s)``.

    Returns ``{"engine.shard_skew.<stage>": skew}`` for every worker span
    stage present in at least one snapshot.  Workers that never recorded a
    stage count as zero time for it (an idle shard *is* skew).  Stages whose
    total time is zero everywhere are omitted.
    """
    if not snapshots:
        return {}
    stages: Dict[str, list] = {}
    for snapshot in snapshots:
        for name in snapshot.get("spans", {}):
            if name.startswith(prefix):
                stages.setdefault(name[len(prefix):], [])
    skew: Dict[str, float] = {}
    for stage in stages:
        totals = [
            float(s.get("spans", {}).get(prefix + stage, {}).get("total_s", 0.0))
            for s in snapshots
        ]
        mean = sum(totals) / len(totals)
        if mean > 0.0:
            skew[f"engine.shard_skew.{stage}"] = max(totals) / mean
    return skew


def record_shard_skew(
    telemetry: Telemetry, snapshots: Sequence[Mapping[str, Any]]
) -> Dict[str, float]:
    """Compute shard skew and publish it as gauges on ``telemetry``."""
    skew = compute_shard_skew(snapshots)
    for name, value in skew.items():
        telemetry.gauges[name] = value
    if snapshots:
        telemetry.gauges["engine.shard_workers"] = len(snapshots)
    return skew
