"""Merge telemetry snapshots into hotspot tables and a JSON report.

Each campaign cell (or fuzz run) leaves one JSONL file of cumulative
snapshots under ``<store>/telemetry/``; the *last* line per file is that
run's total.  This module loads those finals, merges counters/spans/
histograms across cells, and renders:

* a **hotspot table** -- spans ranked by cumulative time, with call counts,
  mean and max latency;
* a **histogram table** -- per-histogram count/mean/p50/p95/p99/max;
* a **counter table**;
* one machine-readable dict (``build_report``) that the
  ``repro-dynamic-subgraphs telemetry report --json`` CLI dumps verbatim.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .telemetry import Histogram

__all__ = [
    "load_final_snapshot",
    "load_snapshots",
    "merge_snapshots",
    "build_report",
    "format_report",
]


def load_final_snapshot(path: str | Path) -> Optional[Dict[str, Any]]:
    """The last parseable snapshot line of one JSONL file (None if empty).

    Tolerates a torn final line (crashed run): falls back to the latest
    line that parses, mirroring the ResultStore's torn-append policy.
    """
    final = None
    try:
        with Path(path).open() as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    final = json.loads(line)
                except json.JSONDecodeError:
                    continue
    except OSError:
        return None
    return final if isinstance(final, dict) else None


def load_snapshots(root: str | Path) -> Dict[str, Dict[str, Any]]:
    """Final snapshot per cell: ``{cell_id: snapshot}`` from ``root/*.jsonl``.

    Trace-event files share the directory (``<cell>.trace.jsonl``) and are
    skipped here -- their lines are events, not snapshots.
    """
    root = Path(root)
    if not root.is_dir():
        return {}
    out: Dict[str, Dict[str, Any]] = {}
    for path in sorted(root.glob("*.jsonl")):
        if path.name.endswith(".trace.jsonl"):
            continue
        snap = load_final_snapshot(path)
        if snap is not None:
            out[path.stem] = snap
    return out


def merge_snapshots(snapshots: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold many snapshot dicts into one: counters/spans sum, histograms
    merge bucket-wise, gauges keep the last value seen."""
    counters: Dict[str, int] = {}
    gauges: Dict[str, Any] = {}
    spans: Dict[str, Dict[str, float]] = {}
    histograms: Dict[str, Histogram] = {}
    ticks = 0
    elapsed = 0.0
    for snap in snapshots:
        ticks += int(snap.get("ticks", 0))
        elapsed += float(snap.get("elapsed_s", 0.0))
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + int(value)
        gauges.update(snap.get("gauges", {}))
        for name, stat in snap.get("spans", {}).items():
            agg = spans.setdefault(name, {"count": 0, "total_s": 0.0, "max_s": 0.0})
            agg["count"] += int(stat["count"])
            agg["total_s"] += float(stat["total_s"])
            agg["max_s"] = max(agg["max_s"], float(stat["max_s"]))
        for name, data in snap.get("histograms", {}).items():
            incoming = Histogram.from_dict(data)
            existing = histograms.get(name)
            if existing is None:
                histograms[name] = incoming
            else:
                existing.merge(incoming)
    return {
        "cells": len(snapshots),
        "ticks": ticks,
        "elapsed_s": elapsed,
        "counters": counters,
        "gauges": gauges,
        "spans": spans,
        "histograms": histograms,
    }


def build_report(root: str | Path, *, top: int = 20) -> Dict[str, Any]:
    """Load every cell's final snapshot under ``root`` and merge them into
    one machine-readable report dict."""
    per_cell = load_snapshots(root)
    merged = merge_snapshots(list(per_cell.values()))
    hotspots = sorted(
        (
            {
                "span": name,
                "count": int(stat["count"]),
                "total_s": stat["total_s"],
                "mean_s": stat["total_s"] / stat["count"] if stat["count"] else 0.0,
                "max_s": stat["max_s"],
            }
            for name, stat in merged["spans"].items()
        ),
        key=lambda row: row["total_s"],
        reverse=True,
    )[:top]
    histogram_rows = []
    for name in sorted(merged["histograms"]):
        hist = merged["histograms"][name]
        histogram_rows.append(
            {
                "histogram": name,
                "count": hist.count,
                "mean": hist.mean,
                "p50": hist.percentile(50),
                "p95": hist.percentile(95),
                "p99": hist.percentile(99),
                "max": hist.max if hist.max is not None else 0.0,
            }
        )
    return {
        "root": str(root),
        "cells": sorted(per_cell),
        "ticks": merged["ticks"],
        "elapsed_s": merged["elapsed_s"],
        "hotspots": hotspots,
        "histograms": histogram_rows,
        "counters": dict(sorted(merged["counters"].items())),
        "gauges": merged["gauges"],
    }


def _format_table(headers: List[str], rows: List[List[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip(),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip())
    return "\n".join(lines)


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f}ms"
    return f"{seconds * 1e6:.1f}us"


def format_report(report: Dict[str, Any]) -> str:
    """Human-readable rendering of a :func:`build_report` dict."""
    sections: List[str] = []
    sections.append(
        f"telemetry report: {len(report['cells'])} cell(s), "
        f"{report['ticks']} tick(s), {report['elapsed_s']:.2f}s instrumented"
    )
    if report["hotspots"]:
        rows = [
            [
                row["span"],
                str(row["count"]),
                _fmt_s(row["total_s"]),
                _fmt_s(row["mean_s"]),
                _fmt_s(row["max_s"]),
            ]
            for row in report["hotspots"]
        ]
        sections.append(
            "hotspots (top spans by cumulative time)\n"
            + _format_table(["span", "count", "total", "mean", "max"], rows)
        )
    if report["histograms"]:
        rows = []
        for row in report["histograms"]:
            time_like = row["histogram"].endswith(("_s", ".latency", "latency_s"))
            fmt = _fmt_s if time_like else (lambda v: f"{v:.1f}")
            rows.append(
                [
                    row["histogram"],
                    str(row["count"]),
                    fmt(row["mean"]),
                    fmt(row["p50"]),
                    fmt(row["p95"]),
                    fmt(row["p99"]),
                    fmt(row["max"]),
                ]
            )
        sections.append(
            "histograms\n"
            + _format_table(
                ["histogram", "count", "mean", "p50", "p95", "p99", "max"], rows
            )
        )
    if report["counters"]:
        rows = [[name, str(value)] for name, value in report["counters"].items()]
        sections.append("counters\n" + _format_table(["counter", "value"], rows))
    if report.get("gauges"):
        rows = [
            [name, f"{value:.3f}" if isinstance(value, float) else str(value)]
            for name, value in sorted(report["gauges"].items())
        ]
        sections.append("gauges\n" + _format_table(["gauge", "value"], rows))
    if not report["cells"]:
        sections.append("(no telemetry snapshots found)")
    return "\n\n".join(sections)
