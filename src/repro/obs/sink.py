"""Periodic JSONL persistence of telemetry snapshots.

A :class:`TelemetrySink` owns one append-only JSONL file (conventionally
``<result store>/telemetry/<cell_id>.jsonl``) and writes cumulative
:meth:`~repro.obs.telemetry.Telemetry.snapshot` lines into it: one line
whenever at least ``interval_s`` has passed since the last flush (driven by
:meth:`Telemetry.tick`, i.e. by round/schedule boundaries), plus one final
``"final": true`` line when the run closes.  Snapshots are cumulative, so a
reader only ever needs the *last* line of a file -- earlier lines exist to
make long runs observable while they are still going (tail the file) and to
survive crashes mid-cell.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import IO, Optional

__all__ = ["TelemetrySink", "write_supervision_snapshot"]


def write_supervision_snapshot(
    path: str | Path,
    *,
    label: str,
    counters,
    elapsed_s: float = 0.0,
) -> Path:
    """Write one snapshot-format JSONL line for coordinator-side counters.

    The campaign runner's worker supervision (retries, timeouts, worker
    deaths, quarantines) happens in the coordinator process, outside any
    cell's :data:`~repro.obs.telemetry.TELEMETRY` window.  This helper emits
    those counters in the same cumulative-snapshot shape a
    :class:`TelemetrySink` writes, so ``telemetry report`` merges them with
    per-cell files without special cases (the file lands next to the cell
    files, conventionally as ``telemetry/_campaign.jsonl``).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    snapshot = {
        "label": label,
        "seq": 0,
        "final": True,
        "ts": time.time(),
        "elapsed_s": float(elapsed_s),
        "ticks": 0,
        "counters": {name: int(value) for name, value in dict(counters).items()},
        "gauges": {},
        "spans": {},
        "histograms": {},
    }
    with path.open("w") as handle:
        handle.write(json.dumps(snapshot) + "\n")
    return path


class TelemetrySink:
    """Appends periodic telemetry snapshots to one JSONL file.

    Args:
        path: the JSONL file to append to (parent directories are created;
            an existing file is truncated -- each run owns its file).
        interval_s: minimum seconds between periodic flushes.  ``0`` flushes
            on every tick (useful in tests); the default keeps file traffic
            negligible next to simulation work.
    """

    def __init__(self, path: str | Path, *, interval_s: float = 1.0) -> None:
        if interval_s < 0:
            raise ValueError("interval_s must be non-negative")
        self.path = Path(path)
        self.interval_s = interval_s
        self._handle: Optional[IO[str]] = None
        self._last_flush = 0.0
        self.lines_written = 0

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def _ensure_open(self) -> IO[str]:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("w")
        return self._handle

    def maybe_flush(self, telemetry) -> bool:
        """Flush a snapshot if the periodic interval elapsed; returns whether
        a line was written."""
        now = time.monotonic()
        if self.lines_written and now - self._last_flush < self.interval_s:
            return False
        self.flush(telemetry)
        return True

    def flush(self, telemetry, *, final: bool = False) -> None:
        """Append one snapshot line immediately."""
        handle = self._ensure_open()
        handle.write(json.dumps(telemetry.snapshot(final=final)) + "\n")
        handle.flush()
        self._last_flush = time.monotonic()
        self.lines_written += 1

    def close(self, telemetry=None) -> None:
        """Write the final snapshot (when given a telemetry) and close."""
        if telemetry is not None:
            self.flush(telemetry, final=True)
        if self._handle is not None:
            self._handle.close()
            self._handle = None
